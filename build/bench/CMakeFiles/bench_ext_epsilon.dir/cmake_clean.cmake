file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_epsilon.dir/ext_epsilon.cpp.o"
  "CMakeFiles/bench_ext_epsilon.dir/ext_epsilon.cpp.o.d"
  "bench_ext_epsilon"
  "bench_ext_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
