// Ablation: the §3.5 forecaster choice. One-step accuracy of seasonal
// ARIMA (Eq. 14) against persistence and the seasonal-naive rule on the
// diurnal MMOG workload, across weekly noise levels — the case for the
// model the provisioning strategy stands on.
#include "bench_common.hpp"

#include "forecast/baselines.hpp"
#include "game/workload.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);

  util::Table table("Ablation — one-step forecast MAPE (%) on 28 days of 4-hour windows");
  table.set_header({"weekly noise", "weekly growth", "persistence", "seasonal naive",
                    "SARIMA (Eq. 14)", "SARIMA (log)"});
  const std::size_t season = 42;
  for (const auto& [noise, growth] :
       std::vector<std::pair<double, double>>{{0.02, 0.0},
                                              {0.08, 0.0},
                                              {0.15, 0.0},
                                              {0.08, 0.10},
                                              {0.08, 0.20}}) {
    game::WorkloadConfig wcfg;
    wcfg.weekly_noise = noise;
    wcfg.weekly_growth = growth;
    game::WorkloadGenerator workload(wcfg, util::Rng(scale.seed));
    const auto hourly = workload.series(28);
    std::vector<double> windows;
    for (std::size_t i = 0; i + 4 <= hourly.size(); i += 4) {
      windows.push_back((hourly[i] + hourly[i + 1] + hourly[i + 2] + hourly[i + 3]) / 4.0);
    }
    forecast::PersistenceForecaster persistence;
    forecast::SeasonalNaiveForecaster naive(season);
    forecast::SeasonalArima sarima(forecast::SarimaConfig{season, 0.3, 0.3, false});
    forecast::SeasonalArima log_sarima(forecast::SarimaConfig{season, 0.3, 0.3, true});
    const auto p = forecast::evaluate_forecaster(persistence, windows, season + 1);
    const auto n = forecast::evaluate_forecaster(naive, windows, season + 1);
    const auto s = forecast::evaluate_forecaster(sarima, windows, season + 1);
    const auto ls = forecast::evaluate_forecaster(log_sarima, windows, season + 1);
    table.add_row({util::format_double(noise * 100, 0) + " %",
                   util::format_double(growth * 100, 0) + " %",
                   util::format_double(p.mape * 100, 2),
                   util::format_double(n.mape * 100, 2),
                   util::format_double(s.mape * 100, 2),
                   util::format_double(ls.mape * 100, 2)});
  }
  bench::print(table);
  return 0;
}
