#include "fault/fault_injector.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::fault {

namespace {

struct InjectorObs {
  obs::CounterId injected;
  obs::CounterId cleared;
  InjectorObs() {
    auto& reg = obs::Recorder::global().registry();
    injected = reg.counter("fault.injected");
    cleared = reg.counter("fault.cleared");
  }
};

const InjectorObs& injector_obs() {
  static const InjectorObs handles;
  return handles;
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, FaultState& state, FaultPlan plan,
                             ApplyHook on_crash, ClearHook on_crash_cleared)
    : sim_(sim),
      state_(state),
      plan_(std::move(plan)),
      on_crash_(std::move(on_crash)),
      on_crash_cleared_(std::move(on_crash_cleared)) {
  CLOUDFOG_REQUIRE(static_cast<bool>(on_crash_), "null crash apply hook");
  CLOUDFOG_REQUIRE(static_cast<bool>(on_crash_cleared_), "null crash clear hook");
}

void FaultInjector::arm() {
  CLOUDFOG_REQUIRE(!armed_, "fault plan already armed");
  armed_ = true;
  for (const FaultSpec& spec : plan_.specs()) {
    // The injector outlives the simulator it schedules on (both are owned
    // by the System, injector declared after), so `this` capture is safe.
    sim_.schedule_at(spec.at_s, [this, spec] { apply(spec); });
  }
}

void FaultInjector::apply(const FaultSpec& spec) {
  std::size_t target = spec.target;
  if (spec.kind == FaultKind::kSupernodeCrash) {
    target = on_crash_(spec);
    if (target == kAnyTarget) return;  // no eligible victim — fault is moot
  }
  ActiveFault active;
  active.spec = spec;
  active.resolved_target = target;
  active.id = next_id_++;
  active_.push_back(active);
  ++injected_;
  rebuild_state();
  emit(true, spec, target);
  if (!spec.permanent()) {
    const std::uint64_t id = active.id;
    sim_.schedule_at(spec.at_s + spec.duration_s, [this, id] { clear(id); });
  }
}

void FaultInjector::clear(std::uint64_t id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const ActiveFault& f) { return f.id == id; });
  if (it == active_.end()) return;
  const ActiveFault ended = *it;
  active_.erase(it);
  ++cleared_;
  if (ended.spec.kind == FaultKind::kSupernodeCrash) {
    on_crash_cleared_(ended.spec, ended.resolved_target);
  }
  rebuild_state();
  emit(false, ended.spec, ended.resolved_target);
}

void FaultInjector::rebuild_state() {
  state_.clear_faults();
  bool any = false;
  for (const ActiveFault& f : active_) {
    switch (f.spec.kind) {
      case FaultKind::kSupernodeCrash:
        // Liveness lives in SupernodeState::failed via the hooks; the
        // projection only marks that faults are in flight.
        any = true;
        break;
      case FaultKind::kSlowNode:
        state_.add_slow_ms(f.resolved_target, f.spec.magnitude);
        any = true;
        break;
      case FaultKind::kNetworkPartition:
        state_.add_partition(f.spec.target, f.spec.target_b);
        any = true;
        break;
      case FaultKind::kPacketLossBurst:
        state_.add_channel_loss(f.spec.magnitude);
        any = true;
        break;
      case FaultKind::kMessageDelayBurst:
        state_.add_channel_delay(f.spec.magnitude);
        any = true;
        break;
      case FaultKind::kProbeBlackhole:
        state_.add_blackhole(f.resolved_target);
        any = true;
        break;
    }
  }
  state_.set_any_active(any);
}

void FaultInjector::emit(bool injected, const FaultSpec& spec, std::size_t target) {
  auto& rec = obs::Recorder::global();
  if (!rec.enabled()) return;
  rec.registry().add(injected ? injector_obs().injected : injector_obs().cleared);
  const auto subject = target == kAnyTarget ? std::int64_t{-1}
                                            : static_cast<std::int64_t>(target);
  const auto object = spec.target_b == kAnyTarget
                          ? std::int64_t{-1}
                          : static_cast<std::int64_t>(spec.target_b);
  rec.trace_at(sim_.now(),
               injected ? obs::EventKind::kFaultInjected : obs::EventKind::kFaultCleared,
               subject, object, spec.magnitude, fault_kind_note(spec.kind));
}

}  // namespace cloudfog::fault
