// Determinism of the scale-out QoS engine (DESIGN.md §10): the parallel
// pass and the memoization tiers are pure performance features — every
// SubcycleQos field and every trace byte must be identical to the serial,
// memoization-free reference engine. The comparisons here are exact
// (EXPECT_EQ on doubles, byte-equal traces): "close" is a bug.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/testbed.hpp"
#include "obs/obs.hpp"

namespace {

using namespace cloudfog;

struct RunResult {
  std::vector<core::SubcycleQos> qos;
  std::string trace;
};

/// Runs `days` full cycles under a freshly reset recorder and returns the
/// per-subcycle QoS plus the raw trace bytes.
RunResult run_system(const core::Testbed& testbed, core::SystemConfig cfg, int days) {
  auto& rec = obs::Recorder::global();
  rec.reset();
  rec.set_enabled(true);
  std::ostringstream trace;
  rec.trace_buffer().set_sink(&trace);

  RunResult result;
  {
    core::System system(testbed, cfg, 97);
    const int per_day = testbed.activity().config().subcycles_per_day;
    for (int day = 1; day <= days; ++day) {
      system.begin_cycle(day);
      for (int s = 1; s <= per_day; ++s) {
        result.qos.push_back(system.run_subcycle(day, s, false, s >= 20));
      }
      system.end_cycle(day);
    }
  }

  rec.trace_buffer().flush();
  rec.trace_buffer().set_sink(nullptr);
  rec.set_enabled(false);
  rec.reset();
  result.trace = trace.str();
  return result;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.qos.size(), b.qos.size());
  for (std::size_t i = 0; i < a.qos.size(); ++i) {
    SCOPED_TRACE("subcycle " + std::to_string(i));
    EXPECT_EQ(a.qos[i].avg_response_latency_ms, b.qos[i].avg_response_latency_ms);
    EXPECT_EQ(a.qos[i].avg_server_latency_ms, b.qos[i].avg_server_latency_ms);
    EXPECT_EQ(a.qos[i].avg_continuity, b.qos[i].avg_continuity);
    EXPECT_EQ(a.qos[i].satisfied_fraction, b.qos[i].satisfied_fraction);
    EXPECT_EQ(a.qos[i].avg_mos, b.qos[i].avg_mos);
    EXPECT_EQ(a.qos[i].cloud_egress_mbps, b.qos[i].cloud_egress_mbps);
    EXPECT_EQ(a.qos[i].online_sessions, b.qos[i].online_sessions);
    EXPECT_EQ(a.qos[i].fog_served, b.qos[i].fog_served);
    EXPECT_EQ(a.qos[i].cloud_served, b.qos[i].cloud_served);
    EXPECT_EQ(a.qos[i].cdn_served, b.qos[i].cdn_served);
  }
  EXPECT_EQ(a.trace, b.trace);
}

core::SystemConfig cloudfog_config() {
  core::SystemConfig cfg;
  cfg.architecture = core::Architecture::kCloudFog;
  cfg.supernode_count = 80;
  return cfg;
}

class QosParallelEquality : public ::testing::Test {
 protected:
  QosParallelEquality() : testbed_(core::TestbedConfig::peersim(1200), 7) {}
  core::Testbed testbed_;
};

TEST_F(QosParallelEquality, FourThreadsMatchSerialExactly) {
  auto cfg = cloudfog_config();
  cfg.qos.threads = 1;
  const RunResult serial = run_system(testbed_, cfg, 2);
  cfg.qos.threads = 4;
  const RunResult parallel = run_system(testbed_, cfg, 2);
  ASSERT_FALSE(serial.trace.empty());
  expect_identical(serial, parallel);
}

TEST_F(QosParallelEquality, MemoizationMatchesReferenceExactly) {
  auto cfg = cloudfog_config();
  cfg.qos.threads = 1;
  cfg.qos.memoize = false;
  const RunResult reference = run_system(testbed_, cfg, 2);
  cfg.qos.memoize = true;
  const RunResult memoized = run_system(testbed_, cfg, 2);
  expect_identical(reference, memoized);
}

TEST_F(QosParallelEquality, GridDiscoveryMatchesLinearExactly) {
  auto cfg = cloudfog_config();
  cfg.discovery = core::CandidateMode::kLinear;
  const RunResult linear = run_system(testbed_, cfg, 2);
  cfg.discovery = core::CandidateMode::kGrid;
  const RunResult grid = run_system(testbed_, cfg, 2);
  expect_identical(linear, grid);
}

TEST_F(QosParallelEquality, ParallelMatchesSerialUnderFaults) {
  auto cfg = cloudfog_config();
  cfg.faults.enabled = true;
  cfg.faults.faults_per_hour = 4.0;
  cfg.faults.seed = 11;
  cfg.qos.threads = 1;
  const RunResult serial = run_system(testbed_, cfg, 3);
  cfg.qos.threads = 3;  // odd shard split exercises uneven ranges
  const RunResult parallel = run_system(testbed_, cfg, 3);
  expect_identical(serial, parallel);
}

// The reference stack (linear + no memo + serial) against the full
// optimized stack (grid + memo + 4 threads): end-to-end byte equality.
TEST_F(QosParallelEquality, OptimizedStackMatchesReferenceStack) {
  auto cfg = cloudfog_config();
  cfg.discovery = core::CandidateMode::kLinear;
  cfg.qos.memoize = false;
  cfg.qos.threads = 1;
  const RunResult reference = run_system(testbed_, cfg, 2);
  cfg.discovery = core::CandidateMode::kGrid;
  cfg.qos.memoize = true;
  cfg.qos.threads = 4;
  const RunResult optimized = run_system(testbed_, cfg, 2);
  expect_identical(reference, optimized);
}

}  // namespace
