file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_reputation.dir/reputation/rating.cpp.o"
  "CMakeFiles/cloudfog_reputation.dir/reputation/rating.cpp.o.d"
  "CMakeFiles/cloudfog_reputation.dir/reputation/reputation_store.cpp.o"
  "CMakeFiles/cloudfog_reputation.dir/reputation/reputation_store.cpp.o.d"
  "libcloudfog_reputation.a"
  "libcloudfog_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
