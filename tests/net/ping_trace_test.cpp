#include "net/ping_trace.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace cloudfog::net {
namespace {

TEST(PingTrace, AccessLatencyPositiveAndBounded) {
  const PingTrace trace(TraceProfile::kLeagueOfLegends);
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double ms = trace.sample_access_latency_ms(rng);
    ASSERT_GT(ms, 0.0);
    ASSERT_LT(ms, 500.0);  // sanity tail bound
  }
}

TEST(PingTrace, AccessMedianInLastMileRange) {
  const PingTrace trace(TraceProfile::kLeagueOfLegends);
  util::Rng rng(2);
  util::SampleSet samples;
  for (int i = 0; i < 50000; ++i) samples.add(trace.sample_access_latency_ms(rng));
  EXPECT_GT(samples.median(), 4.0);
  EXPECT_LT(samples.median(), 15.0);
}

TEST(PingTrace, RttsCoverTheLolHistogramRange) {
  const PingTrace trace(TraceProfile::kLeagueOfLegends);
  util::Rng rng(3);
  util::SampleSet samples;
  for (int i = 0; i < 50000; ++i) samples.add(trace.sample_rtt_ms(rng));
  // The published histogram: bulk between 20 and 150 ms with a tail.
  EXPECT_GT(samples.median(), 30.0);
  EXPECT_LT(samples.median(), 110.0);
  EXPECT_GT(samples.percentile(0.95), 120.0);
}

TEST(PingTrace, PlanetLabHasHeavierTail) {
  const PingTrace lol(TraceProfile::kLeagueOfLegends);
  const PingTrace pl(TraceProfile::kPlanetLab);
  util::Rng r1(4);
  util::Rng r2(4);
  util::SampleSet s_lol;
  util::SampleSet s_pl;
  for (int i = 0; i < 50000; ++i) {
    s_lol.add(lol.sample_rtt_ms(r1));
    s_pl.add(pl.sample_rtt_ms(r2));
  }
  EXPECT_GT(s_pl.percentile(0.9), s_lol.percentile(0.9));
  EXPECT_GT(pl.base_jitter_ms(), lol.base_jitter_ms());
}

TEST(PingTrace, FractionWithinIsMonotone) {
  const PingTrace trace(TraceProfile::kLeagueOfLegends);
  util::Rng rng(5);
  const double at50 = trace.rtt_fraction_within(50.0, rng);
  const double at100 = trace.rtt_fraction_within(100.0, rng);
  const double at300 = trace.rtt_fraction_within(300.0, rng);
  EXPECT_LE(at50, at100);
  EXPECT_LE(at100, at300);
  EXPECT_GT(at300, 0.8);
}

}  // namespace
}  // namespace cloudfog::net
