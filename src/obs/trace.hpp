// Bounded structured event trace.
//
// Components push typed events stamped with the simulation clock; the
// buffer is a fixed-capacity ring so tracing never grows memory unbounded.
// Two retention modes:
//   * no sink attached — the ring keeps the most recent `capacity` events
//     (oldest overwritten, counted as dropped);
//   * JSONL sink attached — the ring is a write buffer: it flushes to the
//     sink when full and on flush(), so the file sees every event while
//     memory stays bounded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cloudfog::obs {

enum class EventKind : std::uint8_t {
  kRunStart,        ///< a System run began (note = arm label)
  kSubcycle,        ///< subcycle boundary (subject=cycle, object=subcycle, value=online)
  kPlayerJoin,      ///< subject=player, object=serving entity, value=join latency ms
  kPlayerLeave,     ///< subject=player
  kSupernodeJoin,   ///< subject=supernode, value=join latency ms
  kSupernodeChurn,  ///< subject=supernode (failure/withdrawal detected)
  kProbeSent,       ///< subject=player, object=supernode
  kProbeAnswered,   ///< subject=player, object=supernode, value=RTT ms
  kCapacityClaim,   ///< subject=player, object=supernode, value=1 granted / 0 refused
  kMigration,       ///< subject=player, object=new entity, value=migration latency ms
  kRateSwitch,      ///< subject=game, object=new level, value=+1 up / -1 down
  kProvisioning,    ///< value=deployed count, note=decision detail
  kRating,          ///< subject=supernode, value=rating in [0,1]
  kFaultInjected,   ///< subject=target, object=partition peer, value=magnitude, note=kind
  kFaultCleared,    ///< subject=target, object=partition peer, note=kind
  kRetryAttempt,    ///< subject=attempt number, value=backoff ms, note=call site
  kRetryExhausted,  ///< subject=attempts started, value=elapsed ms, note=call site
  kCloudFallback,   ///< subject=player, value=restore latency ms
  kFogReturn,       ///< subject=player, object=supernode
};

const char* event_kind_name(EventKind kind);

struct TraceEvent {
  double t = 0.0;  ///< monotone observability clock (seconds)
  EventKind kind = EventKind::kRunStart;
  std::int64_t subject = -1;
  std::int64_t object = -1;
  double value = 0.0;
  std::string note;  ///< optional free-form detail (JSON-escaped on write)
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  void push(TraceEvent event);

  /// Attaches a JSONL sink (nullptr detaches). The buffer flushes current
  /// contents immediately when a sink is attached.
  void set_sink(std::ostream* sink);

  /// Writes everything buffered to the sink (if any) and clears the ring.
  void flush();

  /// Buffered events, oldest first (post-wrap: the surviving window).
  std::vector<TraceEvent> events() const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events ever pushed / overwritten before being read or sunk.
  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t total_sunk() const { return total_sunk_; }
  std::uint64_t dropped() const { return dropped_; }

  void clear();

  static void write_jsonl(std::ostream& os, const TraceEvent& event);

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< index of the oldest buffered event
  std::size_t size_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_sunk_ = 0;
  std::uint64_t dropped_ = 0;
  std::ostream* sink_ = nullptr;
};

}  // namespace cloudfog::obs
