#include "forecast/baselines.hpp"

#include "util/require.hpp"

namespace cloudfog::forecast {

SeasonalNaiveForecaster::SeasonalNaiveForecaster(std::size_t season_length)
    : season_(season_length) {
  CLOUDFOG_REQUIRE(season_length >= 1, "season length must be at least 1");
}

void SeasonalNaiveForecaster::observe(double value) { history_.push_back(value); }

std::optional<double> SeasonalNaiveForecaster::forecast_next() const {
  if (history_.empty()) return std::nullopt;
  if (history_.size() < season_) return history_.back();  // persistence warm-up
  return history_[history_.size() - season_];
}

}  // namespace cloudfog::forecast
