// Quality-of-Experience model (the paper's §5 future work: "we will study
// how to evaluate the user Quality of Experience (QoE) when using the
// CloudFog system").
//
// A standard cloud-gaming MOS (mean-opinion-score) construction on the
// 1–5 scale, combining the three QoS dimensions the evaluation measures:
//   * interaction latency — logistic penalty anchored at the paper's
//     "players begin to notice a response delay of 100 ms";
//   * playback continuity — stalls and losses dominate perceived quality,
//     so the continuity term is super-linear;
//   * picture quality — diminishing returns in the encoding bitrate
//     (logarithmic, normalized to the Table 2 ladder).
#pragma once

namespace cloudfog::video {

struct QoeModelConfig {
  /// Latency at which the MOS latency factor is 0.5 (noticeability knee).
  double latency_knee_ms = 100.0;
  /// Steepness of the latency logistic (per ms).
  double latency_slope = 0.035;
  /// Exponent on continuity: stalls hurt more than linearly.
  double continuity_exponent = 2.0;
  /// Bitrate normalization anchors (Table 2 ladder ends).
  double min_bitrate_kbps = 300.0;
  double max_bitrate_kbps = 1800.0;
  /// Relative weights of the three factors (normalized internally).
  double latency_weight = 0.4;
  double continuity_weight = 0.45;
  double quality_weight = 0.15;
};

class QoeModel {
 public:
  explicit QoeModel(QoeModelConfig cfg = {});

  const QoeModelConfig& config() const { return cfg_; }

  /// Each factor in [0, 1].
  double latency_factor(double response_latency_ms) const;
  double continuity_factor(double continuity) const;
  double quality_factor(double bitrate_kbps) const;

  /// Mean opinion score in [1, 5].
  double mos(double response_latency_ms, double continuity, double bitrate_kbps) const;

 private:
  QoeModelConfig cfg_;
  double weight_sum_;
};

}  // namespace cloudfog::video
