file(REMOVE_RECURSE
  "libcloudfog_util.a"
)
