// Resilience sweep: contributed desktops switch off without notice — a
// growing fraction of the serving fleet fails at every evening peak. The
// §3.2.2 migration machinery (candidate caches, probing, re-selection)
// keeps the damage bounded; this sweep quantifies how gracefully.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::failure_rate_sweep(core::TestbedProfile::kPeerSim,
                                        {0.0, 0.05, 0.1, 0.2, 0.4}, scale));
  return 0;
}
