# Empty compiler generated dependencies file for cloudfog_overlay.
# This may be replaced when dependencies are built.
