// Unified retry/backoff policy.
//
// Before this layer existed, every protocol that waited on an unreliable
// peer hand-rolled its own timeout logic: JoinSession had a flat per-stage
// timeout, ProbeMonitor a period × miss-limit pair, FogManager a fixed
// detection charge and an unbounded claim loop. RetryPolicy is the one
// vocabulary for all of them: how many attempts, how long each may take,
// how the wait between attempts grows (exponential backoff with optional
// jitter from util::Rng), and a hard deadline budget the whole operation
// must fit into.
//
// RetryBudget tracks one operation's consumption of a policy — attempts
// started and simulated milliseconds spent — and emits the shared obs
// counters (attempts / retries / exhaustions) plus a trace event when a
// retry fires or a budget runs dry, so chaos runs show exactly where
// recovery time went.
#pragma once

#include <limits>
#include <string_view>

#include "obs/note_table.hpp"
#include "util/rng.hpp"

namespace cloudfog::fault {

struct RetryPolicy {
  /// Attempts allowed before the operation gives up; 0 = unbounded (the
  /// operation is limited only by its own work list and the deadline).
  int max_attempts = 3;
  /// How long one attempt may wait for an answer (ms). Doubles as the
  /// probe/liveness period for the monitors built on this policy.
  double attempt_timeout_ms = 1000.0;
  /// Backoff before the second attempt (ms); 0 = retry immediately.
  double base_backoff_ms = 0.0;
  /// Growth factor of the backoff between consecutive attempts.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff wait (ms).
  double max_backoff_ms = 5000.0;
  /// Uniform jitter applied to a nonzero backoff: the wait is scaled by a
  /// factor drawn from [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.0;
  /// Hard ceiling on the operation's total simulated time (timeouts,
  /// round-trips and backoffs included). Infinite by default.
  double deadline_budget_ms = std::numeric_limits<double>::infinity();

  /// One try, no backoff — the pre-fault-layer behaviour of JoinSession.
  static RetryPolicy single_attempt(double timeout_ms);

  /// §3.2.2 liveness probing: `miss_limit` silent periods of `period_ms`.
  static RetryPolicy liveness(double period_ms = 250.0, int miss_limit = 2);

  /// Worst-case failure-detection time: every allowed attempt times out.
  double detection_ms() const { return attempt_timeout_ms * max_attempts; }

  bool unbounded_attempts() const { return max_attempts <= 0; }

  /// Backoff wait before `attempt` (1-based; always 0 for the first).
  /// Consumes `rng` only when the wait is nonzero and jittered.
  double backoff_before_attempt(int attempt, util::Rng& rng) const;

  /// Throws ConfigError on non-sensical fields.
  void validate() const;
};

/// Consumption tracker for one operation under a RetryPolicy. `site` names
/// the call-site in obs output ("fog.claim", "join.candidates", ...).
class RetryBudget {
 public:
  explicit RetryBudget(const RetryPolicy& policy, std::string_view site = {});

  /// True while another attempt is permitted (attempts and deadline).
  bool can_attempt() const;

  /// Starts the next attempt. Returns false — and records the exhaustion —
  /// when the policy forbids it. On success `*backoff_ms` (if given)
  /// receives the wait to serve before the attempt, already charged to the
  /// deadline budget.
  bool next_attempt(util::Rng& rng, double* backoff_ms = nullptr);

  /// Charges simulated time spent inside an attempt (round-trips,
  /// timeouts) against the deadline budget.
  void charge_ms(double elapsed_ms);

  int attempts_started() const { return attempts_; }
  double elapsed_ms() const { return elapsed_ms_; }
  double remaining_budget_ms() const;
  bool exhausted() const { return exhausted_; }

 private:
  /// `site_` interned on first traced event, then cached — budgets that
  /// never emit (the common case) skip the note-table lookup entirely.
  obs::NoteId site_note();

  RetryPolicy policy_;
  std::string_view site_;
  obs::NoteId site_note_{};
  int attempts_ = 0;
  double elapsed_ms_ = 0.0;
  bool exhausted_ = false;
};

}  // namespace cloudfog::fault
