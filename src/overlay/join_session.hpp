// Event-driven player-side protocols.
//
// JoinSession runs §3.2.1's supernode selection as a real message
// conversation with timeouts:
//   stage 1 — CandidateRequest to the cloud directory, collect replies;
//   stage 2 — Probe every candidate in parallel, measure RTT from the
//             simulation clock, drop those over L_max;
//   stage 3 — sequential CapacityAsk ordered by the caller's ranking
//             (reputation) or randomly, Connect to the first grant.
// The measured join latency is simply sim.now() − start time: whatever
// the messages actually took, including retries past full supernodes.
//
// PlayerAgent owns a player's overlay endpoint and dispatches incoming
// messages to its active session and liveness monitor.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "fault/retry_policy.hpp"
#include "overlay/agents.hpp"
#include "overlay/probe_monitor.hpp"
#include "sim/simulator.hpp"

namespace cloudfog::overlay {

struct JoinConfig {
  /// L_max — maximum acceptable one-way transmission delay (ms).
  double lmax_ms = 110.0;
  /// Per-stage policy. attempt_timeout_ms bounds each stage's wait for
  /// stragglers; max_attempts > 1 additionally lets the candidate stage
  /// re-send its directory request (with the policy's backoff) when the
  /// directory stays silent, instead of giving up after one timeout.
  fault::RetryPolicy stage = fault::RetryPolicy::single_attempt(1000.0);
};

struct JoinResult {
  bool fog_connected = false;       ///< false = fall back to the cloud
  Address supernode = kNoAddress;
  double join_latency_ms = 0.0;     ///< measured on the simulation clock
  int probes = 0;
  int capacity_asks = 0;
  int candidates_received = 0;
};

class JoinSession {
 public:
  /// Scores a candidate for ordering (higher first); nullptr = random.
  using Ranker = std::function<double(Address)>;
  using DoneCallback = std::function<void(const JoinResult&)>;

  JoinSession(sim::Simulator& sim, MessageNetwork& network, Address self,
              Address directory, JoinConfig cfg, Ranker ranker, DoneCallback done,
              std::uint64_t session_id, util::Rng rng);

  void start();
  void on_message(const Message& msg);
  bool finished() const { return finished_; }

 private:
  enum class Stage { kIdle, kCandidates, kProbing, kClaiming, kDone };

  void arm_timeout();
  void send_candidate_request();
  void finish_candidates();
  void finish_probing();
  void next_claim();
  void finish(bool fog_connected, Address supernode);

  sim::Simulator& sim_;
  MessageNetwork& network_;
  Address self_;
  Address directory_;
  JoinConfig cfg_;
  Ranker ranker_;
  DoneCallback done_;
  std::uint64_t session_id_;
  util::Rng rng_;

  Stage stage_ = Stage::kIdle;
  int stage_epoch_ = 0;  // invalidates stale timeout callbacks
  double started_at_ms_ = 0.0;
  bool finished_ = false;

  /// Tracks candidate-request (re)sends against cfg_.stage.
  std::optional<fault::RetryBudget> candidates_budget_;
  std::vector<Address> candidates_;
  std::unordered_map<Address, double> probe_sent_ms_;
  std::vector<std::pair<Address, double>> probed_rtt_ms_;  // qualified only
  std::vector<Address> claim_order_;
  std::size_t claim_index_ = 0;
  JoinResult result_;
  /// Guards queued timeout callbacks against a destroyed session (the
  /// owning PlayerAgent replaces sessions on rejoin).
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// A player's overlay endpoint: owns the address, the active join
/// session and the liveness monitor of the current supernode.
class PlayerAgent {
 public:
  PlayerAgent(sim::Simulator& sim, MessageNetwork& network, const net::Endpoint& where);

  Address address() const { return address_; }

  /// Starts the §3.2.1 join; `done` fires exactly once.
  void join(Address directory, JoinConfig cfg, JoinSession::Ranker ranker,
            JoinSession::DoneCallback done, util::Rng rng);

  /// Watches the serving supernode; `on_failure` fires when `miss_limit`
  /// consecutive liveness probes go unanswered (§3.2.2).
  void watch(Address supernode, ProbeMonitorConfig cfg,
             std::function<void(double detected_at_ms)> on_failure);
  void stop_watching();

  bool join_in_progress() const { return session_ != nullptr && !session_->finished(); }

 private:
  void handle(const Message& msg);

  sim::Simulator& sim_;
  MessageNetwork& network_;
  Address address_ = kNoAddress;
  std::uint64_t next_session_ = 1;
  std::unique_ptr<JoinSession> session_;
  std::unique_ptr<ProbeMonitor> monitor_;
};

}  // namespace cloudfog::overlay
