file(REMOVE_RECURSE
  "CMakeFiles/overlay_session.dir/overlay_session.cpp.o"
  "CMakeFiles/overlay_session.dir/overlay_session.cpp.o.d"
  "overlay_session"
  "overlay_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
