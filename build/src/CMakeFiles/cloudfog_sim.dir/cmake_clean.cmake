file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_sim.dir/sim/churn.cpp.o"
  "CMakeFiles/cloudfog_sim.dir/sim/churn.cpp.o.d"
  "CMakeFiles/cloudfog_sim.dir/sim/cycle_driver.cpp.o"
  "CMakeFiles/cloudfog_sim.dir/sim/cycle_driver.cpp.o.d"
  "CMakeFiles/cloudfog_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/cloudfog_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/cloudfog_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/cloudfog_sim.dir/sim/simulator.cpp.o.d"
  "libcloudfog_sim.a"
  "libcloudfog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
