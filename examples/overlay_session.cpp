// End-to-end event-driven CloudFog session, entirely on the message layer:
// a player joins through the §3.2.1 conversation, streams game video over
// the supernode's contended uplink, the supernode dies mid-game, the
// §3.2.2 liveness monitor detects it, and the player migrates and resumes
// — the life of one thin client, timestamp by timestamp.
//
//   $ ./overlay_session
#include <iostream>

#include "overlay/join_session.hpp"
#include "overlay/stream_channel.hpp"
#include "util/table.hpp"

int main() {
  using namespace cloudfog;

  sim::Simulator sim;
  const net::LatencyModel latency{net::LatencyModelConfig{}};
  overlay::MessageNetwork network(sim, latency);

  // World: a cloud directory far away, two supernodes in the player's
  // metro, and the player on a residential line.
  overlay::CloudDirectoryAgent directory(network,
                                         net::make_infrastructure_endpoint({2400.0, 600.0}));
  overlay::SupernodeAgent primary(network, net::Endpoint{{12.0, 3.0}, 2.5}, 8);
  overlay::SupernodeAgent backup(network, net::Endpoint{{18.0, 7.0}, 3.0}, 8);
  directory.admit(primary.address(), net::GeoPoint{12.0, 3.0});
  directory.admit(backup.address(), net::GeoPoint{18.0, 7.0});
  overlay::PlayerAgent player(sim, network, net::Endpoint{{0.0, 0.0}, 7.0});

  // Uplinks and the player's stream scorekeeper (90 ms budget RTS).
  overlay::UplinkScheduler primary_uplink(sim, 16000.0);
  overlay::UplinkScheduler backup_uplink(sim, 16000.0);
  overlay::StreamReceiver receiver(90.0);
  video::FrameEncoderConfig enc;
  enc.bitrate_kbps = 1200.0;
  std::unique_ptr<overlay::VideoStreamer> stream;

  util::Table log("One thin client's evening (simulated timestamps)");
  log.set_header({"t (s)", "event"});
  auto note = [&](const std::string& what) {
    log.add_row({util::format_double(sim.now(), 3), what});
  };

  auto start_stream = [&](overlay::Address sn, overlay::UplinkScheduler& uplink) {
    overlay::StreamPath path;
    path.one_way_ms = latency.one_way_ms(network.endpoint_of(sn),
                                         network.endpoint_of(player.address()));
    stream = std::make_unique<overlay::VideoStreamer>(sim, uplink, enc, path, receiver,
                                                      util::Rng(5));
    stream->start();
  };

  auto watch_primary = [&] {
    overlay::ProbeMonitorConfig mon;
    mon.policy = cloudfog::fault::RetryPolicy::liveness(/*period_ms=*/250.0);
    player.watch(primary.address(), mon, [&](double) {
      note("liveness monitor declares the supernode dead");
      stream->stop();
      player.stop_watching();
      player.join(directory.address(), overlay::JoinConfig{}, nullptr,
                  [&](const overlay::JoinResult& r) {
                    note("migrated to a new supernode in " +
                         util::format_double(r.join_latency_ms, 0) + " ms of protocol time");
                    start_stream(r.supernode, backup_uplink);
                  },
                  util::Rng(6));
    });
  };

  note("player joins the system");
  player.join(directory.address(), overlay::JoinConfig{}, nullptr,
              [&](const overlay::JoinResult& r) {
                note("connected to supernode after " +
                     util::format_double(r.join_latency_ms, 0) + " ms (" +
                     std::to_string(r.probes) + " probes, " +
                     std::to_string(r.capacity_asks) + " capacity asks)");
                start_stream(r.supernode, primary_uplink);
                watch_primary();
              },
              util::Rng(4));

  // Twenty minutes in, the contributed desktop is switched off.
  sim.schedule_in(1200.0, [&] {
    note("supernode owner pulls the plug");
    primary.fail();
  });

  sim.run_until(2400.0);
  stream->stop();
  sim.run();
  note("session ends; packet continuity " + util::format_double(receiver.continuity(), 4) +
       " over " + std::to_string(receiver.packets()) + " packets");
  log.print(std::cout);

  std::cout << "The paper's Fig. 9 story: failure detection plus re-selection costs\n"
               "about a second of protocol time (most of it probing the dead node,\n"
               "which the stale directory still advertises) — and the game never\n"
               "restarts.\n";
  return 0;
}
