
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_provisioning_continuity.cpp" "bench/CMakeFiles/bench_fig15_provisioning_continuity.dir/fig15_provisioning_continuity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig15_provisioning_continuity.dir/fig15_provisioning_continuity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
