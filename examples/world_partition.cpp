// Virtual-world scaling walkthrough: the cloud-side substrate.
//
// An MMOG night: avatars pile into hotspot towns, the kd-tree partitioner
// keeps the game-state servers balanced where a static grid collapses,
// and the state engine reports the tick critical path plus the update
// feed a supernode would subscribe to (the Λ of the paper's cost model).
//
//   $ ./world_partition
#include <iostream>

#include "util/table.hpp"
#include "world/state_engine.hpp"

int main() {
  using namespace cloudfog;

  world::WorldConfig wcfg;
  wcfg.hotspot_fraction = 0.85;  // busy towns, empty wilderness
  world::VirtualWorld vw(wcfg, util::Rng(17));
  for (int i = 0; i < 6000; ++i) vw.spawn();

  // Compare the partitioners on the skewed population.
  const std::size_t servers = 10;
  const auto kd = world::build_kdtree_partition(vw, 64, servers);
  const auto grid = world::build_grid_partition(vw, 8, 8, servers);
  util::Table cmp("kd-tree vs uniform grid, 6 000 avatars on 10 servers");
  cmp.set_header({"partitioner", "load imbalance (max/mean)", "cross-server interactions"});
  cmp.add_row({"kd-tree (median splits)",
               util::format_double(world::WorldPartition::imbalance(
                                       kd.server_loads(vw, servers)), 2),
               util::format_double(kd.cross_server_interaction_fraction(vw) * 100, 1) + " %"});
  cmp.add_row({"8x8 grid",
               util::format_double(world::WorldPartition::imbalance(
                                       grid.server_loads(vw, servers)), 2),
               util::format_double(grid.cross_server_interaction_fraction(vw) * 100, 1) + " %"});
  cmp.print(std::cout);

  // Run the state engine for a simulated minute of 10 Hz ticks.
  world::StateEngineConfig scfg;
  scfg.server_count = servers;
  world::GameStateEngine engine(vw, scfg);
  util::Table ticks("Game-state engine, one simulated minute (10 Hz ticks)");
  ticks.set_header({"t (s)", "compute (ms)", "interactions", "cross-server", "imbalance"});
  for (int t = 0; t < 600; ++t) {
    const auto stats = engine.tick(0.1);
    if (t % 100 == 0) {
      ticks.add_row({util::format_double(t * 0.1, 0),
                     util::format_double(stats.compute_ms, 2),
                     std::to_string(stats.interactions),
                     std::to_string(stats.cross_server_interactions),
                     util::format_double(stats.imbalance, 2)});
    }
  }
  ticks.print(std::cout);

  // What the cloud streams to one supernode whose players live near the
  // densest hotspot — the physical grounding of Λ.
  double busiest = 0.0;
  for (const auto& avatar : vw.avatars()) {
    busiest = std::max(busiest, engine.update_feed_bps(avatar.position, 800.0, 10.0));
  }
  std::cout << "Update feed for a supernode at the busiest hotspot: "
            << util::format_double(busiest / 1000.0, 1) << " kbps (the paper's Λ).\n"
            << "The kd-tree keeps every state server near mean load, so the tick's\n"
               "critical path — and with it the response latency — stays flat.\n";
  return 0;
}
