file(REMOVE_RECURSE
  "CMakeFiles/test_video.dir/video/continuity_test.cpp.o"
  "CMakeFiles/test_video.dir/video/continuity_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/packet_stream_test.cpp.o"
  "CMakeFiles/test_video.dir/video/packet_stream_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/playback_buffer_test.cpp.o"
  "CMakeFiles/test_video.dir/video/playback_buffer_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/qoe_test.cpp.o"
  "CMakeFiles/test_video.dir/video/qoe_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/rate_adapter_test.cpp.o"
  "CMakeFiles/test_video.dir/video/rate_adapter_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/segment_test.cpp.o"
  "CMakeFiles/test_video.dir/video/segment_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/stream_session_test.cpp.o"
  "CMakeFiles/test_video.dir/video/stream_session_test.cpp.o.d"
  "test_video"
  "test_video.pdb"
  "test_video[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
