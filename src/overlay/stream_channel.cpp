#include "overlay/stream_channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::overlay {

UplinkScheduler::UplinkScheduler(sim::Simulator& sim, double rate_kbps)
    : sim_(sim), rate_kbps_(rate_kbps) {
  CLOUDFOG_REQUIRE(rate_kbps > 0.0, "uplink rate must be positive");
}

double UplinkScheduler::enqueue(double bits) {
  CLOUDFOG_REQUIRE(bits > 0.0, "cannot enqueue zero bits");
  const double start = std::max(sim_.now(), busy_until_s_);
  busy_until_s_ = start + bits / (rate_kbps_ * 1000.0);
  return busy_until_s_;
}

double UplinkScheduler::backlog_s() const {
  return std::max(0.0, busy_until_s_ - sim_.now());
}

StreamReceiver::StreamReceiver(double requirement_ms) : requirement_ms_(requirement_ms) {
  CLOUDFOG_REQUIRE(requirement_ms > 0.0, "requirement must be positive");
}

void StreamReceiver::on_packet(double delivery_latency_ms) {
  CLOUDFOG_REQUIRE(delivery_latency_ms >= 0.0, "negative delivery latency");
  ++packets_;
  if (delivery_latency_ms <= requirement_ms_) ++on_time_;
}

double StreamReceiver::continuity() const {
  return packets_ == 0 ? 1.0
                       : static_cast<double>(on_time_) / static_cast<double>(packets_);
}

VideoStreamer::VideoStreamer(sim::Simulator& sim, UplinkScheduler& uplink,
                             video::FrameEncoderConfig encoder_cfg, StreamPath path,
                             StreamReceiver& receiver, util::Rng rng)
    : sim_(sim),
      uplink_(uplink),
      encoder_cfg_(encoder_cfg),
      path_(path),
      receiver_(receiver),
      rng_(rng),
      encoder_(std::make_unique<video::FrameEncoder>(encoder_cfg, rng.fork("encoder"))) {
  CLOUDFOG_REQUIRE(path.mtu_bits > 0.0, "MTU must be positive");
  CLOUDFOG_REQUIRE(path.one_way_ms >= 0.0, "negative propagation");
  CLOUDFOG_REQUIRE(path.jitter_mean_ms > 0.0, "jitter mean must be positive");
}

VideoStreamer::~VideoStreamer() { stop(); }

void VideoStreamer::start() {
  CLOUDFOG_REQUIRE(!running_, "streamer already running");
  running_ = true;
  emit_frame();
}

void VideoStreamer::stop() {
  running_ = false;
  ++epoch_;
}

void VideoStreamer::set_bitrate_kbps(double bitrate_kbps) {
  CLOUDFOG_REQUIRE(bitrate_kbps > 0.0, "bitrate must be positive");
  encoder_cfg_.bitrate_kbps = bitrate_kbps;
  encoder_ = std::make_unique<video::FrameEncoder>(encoder_cfg_, rng_.fork("encoder"));
}

void VideoStreamer::emit_frame() {
  if (!running_) return;
  const double emitted_at_ms = sim_.now() * 1000.0;
  const video::EncodedFrame frame = encoder_->next();
  const auto packets = static_cast<std::size_t>(std::ceil(frame.bits / path_.mtu_bits));
  for (std::size_t k = 0; k < packets; ++k) {
    const double bits =
        std::min(path_.mtu_bits, frame.bits - static_cast<double>(k) * path_.mtu_bits);
    const double serialized_at_s = uplink_.enqueue(bits);
    const double jitter_ms = util::sample_exponential(rng_, 1.0 / path_.jitter_mean_ms);
    const double arrival_s = serialized_at_s + (path_.one_way_ms + jitter_ms) / 1000.0;
    const std::weak_ptr<int> alive = alive_;
    sim_.schedule_at(arrival_s, [this, alive, emitted_at_ms] {
      if (alive.expired()) return;
      receiver_.on_packet(sim_.now() * 1000.0 - emitted_at_ms);
    });
  }
  const int epoch = epoch_;
  const std::weak_ptr<int> alive = alive_;
  sim_.schedule_in(1.0 / encoder_cfg_.fps, [this, alive, epoch] {
    if (!alive.expired() && epoch == epoch_) emit_frame();
  });
}

}  // namespace cloudfog::overlay
