// Named counters, gauges and fixed-bucket histograms with handle-based
// (index) access, so the hot path pays one array increment per update and
// a name lookup only once, at registration.
//
// The registry also supports whole-registry snapshots and snapshot deltas,
// which is how per-subcycle metric rates are derived from cumulative
// counters (snapshot at subcycle boundaries, subtract).
//
// Single-threaded by design, like the simulator it observes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

namespace cloudfog::obs {

struct CounterId {
  std::uint32_t index = 0;
};
struct GaugeId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

/// Point-in-time copy of every metric value (names live in the Registry).
struct RegistrySnapshot {
  std::vector<std::uint64_t> counters;
  std::vector<double> gauges;
  std::vector<std::vector<std::uint64_t>> histogram_counts;

  /// Counter/histogram increments since `earlier` (gauges keep the current
  /// value — deltas of instantaneous readings are meaningless). `earlier`
  /// may be older and therefore smaller: metrics registered in between
  /// count from zero.
  RegistrySnapshot delta_since(const RegistrySnapshot& earlier) const;
};

// Main-thread only, like the recorder that owns it: code reachable from
// parallel shards must count through Recorder::count() (capture-aware),
// never registry().add() directly.
class CF_MAIN_THREAD_ONLY Registry {
 public:
  /// Registration is idempotent: the same name always returns the same
  /// handle. A histogram re-registered with different bounds keeps the
  /// original bounds (first registration wins).
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  HistogramId histogram(std::string_view name, double lo, double hi, std::size_t bins);

  void add(CounterId id, std::uint64_t n = 1) { counters_[id.index] += n; }
  void set(GaugeId id, double v) { gauges_[id.index] = v; }
  void observe(HistogramId id, double x);

  std::uint64_t counter_value(CounterId id) const { return counters_[id.index]; }
  double gauge_value(GaugeId id) const { return gauges_[id.index]; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  const std::string& counter_name(std::size_t i) const { return counter_names_[i]; }
  const std::string& gauge_name(std::size_t i) const { return gauge_names_[i]; }

  struct HistogramCell {
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t underflow = 0;  ///< samples below lo (clamped to bin 0)
    std::uint64_t overflow = 0;   ///< samples at/above hi (clamped to last bin)

    double bin_low(std::size_t bin) const;
    double bin_high(std::size_t bin) const;
  };
  const HistogramCell& histogram_cell(std::size_t i) const { return histograms_[i]; }

  /// Value of a counter by name; 0 if never registered (test convenience).
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  RegistrySnapshot snapshot() const;

  /// Zeroes every value; names and handles stay valid.
  void reset_values();

 private:
  template <typename Id>
  static Id intern(std::string_view name, std::vector<std::string>& names);

  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counters_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauges_;
  std::vector<HistogramCell> histograms_;
};

}  // namespace cloudfog::obs
