file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_continuity.dir/fig8_continuity.cpp.o"
  "CMakeFiles/bench_fig8_continuity.dir/fig8_continuity.cpp.o.d"
  "bench_fig8_continuity"
  "bench_fig8_continuity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_continuity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
