#include "overlay/probe_monitor.hpp"

#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::overlay {

ProbeMonitor::ProbeMonitor(sim::Simulator& sim, MessageNetwork& network, Address self,
                           Address target, ProbeMonitorConfig cfg,
                           FailureCallback on_failure)
    : sim_(sim),
      network_(network),
      self_(self),
      target_(target),
      cfg_(cfg),
      on_failure_(std::move(on_failure)),
      backoff_rng_(util::hash64("probe_backoff") ^ (static_cast<std::uint64_t>(self) << 20),
                   target) {
  cfg_.policy.validate();
  CLOUDFOG_REQUIRE(cfg_.policy.max_attempts >= 1,
                   "liveness policy needs a bounded miss limit");
  CLOUDFOG_REQUIRE(static_cast<bool>(on_failure_), "null failure callback");
  tick();
}

ProbeMonitor::~ProbeMonitor() { stop(); }

void ProbeMonitor::stop() {
  running_ = false;
  ++epoch_;
}

void ProbeMonitor::on_message(const Message& msg) {
  if (!running_) return;
  if (msg.kind == MessageKind::kLivenessReply && msg.src == target_) {
    awaiting_reply_ = false;
    misses_ = 0;
    streak_.reset();
  }
}

void ProbeMonitor::tick() {
  if (!running_) return;
  double backoff_ms = 0.0;
  if (awaiting_reply_) {
    // The previous probe went unanswered for a full period.
    ++misses_;
    if (!streak_) {
      streak_.emplace(cfg_.policy, "overlay.liveness");
      // The probe that opened the streak was the first attempt.
      streak_->next_attempt(backoff_rng_);
    }
    if (!streak_->next_attempt(backoff_rng_, &backoff_ms)) {
      // The policy's attempts are spent: declare the supernode dead.
      running_ = false;
      auto& rec = obs::Recorder::global();
      if (rec.enabled()) {
        static const obs::CounterId failures =
            rec.registry().counter("overlay.liveness_failures");
        rec.registry().add(failures);
        static const obs::NoteId kLivenessTimeout = obs::intern_note("liveness_timeout");
        rec.trace_at(sim_.now(), obs::EventKind::kSupernodeChurn,
                     static_cast<std::int64_t>(target_), static_cast<std::int64_t>(self_),
                     static_cast<double>(misses_), kLivenessTimeout);
      }
      // The callback may destroy this monitor (typical: the player stops
      // watching and rejoins); keep the callable alive on the stack.
      const auto on_failure = std::move(on_failure_);
      const double now_ms = sim_.now() * 1000.0;
      on_failure(now_ms);
      return;
    }
  }
  Message probe;
  probe.src = self_;
  probe.dst = target_;
  probe.kind = MessageKind::kLivenessProbe;
  network_.send(probe);
  awaiting_reply_ = true;
  {
    auto& rec = obs::Recorder::global();
    if (rec.enabled()) {
      static const obs::CounterId liveness = rec.registry().counter("overlay.liveness_probes");
      rec.registry().add(liveness);
    }
  }

  const int epoch = epoch_;
  const std::weak_ptr<int> alive = alive_;
  // A jittered/backed-off policy stretches the wait before the next miss
  // is counted; the default liveness policy keeps the flat probe period.
  sim_.schedule_in((cfg_.policy.attempt_timeout_ms + backoff_ms) / 1000.0,
                   [this, epoch, alive] {
                     if (!alive.expired() && epoch == epoch_) tick();
                   });
}

}  // namespace cloudfog::overlay
