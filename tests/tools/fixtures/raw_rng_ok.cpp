// Lint fixture: the sanctioned randomness idiom — a seeded, replayable
// PCG-style stream (stand-in for util::Rng). Must stay fully lint-clean.
#include <cstdint>

namespace fixture {

struct SeededStream {
  std::uint64_t state = 0x853c49e6748fea9bULL;
  std::uint32_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(state >> 32);
  }
};

double uniform01(SeededStream& rng) {
  return static_cast<double>(rng.next()) * (1.0 / 4294967296.0);
}

}  // namespace fixture
