#include "forecast/timeseries.hpp"

#include <cmath>

#include "util/require.hpp"

namespace cloudfog::forecast {

TimeSeries::TimeSeries(std::vector<double> values) : values_(std::move(values)) {}

double TimeSeries::at(std::size_t t) const {
  CLOUDFOG_REQUIRE(t < values_.size(), "index out of range");
  return values_[t];
}

double TimeSeries::back(std::size_t lag) const {
  CLOUDFOG_REQUIRE(lag < values_.size(), "lag exceeds series length");
  return values_[values_.size() - 1 - lag];
}

std::vector<double> TimeSeries::difference() const {
  CLOUDFOG_REQUIRE(values_.size() >= 2, "need two points to difference");
  std::vector<double> out;
  out.reserve(values_.size() - 1);
  for (std::size_t i = 1; i < values_.size(); ++i) out.push_back(values_[i] - values_[i - 1]);
  return out;
}

std::vector<double> TimeSeries::seasonal_difference(std::size_t period) const {
  CLOUDFOG_REQUIRE(period >= 1, "period must be at least 1");
  CLOUDFOG_REQUIRE(values_.size() > period, "series shorter than period");
  std::vector<double> out;
  out.reserve(values_.size() - period);
  for (std::size_t i = period; i < values_.size(); ++i) {
    out.push_back(values_[i] - values_[i - period]);
  }
  return out;
}

double rmse(const std::vector<double>& actual, const std::vector<double>& predicted) {
  CLOUDFOG_REQUIRE(actual.size() == predicted.size(), "length mismatch");
  CLOUDFOG_REQUIRE(!actual.empty(), "empty series");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double e = actual[i] - predicted[i];
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double mape(const std::vector<double>& actual, const std::vector<double>& predicted) {
  CLOUDFOG_REQUIRE(actual.size() == predicted.size(), "length mismatch");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == 0.0) continue;
    acc += std::abs((actual[i] - predicted[i]) / actual[i]);
    ++counted;
  }
  CLOUDFOG_REQUIRE(counted > 0, "all actuals are zero");
  return acc / static_cast<double>(counted);
}

}  // namespace cloudfog::forecast
