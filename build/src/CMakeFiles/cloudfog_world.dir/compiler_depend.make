# Empty compiler generated dependencies file for cloudfog_world.
# This may be replaced when dependencies are built.
