// Cycle/subcycle overlay on top of the event simulator.
//
// The paper's experiments run for 28 cycles, "each cycle representing one
// day's gaming activities; each cycle is further divided into 24 one-hour
// subcycles" (§4.1). CycleDriver owns that structure: it walks the clock
// through every subcycle, invoking observer hooks, and reports whether a
// subcycle falls in the warm-up window or in peak hours (subcycles 20–24,
// i.e. 8 pm–12 am).
#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace cloudfog::sim {

struct CycleConfig {
  int total_cycles = 28;      ///< days simulated
  int warmup_cycles = 21;     ///< cycles excluded from reported averages
  int subcycles_per_cycle = 24;
  double subcycle_seconds = 3600.0;
  int peak_start_subcycle = 20;  ///< first peak subcycle (1-based, inclusive)
  int peak_end_subcycle = 24;    ///< last peak subcycle (1-based, inclusive)
};

/// Position of a subcycle within the whole run.
struct CyclePoint {
  int cycle = 1;     ///< 1-based day index
  int subcycle = 1;  ///< 1-based hour index within the day
  bool warmup = true;
  bool peak = false;
  SimTime start_time = 0.0;  ///< simulation time at subcycle start

  /// 0-based index of this subcycle since the run began.
  int global_subcycle(const CycleConfig& cfg) const {
    return (cycle - 1) * cfg.subcycles_per_cycle + (subcycle - 1);
  }
};

class CycleDriver {
 public:
  using SubcycleHook = std::function<void(const CyclePoint&)>;
  using CycleHook = std::function<void(int cycle, bool warmup)>;

  CycleDriver(Simulator& sim, CycleConfig cfg);

  /// Called at the start of every subcycle, before events in it run.
  void on_subcycle(SubcycleHook hook);

  /// Called once at the end of every cycle (after its last subcycle).
  void on_cycle_end(CycleHook hook);

  /// Runs all cycles to completion, draining events inside each subcycle.
  void run();

  const CycleConfig& config() const { return cfg_; }

  /// Classifies a subcycle index (1-based) as peak or off-peak.
  bool is_peak_subcycle(int subcycle) const;

 private:
  Simulator& sim_;
  CycleConfig cfg_;
  std::vector<SubcycleHook> subcycle_hooks_;
  std::vector<CycleHook> cycle_hooks_;
};

}  // namespace cloudfog::sim
