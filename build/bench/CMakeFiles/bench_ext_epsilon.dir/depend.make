# Empty dependencies file for bench_ext_epsilon.
# This may be replaced when dependencies are built.
