// End-to-end behavioural tests: the paper's headline claims, verified on
// reduced-scale testbeds. These run the full system stack — testbed,
// churn, selection, QoS engine, strategies — and assert the *direction*
// of every effect the evaluation reports.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"

namespace cloudfog::core {
namespace {

const Testbed& testbed() {
  static const Testbed tb(TestbedConfig::peersim(1500), 4242);
  return tb;
}

sim::CycleConfig run_cfg(int cycles = 4, int warmup = 2) {
  sim::CycleConfig cfg;
  cfg.total_cycles = cycles;
  cfg.warmup_cycles = warmup;
  return cfg;
}

TEST(EndToEnd, CloudFogReducesCloudBandwidth) {
  // Fig. 6's headline: fog offload cuts cloud egress by a large factor.
  System cloud = make_cloud_system(testbed(), 1);
  System fog = make_cloudfog_basic(testbed(), 1);
  const double cloud_bw = cloud.run(run_cfg()).cloud_egress_mbps.mean();
  const double fog_bw = fog.run(run_cfg()).cloud_egress_mbps.mean();
  EXPECT_LT(fog_bw, cloud_bw / 2.0);
}

TEST(EndToEnd, CloudFogImprovesContinuityOverCloud) {
  // Fig. 8: CloudFog/B > Cloud on playback continuity.
  System cloud = make_cloud_system(testbed(), 2);
  System fog = make_cloudfog_basic(testbed(), 2);
  EXPECT_GT(fog.run(run_cfg()).continuity.mean(),
            cloud.run(run_cfg()).continuity.mean());
}

TEST(EndToEnd, AdvancedBeatsBasic) {
  // Figs. 7/8: the four strategies together improve both metrics.
  System basic = make_cloudfog_basic(testbed(), 3);
  System advanced = make_cloudfog_advanced(testbed(), 3);
  const RunMetrics& mb = basic.run(run_cfg());
  const RunMetrics& ma = advanced.run(run_cfg());
  EXPECT_GE(mb.response_latency_ms.mean(), ma.response_latency_ms.mean() - 1.0);
  EXPECT_GE(ma.continuity.mean(), mb.continuity.mean() - 0.01);
}

TEST(EndToEnd, CloudFogReducesLatencyVersusCloud) {
  // Fig. 7: CloudFog/B below Cloud.
  System cloud = make_cloud_system(testbed(), 4);
  System fog = make_cloudfog_basic(testbed(), 4);
  EXPECT_LT(fog.run(run_cfg()).response_latency_ms.mean(),
            cloud.run(run_cfg()).response_latency_ms.mean());
}

TEST(EndToEnd, ReputationRaisesSatisfaction) {
  // Fig. 10: reputation-based selection raises the satisfied share.
  SystemConfig off = cloudfog_basic_config(testbed(), default_supernode_count(testbed()));
  SystemConfig on = off;
  on.strategies.reputation = true;
  System sys_off(testbed(), off, 5);
  System sys_on(testbed(), on, 5);
  const auto cycles = run_cfg(6, 3);  // reputation needs rating history
  EXPECT_GE(sys_on.run(cycles).satisfied_fraction.mean(),
            sys_off.run(cycles).satisfied_fraction.mean() - 0.02);
}

TEST(EndToEnd, AdaptationRaisesSatisfaction) {
  // Fig. 11: the rate adapter lifts satisfaction under congestion.
  SystemConfig off = cloudfog_basic_config(testbed(), default_supernode_count(testbed()));
  SystemConfig on = off;
  on.strategies.rate_adaptation = true;
  System sys_off(testbed(), off, 6);
  System sys_on(testbed(), on, 6);
  EXPECT_GE(sys_on.run(run_cfg()).satisfied_fraction.mean(),
            sys_off.run(run_cfg()).satisfied_fraction.mean() - 0.02);
}

TEST(EndToEnd, SocialAssignmentCutsServerLatency) {
  // Fig. 12: clustering friends onto servers cuts the inter-server
  // component of response latency.
  SystemConfig off = cloudfog_basic_config(testbed(), default_supernode_count(testbed()));
  SystemConfig on = off;
  on.strategies.social_assignment = true;
  System sys_off(testbed(), off, 7);
  System sys_on(testbed(), on, 7);
  const double lat_off = sys_off.run(run_cfg()).server_latency_ms.mean();
  const double lat_on = sys_on.run(run_cfg()).server_latency_ms.mean();
  EXPECT_LT(lat_on, lat_off);
}

TEST(EndToEnd, ProvisioningAbsorbsArrivalSurge) {
  // Figs. 13–15: with a surge of arrivals, the provisioned system keeps
  // cloud egress below the fixed-pool system.
  SystemConfig fixed = cloudfog_basic_config(testbed(), default_supernode_count(testbed()));
  fixed.workload = WorkloadMode::kArrivalRates;
  fixed.arrivals = ArrivalWorkload{5.0, 40.0};
  fixed.fixed_deployment = 20;  // deliberately tight
  SystemConfig prov = fixed;
  prov.strategies.provisioning = true;
  System sys_fixed(testbed(), fixed, 8);
  System sys_prov(testbed(), prov, 8);
  const auto cycles = run_cfg(4, 2);
  const double bw_fixed = sys_fixed.run(cycles).cloud_egress_mbps.mean();
  const double bw_prov = sys_prov.run(cycles).cloud_egress_mbps.mean();
  EXPECT_LT(bw_prov, bw_fixed);
}

TEST(EndToEnd, MigrationIsFastEnoughToResumePlay) {
  // Fig. 9: migration completes in well under two seconds of protocol
  // time, so the game resumes without a restart.
  System sys = make_cloudfog_basic(testbed(), 9);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 21; ++sub) sys.run_subcycle(1, sub, true, sub >= 20);
  const auto latencies = sys.inject_supernode_failures(10, 1);
  ASSERT_FALSE(latencies.empty());
  double acc = 0.0;
  for (double ms : latencies) acc += ms;
  EXPECT_LT(acc / static_cast<double>(latencies.size()), 2000.0);
}

TEST(EndToEnd, MaliciousSupernodesHurtAndReputationMitigates) {
  // §3.6 extension: deliberate video delay destroys satisfaction; the
  // private reputation system steers players away from the saboteurs.
  SystemConfig clean = cloudfog_basic_config(testbed(), default_supernode_count(testbed()));
  SystemConfig attacked = clean;
  attacked.malicious.fraction = 0.3;
  attacked.malicious.delay_ms = 120.0;
  SystemConfig defended = attacked;
  defended.strategies.reputation = true;

  System sys_clean(testbed(), clean, 10);
  System sys_attacked(testbed(), attacked, 10);
  System sys_defended(testbed(), defended, 10);
  const auto cycles = run_cfg(6, 3);
  const double clean_sat = sys_clean.run(cycles).satisfied_fraction.mean();
  const double attacked_sat = sys_attacked.run(cycles).satisfied_fraction.mean();
  const double defended_sat = sys_defended.run(cycles).satisfied_fraction.mean();
  EXPECT_LT(attacked_sat, clean_sat - 0.02);   // the attack bites
  EXPECT_GT(defended_sat, attacked_sat);       // reputation recovers some of it
}

TEST(EndToEnd, PlanetLabProfileRunsAllArms) {
  const Testbed pl(TestbedConfig::planetlab(300), 77);
  System cloud = make_cloud_system(pl, 1);
  System cdn = make_cdn_system(pl, 1);
  System fog = make_cloudfog_advanced(pl, 1);
  const auto cycles = run_cfg(3, 1);
  EXPECT_GT(cloud.run(cycles).online_sessions.mean(), 0.0);
  EXPECT_GT(cdn.run(cycles).online_sessions.mean(), 0.0);
  EXPECT_GT(fog.run(cycles).online_sessions.mean(), 0.0);
}

}  // namespace
}  // namespace cloudfog::core
