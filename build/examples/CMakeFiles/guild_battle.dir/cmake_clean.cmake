file(REMOVE_RECURSE
  "CMakeFiles/guild_battle.dir/guild_battle.cpp.o"
  "CMakeFiles/guild_battle.dir/guild_battle.cpp.o.d"
  "guild_battle"
  "guild_battle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guild_battle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
