#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValueVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // exact median of {1,3}
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, TracksUniformStream) {
  P2Quantile median(0.5);
  P2Quantile p95(0.95);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>((i * 7919) % 10000);  // shuffled 0..9999
    median.add(v);
    p95.add(v);
  }
  EXPECT_NEAR(median.value(), 5000.0, 150.0);
  EXPECT_NEAR(p95.value(), 9500.0, 150.0);
}

TEST(P2Quantile, RejectsBadProbability) { EXPECT_THROW(P2Quantile(1.5), ConfigError); }

TEST(RunningStats, PercentilesMatchExactOnLargeStream) {
  RunningStats s;
  SampleSet exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = static_cast<double>((i * 104729) % 20000) / 20.0;
    s.add(v);
    exact.add(v);
  }
  // P² is an estimator: allow a small relative band around the exact value.
  EXPECT_NEAR(s.p50(), exact.p50(), exact.p50() * 0.02 + 1.0);
  EXPECT_NEAR(s.p95(), exact.p95(), exact.p95() * 0.02 + 1.0);
  EXPECT_NEAR(s.p99(), exact.p99(), exact.p99() * 0.02 + 1.0);
}

TEST(RunningStats, PercentilesExactForTinyStreams) {
  RunningStats s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.p50(), 15.0);
  EXPECT_DOUBLE_EQ(s.p99(), 10.0 + 0.99 * 10.0);
}

TEST(RunningStats, MergedPercentilesStayInRange) {
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    a.add(static_cast<double>(i % 100));
    b.add(static_cast<double>(i % 100) + 100.0);
  }
  a.merge(b);
  // Approximate after merge, but must stay inside the pooled value range
  // and be ordered.
  EXPECT_GE(a.p50(), a.min());
  EXPECT_LE(a.p99(), a.max());
  EXPECT_LE(a.p50(), a.p95());
  EXPECT_LE(a.p95(), a.p99());
}

TEST(SampleSet, NamedPercentileAccessors) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.p50(), 50.0);
  EXPECT_DOUBLE_EQ(s.p95(), 95.0);
  EXPECT_DOUBLE_EQ(s.p99(), 99.0);
}

TEST(SampleSet, MeanAndMedian) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double v : {10.0, 20.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 15.0);
}

TEST(SampleSet, PercentileAfterLaterAdds) {
  SampleSet s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1.0);
  s.add(9.0);  // must invalidate the cached sort
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 9.0);
}

TEST(SampleSet, PercentileErrors) {
  SampleSet s;
  EXPECT_THROW(s.percentile(0.5), ConfigError);
  s.add(1.0);
  EXPECT_THROW(s.percentile(1.5), ConfigError);
}

TEST(SampleSet, EmptyMeanIsZero) {
  const SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps into the first bin
  h.add(100.0);   // clamps into the last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, CdfMonotoneAndBounded) {
  Histogram h(0.0, 100.0, 20);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  double prev = 0.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double c = h.cdf(x);
    ASSERT_GE(c, prev);
    ASSERT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
}

TEST(Histogram, CdfUniformMidpoint) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.cdf(5.0), 0.5, 0.01);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

}  // namespace
}  // namespace cloudfog::util
