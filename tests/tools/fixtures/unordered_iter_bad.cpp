// Fixture: must trip cloudfog-unordered-iter (bucket-order iteration).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Store {
  std::unordered_map<std::uint64_t, double> scores_;
  std::unordered_set<int> members_;

  double total() const {
    double sum = 0.0;
    for (const auto& [id, s] : scores_) sum += s;  // finding: range-for
    return sum;
  }

  std::vector<int> drain() {
    std::vector<int> out;
    for (auto it = members_.begin(); it != members_.end(); ++it) {  // finding: iterator
      out.push_back(*it);
    }
    return out;
  }
};

// Lookup without traversal must NOT trip the rule.
double lookup_ok(const Store& s, std::uint64_t id) {
  const auto it = s.scores_.find(id);
  return it == s.scores_.end() ? 0.0 : it->second;
}

}  // namespace fixture
