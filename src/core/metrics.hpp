// Run-level metrics collection.
//
// The paper reports averages over the post-warm-up cycles (§4.1: 28 cycles,
// the first 21 warm-up). MetricsCollector accumulates SubcycleQos snapshots
// only when the subcycle is outside the warm-up window, plus the
// event-level latency samples of Fig. 9 (join / migration / assignment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/qos_engine.hpp"
#include "obs/recorder.hpp"
#include "util/stats.hpp"

namespace cloudfog::core {

struct RunMetrics {
  util::RunningStats response_latency_ms;
  util::RunningStats server_latency_ms;
  util::RunningStats continuity;
  util::RunningStats satisfied_fraction;
  util::RunningStats mos;  ///< QoE extension: mean opinion score, 1–5
  util::RunningStats cloud_egress_mbps;
  util::RunningStats fog_served_fraction;
  util::RunningStats online_sessions;

  util::SampleSet player_join_latency_ms;
  util::SampleSet supernode_join_latency_ms;
  util::SampleSet migration_latency_ms;
  util::SampleSet server_assignment_seconds;

  // Chaos / fault-recovery metrics (all zero without a fault plan).
  /// Per crash fault: time until the last displaced session streamed again.
  util::SampleSet mttr_ms;
  /// Per subcycle: fraction of online sessions in fault-driven fallback.
  util::RunningStats fallback_residency;
  std::uint64_t sessions_interrupted = 0;
  std::uint64_t fallbacks = 0;    ///< fault-driven degradations to the cloud
  std::uint64_t fog_returns = 0;  ///< fallback sessions recovered to fog
  /// Largest number of migrations inside any single measured subcycle —
  /// the "migration storm" size a regional outage or mass withdrawal can
  /// trigger (scenario acceptance envelopes bound it).
  std::uint64_t migration_storm_peak = 0;
};

class MetricsCollector {
 public:
  /// Accumulates one subcycle's QoS; ignored while `warmup` is true.
  void record_subcycle(const SubcycleQos& qos, bool warmup);

  /// Event-level samples (recorded regardless of warm-up — Fig. 9 measures
  /// them under churn, which is heaviest early on).
  void record_player_join(double latency_ms) { metrics_.player_join_latency_ms.add(latency_ms); }
  void record_supernode_join(double latency_ms) {
    metrics_.supernode_join_latency_ms.add(latency_ms);
  }
  void record_migration(double latency_ms) {
    metrics_.migration_latency_ms.add(latency_ms);
    ++subcycle_migrations_;
  }
  void record_server_assignment(double seconds) {
    metrics_.server_assignment_seconds.add(seconds);
  }

  // Chaos / fault-recovery events.
  void record_mttr(double latency_ms) { metrics_.mttr_ms.add(latency_ms); }
  void record_fallback_residency(double fraction) {
    metrics_.fallback_residency.add(fraction);
  }
  void record_interruptions(std::uint64_t sessions) {
    metrics_.sessions_interrupted += sessions;
  }
  void record_fallback() { ++metrics_.fallbacks; }
  void record_fog_return() { ++metrics_.fog_returns; }

  const RunMetrics& metrics() const { return metrics_; }
  std::size_t recorded_subcycles() const { return recorded_subcycles_; }

 private:
  RunMetrics metrics_;
  std::size_t recorded_subcycles_ = 0;
  /// Migrations since the last subcycle boundary (rolled into
  /// migration_storm_peak by record_subcycle).
  std::uint64_t subcycle_migrations_ = 0;
};

/// Flattens a run's metrics into the observability run-report form: every
/// RunningStats aggregate with P² percentiles, every SampleSet with exact
/// percentiles.
obs::RunSummary summarize_run(const RunMetrics& metrics, std::string label,
                              std::size_t measured_subcycles);

}  // namespace cloudfog::core
