# Empty compiler generated dependencies file for bench_ext_candidates.
# This may be replaced when dependencies are built.
