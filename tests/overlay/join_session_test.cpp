#include "overlay/join_session.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "util/require.hpp"

namespace cloudfog::overlay {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  JoinTest()
      : latency_(net::LatencyModelConfig{}),
        network_(sim_, latency_),
        directory_(network_, net::make_infrastructure_endpoint({2000.0, 0.0})) {}

  SupernodeAgent& add_sn(double x, int capacity = 5) {
    supernodes_.push_back(std::make_unique<SupernodeAgent>(
        network_, net::Endpoint{{x, 0.0}, 2.0}, capacity));
    directory_.admit(supernodes_.back()->address(), net::GeoPoint{x, 0.0});
    return *supernodes_.back();
  }

  std::optional<JoinResult> run_join(PlayerAgent& player, JoinConfig cfg = {},
                                     JoinSession::Ranker ranker = nullptr) {
    std::optional<JoinResult> result;
    player.join(directory_.address(), cfg, std::move(ranker),
                [&result](const JoinResult& r) { result = r; }, util::Rng(9));
    sim_.run();
    return result;
  }

  sim::Simulator sim_;
  net::LatencyModel latency_;
  MessageNetwork network_;
  CloudDirectoryAgent directory_;
  std::vector<std::unique_ptr<SupernodeAgent>> supernodes_;
};

TEST_F(JoinTest, ConnectsToNearbySupernode) {
  auto& sn = add_sn(10.0);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(player);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->fog_connected);
  EXPECT_EQ(result->supernode, sn.address());
  EXPECT_EQ(sn.served(), 1);
  EXPECT_EQ(result->probes, 1);
  EXPECT_EQ(result->capacity_asks, 1);
  EXPECT_GT(result->join_latency_ms, 0.0);
}

TEST_F(JoinTest, MeasuredLatencyCoversFourExchanges) {
  // candidate req/reply (player↔cloud) + probe + ask + connect
  // (player↔supernode): at least one cloud RTT plus three supernode RTTs.
  auto& sn = add_sn(10.0);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(player);
  ASSERT_TRUE(result.has_value());
  const double cloud_rtt = latency_.rtt_ms(network_.endpoint_of(player.address()),
                                           network_.endpoint_of(directory_.address()));
  const double sn_rtt = latency_.rtt_ms(network_.endpoint_of(player.address()),
                                        network_.endpoint_of(sn.address()));
  EXPECT_GE(result->join_latency_ms, cloud_rtt + 3.0 * sn_rtt - 1e-6);
  EXPECT_LT(result->join_latency_ms, cloud_rtt + 3.0 * sn_rtt + 100.0);
}

TEST_F(JoinTest, FallsBackWhenNoSupernodesExist) {
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(player);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->fog_connected);
  EXPECT_EQ(result->candidates_received, 0);
}

TEST_F(JoinTest, LmaxFiltersDistantSupernodes) {
  add_sn(4000.0);  // one-way ≈ 70 ms
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  JoinConfig cfg;
  cfg.lmax_ms = 30.0;
  const auto result = run_join(player, cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->fog_connected);
  EXPECT_EQ(result->probes, 1);       // it was probed…
  EXPECT_EQ(result->capacity_asks, 0);  // …but never asked
}

TEST_F(JoinTest, SequentialClaimMovesPastFullSupernode) {
  auto& full = add_sn(10.0, /*capacity=*/0);
  auto& open = add_sn(12.0, /*capacity=*/3);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  // Rank the full one first so the claim path must recover from a deny.
  const auto result = run_join(player, {}, [&full](Address a) {
    return a == full.address() ? 1.0 : 0.0;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->fog_connected);
  EXPECT_EQ(result->supernode, open.address());
  EXPECT_EQ(result->capacity_asks, 2);
  EXPECT_EQ(full.served(), 0);
}

TEST_F(JoinTest, RankerOrdersClaims) {
  auto& a = add_sn(10.0);
  auto& b = add_sn(12.0);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(player, {}, [&b](Address addr) {
    return addr == b.address() ? 1.0 : 0.0;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->supernode, b.address());
  EXPECT_EQ(a.served(), 0);
}

TEST_F(JoinTest, DeadSupernodeTimesOutAndClaimMovesOn) {
  auto& dead = add_sn(10.0);
  auto& alive = add_sn(12.0);
  dead.fail();  // the directory still believes it is accepting
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  JoinConfig cfg;
  cfg.stage = fault::RetryPolicy::single_attempt(300.0);
  const auto result = run_join(player, cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->fog_connected);
  EXPECT_EQ(result->supernode, alive.address());
  // The dead supernode cost a probe timeout, visible in the latency.
  EXPECT_GE(result->join_latency_ms, cfg.stage.attempt_timeout_ms);
}

TEST_F(JoinTest, ConcurrentJoinersShareSeatsWithoutOverflow) {
  auto& sn = add_sn(10.0, /*capacity=*/2);
  add_sn(500.0, /*capacity=*/10);
  std::vector<std::unique_ptr<PlayerAgent>> players;
  int fog = 0;
  for (int i = 0; i < 5; ++i) {
    players.push_back(std::make_unique<PlayerAgent>(
        sim_, network_, net::Endpoint{{static_cast<double>(i), 0.0}, 5.0}));
    players.back()->join(directory_.address(), JoinConfig{}, nullptr,
                         [&fog](const JoinResult& r) {
                           if (r.fog_connected) ++fog;
                         },
                         util::Rng(100 + static_cast<std::uint64_t>(i)));
  }
  sim_.run();
  EXPECT_EQ(fog, 5);               // everyone found a seat somewhere
  EXPECT_LE(sn.served(), 2);       // never over capacity
}

TEST_F(JoinTest, DoneCallbackFiresExactlyOnce) {
  add_sn(10.0);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  int calls = 0;
  player.join(directory_.address(), JoinConfig{}, nullptr,
              [&calls](const JoinResult&) { ++calls; }, util::Rng(9));
  sim_.run();
  sim_.run_until(sim_.now() + 10.0);  // timeouts must not re-fire it
  EXPECT_EQ(calls, 1);
}

TEST(JoinLossy, TimeoutsCarryTheProtocolThroughPacketLoss) {
  // 10 % control-plane loss: probes, asks or replies can vanish at any
  // stage. The session must still terminate — with a connection or a
  // clean cloud fallback — because every stage is timeout-guarded.
  sim::Simulator sim;
  const net::LatencyModel latency{net::LatencyModelConfig{}};
  NetworkConfig ncfg;
  ncfg.loss_probability = 0.10;
  MessageNetwork network(sim, latency, ncfg, util::Rng(77));
  CloudDirectoryAgent directory(network, net::make_infrastructure_endpoint({2000.0, 0.0}));
  std::vector<std::unique_ptr<SupernodeAgent>> sns;
  for (int i = 0; i < 6; ++i) {
    sns.push_back(std::make_unique<SupernodeAgent>(
        network, net::Endpoint{{10.0 + 5.0 * i, 0.0}, 2.0}, 8));
    directory.admit(sns.back()->address(), net::GeoPoint{10.0 + 5.0 * i, 0.0});
  }
  int completions = 0;
  int fog = 0;
  std::vector<std::unique_ptr<PlayerAgent>> players;
  for (int i = 0; i < 30; ++i) {
    players.push_back(std::make_unique<PlayerAgent>(
        sim, network, net::Endpoint{{static_cast<double>(i % 7), 0.0}, 5.0}));
    JoinConfig cfg;
    cfg.stage = fault::RetryPolicy::single_attempt(400.0);
    players.back()->join(directory.address(), cfg, nullptr,
                         [&](const JoinResult& r) {
                           ++completions;
                           if (r.fog_connected) ++fog;
                         },
                         util::Rng(500 + static_cast<std::uint64_t>(i)));
  }
  sim.run();
  EXPECT_EQ(completions, 30);  // every session terminated
  EXPECT_GT(fog, 18);          // and most still found a seat
  // Granted-but-lost-connect seats may leak in a lossy network; total
  // seats taken never exceeds what was granted.
  int seats = 0;
  for (const auto& sn : sns) seats += sn->served();
  EXPECT_LE(seats, 6 * 8);
}

TEST_F(JoinTest, DirectoryRegistrationViaMessages) {
  // A supernode that registers itself (rather than being admitted
  // directly) becomes discoverable.
  SupernodeAgent sn(network_, net::Endpoint{{15.0, 0.0}, 2.0}, 4);
  Message reg;
  reg.src = sn.address();
  reg.dst = directory_.address();
  reg.kind = MessageKind::kRegister;
  network_.send(reg);
  sim_.run();
  EXPECT_EQ(directory_.table_size(), 1u);

  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(player);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->fog_connected);
}

TEST_F(JoinTest, DirectoryLoadEstimateFiltersCandidates) {
  auto& near_sn = add_sn(10.0);
  auto& far_sn = add_sn(50.0);
  // The directory believes the near supernode is full (whether or not it
  // actually is): it stops advertising it.
  directory_.update_load_estimate(near_sn.address(), /*accepting=*/false);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(player);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->supernode, far_sn.address());
  EXPECT_EQ(result->candidates_received, 1);
  EXPECT_EQ(near_sn.served(), 0);
}

TEST_F(JoinTest, StaleDirectoryLoadEstimateIsAbsorbedByClaims) {
  auto& sn = add_sn(10.0, /*capacity=*/1);
  add_sn(20.0, /*capacity=*/5);
  // Fill the first seat out of band; the directory still believes it free.
  Message ask;
  PlayerAgent first(sim_, network_, net::Endpoint{{1.0, 0.0}, 5.0});
  ask.src = first.address();
  ask.dst = sn.address();
  ask.kind = MessageKind::kCapacityAsk;
  network_.send(ask);
  sim_.run();
  ASSERT_EQ(sn.served(), 1);

  PlayerAgent late(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  const auto result = run_join(late);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->fog_connected);
  EXPECT_NE(result->supernode, sn.address());
}

}  // namespace
}  // namespace cloudfog::overlay
