
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/agents.cpp" "src/CMakeFiles/cloudfog_overlay.dir/overlay/agents.cpp.o" "gcc" "src/CMakeFiles/cloudfog_overlay.dir/overlay/agents.cpp.o.d"
  "/root/repo/src/overlay/join_session.cpp" "src/CMakeFiles/cloudfog_overlay.dir/overlay/join_session.cpp.o" "gcc" "src/CMakeFiles/cloudfog_overlay.dir/overlay/join_session.cpp.o.d"
  "/root/repo/src/overlay/message.cpp" "src/CMakeFiles/cloudfog_overlay.dir/overlay/message.cpp.o" "gcc" "src/CMakeFiles/cloudfog_overlay.dir/overlay/message.cpp.o.d"
  "/root/repo/src/overlay/network.cpp" "src/CMakeFiles/cloudfog_overlay.dir/overlay/network.cpp.o" "gcc" "src/CMakeFiles/cloudfog_overlay.dir/overlay/network.cpp.o.d"
  "/root/repo/src/overlay/probe_monitor.cpp" "src/CMakeFiles/cloudfog_overlay.dir/overlay/probe_monitor.cpp.o" "gcc" "src/CMakeFiles/cloudfog_overlay.dir/overlay/probe_monitor.cpp.o.d"
  "/root/repo/src/overlay/stream_channel.cpp" "src/CMakeFiles/cloudfog_overlay.dir/overlay/stream_channel.cpp.o" "gcc" "src/CMakeFiles/cloudfog_overlay.dir/overlay/stream_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
