// Minimal JSON emission for the observability exports (run reports and
// JSONL traces). Writing only — the simulator never consumes JSON — so a
// small append-style writer keeps the subsystem dependency-free.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace cloudfog::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; UTF-8 passes through untouched).
std::string json_escape(std::string_view s);

/// Formats a double as JSON: finite values via shortest round-trip
/// formatting, non-finite values as null (JSON has no NaN/Inf).
std::string json_number(double v);

/// Append-style writer for one JSON document. The caller is responsible
/// for well-formedness of the nesting; the writer handles separators,
/// quoting and indentation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits `"key":` inside an object (with any needed separator).
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool b);

  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  void separator();

  std::ostream& os_;
  /// Per-depth flag: has the current container already emitted an element?
  std::string stack_;  // 'f' = fresh container, 'e' = has elements
  bool pending_key_ = false;
};

}  // namespace cloudfog::obs
