file(REMOVE_RECURSE
  "libcloudfog_overlay.a"
)
