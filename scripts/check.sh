#!/usr/bin/env bash
# Full verification pipeline:
#
#   1. determinism & correctness lint (tools/lint/cloudfog_lint.py)
#   2. format check on tracked sources (when clang-format is available)
#   3. plain build (warnings-as-errors by default) + tier-1 ctest
#   4. determinism gate: fig7 and the seeded chaos smoke run twice; traces
#      must be byte-identical and reports identical after canonicalization
#      (wall-clock phase timings are the only sanctioned difference —
#      tools/determinism/canonicalize_report.py). Both workloads also run
#      with --threads 4 and must match the serial traces byte-for-byte.
#   5. bench smoke: observability export schema checks
#   6. (full mode) sanitizer matrix: ASan+UBSan build + ctest, TSan build +
#      ctest with CLOUDFOG_THREADS=2 (races in the parallel QoS pass fail
#      here), a TSan 4-thread fig7 cross-checked against the plain trace,
#      and the chaos smoke re-run under ASan
#
#   scripts/check.sh            everything
#   scripts/check.sh --quick    stages 1–5 only (no sanitizer builds)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== lint: determinism & correctness rules =="
scripts/lint.sh

if command -v clang-format >/dev/null 2>&1; then
  echo "== format check =="
  scripts/format.sh --check
else
  echo "== format check: clang-format not found, skipping =="
fi

echo "== tier-1: plain build (warnings are errors) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

echo "== determinism gate: double-run fig7 =="
./build/bench/bench_fig7_latency --quick \
  --report-json "$SMOKE_DIR/fig7_report_a.json" \
  --trace "$SMOKE_DIR/fig7_trace_a.jsonl" >"$SMOKE_DIR/fig7_stdout_a.txt"
./build/bench/bench_fig7_latency --quick \
  --report-json "$SMOKE_DIR/fig7_report_b.json" \
  --trace "$SMOKE_DIR/fig7_trace_b.jsonl" >"$SMOKE_DIR/fig7_stdout_b.txt"
cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_trace_b.jsonl" || {
  echo "determinism gate FAILED: fig7 trace differs between identical runs" >&2
  diff <(head -c 2000 "$SMOKE_DIR/fig7_trace_a.jsonl") \
       <(head -c 2000 "$SMOKE_DIR/fig7_trace_b.jsonl") | head -10 >&2 || true
  exit 1
}
cmp -s "$SMOKE_DIR/fig7_stdout_a.txt" "$SMOKE_DIR/fig7_stdout_b.txt" || {
  echo "determinism gate FAILED: fig7 stdout (figure table) differs" >&2; exit 1; }
python3 tools/determinism/canonicalize_report.py --check \
  "$SMOKE_DIR/fig7_report_a.json" "$SMOKE_DIR/fig7_report_b.json" || {
  echo "determinism gate FAILED: fig7 report differs beyond phase timings" >&2; exit 1; }
echo "fig7: trace byte-identical, stdout identical, canonical report identical"

echo "== determinism gate: serial vs parallel (fig7 --threads 4) =="
./build/bench/bench_fig7_latency --quick --threads 4 \
  --trace "$SMOKE_DIR/fig7_trace_mt.jsonl" >"$SMOKE_DIR/fig7_stdout_mt.txt"
cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_trace_mt.jsonl" || {
  echo "determinism gate FAILED: fig7 trace differs between --threads 1 and 4" >&2
  diff <(head -c 2000 "$SMOKE_DIR/fig7_trace_a.jsonl") \
       <(head -c 2000 "$SMOKE_DIR/fig7_trace_mt.jsonl") | head -10 >&2 || true
  exit 1
}
cmp -s "$SMOKE_DIR/fig7_stdout_a.txt" "$SMOKE_DIR/fig7_stdout_mt.txt" || {
  echo "determinism gate FAILED: fig7 stdout differs between --threads 1 and 4" >&2; exit 1; }
echo "fig7: 4-thread run byte-identical to serial"

echo "== determinism gate: double-run seeded chaos =="
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick \
  --report-json "$SMOKE_DIR/chaos_report_a.json" \
  --trace "$SMOKE_DIR/chaos_trace_a.jsonl" >/dev/null
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick \
  --report-json "$SMOKE_DIR/chaos_report_b.json" \
  --trace "$SMOKE_DIR/chaos_trace_b.jsonl" >/dev/null
grep -q '"kind":"fault_' "$SMOKE_DIR/chaos_trace_a.jsonl" || {
  echo "chaos run injected no faults" >&2; exit 1; }
cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_trace_b.jsonl" || {
  echo "determinism gate FAILED: seeded chaos replay diverged (full trace)" >&2; exit 1; }
python3 tools/determinism/canonicalize_report.py --check \
  "$SMOKE_DIR/chaos_report_a.json" "$SMOKE_DIR/chaos_report_b.json" || {
  echo "determinism gate FAILED: chaos report differs beyond phase timings" >&2; exit 1; }
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick --threads 4 \
  --trace "$SMOKE_DIR/chaos_trace_mt.jsonl" >/dev/null
cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_trace_mt.jsonl" || {
  echo "determinism gate FAILED: chaos trace differs between --threads 1 and 4" >&2; exit 1; }
echo "chaos: seeded replay byte-identical (including --threads 4), canonical report identical"

echo "== bench smoke: observability exports =="
python3 - "$SMOKE_DIR/fig7_report_a.json" "$SMOKE_DIR/fig7_trace_a.jsonl" <<'EOF'
import json, sys
report_path, trace_path = sys.argv[1], sys.argv[2]
report = json.load(open(report_path))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in report"
assert len(report["counters"]) >= 5, "expected at least five counters"
assert report["phases"], "no phase profile"
last = float("-inf")
n = 0
with open(trace_path) as f:
    for line in f:
        t = json.loads(line)["t"]
        assert t >= last, f"trace not monotone at line {n}"
        last = t
        n += 1
assert n > 0, "empty trace"
print(f"report OK ({len(report['runs'])} runs, {len(report['counters'])} counters); "
      f"trace OK ({n} events, monotone)")
EOF

python3 - "$SMOKE_DIR/chaos_report_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in chaos report"
counters = report["counters"]
joins, leaves = counters["system.player_joins"], counters["system.player_leaves"]
assert joins == leaves, f"session leak: {joins} joins vs {leaves} leaves"
assert counters.get("fault.injected", 0) > 0, "no faults injected"
assert counters.get("fault.cleared", 0) > 0, "no faults cleared"
names = {name for run in report["runs"] for name in run["metrics"]}
for required in ("mttr_ms", "fallback_residency", "sessions_interrupted"):
    assert required in names, f"missing chaos metric {required}"
print(f"chaos report OK ({counters['fault.injected']} faults injected, "
      f"{joins} joins == leaves)")
EOF

if [ "$QUICK" -eq 0 ]; then
  echo "== sanitizer matrix: ASan+UBSan build =="
  cmake -B build-asan -S . -DSANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "== sanitizer matrix: TSan build (2-thread QoS pass under every test) =="
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  CLOUDFOG_THREADS=2 ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

  echo "== TSan parallel leg: fig7 --threads 4 race check + trace cross-check =="
  ./build-tsan/bench/bench_fig7_latency --quick --threads 4 \
    --trace "$SMOKE_DIR/fig7_tsan_mt.jsonl" >/dev/null
  cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_tsan_mt.jsonl" || {
    echo "fig7 --threads 4 trace diverged between plain and TSan builds" >&2; exit 1; }
  echo "TSan 4-thread fig7 race-free and byte-identical to the plain serial run"

  echo "== chaos smoke under ASan (lifetime bugs hide in fault paths) =="
  CLOUDFOG_FAULT_SEED=424242 ./build-asan/bench/bench_ext_chaos --quick \
    --trace "$SMOKE_DIR/chaos_asan.jsonl" >/dev/null
  cmp -s "$SMOKE_DIR/chaos_asan.jsonl" "$SMOKE_DIR/chaos_trace_a.jsonl" || {
    echo "seeded chaos replay diverged between plain and ASan builds" >&2; exit 1; }
  echo "ASan chaos replay matches the plain build byte-for-byte"
fi

echo "all checks passed"
