#!/usr/bin/env bash
# Tracked benchmark harness (DESIGN.md §10).
#
# Runs the microbenchmark suite (google-benchmark) and the scale harness
# (bench_scale: candidate discovery linear-vs-grid, end-to-end subcycles
# reference-vs-optimised) and merges both into one tracked JSON document.
# Baselines come from the same binary's reference modes
# (CandidateMode::kLinear, QosEngineConfig::memoize = false, serial), so
# every report carries its own before/after pair.
#
#   scripts/bench.sh                 full run -> BENCH_PR5.json
#   scripts/bench.sh --quick         short run (CI smoke)
#   scripts/bench.sh --out <path>    override the output path
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
OUT=BENCH_PR5.json
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --out) shift; OUT="$1" ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

echo "== build (RelWithDebInfo) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_micro bench_scale

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

echo "== micro suite (google-benchmark) =="
MICRO_ARGS=(--benchmark_format=json)
if [ "$QUICK" -eq 1 ]; then
  # This google-benchmark accepts a bare double (newer releases want a
  # trailing "s"; keep the flag compatible with the pinned toolchain).
  MICRO_ARGS+=(--benchmark_min_time=0.05
               --benchmark_filter='BM_CandidateDiscovery|BM_QosSubcycle')
fi
./build/bench/bench_micro "${MICRO_ARGS[@]}" >"$WORK_DIR/micro.json"

echo "== scale harness (bench_scale) =="
SCALE_ARGS=(--json "$WORK_DIR/scale.json" --threads 4)
if [ "$QUICK" -eq 1 ]; then SCALE_ARGS+=(--quick); fi
./build/bench/bench_scale "${SCALE_ARGS[@]}"

echo "== merge -> $OUT =="
python3 - "$WORK_DIR/micro.json" "$WORK_DIR/scale.json" "$OUT" "$QUICK" <<'EOF'
import json, sys
micro_path, scale_path, out_path, quick = sys.argv[1:5]
micro = json.load(open(micro_path))
scale = json.load(open(scale_path))
doc = {
    "schema": "cloudfog.bench/1",
    "quick": quick == "1",
    "context": {k: micro.get("context", {}).get(k)
                for k in ("num_cpus", "mhz_per_cpu", "library_build_type")},
    "scale": scale,
    "micro": [
        {"name": b["name"], "real_time_ns": b["real_time"],
         "cpu_time_ns": b["cpu_time"],
         "items_per_second": b.get("items_per_second")}
        for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ],
}
disc = {p["fleet"]: p for p in scale["candidate_discovery"]}
sub = scale["subcycle"]
doc["headline"] = {
    "discovery_speedup_10k_fleet": disc.get(10000, disc[max(disc)])["speedup"],
    "subcycle_speedup_scaleout_nt": sub[-1]["speedup_nt"],
    "subcycle_speedup_scaleout_1t": sub[-1]["speedup_1t"],
}
json.dump(doc, open(out_path, "w"), indent=1)
print(json.dumps(doc["headline"], indent=1))
if quick != "1":
    assert doc["headline"]["discovery_speedup_10k_fleet"] >= 5.0, \
        "candidate discovery speedup below the tracked 5x floor"
    assert doc["headline"]["subcycle_speedup_scaleout_nt"] >= 2.0, \
        "end-to-end subcycle speedup below the tracked 2x floor"
EOF
echo "bench report written to $OUT"
