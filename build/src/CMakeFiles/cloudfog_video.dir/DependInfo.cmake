
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/continuity.cpp" "src/CMakeFiles/cloudfog_video.dir/video/continuity.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/continuity.cpp.o.d"
  "/root/repo/src/video/packet_stream.cpp" "src/CMakeFiles/cloudfog_video.dir/video/packet_stream.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/packet_stream.cpp.o.d"
  "/root/repo/src/video/playback_buffer.cpp" "src/CMakeFiles/cloudfog_video.dir/video/playback_buffer.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/playback_buffer.cpp.o.d"
  "/root/repo/src/video/qoe.cpp" "src/CMakeFiles/cloudfog_video.dir/video/qoe.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/qoe.cpp.o.d"
  "/root/repo/src/video/rate_adapter.cpp" "src/CMakeFiles/cloudfog_video.dir/video/rate_adapter.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/rate_adapter.cpp.o.d"
  "/root/repo/src/video/segment.cpp" "src/CMakeFiles/cloudfog_video.dir/video/segment.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/segment.cpp.o.d"
  "/root/repo/src/video/stream_session.cpp" "src/CMakeFiles/cloudfog_video.dir/video/stream_session.cpp.o" "gcc" "src/CMakeFiles/cloudfog_video.dir/video/stream_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
