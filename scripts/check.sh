#!/usr/bin/env bash
# Full verification pipeline:
#
#   1. determinism & correctness lint (tools/lint/cloudfog_lint.py)
#   2. format check on tracked sources (when clang-format is available)
#   3. plain build (warnings-as-errors by default) + tier-1 ctest
#   4. determinism gate: fig7 and the seeded chaos smoke run twice; traces
#      must be byte-identical and reports identical after canonicalization
#      (wall-clock phase timings are the only sanctioned difference —
#      tools/determinism/canonicalize_report.py). Both workloads also run
#      with --threads 4 and must match the serial traces byte-for-byte.
#   5. scenario gate: the bundled data/scenarios suite runs in smoke mode
#      with every acceptance envelope enforced; the reputation ablation
#      (--no-reputation --expect-fail) must make at least one adversary
#      envelope fail; and one scenario (regional-outage) replays seeded —
#      double-run and --threads 4 traces byte-identical, reports identical
#      after canonicalization
#   6. binary trace gate: both workloads re-run with --trace-format=binary
#      (serial and --threads 4); tools/trace/tracecat must reproduce the
#      JSONL byte-for-byte
#   7. run-store gate: two seeded fig7 runs append to a scratch run-store;
#      tools/runstore_query and the scripts/bench_trend.py reader must
#      agree, and the identical runs must have appended identical values
#   8. bench smoke: observability export schema checks, including zero
#      trace drops while a sink is attached
#   9. (full mode) sanitizer matrix: ASan+UBSan build + ctest, TSan build +
#      ctest with CLOUDFOG_THREADS=2 (races in the parallel QoS pass fail
#      here), a TSan 4-thread fig7 cross-checked against the plain trace,
#      the chaos smoke re-run under ASan, and a standalone UBSan build
#      (with the probed float-divide-by-zero / implicit-integer-sign-change
#      checks) driving fig7, the seeded chaos replay and the full scenario
#      smoke — all cross-checked byte-for-byte against the plain traces
#
#   scripts/check.sh            everything
#   scripts/check.sh --quick    stages 1–8 only (no sanitizer builds)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== lint: determinism & correctness rules =="
scripts/lint.sh

if command -v clang-format >/dev/null 2>&1; then
  echo "== format check =="
  scripts/format.sh --check
else
  echo "== format check: clang-format not found, skipping =="
fi

echo "== tier-1: plain build (warnings are errors) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

echo "== determinism gate: double-run fig7 =="
./build/bench/bench_fig7_latency --quick \
  --report-json "$SMOKE_DIR/fig7_report_a.json" \
  --trace "$SMOKE_DIR/fig7_trace_a.jsonl" >"$SMOKE_DIR/fig7_stdout_a.txt"
./build/bench/bench_fig7_latency --quick \
  --report-json "$SMOKE_DIR/fig7_report_b.json" \
  --trace "$SMOKE_DIR/fig7_trace_b.jsonl" >"$SMOKE_DIR/fig7_stdout_b.txt"
cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_trace_b.jsonl" || {
  echo "determinism gate FAILED: fig7 trace differs between identical runs" >&2
  diff <(head -c 2000 "$SMOKE_DIR/fig7_trace_a.jsonl") \
       <(head -c 2000 "$SMOKE_DIR/fig7_trace_b.jsonl") | head -10 >&2 || true
  exit 1
}
cmp -s "$SMOKE_DIR/fig7_stdout_a.txt" "$SMOKE_DIR/fig7_stdout_b.txt" || {
  echo "determinism gate FAILED: fig7 stdout (figure table) differs" >&2; exit 1; }
python3 tools/determinism/canonicalize_report.py --check \
  "$SMOKE_DIR/fig7_report_a.json" "$SMOKE_DIR/fig7_report_b.json" || {
  echo "determinism gate FAILED: fig7 report differs beyond phase timings" >&2; exit 1; }
echo "fig7: trace byte-identical, stdout identical, canonical report identical"

echo "== determinism gate: serial vs parallel (fig7 --threads 4) =="
./build/bench/bench_fig7_latency --quick --threads 4 \
  --trace "$SMOKE_DIR/fig7_trace_mt.jsonl" >"$SMOKE_DIR/fig7_stdout_mt.txt"
cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_trace_mt.jsonl" || {
  echo "determinism gate FAILED: fig7 trace differs between --threads 1 and 4" >&2
  diff <(head -c 2000 "$SMOKE_DIR/fig7_trace_a.jsonl") \
       <(head -c 2000 "$SMOKE_DIR/fig7_trace_mt.jsonl") | head -10 >&2 || true
  exit 1
}
cmp -s "$SMOKE_DIR/fig7_stdout_a.txt" "$SMOKE_DIR/fig7_stdout_mt.txt" || {
  echo "determinism gate FAILED: fig7 stdout differs between --threads 1 and 4" >&2; exit 1; }
echo "fig7: 4-thread run byte-identical to serial"

echo "== determinism gate: double-run seeded chaos =="
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick \
  --report-json "$SMOKE_DIR/chaos_report_a.json" \
  --trace "$SMOKE_DIR/chaos_trace_a.jsonl" >/dev/null
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick \
  --report-json "$SMOKE_DIR/chaos_report_b.json" \
  --trace "$SMOKE_DIR/chaos_trace_b.jsonl" >/dev/null
grep -q '"kind":"fault_' "$SMOKE_DIR/chaos_trace_a.jsonl" || {
  echo "chaos run injected no faults" >&2; exit 1; }
cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_trace_b.jsonl" || {
  echo "determinism gate FAILED: seeded chaos replay diverged (full trace)" >&2; exit 1; }
python3 tools/determinism/canonicalize_report.py --check \
  "$SMOKE_DIR/chaos_report_a.json" "$SMOKE_DIR/chaos_report_b.json" || {
  echo "determinism gate FAILED: chaos report differs beyond phase timings" >&2; exit 1; }
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick --threads 4 \
  --trace "$SMOKE_DIR/chaos_trace_mt.jsonl" >/dev/null
cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_trace_mt.jsonl" || {
  echo "determinism gate FAILED: chaos trace differs between --threads 1 and 4" >&2; exit 1; }
echo "chaos: seeded replay byte-identical (including --threads 4), canonical report identical"

echo "== scenario gate: bundled suite, envelopes enforced =="
./build/bench/bench_scenarios --all --smoke --obs-off >"$SMOKE_DIR/scenario_suite.txt" || {
  echo "scenario gate FAILED: a bundled scenario left its acceptance envelope" >&2
  tail -25 "$SMOKE_DIR/scenario_suite.txt" >&2; exit 1; }
tail -11 "$SMOKE_DIR/scenario_suite.txt"
# The adversary envelopes must be carried by the §3.2 reputation defence:
# with it switched off, at least one scenario has to fail.
./build/bench/bench_scenarios --all --smoke --obs-off --no-reputation --expect-fail \
  >"$SMOKE_DIR/scenario_ablation.txt" || {
  echo "scenario gate FAILED: every envelope still passes without reputation" >&2
  tail -25 "$SMOKE_DIR/scenario_ablation.txt" >&2; exit 1; }
tail -1 "$SMOKE_DIR/scenario_ablation.txt"

echo "== scenario gate: seeded replay (regional-outage) =="
./build/bench/bench_scenarios --scenario regional-outage --smoke \
  --report-json "$SMOKE_DIR/scen_report_a.json" \
  --trace "$SMOKE_DIR/scen_trace_a.jsonl" >"$SMOKE_DIR/scen_stdout_a.txt"
./build/bench/bench_scenarios --scenario regional-outage --smoke \
  --report-json "$SMOKE_DIR/scen_report_b.json" \
  --trace "$SMOKE_DIR/scen_trace_b.jsonl" >"$SMOKE_DIR/scen_stdout_b.txt"
grep -q '"kind":"fault_' "$SMOKE_DIR/scen_trace_a.jsonl" || {
  echo "scenario replay injected no faults" >&2; exit 1; }
cmp -s "$SMOKE_DIR/scen_trace_a.jsonl" "$SMOKE_DIR/scen_trace_b.jsonl" || {
  echo "determinism gate FAILED: scenario replay diverged (full trace)" >&2; exit 1; }
cmp -s "$SMOKE_DIR/scen_stdout_a.txt" "$SMOKE_DIR/scen_stdout_b.txt" || {
  echo "determinism gate FAILED: scenario stdout (envelope tables) differs" >&2; exit 1; }
python3 tools/determinism/canonicalize_report.py --check \
  "$SMOKE_DIR/scen_report_a.json" "$SMOKE_DIR/scen_report_b.json" || {
  echo "determinism gate FAILED: scenario report differs beyond phase timings" >&2; exit 1; }
./build/bench/bench_scenarios --scenario regional-outage --smoke --threads 4 \
  --trace "$SMOKE_DIR/scen_trace_mt.jsonl" >"$SMOKE_DIR/scen_stdout_mt.txt"
cmp -s "$SMOKE_DIR/scen_trace_a.jsonl" "$SMOKE_DIR/scen_trace_mt.jsonl" || {
  echo "determinism gate FAILED: scenario trace differs between --threads 1 and 4" >&2; exit 1; }
cmp -s "$SMOKE_DIR/scen_stdout_a.txt" "$SMOKE_DIR/scen_stdout_mt.txt" || {
  echo "determinism gate FAILED: scenario stdout differs between --threads 1 and 4" >&2; exit 1; }
echo "scenario: seeded replay byte-identical (including --threads 4), canonical report identical"

echo "== binary trace gate: tracecat round-trip vs JSONL =="
# The binary format is a pure transport: converting a binary trace back
# with tools/trace/tracecat must reproduce the JSONL byte-for-byte, for
# both workloads, serial and 4-thread.
./build/bench/bench_fig7_latency --quick --trace-format=binary \
  --trace "$SMOKE_DIR/fig7_trace.bin" >/dev/null
./build/tools/tracecat "$SMOKE_DIR/fig7_trace.bin" -o "$SMOKE_DIR/fig7_trace_conv.jsonl"
cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_trace_conv.jsonl" || {
  echo "binary trace gate FAILED: fig7 tracecat output differs from JSONL" >&2; exit 1; }
./build/bench/bench_fig7_latency --quick --threads 4 --trace-format=binary \
  --trace "$SMOKE_DIR/fig7_trace_mt.bin" >/dev/null
./build/tools/tracecat "$SMOKE_DIR/fig7_trace_mt.bin" -o "$SMOKE_DIR/fig7_trace_mt_conv.jsonl"
cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_trace_mt_conv.jsonl" || {
  echo "binary trace gate FAILED: fig7 4-thread binary trace differs" >&2; exit 1; }
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick --trace-format=binary \
  --trace "$SMOKE_DIR/chaos_trace.bin" >/dev/null
./build/tools/tracecat "$SMOKE_DIR/chaos_trace.bin" -o "$SMOKE_DIR/chaos_trace_conv.jsonl"
cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_trace_conv.jsonl" || {
  echo "binary trace gate FAILED: chaos tracecat output differs from JSONL" >&2; exit 1; }
CLOUDFOG_FAULT_SEED=424242 ./build/bench/bench_ext_chaos --quick --threads 4 \
  --trace-format=binary --trace "$SMOKE_DIR/chaos_trace_mt.bin" >/dev/null
./build/tools/tracecat "$SMOKE_DIR/chaos_trace_mt.bin" -o "$SMOKE_DIR/chaos_trace_mt_conv.jsonl"
cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_trace_mt_conv.jsonl" || {
  echo "binary trace gate FAILED: chaos 4-thread binary trace differs" >&2; exit 1; }
echo "tracecat: fig7 + chaos binary traces byte-identical to JSONL at 1 and 4 threads"

echo "== run-store gate: C++ writer vs C++ and python readers =="
./build/bench/bench_fig7_latency --quick --runstore "$SMOKE_DIR/runstore" \
  --run-id check-a --git-sha check --config-hash quick >/dev/null
./build/bench/bench_fig7_latency --quick --runstore "$SMOKE_DIR/runstore" \
  --run-id check-b --git-sha check --config-hash quick >/dev/null
./build/tools/runstore_query "$SMOKE_DIR/runstore" rows >"$SMOKE_DIR/runstore_rows.tsv"
python3 - "$SMOKE_DIR/runstore" <<'EOF'
import sys, os
sys.path.insert(0, "scripts")
import bench_trend
store = sys.argv[1]
rows = bench_trend.read_manifest(store)
assert [r["run_id"] for r in rows] == ["check-a", "check-b"], rows
columns = bench_trend.list_columns(store)
assert columns, "bench run appended no columns"
for name in columns:
    records = bench_trend.read_column(store, name)
    assert records, f"empty column {name}"
    assert {row for row, _ in records} <= {0, 1}, f"bad row ids in {name}"
print(f"run-store OK ({len(rows)} rows, {len(columns)} columns, python reader agrees)")
EOF
# Identical seeded runs must append identical values: the two rows of any
# column agree record-for-record (cross-checked through the C++ reader).
python3 - "$SMOKE_DIR/runstore" <<'EOF'
import subprocess, sys
store = sys.argv[1]
columns = subprocess.run(["./build/tools/runstore_query", store, "columns"],
                         capture_output=True, text=True, check=True).stdout.split()
for name in columns:
    out = subprocess.run(["./build/tools/runstore_query", store, "column", name],
                         capture_output=True, text=True, check=True).stdout
    by_row = {"0": [], "1": []}
    for line in out.splitlines():
        row, value = line.split("\t")
        by_row[row].append(value)
    assert by_row["0"] == by_row["1"], f"rows disagree in {name}"
print(f"runstore_query OK ({len(columns)} columns, identical seeded rows agree)")
EOF

echo "== bench smoke: observability exports =="
python3 - "$SMOKE_DIR/fig7_report_a.json" "$SMOKE_DIR/fig7_trace_a.jsonl" <<'EOF'
import json, sys
report_path, trace_path = sys.argv[1], sys.argv[2]
report = json.load(open(report_path))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in report"
assert len(report["counters"]) >= 5, "expected at least five counters"
assert report["phases"], "no phase profile"
trace = report["trace"]
# Drop accounting: with a sink attached the ring is a write buffer, so a
# nonzero drop count means retained events were silently lost.
assert trace["dropped"] == 0, f"trace dropped {trace['dropped']} events with a sink attached"
assert trace["retention"] == "full", trace
last = float("-inf")
n = 0
with open(trace_path) as f:
    for line in f:
        t = json.loads(line)["t"]
        assert t >= last, f"trace not monotone at line {n}"
        last = t
        n += 1
assert n > 0, "empty trace"
print(f"report OK ({len(report['runs'])} runs, {len(report['counters'])} counters); "
      f"trace OK ({n} events, monotone)")
EOF

python3 - "$SMOKE_DIR/chaos_report_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in chaos report"
assert report["trace"]["dropped"] == 0, \
    f"chaos trace dropped {report['trace']['dropped']} events with a sink attached"
counters = report["counters"]
joins, leaves = counters["system.player_joins"], counters["system.player_leaves"]
assert joins == leaves, f"session leak: {joins} joins vs {leaves} leaves"
assert counters.get("fault.injected", 0) > 0, "no faults injected"
assert counters.get("fault.cleared", 0) > 0, "no faults cleared"
names = {name for run in report["runs"] for name in run["metrics"]}
for required in ("mttr_ms", "fallback_residency", "sessions_interrupted"):
    assert required in names, f"missing chaos metric {required}"
print(f"chaos report OK ({counters['fault.injected']} faults injected, "
      f"{joins} joins == leaves)")
EOF

if [ "$QUICK" -eq 0 ]; then
  echo "== sanitizer matrix: ASan+UBSan build =="
  cmake -B build-asan -S . -DSANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "== sanitizer matrix: TSan build (2-thread QoS pass under every test) =="
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  CLOUDFOG_THREADS=2 ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

  echo "== TSan parallel leg: fig7 --threads 4 race check + trace cross-check =="
  ./build-tsan/bench/bench_fig7_latency --quick --threads 4 \
    --trace "$SMOKE_DIR/fig7_tsan_mt.jsonl" >/dev/null
  cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_tsan_mt.jsonl" || {
    echo "fig7 --threads 4 trace diverged between plain and TSan builds" >&2; exit 1; }
  echo "TSan 4-thread fig7 race-free and byte-identical to the plain serial run"

  echo "== chaos smoke under ASan (lifetime bugs hide in fault paths) =="
  CLOUDFOG_FAULT_SEED=424242 ./build-asan/bench/bench_ext_chaos --quick \
    --trace "$SMOKE_DIR/chaos_asan.jsonl" >/dev/null
  cmp -s "$SMOKE_DIR/chaos_asan.jsonl" "$SMOKE_DIR/chaos_trace_a.jsonl" || {
    echo "seeded chaos replay diverged between plain and ASan builds" >&2; exit 1; }
  echo "ASan chaos replay matches the plain build byte-for-byte"

  echo "== sanitizer matrix: standalone UBSan build (extra checks probed) =="
  # ASan's shadow memory makes the combined leg too slow for the scenario
  # suite; the standalone UBSan build is fast enough to drive the full
  # pipeline, which is where integer-conversion and float-division UB hides.
  cmake -B build-ubsan -S . -DSANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$JOBS"
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"

  echo "== UBSan pipeline leg: fig7 + seeded chaos + scenario smoke =="
  ./build-ubsan/bench/bench_fig7_latency --quick --threads 4 \
    --trace "$SMOKE_DIR/fig7_ubsan.jsonl" >/dev/null
  cmp -s "$SMOKE_DIR/fig7_trace_a.jsonl" "$SMOKE_DIR/fig7_ubsan.jsonl" || {
    echo "fig7 trace diverged between plain and UBSan builds" >&2; exit 1; }
  CLOUDFOG_FAULT_SEED=424242 ./build-ubsan/bench/bench_ext_chaos --quick \
    --trace "$SMOKE_DIR/chaos_ubsan.jsonl" >/dev/null
  cmp -s "$SMOKE_DIR/chaos_trace_a.jsonl" "$SMOKE_DIR/chaos_ubsan.jsonl" || {
    echo "seeded chaos replay diverged between plain and UBSan builds" >&2; exit 1; }
  ./build-ubsan/bench/bench_scenarios --all --smoke --obs-off >/dev/null || {
    echo "scenario suite failed under UBSan" >&2; exit 1; }
  echo "UBSan fig7/chaos traces byte-identical to plain; scenario smoke clean"
fi

echo "all checks passed"
