// Game-state computation engine: ties the virtual world to server costs.
//
// Each tick the engine advances the world, computes every server's work
// (avatar updates + interaction resolution) and the synchronization cost
// of interactions that straddle servers. The tick's wall time is the
// *busiest* server's work plus the cross-server synchronization — this is
// the physical grounding for the QoS engine's `state_compute_ms` and
// `cross_server_penalty_ms` constants, and the per-area update feed it
// reports grounds Λ (the cloud→supernode update bandwidth).
#pragma once

#include <cstddef>
#include <vector>

#include "world/kdtree_partition.hpp"
#include "world/virtual_world.hpp"

namespace cloudfog::world {

struct StateEngineConfig {
  std::size_t server_count = 8;
  std::size_t region_count = 64;        ///< kd-tree leaves (power of two)
  double base_compute_ms = 1.0;         ///< fixed per-tick server overhead
  double per_avatar_us = 2.0;           ///< movement/state update per avatar
  double per_interaction_us = 25.0;     ///< combat/trade resolution per pair
  double cross_sync_ms_per_pair = 0.05; ///< inter-server round per straddling pair
  double update_bits_per_avatar = 400.0;///< state delta per avatar per tick
  /// Rebuild the kd-tree when load imbalance exceeds this factor.
  double rebalance_threshold = 1.5;
};

struct TickStats {
  double compute_ms = 0.0;  ///< critical-path state computation time
  std::size_t interactions = 0;
  std::size_t cross_server_interactions = 0;
  double imbalance = 1.0;  ///< max/mean server load before any rebuild
  bool rebalanced = false;
};

class GameStateEngine {
 public:
  GameStateEngine(VirtualWorld& world, StateEngineConfig cfg);

  const StateEngineConfig& config() const { return cfg_; }
  const WorldPartition& partition() const { return partition_; }

  /// Advances the world by `dt` and accounts the tick.
  TickStats tick(double dt);

  /// Rebuilds the kd-tree over the current population.
  void rebalance();

  /// Bandwidth (bits/s) of the update feed for a subscriber interested in
  /// the circle around `center` — what the cloud streams to a supernode
  /// whose players live there (Λ in the paper's cost model).
  double update_feed_bps(const Vec2& center, double radius, double tick_rate_hz) const;

 private:
  VirtualWorld& world_;
  StateEngineConfig cfg_;
  WorldPartition partition_;
};

}  // namespace cloudfog::world
