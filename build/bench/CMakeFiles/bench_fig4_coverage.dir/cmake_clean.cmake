file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_coverage.dir/fig4_coverage.cpp.o"
  "CMakeFiles/bench_fig4_coverage.dir/fig4_coverage.cpp.o.d"
  "bench_fig4_coverage"
  "bench_fig4_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
