file(REMOVE_RECURSE
  "libcloudfog_video.a"
)
