file(REMOVE_RECURSE
  "CMakeFiles/test_economics.dir/economics/contributor_market_test.cpp.o"
  "CMakeFiles/test_economics.dir/economics/contributor_market_test.cpp.o.d"
  "CMakeFiles/test_economics.dir/economics/cost_model_test.cpp.o"
  "CMakeFiles/test_economics.dir/economics/cost_model_test.cpp.o.d"
  "CMakeFiles/test_economics.dir/economics/incentives_test.cpp.o"
  "CMakeFiles/test_economics.dir/economics/incentives_test.cpp.o.d"
  "test_economics"
  "test_economics.pdb"
  "test_economics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
