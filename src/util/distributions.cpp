#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace cloudfog::util {

ParetoDistribution::ParetoDistribution(double scale, double shape)
    : scale_(scale), shape_(shape) {
  CLOUDFOG_REQUIRE(scale > 0.0, "Pareto scale must be positive");
  CLOUDFOG_REQUIRE(shape > 0.0, "Pareto shape must be positive");
}

double ParetoDistribution::sample(Rng& rng) const {
  // Inverse CDF: x = x_m / U^{1/alpha}. Guard U = 0.
  double u = rng.next_double();
  while (u == 0.0) u = rng.next_double();
  return scale_ / std::pow(u, 1.0 / shape_);
}

BoundedParetoDistribution::BoundedParetoDistribution(double lo, double hi, double shape)
    : lo_(lo), hi_(hi), shape_(shape) {
  CLOUDFOG_REQUIRE(lo > 0.0, "bounded Pareto lower bound must be positive");
  CLOUDFOG_REQUIRE(hi > lo, "bounded Pareto upper bound must exceed lower");
  CLOUDFOG_REQUIRE(shape > 0.0, "bounded Pareto shape must be positive");
}

double BoundedParetoDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const double la = std::pow(lo_, shape_);
  const double ha = std::pow(hi_, shape_);
  // Inverse CDF of the truncated Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape_);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) : norm_(0.0), skew_(skew) {
  CLOUDFOG_REQUIRE(n > 0, "Zipf needs at least one rank");
  CLOUDFOG_REQUIRE(skew > 0.0, "Zipf skew must be positive");
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), skew);
    cdf_.push_back(acc);
  }
  norm_ = acc;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double() * norm_;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t k) const {
  CLOUDFOG_REQUIRE(k >= 1 && k <= cdf_.size(), "Zipf rank out of range");
  return (1.0 / std::pow(static_cast<double>(k), skew_)) / norm_;
}

int sample_poisson(Rng& rng, double lambda) {
  CLOUDFOG_REQUIRE(lambda >= 0.0, "Poisson mean must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth's product-of-uniforms method.
    const double threshold = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.next_double();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // large arrival counts used in the workload generator.
  const double v = lambda + std::sqrt(lambda) * sample_standard_normal(rng) + 0.5;
  return std::max(0, static_cast<int>(v));
}

double sample_exponential(Rng& rng, double rate) {
  CLOUDFOG_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = rng.next_double();
  while (u == 0.0) u = rng.next_double();
  return -std::log(u) / rate;
}

double sample_standard_normal(Rng& rng) {
  double u1 = rng.next_double();
  while (u1 == 0.0) u1 = rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(mu + sigma * sample_standard_normal(rng));
}

LognormalMixture::LognormalMixture(std::vector<Component> components)
    : components_(std::move(components)), total_weight_(0.0) {
  CLOUDFOG_REQUIRE(!components_.empty(), "mixture needs at least one component");
  for (const auto& c : components_) {
    CLOUDFOG_REQUIRE(c.weight > 0.0, "mixture weights must be positive");
    CLOUDFOG_REQUIRE(c.sigma >= 0.0, "mixture sigma must be non-negative");
    total_weight_ += c.weight;
  }
}

double LognormalMixture::sample(Rng& rng) const {
  double u = rng.next_double() * total_weight_;
  for (const auto& c : components_) {
    if (u < c.weight) return sample_lognormal(rng, c.mu, c.sigma);
    u -= c.weight;
  }
  return sample_lognormal(rng, components_.back().mu, components_.back().sigma);
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<Bin> bins)
    : bins_(std::move(bins)), total_weight_(0.0) {
  CLOUDFOG_REQUIRE(!bins_.empty(), "empirical distribution needs bins");
  for (const auto& b : bins_) {
    CLOUDFOG_REQUIRE(b.weight > 0.0, "empirical weights must be positive");
    total_weight_ += b.weight;
  }
}

double EmpiricalDistribution::sample(Rng& rng) const {
  double u = rng.next_double() * total_weight_;
  for (const auto& b : bins_) {
    if (u < b.weight) return b.value;
    u -= b.weight;
  }
  return bins_.back().value;
}

double EmpiricalDistribution::mean() const {
  double acc = 0.0;
  for (const auto& b : bins_) acc += b.value * b.weight;
  return acc / total_weight_;
}

std::vector<int> sample_power_law_degrees(Rng& rng, std::size_t n, double skew,
                                          int min_degree, int max_degree) {
  CLOUDFOG_REQUIRE(min_degree >= 0, "min degree must be non-negative");
  CLOUDFOG_REQUIRE(max_degree >= min_degree, "degree bounds inverted");
  std::vector<int> degrees(n);
  if (min_degree == max_degree) {
    std::fill(degrees.begin(), degrees.end(), min_degree);
    return degrees;
  }
  // Zipf over the offset range [1, max-min+1], shifted back.
  const ZipfDistribution zipf(static_cast<std::size_t>(max_degree - min_degree + 1), skew);
  for (auto& d : degrees) d = min_degree + static_cast<int>(zipf.sample(rng)) - 1;
  return degrees;
}

}  // namespace cloudfog::util
