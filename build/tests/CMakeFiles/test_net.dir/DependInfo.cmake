
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/bandwidth_model_test.cpp" "tests/CMakeFiles/test_net.dir/net/bandwidth_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/bandwidth_model_test.cpp.o.d"
  "/root/repo/tests/net/coordinates_test.cpp" "tests/CMakeFiles/test_net.dir/net/coordinates_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/coordinates_test.cpp.o.d"
  "/root/repo/tests/net/ip_locator_test.cpp" "tests/CMakeFiles/test_net.dir/net/ip_locator_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/ip_locator_test.cpp.o.d"
  "/root/repo/tests/net/latency_model_test.cpp" "tests/CMakeFiles/test_net.dir/net/latency_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/latency_model_test.cpp.o.d"
  "/root/repo/tests/net/ping_trace_test.cpp" "tests/CMakeFiles/test_net.dir/net/ping_trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/ping_trace_test.cpp.o.d"
  "/root/repo/tests/net/trace_io_test.cpp" "tests/CMakeFiles/test_net.dir/net/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/trace_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
