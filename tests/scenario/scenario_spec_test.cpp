#include "scenario/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/envelope.hpp"

namespace cloudfog::scenario {
namespace {

ScenarioSpec must_parse(const std::string& text) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_TRUE(parse_scenario(text, &spec, &error)) << error;
  return spec;
}

std::string must_fail(const std::string& text) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(parse_scenario(text, &spec, &error));
  return error;
}

TEST(ScenarioParser, EmptyTextKeepsDocumentedDefaults) {
  const ScenarioSpec spec = must_parse("");
  EXPECT_EQ(spec.name, "unnamed");
  EXPECT_EQ(spec.players, 4000u);
  EXPECT_EQ(spec.supernodes, 240u);
  EXPECT_EQ(spec.cycles, 4);
  EXPECT_EQ(spec.warmup, 1);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_TRUE(spec.reputation);
  EXPECT_FALSE(spec.daily_sessions);
  EXPECT_FALSE(spec.flash_crowd.has_value());
  EXPECT_FALSE(spec.outage.has_value());
  EXPECT_EQ(spec.adversary.kind, AdversaryKind::kNone);
  EXPECT_TRUE(spec.envelope.empty());
}

TEST(ScenarioParser, FullGrammarRoundTrip) {
  const ScenarioSpec spec = must_parse(R"(
# A kitchen-sink spec exercising every section.
name = everything
description = All sections at once
profile = planetlab
players = 750
supernodes = 30
cycles = 5
warmup = 2
seed = 7
system_seed = 88
workload = arrivals
base_arrival_per_minute = 12.5
faults_per_hour = 0.75
selection_deadline_ms = 500
reputation = false
rate_adaptation = on
social_assignment = true
provisioning = off

[phase.flash_crowd]
start_hour = 26    # trailing comments are stripped
ramp_hours = 3
plateau_hours = 2
decay_hours = 5
peak_per_minute = 90

[phase.diurnal]
regions = 4
stagger_hours = 2.5
amplitude_per_minute = 15

[phase.churn_storm]
start_hour = 40
duration_hours = 3
departure_fraction = 0.4
pause_arrivals = false

[phase.outage]
start_hour = 50
duration_hours = 4
x0_km = 100
y0_km = 200
x1_km = 900
y1_km = 800
crash_fraction = 0.6
loss_fraction = 0.2
delay_ms = 90
partition = false

[adversary]
kind = on_off
fraction = 0.2
delay_ms = 60
period_cycles = 3
on_cycles = 2

[mix]
game.0 = 2.0
game.2 = 1.0

[envelope]
continuity.min = 0.8
latency_ms.max = 150
)");
  EXPECT_EQ(spec.name, "everything");
  EXPECT_EQ(spec.profile, core::TestbedProfile::kPlanetLab);
  EXPECT_EQ(spec.players, 750u);
  EXPECT_EQ(spec.cycles, 5);
  EXPECT_EQ(spec.system_seed, 88u);
  EXPECT_FALSE(spec.daily_sessions);
  EXPECT_EQ(spec.base_arrival_per_minute, 12.5);
  EXPECT_EQ(spec.faults_per_hour, 0.75);
  EXPECT_EQ(spec.selection_deadline_ms, 500.0);
  EXPECT_FALSE(spec.reputation);
  EXPECT_TRUE(spec.rate_adaptation);
  EXPECT_TRUE(spec.social_assignment);
  EXPECT_FALSE(spec.provisioning);

  ASSERT_TRUE(spec.flash_crowd.has_value());
  EXPECT_EQ(spec.flash_crowd->start_hour, 26);
  EXPECT_EQ(spec.flash_crowd->peak_per_minute, 90.0);
  ASSERT_TRUE(spec.diurnal.has_value());
  EXPECT_EQ(spec.diurnal->regions, 4);
  EXPECT_EQ(spec.diurnal->stagger_hours, 2.5);
  ASSERT_TRUE(spec.churn_storm.has_value());
  EXPECT_EQ(spec.churn_storm->departure_fraction, 0.4);
  EXPECT_FALSE(spec.churn_storm->pause_arrivals);
  ASSERT_TRUE(spec.outage.has_value());
  EXPECT_EQ(spec.outage->box.x0_km, 100.0);
  EXPECT_EQ(spec.outage->box.y1_km, 800.0);
  EXPECT_EQ(spec.outage->crash_fraction, 0.6);
  EXPECT_FALSE(spec.outage->partition);

  EXPECT_EQ(spec.adversary.kind, AdversaryKind::kOnOff);
  EXPECT_EQ(spec.adversary.fraction, 0.2);
  EXPECT_EQ(spec.adversary.period_cycles, 3);
  EXPECT_EQ(spec.game_mix, (std::vector<double>{2.0, 0.0, 1.0}));
  ASSERT_EQ(spec.envelope.bounds().size(), 2u);
  EXPECT_EQ(spec.envelope.bounds()[0].metric, "continuity");
  EXPECT_EQ(spec.envelope.bounds()[0].min, 0.8);
  EXPECT_EQ(spec.envelope.bounds()[1].max, 150.0);
}

TEST(ScenarioParser, ErrorsNameTheLine) {
  EXPECT_EQ(must_fail("players = twelve"), "line 1: expected a number, got 'twelve'");
  EXPECT_NE(must_fail("name = x\nbogus_key = 1").find("line 2: unknown key"),
            std::string::npos);
  EXPECT_NE(must_fail("[phase.flash_crowd").find("line 1: unterminated section"),
            std::string::npos);
  EXPECT_NE(must_fail("[nonsense]\nx = 1").find("unknown section"), std::string::npos);
  EXPECT_NE(must_fail("no equals sign here").find("expected key = value"),
            std::string::npos);
  EXPECT_NE(must_fail("[envelope]\ntypo_metric.min = 1")
                .find("unknown envelope metric 'typo_metric'"),
            std::string::npos);
  EXPECT_NE(must_fail("[envelope]\ncontinuity.mid = 1").find("min or max"),
            std::string::npos);
  EXPECT_NE(must_fail("[adversary]\nkind = sybil").find("unknown adversary kind"),
            std::string::npos);
}

TEST(ScenarioParser, ValidationRejectsImpossibleSpecs) {
  EXPECT_NE(must_fail("cycles = 2\nwarmup = 2").find("at least one measured cycle"),
            std::string::npos);
  EXPECT_NE(must_fail("players = 0").find("players must be positive"), std::string::npos);
  // Phases must fit the horizon (2 cycles = 48 h).
  EXPECT_NE(must_fail("cycles = 2\n[phase.outage]\nstart_hour = 48")
                .find("outage window must fit"),
            std::string::npos);
  EXPECT_NE(must_fail("cycles = 2\n[phase.churn_storm]\nstart_hour = 60")
                .find("churn storm must start inside"),
            std::string::npos);
  EXPECT_NE(must_fail("[adversary]\nfraction = 1.5").find("fraction must be within"),
            std::string::npos);
}

TEST(ScenarioParser, LoadScenarioFilePrefixesThePath) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(load_scenario_file("/nonexistent/nope.scn", &spec, &error));
  EXPECT_NE(error.find("/nonexistent/nope.scn"), std::string::npos);
}

TEST(ScenarioParser, BundledScenariosParseAndCarryEnvelopes) {
  const std::string dir = std::string(CLOUDFOG_REPO_DIR) + "/data/scenarios/";
  ASSERT_EQ(bundled_scenario_names().size(), 6u);
  for (const std::string& name : bundled_scenario_names()) {
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(load_scenario_file(dir + name + ".scn", &spec, &error)) << error;
    // The file's declared name must match its filename — `--scenario NAME`
    // resolves files by name, so a mismatch would make CI run the wrong spec.
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.description.empty()) << name;
    // Every bundled scenario must be machine-checkable.
    EXPECT_FALSE(spec.envelope.empty()) << name;
  }
}

TEST(Envelope, MarginsAndVerdicts) {
  AcceptanceEnvelope env;
  env.require_min("continuity", 0.8);
  env.require_max("latency_ms", 150.0);
  env.require_min("satisfied_pct", 30.0);

  const std::vector<ScenarioMetric> metrics = {
      {"continuity", 0.9},      // +0.1 headroom
      {"latency_ms", 180.0},    // 30 over the max
      {"satisfied_pct", 30.0},  // exactly on the edge still passes
  };
  const EnvelopeReport report = env.check(metrics);
  ASSERT_EQ(report.checks.size(), 3u);
  EXPECT_TRUE(report.checks[0].passed);
  EXPECT_NEAR(report.checks[0].margin, 0.1, 1e-12);
  EXPECT_FALSE(report.checks[1].passed);
  EXPECT_NEAR(report.checks[1].margin, -30.0, 1e-12);
  EXPECT_TRUE(report.checks[2].passed);
  EXPECT_EQ(report.checks[2].margin, 0.0);
  EXPECT_FALSE(report.passed);
  EXPECT_NEAR(report.min_margin, -30.0, 1e-12);
}

TEST(Envelope, BandBoundUsesTheNearerEdge) {
  AcceptanceEnvelope env;
  env.require_min("mos", 2.0);
  env.require_max("mos", 4.0);  // merges into one band bound
  ASSERT_EQ(env.bounds().size(), 1u);
  const EnvelopeReport report = env.check({{"mos", 3.5}});
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.passed);
  EXPECT_NEAR(report.checks[0].margin, 0.5, 1e-12);  // 0.5 to the max, 1.5 to the min
}

TEST(Envelope, MissingMetricFails) {
  AcceptanceEnvelope env;
  env.require_min("mttr_s", 0.0);
  const EnvelopeReport report = env.check({{"continuity", 1.0}});
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_FALSE(report.checks[0].metric_found);
  EXPECT_FALSE(report.checks[0].passed);
  EXPECT_FALSE(report.passed);
}

TEST(Envelope, EmptyEnvelopePassesVacuously) {
  const EnvelopeReport report = AcceptanceEnvelope{}.check({{"continuity", 0.1}});
  EXPECT_TRUE(report.passed);
  EXPECT_TRUE(report.checks.empty());
  EXPECT_EQ(report.min_margin, 0.0);
}

TEST(ChaosScenarioBuilder, ReproducesTheLegacyChaosArm) {
  const core::ExperimentScale scale{3, 1, 42};
  const ScenarioSpec spec =
      chaos_scenario(core::TestbedProfile::kPeerSim, 2.0, scale);
  EXPECT_EQ(spec.name, "chaos-2.00");
  EXPECT_EQ(spec.players, 10000u);
  EXPECT_EQ(spec.supernodes, 600u);
  EXPECT_TRUE(spec.daily_sessions);
  EXPECT_TRUE(spec.reputation && spec.rate_adaptation && spec.social_assignment &&
              spec.provisioning);
  EXPECT_EQ(spec.system_seed, scale.seed + 81);
  EXPECT_EQ(spec.faults_per_hour, 2.0);
  EXPECT_TRUE(spec.envelope.empty());  // the sweep reports, the caller judges
}

TEST(ScenarioMetrics, VocabularyIsClosed) {
  for (const std::string& name : scenario_metric_names()) {
    EXPECT_TRUE(is_scenario_metric(name)) << name;
  }
  EXPECT_FALSE(is_scenario_metric("typo_metric"));
  EXPECT_FALSE(is_scenario_metric(""));
}

}  // namespace
}  // namespace cloudfog::scenario
