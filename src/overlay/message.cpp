#include "overlay/message.hpp"

namespace cloudfog::overlay {

std::string to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kCandidateRequest: return "CandidateRequest";
    case MessageKind::kCandidateReply: return "CandidateReply";
    case MessageKind::kProbe: return "Probe";
    case MessageKind::kProbeReply: return "ProbeReply";
    case MessageKind::kCapacityAsk: return "CapacityAsk";
    case MessageKind::kCapacityGrant: return "CapacityGrant";
    case MessageKind::kCapacityDeny: return "CapacityDeny";
    case MessageKind::kConnect: return "Connect";
    case MessageKind::kConnectAck: return "ConnectAck";
    case MessageKind::kLivenessProbe: return "LivenessProbe";
    case MessageKind::kLivenessReply: return "LivenessReply";
    case MessageKind::kRegister: return "Register";
    case MessageKind::kRegisterAck: return "RegisterAck";
  }
  return "Unknown";
}

}  // namespace cloudfog::overlay
