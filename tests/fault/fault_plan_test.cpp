#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace cloudfog::fault {
namespace {

FaultPlanConfig chaos_config(std::uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.enabled = true;
  cfg.horizon_s = 100.0 * 3600.0;
  cfg.faults_per_hour = 2.0;
  cfg.supernode_count = 40;
  cfg.region_count = 5;
  cfg.seed = seed;
  return cfg;
}

bool specs_equal(const FaultSpec& a, const FaultSpec& b) {
  return a.kind == b.kind && a.at_s == b.at_s && a.duration_s == b.duration_s &&
         a.target == b.target && a.target_b == b.target_b && a.magnitude == b.magnitude;
}

TEST(FaultPlan, SameSeedSamePlanBitForBit) {
  const FaultPlan a = FaultPlan::generate(chaos_config(99));
  const FaultPlan b = FaultPlan::generate(chaos_config(99));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(specs_equal(a.specs()[i], b.specs()[i])) << "spec " << i << " differs";
  }
}

TEST(FaultPlan, DifferentSeedDifferentPlan) {
  const FaultPlan a = FaultPlan::generate(chaos_config(99));
  const FaultPlan b = FaultPlan::generate(chaos_config(100));
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !specs_equal(a.specs()[i], b.specs()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ArrivalRateIsApproximatelyHonoured) {
  // 2 faults/hour over 100 hours: Poisson(200), std ≈ 14.
  const FaultPlan plan = FaultPlan::generate(chaos_config(7));
  EXPECT_NEAR(static_cast<double>(plan.size()), 200.0, 60.0);
}

TEST(FaultPlan, SpecsAreSortedWithinHorizonAndWellFormed) {
  const auto cfg = chaos_config(13);
  const FaultPlan plan = FaultPlan::generate(cfg);
  ASSERT_FALSE(plan.empty());
  double last = -1.0;
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_GE(spec.at_s, last);
    last = spec.at_s;
    EXPECT_GE(spec.at_s, 0.0);
    EXPECT_LE(spec.at_s, cfg.horizon_s);
    EXPECT_GE(spec.duration_s, 60.0);  // clamped floor
    if (spec.kind == FaultKind::kNetworkPartition) {
      ASSERT_LT(spec.target, cfg.region_count);
      ASSERT_LT(spec.target_b, cfg.region_count);
      EXPECT_NE(spec.target, spec.target_b);
    } else if (spec.kind != FaultKind::kSupernodeCrash) {
      // Generated node faults name concrete victims; crashes may wildcard.
      if (spec.kind == FaultKind::kSlowNode || spec.kind == FaultKind::kProbeBlackhole) {
        ASSERT_LT(spec.target, cfg.supernode_count);
      }
    }
  }
}

TEST(FaultPlan, MixWeightsSelectKinds) {
  auto cfg = chaos_config(21);
  cfg.mix = FaultMix{};
  cfg.mix.slow_node = 0.0;
  cfg.mix.partition = 0.0;
  cfg.mix.loss_burst = 0.0;
  cfg.mix.delay_burst = 0.0;
  cfg.mix.blackhole = 0.0;  // crash-only schedule
  const FaultPlan plan = FaultPlan::generate(cfg);
  ASSERT_FALSE(plan.empty());
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_EQ(spec.kind, FaultKind::kSupernodeCrash);
  }
}

TEST(FaultPlan, ExtraSpecsAreMergedInTimeOrder) {
  auto cfg = chaos_config(33);
  FaultSpec hand;
  hand.kind = FaultKind::kSlowNode;
  hand.at_s = 12.5;
  hand.duration_s = 100.0;
  hand.target = 3;
  hand.magnitude = 55.0;
  cfg.extra_specs.push_back(hand);
  const FaultPlan plan = FaultPlan::generate(cfg);
  bool found = false;
  double last = -1.0;
  for (const FaultSpec& spec : plan.specs()) {
    EXPECT_GE(spec.at_s, last);
    last = spec.at_s;
    found = found || specs_equal(spec, hand);
  }
  EXPECT_TRUE(found);
}

TEST(FaultPlan, ZeroRateEmptyHorizonYieldsEmptyPlan) {
  FaultPlanConfig cfg;
  cfg.enabled = true;
  EXPECT_TRUE(FaultPlan::generate(cfg).empty());
}

TEST(FaultSeed, EnvOverrideWins) {
  ASSERT_EQ(setenv("CLOUDFOG_FAULT_SEED", "424242", 1), 0);
  EXPECT_EQ(fault_seed_from_env(7), 424242u);
  ASSERT_EQ(unsetenv("CLOUDFOG_FAULT_SEED"), 0);
  EXPECT_EQ(fault_seed_from_env(7), 7u);
}

}  // namespace
}  // namespace cloudfog::fault
