# Empty compiler generated dependencies file for cloudfog_reputation.
# This may be replaced when dependencies are built.
