#include "game/quality_ladder.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::game {
namespace {

TEST(QualityLadder, PaperDefaultMatchesTable2) {
  const QualityLadder ladder = QualityLadder::paper_default();
  ASSERT_EQ(ladder.size(), 5u);
  const QualityLevel& top = ladder.at_level(5);
  EXPECT_EQ(top.width, 1280);
  EXPECT_EQ(top.height, 720);
  EXPECT_DOUBLE_EQ(top.bitrate_kbps, 1800.0);
  EXPECT_DOUBLE_EQ(top.latency_requirement_ms, 110.0);
  const QualityLevel& bottom = ladder.at_level(1);
  EXPECT_DOUBLE_EQ(bottom.bitrate_kbps, 300.0);
  EXPECT_DOUBLE_EQ(bottom.latency_requirement_ms, 30.0);
  EXPECT_DOUBLE_EQ(bottom.latency_tolerance, 0.6);
}

TEST(QualityLadder, LevelForLatencyPicksHighestFitting) {
  const QualityLadder ladder = QualityLadder::paper_default();
  // §3.3: "if a game video has a latency requirement of 90 ms, the
  // supernode should use 1200 kbps encoding bitrate (level 4)".
  EXPECT_EQ(ladder.level_for_latency(90.0).level, 4);
  EXPECT_EQ(ladder.level_for_latency(110.0).level, 5);
  EXPECT_EQ(ladder.level_for_latency(200.0).level, 5);
  EXPECT_EQ(ladder.level_for_latency(65.0).level, 2);
}

TEST(QualityLadder, LevelForLatencyFallsBackToLowest) {
  const QualityLadder ladder = QualityLadder::paper_default();
  EXPECT_EQ(ladder.level_for_latency(10.0).level, 1);
}

TEST(QualityLadder, StepUpDownFollowsFig2) {
  const QualityLadder ladder = QualityLadder::paper_default();
  // Fig. 2: 800 kbps steps up to 1200 kbps and down to 500 kbps.
  EXPECT_DOUBLE_EQ(ladder.step_up(3).bitrate_kbps, 1200.0);
  EXPECT_DOUBLE_EQ(ladder.step_down(3).bitrate_kbps, 500.0);
}

TEST(QualityLadder, StepsClampAtEnds) {
  const QualityLadder ladder = QualityLadder::paper_default();
  EXPECT_EQ(ladder.step_up(5).level, 5);
  EXPECT_EQ(ladder.step_down(1).level, 1);
}

TEST(QualityLadder, AdjustUpFactorIsMaxRelativeStep) {
  const QualityLadder ladder = QualityLadder::paper_default();
  // Steps: 300→500 (0.667), 500→800 (0.6), 800→1200 (0.5), 1200→1800 (0.5).
  EXPECT_NEAR(ladder.adjust_up_factor(), 2.0 / 3.0, 1e-12);
}

TEST(QualityLadder, UnknownLevelThrows) {
  const QualityLadder ladder = QualityLadder::paper_default();
  EXPECT_THROW(ladder.at_level(0), cloudfog::ConfigError);
  EXPECT_THROW(ladder.at_level(6), cloudfog::ConfigError);
}

TEST(QualityLadder, ValidationRejectsNonAscendingBitrates) {
  EXPECT_THROW(QualityLadder({QualityLevel{1, 100, 100, 500.0, 50.0, 0.7},
                              QualityLevel{2, 200, 200, 400.0, 70.0, 0.8}}),
               cloudfog::ConfigError);
}

TEST(QualityLadder, ValidationRejectsBadTolerance) {
  EXPECT_THROW(QualityLadder({QualityLevel{1, 100, 100, 500.0, 50.0, 0.0}}),
               cloudfog::ConfigError);
  EXPECT_THROW(QualityLadder({QualityLevel{1, 100, 100, 500.0, 50.0, 1.5}}),
               cloudfog::ConfigError);
}

TEST(FrameBits, MatchesBitrateOverFps) {
  // 1800 kbps at 30 fps → 60 000 bits per frame.
  EXPECT_DOUBLE_EQ(frame_bits(1800.0), 60000.0);
  EXPECT_DOUBLE_EQ(frame_bits(300.0), 10000.0);
}

}  // namespace
}  // namespace cloudfog::game
