#include "game/game_catalog.hpp"

#include "util/require.hpp"

namespace cloudfog::game {

GameCatalog GameCatalog::paper_default() {
  QualityLadder ladder = QualityLadder::paper_default();
  std::vector<GameInfo> games;
  games.push_back(GameInfo{0, "ArenaStrike (FPS)", 30.0, 1, 0.6});
  games.push_back(GameInfo{1, "SkyRacer (racing)", 50.0, 2, 0.7});
  games.push_back(GameInfo{2, "WarBand (action RPG)", 70.0, 3, 0.8});
  games.push_back(GameInfo{3, "EmpireForge (RTS)", 90.0, 4, 0.9});
  games.push_back(GameInfo{4, "MythRealm (MMORPG)", 110.0, 5, 1.0});
  return GameCatalog(std::move(games), std::move(ladder));
}

GameCatalog::GameCatalog(std::vector<GameInfo> games, QualityLadder ladder)
    : games_(std::move(games)), ladder_(std::move(ladder)) {
  CLOUDFOG_REQUIRE(!games_.empty(), "catalog must hold at least one game");
  for (std::size_t i = 0; i < games_.size(); ++i) {
    CLOUDFOG_REQUIRE(games_[i].id == static_cast<GameId>(i), "game ids must be dense 0..n-1");
    // The default level must actually exist and fit the game's latency
    // budget, otherwise the rate adapter would start above requirement.
    const auto& level = ladder_.at_level(games_[i].default_quality_level);
    CLOUDFOG_REQUIRE(level.latency_requirement_ms <= games_[i].latency_requirement_ms,
                     "default quality exceeds the game's latency budget");
  }
}

const GameInfo& GameCatalog::game(GameId id) const {
  CLOUDFOG_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < games_.size(),
                   "game id out of range");
  return games_[static_cast<std::size_t>(id)];
}

const GameInfo& GameCatalog::random_game(util::Rng& rng) const {
  return games_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(games_.size()) - 1))];
}

}  // namespace cloudfog::game
