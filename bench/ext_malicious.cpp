// Extension experiment (paper §3.6, deferred to future work there):
// malicious supernodes deliberately delay game-video packets. The private
// per-player reputation system (§3.2) is the anticipated defence — players
// who experienced the sabotage rank those supernodes below any
// alternative. This sweep quantifies how much of the damage it absorbs.
// The attack arm is a scenario::AdversaryModel (kind = fixed_delay); the
// richer adversaries (whitewashing, collusion, on-off) run through
// bench_scenarios with CI-checked acceptance envelopes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::malicious_supernode_sweep(core::TestbedProfile::kPeerSim,
                                               {0.0, 0.1, 0.2, 0.3, 0.4}, scale));
  return 0;
}
