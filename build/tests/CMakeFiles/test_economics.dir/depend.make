# Empty dependencies file for test_economics.
# This may be replaced when dependencies are built.
