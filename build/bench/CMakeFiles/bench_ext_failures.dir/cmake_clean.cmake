file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_failures.dir/ext_failures.cpp.o"
  "CMakeFiles/bench_ext_failures.dir/ext_failures.cpp.o.d"
  "bench_ext_failures"
  "bench_ext_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
