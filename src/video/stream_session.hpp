// One game-video streaming session: a player watching one game from one
// serving entity (supernode, CDN server or cloud datacenter).
//
// The QoS engine owns path computation (propagation, load shares, jitter
// inflation); the session owns the receiver state — the rate adapter and
// the running continuity — and converts a path observation into a QoS
// sample for the interval.
#pragma once

#include "game/game_catalog.hpp"
#include "video/continuity.hpp"
#include "video/rate_adapter.hpp"

namespace cloudfog::video {

/// What the network gave this stream over an observation interval.
struct PathObservation {
  /// Deterministic end-to-end response latency in ms (playout/processing
  /// + action path + video path + transfer), computed by the QoS engine
  /// for the session's *current* bitrate. Reported as the Fig. 7 metric.
  double response_latency_ms = 0.0;
  /// Delivery latency of a video packet (serving entity → player one-way
  /// + transfer), the quantity the continuity requirement applies to:
  /// §4.1 counts "packets arrived within the required response latency".
  double video_latency_ms = 0.0;
  /// Mean per-packet jitter over the interval (ms), congestion-inflated.
  double jitter_mean_ms = 6.0;
  /// Sustainable delivery rate toward the player (kbps).
  double throughput_kbps = 0.0;
  /// Interval length in seconds.
  double interval_s = 1.0;
  /// Fraction of packets lost outright on top of lateness (injected
  /// update-channel loss; 0 leaves the continuity computation untouched).
  double extra_loss = 0.0;
};

struct QosSample {
  double response_latency_ms = 0.0;
  double continuity = 1.0;       ///< on-time fraction over this interval
  double bitrate_kbps = 0.0;     ///< encoding bitrate used this interval
  RateDecision decision = RateDecision::kHold;
};

class StreamSession {
 public:
  StreamSession(const game::GameCatalog& catalog, game::GameId game,
                RateAdapterConfig adapter_cfg, util::Rng rng = util::Rng(0x5eed));

  game::GameId game_id() const { return game_; }
  const game::GameInfo& game_info() const;
  double current_bitrate_kbps() const { return adapter_.current_bitrate_kbps(); }
  int current_quality_level() const { return adapter_.current_level().level; }

  /// Processes one observation interval; updates adapter + continuity.
  /// Exactly apply(path, continuity_for(path)).
  QosSample observe(const PathObservation& path);

  /// The interval's packet continuity — a pure function of the path, the
  /// game's latency requirement and the current bitrate (no state update).
  /// Split out so the QoS engine can memoize it per unchanged path.
  double continuity_for(const PathObservation& path) const;

  /// Applies an observation whose continuity was already computed (or
  /// memoized); updates the meter and steps the adapter.
  QosSample apply(const PathObservation& path, double continuity);

  /// Session-lifetime continuity (packet-weighted).
  double session_continuity() const { return meter_.continuity(); }
  bool satisfied() const { return meter_.satisfied(); }

  /// Charges a streaming interruption: `outage_s` seconds during which no
  /// packet arrived on time (migration gap, fault-driven fallback). Uses
  /// the same packet weighting as observe(), so the outage dilutes the
  /// lifetime continuity exactly as a fully-late interval would.
  void charge_outage(double outage_s);

  /// Resets lifetime accounting (a new game/day) but keeps the adapter's
  /// learned level.
  void reset_accounting() { meter_.reset(); }

 private:
  const game::GameCatalog& catalog_;
  game::GameId game_;
  RateAdapter adapter_;
  ContinuityMeter meter_;
};

}  // namespace cloudfog::video
