// cloudfog — command-line driver for the library.
//
// Subcommands:
//   run        simulate one system arm and print its QoS summary
//   compare    run all five arms of the paper's evaluation side by side
//   coverage   Fig. 4-style coverage for a datacenter/supernode deployment
//   economics  contributor & provider economics tables
//   world      tick the virtual-world substrate and report server loads
//   report     regenerate every paper figure into CSVs + a Markdown report
//
//   $ ./cloudfog_cli run --arch cloudfog-a --players 2000 --cycles 6 --seed 7
//   $ ./cloudfog_cli compare --profile planetlab --csv
//   $ ./cloudfog_cli coverage --supernodes 300
//   $ ./cloudfog_cli report --out results
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"
#include "world/state_engine.hpp"

namespace {

using namespace cloudfog;

int usage() {
  std::cout <<
      "usage: cloudfog_cli <run|compare|coverage|economics|world|report> [options]\n"
      "\n"
      "common options:\n"
      "  --profile peersim|planetlab   testbed profile (default peersim)\n"
      "  --players N                   population size (default per profile)\n"
      "  --cycles N --warmup N         schedule (default 6/3)\n"
      "  --seed N                      root seed (default 42)\n"
      "  --csv                         CSV output\n"
      "run options:\n"
      "  --arch cloud|cdn|cdn-small|cloudfog-b|cloudfog-a (default cloudfog-a)\n"
      "coverage options:\n"
      "  --supernodes N                supernodes on top of the default DCs\n"
      "world options:\n"
      "  --avatars N --servers N --ticks N\n";
  return 2;
}

core::TestbedProfile profile_of(const util::CliArgs& args) {
  const std::string name = args.get_string("profile", "peersim");
  if (name == "peersim") return core::TestbedProfile::kPeerSim;
  if (name == "planetlab") return core::TestbedProfile::kPlanetLab;
  throw ConfigError("unknown profile: " + name);
}

core::Testbed make_testbed(const util::CliArgs& args) {
  const auto profile = profile_of(args);
  const auto default_players = profile == core::TestbedProfile::kPeerSim ? 10000 : 750;
  const auto players =
      static_cast<std::size_t>(args.get_int("players", default_players));
  const auto cfg = profile == core::TestbedProfile::kPeerSim
                       ? core::TestbedConfig::peersim(players)
                       : core::TestbedConfig::planetlab(players);
  return core::Testbed(cfg, static_cast<std::uint64_t>(args.get_int("seed", 42)));
}

sim::CycleConfig cycles_of(const util::CliArgs& args) {
  sim::CycleConfig cfg;
  cfg.total_cycles = static_cast<int>(args.get_int("cycles", 6));
  cfg.warmup_cycles = static_cast<int>(args.get_int("warmup", 3));
  return cfg;
}

void emit(const util::CliArgs& args, const util::Table& table) {
  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

core::System make_arm(const core::Testbed& testbed, const std::string& arch,
                      std::uint64_t seed) {
  if (arch == "cloud") return core::make_cloud_system(testbed, seed);
  if (arch == "cdn") return core::make_cdn_system(testbed, seed);
  if (arch == "cdn-small") return core::make_small_cdn_system(testbed, seed);
  if (arch == "cloudfog-b") return core::make_cloudfog_basic(testbed, seed);
  if (arch == "cloudfog-a") return core::make_cloudfog_advanced(testbed, seed);
  throw ConfigError("unknown architecture: " + arch);
}

void metrics_rows(util::Table& table, const std::string& name,
                  const core::RunMetrics& m) {
  table.add_row({name, util::format_double(m.response_latency_ms.mean(), 1),
                 util::format_double(m.continuity.mean(), 3),
                 util::format_double(m.satisfied_fraction.mean() * 100.0, 1),
                 util::format_double(m.mos.mean(), 2),
                 util::format_double(m.cloud_egress_mbps.mean(), 1),
                 util::format_double(m.fog_served_fraction.mean() * 100.0, 1)});
}

int cmd_run(const util::CliArgs& args) {
  args.require_known({"profile", "players", "cycles", "warmup", "seed", "csv", "arch"});
  const auto testbed = make_testbed(args);
  const std::string arch = args.get_string("arch", "cloudfog-a");
  auto system = make_arm(testbed, arch, static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto& metrics = system.run(cycles_of(args));
  util::Table table("cloudfog run — " + arch);
  table.set_header({"arm", "latency (ms)", "continuity", "satisfied (%)", "MOS",
                    "cloud egress (Mbps)", "fog served (%)"});
  metrics_rows(table, arch, metrics);
  emit(args, table);
  return 0;
}

int cmd_compare(const util::CliArgs& args) {
  args.require_known({"profile", "players", "cycles", "warmup", "seed", "csv"});
  const auto testbed = make_testbed(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  util::Table table("cloudfog compare — all arms");
  table.set_header({"arm", "latency (ms)", "continuity", "satisfied (%)", "MOS",
                    "cloud egress (Mbps)", "fog served (%)"});
  for (const std::string arch : {"cloud", "cdn-small", "cdn", "cloudfog-b", "cloudfog-a"}) {
    auto system = make_arm(testbed, arch, seed);
    metrics_rows(table, arch, system.run(cycles_of(args)));
  }
  emit(args, table);
  return 0;
}

int cmd_coverage(const util::CliArgs& args) {
  args.require_known({"profile", "players", "seed", "csv", "supernodes"});
  const auto profile = profile_of(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int(
      "seed", 42));
  const auto sns = static_cast<std::size_t>(args.get_int("supernodes", 0));
  emit(args, core::coverage_vs_supernodes(profile, {0, sns}, {30, 50, 70, 90, 110}, seed));
  return 0;
}

int cmd_economics(const util::CliArgs& args) {
  args.require_known({"csv"});
  emit(args, core::supernode_economics({4, 8, 12, 16, 20, 24}));
  emit(args, core::provider_savings({100, 200, 400, 800}));
  return 0;
}

int cmd_world(const util::CliArgs& args) {
  args.require_known({"avatars", "servers", "ticks", "seed", "csv"});
  world::WorldConfig wcfg;
  world::VirtualWorld vw(wcfg, util::Rng(static_cast<std::uint64_t>(args.get_int("seed", 42))));
  const auto avatars = args.get_int("avatars", 3000);
  for (std::int64_t i = 0; i < avatars; ++i) vw.spawn();
  world::StateEngineConfig scfg;
  scfg.server_count = static_cast<std::size_t>(args.get_int("servers", 8));
  world::GameStateEngine engine(vw, scfg);
  util::Table table("cloudfog world — tick report");
  table.set_header({"tick", "compute (ms)", "interactions", "cross-server", "imbalance"});
  const auto ticks = args.get_int("ticks", 50);
  for (std::int64_t t = 0; t < ticks; ++t) {
    const auto stats = engine.tick(0.1);
    if (t % std::max<std::int64_t>(1, ticks / 10) == 0) {
      table.add_row({std::to_string(t), util::format_double(stats.compute_ms, 2),
                     std::to_string(stats.interactions),
                     std::to_string(stats.cross_server_interactions),
                     util::format_double(stats.imbalance, 2)});
    }
  }
  emit(args, table);
  return 0;
}

int cmd_report(const util::CliArgs& args) {
  args.require_known({"out", "profile", "seed", "cycles", "warmup", "quick"});
  const std::filesystem::path out_dir = args.get_string("out", "results");
  std::filesystem::create_directories(out_dir);
  const auto profile = profile_of(args);
  core::ExperimentScale scale;
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  scale.cycles = static_cast<int>(args.get_int("cycles", scale.cycles));
  scale.warmup = static_cast<int>(args.get_int("warmup", scale.warmup));
  if (args.get_bool("quick")) {
    const auto seed = scale.seed;
    scale = core::ExperimentScale::quick();
    scale.seed = seed;
  }

  std::ofstream report(out_dir / "REPORT.md");
  report << "# CloudFog figure report\n\nGenerated by `cloudfog_cli report` — "
         << scale.cycles << " cycles (" << scale.warmup << " warm-up), seed "
         << scale.seed << ".\n\n";

  auto save = [&](const std::string& name, const util::Table& table) {
    std::ofstream csv(out_dir / (name + ".csv"));
    table.print_csv(csv);
    report << "## " << name << "\n\n```\n";
    table.print(report);
    report << "```\n\n";
    std::cout << "wrote " << (out_dir / (name + ".csv")).string() << "\n";
  };

  const std::vector<std::size_t> dc_counts =
      profile == core::TestbedProfile::kPeerSim
          ? std::vector<std::size_t>{5, 10, 15, 20, 25}
          : std::vector<std::size_t>{2, 4, 6, 8, 10};
  const std::vector<std::size_t> sn_counts =
      profile == core::TestbedProfile::kPeerSim
          ? std::vector<std::size_t>{0, 200, 400, 600}
          : std::vector<std::size_t>{0, 10, 20, 30};
  const std::vector<std::size_t> populations =
      profile == core::TestbedProfile::kPeerSim
          ? std::vector<std::size_t>{2000, 6000, 10000}
          : std::vector<std::size_t>{250, 500, 750};
  const std::vector<double> reqs{30, 50, 70, 90, 110};

  save("fig4a_coverage_datacenters",
       core::coverage_vs_datacenters(profile, dc_counts, reqs, scale.seed));
  save("fig4b_coverage_supernodes",
       core::coverage_vs_supernodes(profile, sn_counts, reqs, scale.seed));
  const auto population = core::population_sweep(profile, populations, scale);
  save("fig6_bandwidth", population.bandwidth);
  save("fig7_latency", population.latency);
  save("fig8_continuity", population.continuity);
  save("fig10_reputation",
       core::satisfaction_sweep(profile, core::SatisfactionStrategy::kReputation,
                                {5, 15, 25}, scale));
  save("fig11_adaptation",
       core::satisfaction_sweep(profile, core::SatisfactionStrategy::kRateAdaptation,
                                {5, 15, 25}, scale));
  save("fig12_server_assignment",
       core::server_assignment_sweep(profile, {5, 15, 25}, scale));
  const auto provisioning = core::provisioning_sweep(
      profile,
      profile == core::TestbedProfile::kPeerSim ? std::vector<double>{10, 30, 60}
                                                : std::vector<double>{2, 4, 7},
      scale);
  save("fig13_provisioning_bandwidth", provisioning.bandwidth);
  save("fig14_provisioning_latency", provisioning.latency);
  save("fig15_provisioning_continuity", provisioning.continuity);
  save("fig16a_supernode_economics", core::supernode_economics({4, 8, 12, 16, 20, 24}));
  save("fig16b_provider_savings", core::provider_savings({100, 200, 400, 800}));
  std::cout << "wrote " << (out_dir / "REPORT.md").string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliArgs args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string& command = args.positional().front();
    if (command == "run") return cmd_run(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "coverage") return cmd_coverage(args);
    if (command == "economics") return cmd_economics(args);
    if (command == "world") return cmd_world(args);
    if (command == "report") return cmd_report(args);
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const cloudfog::ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
