// Interned trace-note vocabulary.
//
// TraceEvent used to carry a std::string note built per event at the call
// site ("granted", "within_lmax", "wanted=" + std::to_string(n), ...),
// which put an allocation on every traced hot-path event. The note table
// interns each distinct note text once, process-wide, behind a small
// NoteId; events carry the id (plus an optional integer argument appended
// at serialization time), so pushing a trace event never allocates.
//
// Interning is thread-safe (call sites in parallel QoS shards intern
// through function-local statics), but is expected to be cold: hot call
// sites intern once and reuse the id.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cloudfog::obs {

/// Handle of an interned note text. Index 0 is the empty note.
struct NoteId {
  std::uint32_t index = 0;
};

/// Interns `text` and returns its stable process-wide id. The same text
/// always yields the same id; the empty string yields NoteId{0}.
NoteId intern_note(std::string_view text);

/// Text of an interned note. Valid for the process lifetime.
std::string_view note_text(NoteId id);

/// Number of distinct interned notes (including the empty note).
std::size_t note_count();

/// A note as attached to a trace event: an interned text plus an optional
/// integer argument. The serialized note is the text with the argument's
/// decimal representation appended ("wanted=" + 42 -> "wanted=42"), which
/// keeps variable notes allocation-free on the emit path.
struct Note {
  NoteId id{};
  std::int64_t arg = 0;
  bool has_arg = false;

  constexpr Note() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): NoteId -> Note is the
  // common "plain interned note" case at every trace call site.
  constexpr Note(NoteId note_id) : id(note_id) {}
  constexpr Note(NoteId note_id, std::int64_t argument)
      : id(note_id), arg(argument), has_arg(true) {}

  bool empty() const { return id.index == 0 && !has_arg; }

  /// Fully resolved note text, argument included. Allocates; meant for
  /// tests and offline consumers, not the emit path.
  std::string text() const;
};

}  // namespace cloudfog::obs
