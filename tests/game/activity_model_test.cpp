#include "game/activity_model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::game {
namespace {

TEST(ActivityModel, DurationClassFractionsMatchPaper) {
  const ActivityModel model;
  util::Rng rng(1);
  int casual = 0;
  int regular = 0;
  int hardcore = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    switch (model.sample_duration_class(rng)) {
      case DurationClass::kCasual: ++casual; break;
      case DurationClass::kRegular: ++regular; break;
      case DurationClass::kHardcore: ++hardcore; break;
    }
  }
  EXPECT_NEAR(casual / static_cast<double>(n), 0.50, 0.01);
  EXPECT_NEAR(regular / static_cast<double>(n), 0.30, 0.01);
  EXPECT_NEAR(hardcore / static_cast<double>(n), 0.20, 0.01);
}

TEST(ActivityModel, PlayHoursWithinClassRanges) {
  const ActivityModel model;
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double casual = model.sample_play_hours(DurationClass::kCasual, rng);
    EXPECT_GT(casual, 0.0);
    EXPECT_LE(casual, 2.0);
    const double regular = model.sample_play_hours(DurationClass::kRegular, rng);
    EXPECT_GE(regular, 2.0);
    EXPECT_LE(regular, 5.0);
    const double hardcore = model.sample_play_hours(DurationClass::kHardcore, rng);
    EXPECT_GE(hardcore, 5.0);
    EXPECT_LE(hardcore, 24.0);
  }
}

TEST(ActivityModel, StartSubcyclesFavorTheEveningPeak) {
  const ActivityModel model;
  util::Rng rng(3);
  int peak_starts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int start = model.sample_start_subcycle(rng);
    ASSERT_GE(start, 1);
    ASSERT_LE(start, 24);
    if (start >= 20) ++peak_starts;
  }
  // §4.1: 70 % of sessions begin in subcycles 20–24.
  EXPECT_NEAR(peak_starts / static_cast<double>(n), 0.70, 0.01);
}

TEST(ActivityModel, ChooseGameFollowsFriendMajority) {
  const GameCatalog catalog = GameCatalog::paper_default();
  const ActivityModel model;
  util::Rng rng(4);
  EXPECT_EQ(model.choose_game(catalog, {2, 2, 4}, rng), 2);
  EXPECT_EQ(model.choose_game(catalog, {0}, rng), 0);
}

TEST(ActivityModel, ChooseGameRandomWithoutFriends) {
  const GameCatalog catalog = GameCatalog::paper_default();
  const ActivityModel model;
  util::Rng rng(5);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i) {
    ++seen[static_cast<std::size_t>(model.choose_game(catalog, {}, rng))];
  }
  for (int count : seen) EXPECT_GT(count, 250);
}

TEST(DailySession, OnlineWindowMatchesStartAndHours) {
  DailySession s;
  s.start_subcycle = 10;
  s.hours = 2.5;  // covers subcycles 10, 11, 12
  EXPECT_FALSE(s.online_at(9));
  EXPECT_TRUE(s.online_at(10));
  EXPECT_TRUE(s.online_at(12));
  EXPECT_FALSE(s.online_at(13));
}

TEST(DailySession, TruncatesAtMidnight) {
  DailySession s;
  s.start_subcycle = 23;
  s.hours = 10.0;
  EXPECT_TRUE(s.online_at(24));
  EXPECT_FALSE(s.online_at(25, 24));
}

TEST(DailySession, RollProducesValidSessions) {
  const ActivityModel model;
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const DailySession s = roll_daily_session(model, DurationClass::kRegular, rng);
    EXPECT_GE(s.start_subcycle, 1);
    EXPECT_LE(s.start_subcycle, 24);
    EXPECT_GT(s.hours, 0.0);
  }
}

TEST(ActivityModel, RejectsBadConfig) {
  ActivityModelConfig cfg;
  cfg.casual_fraction = 0.8;
  cfg.regular_fraction = 0.5;  // sums over 1
  EXPECT_THROW(ActivityModel{cfg}, cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::game
