#include "net/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/require.hpp"

namespace cloudfog::net {

util::EmpiricalDistribution load_latency_histogram(std::istream& in) {
  std::vector<util::EmpiricalDistribution::Bin> bins;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    double bucket_ms = 0.0;
    double count = 0.0;
    if (!(fields >> bucket_ms)) continue;  // blank or comment-only line
    CLOUDFOG_REQUIRE(static_cast<bool>(fields >> count),
                     "histogram line " + std::to_string(line_no) + " is missing a count");
    std::string trailing;
    CLOUDFOG_REQUIRE(!(fields >> trailing),
                     "histogram line " + std::to_string(line_no) + " has trailing fields");
    CLOUDFOG_REQUIRE(bucket_ms >= 0.0,
                     "histogram line " + std::to_string(line_no) + ": negative latency");
    CLOUDFOG_REQUIRE(count > 0.0,
                     "histogram line " + std::to_string(line_no) + ": non-positive count");
    bins.push_back({bucket_ms, count});
  }
  CLOUDFOG_REQUIRE(!bins.empty(), "histogram holds no buckets");
  return util::EmpiricalDistribution(std::move(bins));
}

util::EmpiricalDistribution load_latency_histogram_file(const std::string& path) {
  std::ifstream in(path);
  CLOUDFOG_REQUIRE(in.good(), "cannot open histogram file: " + path);
  return load_latency_histogram(in);
}

void save_latency_histogram(std::ostream& out,
                            const std::vector<util::EmpiricalDistribution::Bin>& bins) {
  out << "# latency_ms count\n";
  for (const auto& bin : bins) {
    out << bin.value << ' ' << bin.weight << '\n';
  }
}

}  // namespace cloudfog::net
