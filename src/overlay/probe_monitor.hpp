// Liveness monitoring of a serving supernode (§3.2.2: "normal nodes probe
// their supernodes periodically for connection maintenance").
//
// Every period the monitor sends a LivenessProbe; a reply arriving before
// the next tick resets the miss counter. After `miss_limit` consecutive
// silent periods the supernode is declared dead and the failure callback
// fires (once) with the detection timestamp — the first component of the
// paper's ~0.8 s migration latency.
#pragma once

#include <functional>
#include <memory>

#include "overlay/network.hpp"
#include "sim/simulator.hpp"

namespace cloudfog::overlay {

struct ProbeMonitorConfig {
  double period_ms = 250.0;
  int miss_limit = 2;
};

class ProbeMonitor {
 public:
  using FailureCallback = std::function<void(double detected_at_ms)>;

  ProbeMonitor(sim::Simulator& sim, MessageNetwork& network, Address self, Address target,
               ProbeMonitorConfig cfg, FailureCallback on_failure);
  ~ProbeMonitor();

  ProbeMonitor(const ProbeMonitor&) = delete;
  ProbeMonitor& operator=(const ProbeMonitor&) = delete;

  /// Feed a LivenessReply from the target.
  void on_message(const Message& msg);

  void stop();
  bool running() const { return running_; }
  int consecutive_misses() const { return misses_; }
  Address target() const { return target_; }

 private:
  void tick();

  sim::Simulator& sim_;
  MessageNetwork& network_;
  Address self_;
  Address target_;
  ProbeMonitorConfig cfg_;
  FailureCallback on_failure_;
  bool running_ = true;
  bool awaiting_reply_ = false;
  int misses_ = 0;
  int epoch_ = 0;  // invalidates queued ticks after stop()
  /// Queued simulator callbacks hold a weak reference to this token; if
  /// the monitor is destroyed before they fire, they observe expiry
  /// instead of dereferencing a dangling `this`.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace cloudfog::overlay
