file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_economics.dir/fig16_economics.cpp.o"
  "CMakeFiles/bench_fig16_economics.dir/fig16_economics.cpp.o.d"
  "bench_fig16_economics"
  "bench_fig16_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
