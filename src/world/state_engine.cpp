#include "world/state_engine.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::world {

GameStateEngine::GameStateEngine(VirtualWorld& world, StateEngineConfig cfg)
    : world_(world),
      cfg_(cfg),
      partition_(build_kdtree_partition(world, cfg.region_count, cfg.server_count)) {
  CLOUDFOG_REQUIRE(cfg.server_count >= 1, "need at least one server");
  CLOUDFOG_REQUIRE(cfg.rebalance_threshold >= 1.0, "threshold below perfect balance");
}

void GameStateEngine::rebalance() {
  partition_ = build_kdtree_partition(world_, cfg_.region_count, cfg_.server_count);
}

TickStats GameStateEngine::tick(double dt) {
  world_.step(dt);

  TickStats stats;
  const auto loads = partition_.server_loads(world_, cfg_.server_count);
  stats.imbalance = WorldPartition::imbalance(loads);

  // Per-server work: avatar updates plus its share of interactions.
  std::vector<double> work_ms(cfg_.server_count, cfg_.base_compute_ms);
  for (std::size_t s = 0; s < loads.size(); ++s) {
    work_ms[s] += static_cast<double>(loads[s]) * cfg_.per_avatar_us / 1000.0;
  }
  const auto pairs = world_.interaction_pairs();
  stats.interactions = pairs.size();
  for (const auto& [a, b] : pairs) {
    const std::size_t sa = partition_.server_of(world_.avatar(a).position);
    const std::size_t sb = partition_.server_of(world_.avatar(b).position);
    work_ms[sa] += cfg_.per_interaction_us / 1000.0;
    if (sa != sb) ++stats.cross_server_interactions;
  }

  stats.compute_ms =
      *std::max_element(work_ms.begin(), work_ms.end()) +
      static_cast<double>(stats.cross_server_interactions) * cfg_.cross_sync_ms_per_pair;

  if (stats.imbalance > cfg_.rebalance_threshold && world_.population() > 0) {
    rebalance();
    stats.rebalanced = true;
  }
  return stats;
}

double GameStateEngine::update_feed_bps(const Vec2& center, double radius,
                                        double tick_rate_hz) const {
  CLOUDFOG_REQUIRE(tick_rate_hz > 0.0, "tick rate must be positive");
  const auto nearby = world_.population_near(center, radius);
  return static_cast<double>(nearby) * cfg_.update_bits_per_avatar * tick_rate_hz;
}

}  // namespace cloudfog::world
