#include "world/kdtree_partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace cloudfog::world {

WorldPartition::WorldPartition(std::vector<Region> regions, double width, double height)
    : regions_(std::move(regions)), width_(width), height_(height) {
  CLOUDFOG_REQUIRE(!regions_.empty(), "partition needs at least one region");
}

std::size_t WorldPartition::region_of(const Vec2& p) const {
  // Clamp points on the outer boundary just inside, so the half-open
  // rectangles cover them.
  Vec2 q{std::min(p.x, width_ * (1.0 - 1e-12)), std::min(p.y, height_ * (1.0 - 1e-12))};
  q.x = std::max(q.x, 0.0);
  q.y = std::max(q.y, 0.0);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].bounds.contains(q)) return i;
  }
  CLOUDFOG_REQUIRE(false, "partition does not cover the world");
  return 0;  // unreachable
}

std::vector<std::size_t> WorldPartition::server_loads(const VirtualWorld& world,
                                                      std::size_t server_count) const {
  CLOUDFOG_REQUIRE(server_count >= 1, "need at least one server");
  std::vector<std::size_t> loads(server_count, 0);
  for (const Avatar& avatar : world.avatars()) {
    if (!avatar.alive) continue;
    const std::size_t server = server_of(avatar.position);
    CLOUDFOG_REQUIRE(server < server_count, "region mapped to unknown server");
    ++loads[server];
  }
  return loads;
}

double WorldPartition::imbalance(const std::vector<std::size_t>& loads) {
  CLOUDFOG_REQUIRE(!loads.empty(), "no loads");
  std::size_t total = 0;
  std::size_t peak = 0;
  for (std::size_t l : loads) {
    total += l;
    peak = std::max(peak, l);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(peak) / mean;
}

double WorldPartition::cross_server_interaction_fraction(const VirtualWorld& world) const {
  const auto pairs = world.interaction_pairs();
  if (pairs.empty()) return 0.0;
  std::size_t cross = 0;
  for (const auto& [a, b] : pairs) {
    if (server_of(world.avatar(a).position) != server_of(world.avatar(b).position)) ++cross;
  }
  return static_cast<double>(cross) / static_cast<double>(pairs.size());
}

namespace {

void split(std::vector<Vec2>& points, std::size_t begin, std::size_t end, Rect bounds,
           std::size_t leaves, std::vector<Region>& out) {
  if (leaves == 1) {
    Region region;
    region.bounds = bounds;
    region.load = end - begin;
    out.push_back(region);
    return;
  }
  // Split at the median along the wider axis, like [13].
  const bool split_x = (bounds.x1 - bounds.x0) >= (bounds.y1 - bounds.y0);
  const std::size_t mid = begin + (end - begin) / 2;
  auto cmp_x = [](const Vec2& a, const Vec2& b) { return a.x < b.x; };
  auto cmp_y = [](const Vec2& a, const Vec2& b) { return a.y < b.y; };
  double cut;
  if (end > begin) {
    std::nth_element(points.begin() + static_cast<std::ptrdiff_t>(begin),
                     points.begin() + static_cast<std::ptrdiff_t>(mid),
                     points.begin() + static_cast<std::ptrdiff_t>(end),
                     split_x ? cmp_x : cmp_y);
    cut = split_x ? points[mid].x : points[mid].y;
  } else {
    // Empty subtree: cut geometrically.
    cut = split_x ? (bounds.x0 + bounds.x1) / 2.0 : (bounds.y0 + bounds.y1) / 2.0;
  }
  // Guard degenerate cuts (all points identical on the axis).
  if (split_x) {
    cut = std::clamp(cut, bounds.x0 + 1e-9, bounds.x1 - 1e-9);
  } else {
    cut = std::clamp(cut, bounds.y0 + 1e-9, bounds.y1 - 1e-9);
  }
  Rect lo = bounds;
  Rect hi = bounds;
  if (split_x) {
    lo.x1 = cut;
    hi.x0 = cut;
  } else {
    lo.y1 = cut;
    hi.y0 = cut;
  }
  split(points, begin, mid, lo, leaves / 2, out);
  split(points, mid, end, hi, leaves - leaves / 2, out);
}

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

WorldPartition build_kdtree_partition(const VirtualWorld& world, std::size_t region_count,
                                      std::size_t server_count) {
  CLOUDFOG_REQUIRE(is_power_of_two(region_count), "region count must be a power of two");
  CLOUDFOG_REQUIRE(server_count >= 1, "need at least one server");
  std::vector<Vec2> points;
  points.reserve(world.population());
  for (const Avatar& avatar : world.avatars()) {
    if (avatar.alive) points.push_back(avatar.position);
  }
  const Rect bounds{0.0, 0.0, world.config().width, world.config().height};
  std::vector<Region> regions;
  regions.reserve(region_count);
  split(points, 0, points.size(), bounds, region_count, regions);
  // Leaves carry (near-)equal population, so round-robin assignment gives
  // every server (near-)equal load.
  for (std::size_t i = 0; i < regions.size(); ++i) regions[i].server = i % server_count;
  return WorldPartition(std::move(regions), world.config().width, world.config().height);
}

WorldPartition build_grid_partition(const VirtualWorld& world, std::size_t rows,
                                    std::size_t cols, std::size_t server_count) {
  CLOUDFOG_REQUIRE(rows >= 1 && cols >= 1, "grid must have at least one cell");
  CLOUDFOG_REQUIRE(server_count >= 1, "need at least one server");
  const double w = world.config().width / static_cast<double>(cols);
  const double h = world.config().height / static_cast<double>(rows);
  std::vector<Region> regions;
  regions.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Region region;
      region.bounds = Rect{static_cast<double>(c) * w, static_cast<double>(r) * h,
                           static_cast<double>(c + 1) * w, static_cast<double>(r + 1) * h};
      region.server = (r * cols + c) % server_count;
      regions.push_back(region);
    }
  }
  WorldPartition partition(std::move(regions), world.config().width, world.config().height);
  return partition;
}

}  // namespace cloudfog::world
