
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/social/community_partitioner_test.cpp" "tests/CMakeFiles/test_social.dir/social/community_partitioner_test.cpp.o" "gcc" "tests/CMakeFiles/test_social.dir/social/community_partitioner_test.cpp.o.d"
  "/root/repo/tests/social/friendship_tracker_test.cpp" "tests/CMakeFiles/test_social.dir/social/friendship_tracker_test.cpp.o" "gcc" "tests/CMakeFiles/test_social.dir/social/friendship_tracker_test.cpp.o.d"
  "/root/repo/tests/social/modularity_test.cpp" "tests/CMakeFiles/test_social.dir/social/modularity_test.cpp.o" "gcc" "tests/CMakeFiles/test_social.dir/social/modularity_test.cpp.o.d"
  "/root/repo/tests/social/social_graph_test.cpp" "tests/CMakeFiles/test_social.dir/social/social_graph_test.cpp.o" "gcc" "tests/CMakeFiles/test_social.dir/social/social_graph_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
