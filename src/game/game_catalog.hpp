// Game catalog.
//
// §4.1: "We defined 5 games, their quality levels and latency requirements
// are shown in Table 2." Each game therefore corresponds to one ladder
// entry: its default streaming quality is the ladder level whose latency
// requirement matches the game's genre sensitivity (FPS-like games are the
// strictest, turn-based the most lenient).
#pragma once

#include <string>
#include <vector>

#include "game/quality_ladder.hpp"
#include "util/rng.hpp"

namespace cloudfog::game {

using GameId = int;

struct GameInfo {
  GameId id = 0;
  std::string name;
  /// Total response-latency requirement for a satisfying experience (ms).
  double latency_requirement_ms = 100.0;
  /// Default (maximum) streaming quality level for this game.
  int default_quality_level = 5;
  /// ρ — tolerance to latency/loss, from Table 2.
  double latency_tolerance = 1.0;
};

class GameCatalog {
 public:
  /// The evaluation's five games, one per Table 2 row (strictest first).
  static GameCatalog paper_default();

  GameCatalog(std::vector<GameInfo> games, QualityLadder ladder);

  std::size_t size() const { return games_.size(); }
  const GameInfo& game(GameId id) const;
  const std::vector<GameInfo>& games() const { return games_; }
  const QualityLadder& ladder() const { return ladder_; }

  /// Uniformly random game (a joining player with no friends online).
  const GameInfo& random_game(util::Rng& rng) const;

 private:
  std::vector<GameInfo> games_;
  QualityLadder ladder_;
};

}  // namespace cloudfog::game
