// Shared helpers for the figure-regeneration binaries.
//
// Every binary accepts optional arguments:
//   --paper              run at the paper's full scale (28 cycles, 21
//                        warm-up) — slower, but the exact §4.1 schedule;
//   --quick              minimal scale for smoke-testing;
//   --csv                emit CSV instead of aligned tables (for plotting);
//   --seed <n>           override the experiment seed;
//   --trace <file>       stream the structured event trace as JSONL;
//   --report-json <file> write the run report (metrics + counters +
//                        phase profile) on exit;
//   --obs-off            disable the observability recorder entirely;
//   --threads <n>        QoS worker threads (sets CLOUDFOG_THREADS before
//                        any System is built; results are byte-identical
//                        at every thread count).
// Default is a reduced-but-faithful scale (6 cycles, 3 warm-up).
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "obs/obs.hpp"

namespace cloudfog::bench {

inline bool& csv_mode() {
  static bool mode = false;
  return mode;
}

/// Owns the trace sink and writes the run report when the process exits.
/// Instantiated only after Recorder::global() (a Meyer's singleton), so its
/// destructor runs before the recorder is torn down.
class ObsSession {
 public:
  static ObsSession& instance() {
    static ObsSession session;
    return session;
  }

  void configure(std::string trace_path, std::string report_path) {
    trace_path_ = std::move(trace_path);
    report_path_ = std::move(report_path);
    if (!trace_path_.empty()) {
      trace_out_.open(trace_path_);
      if (trace_out_) {
        obs::Recorder::global().trace_buffer().set_sink(&trace_out_);
      } else {
        std::cerr << "warning: cannot open trace file " << trace_path_ << '\n';
        trace_path_.clear();
      }
    }
  }

  ~ObsSession() { finalize(); }

  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    auto& rec = obs::Recorder::global();
    if (!trace_path_.empty()) {
      rec.trace_buffer().flush();
      rec.trace_buffer().set_sink(nullptr);
      trace_out_.close();
    }
    if (!report_path_.empty()) {
      std::ofstream os(report_path_);
      if (os) {
        obs::write_report_json(os, rec);
      } else {
        std::cerr << "warning: cannot open report file " << report_path_ << '\n';
      }
    }
  }

 private:
  ObsSession() = default;

  std::string trace_path_;
  std::string report_path_;
  std::ofstream trace_out_;
  bool finalized_ = false;
};

inline core::ExperimentScale scale_from_args(int argc, char** argv,
                                             core::ExperimentScale fallback = {}) {
  core::ExperimentScale scale = fallback;
  bool obs_off = false;
  std::string trace_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      const auto seed = scale.seed;
      scale = core::ExperimentScale::paper();
      scale.seed = seed;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      const auto seed = scale.seed;
      scale = core::ExperimentScale::quick();
      scale.seed = seed;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_mode() = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      scale.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report-json") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-off") == 0) {
      obs_off = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // The engine reads the variable at construction; every System in
      // this process picks it up.
      setenv("CLOUDFOG_THREADS", argv[++i], 1);
    }
  }
  // Touch the recorder singleton before the session singleton so the
  // session's destructor (flush + report) runs first at exit.
  obs::Recorder::global().set_enabled(!obs_off);
  ObsSession::instance().configure(obs_off ? std::string{} : trace_path,
                                   obs_off ? std::string{} : report_path);
  return scale;
}

inline void print(const util::Table& table) {
  if (csv_mode()) {
    table.print_csv(std::cout);
    std::cout << '\n';
  } else {
    table.print(std::cout);
  }
}

}  // namespace cloudfog::bench
