#include "net/latency_model.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::net {

LatencyModel::LatencyModel(LatencyModelConfig cfg) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.propagation_ms_per_km > 0.0, "propagation delay must be positive");
  CLOUDFOG_REQUIRE(cfg.route_inflation >= 1.0, "route inflation below 1 is unphysical");
  CLOUDFOG_REQUIRE(cfg.hop_overhead_ms >= 0.0, "hop overhead must be non-negative");
  CLOUDFOG_REQUIRE(cfg.tcp_throughput_mbit_s > 0.0, "tcp constant must be positive");
  CLOUDFOG_REQUIRE(cfg.max_flow_mbps > 0.0, "max flow rate must be positive");
}

double LatencyModel::one_way_ms(const Endpoint& a, const Endpoint& b) const {
  const double km = distance_km(a.position, b.position) * cfg_.route_inflation;
  return a.access_latency_ms + b.access_latency_ms + km * cfg_.propagation_ms_per_km +
         cfg_.hop_overhead_ms;
}

double LatencyModel::rtt_ms(const Endpoint& a, const Endpoint& b) const {
  return 2.0 * one_way_ms(a, b);
}

double LatencyModel::wan_throughput_mbps(const Endpoint& a, const Endpoint& b) const {
  return wan_throughput_mbps(rtt_ms(a, b));
}

double LatencyModel::wan_throughput_mbps(double rtt_ms) const {
  CLOUDFOG_REQUIRE(rtt_ms > 0.0, "RTT must be positive");
  const double rtt_s = rtt_ms / 1000.0;
  return std::min(cfg_.max_flow_mbps, cfg_.tcp_throughput_mbit_s / rtt_s);
}

Endpoint make_endpoint(GeoPoint position, const PingTrace& trace, util::Rng& rng) {
  return Endpoint{position, trace.sample_access_latency_ms(rng)};
}

Endpoint make_infrastructure_endpoint(GeoPoint position) { return Endpoint{position, 1.0}; }

}  // namespace cloudfog::net
