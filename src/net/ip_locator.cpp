#include "net/ip_locator.hpp"

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::net {

IpLocator::IpLocator(double error_sigma_km) : error_sigma_km_(error_sigma_km) {
  CLOUDFOG_REQUIRE(error_sigma_km >= 0.0, "geolocation error must be non-negative");
}

IpAddress IpLocator::register_node(GeoPoint true_position, util::Rng& rng) {
  const IpAddress ip = next_ip_++;
  GeoPoint noisy{true_position.x_km + error_sigma_km_ * util::sample_standard_normal(rng),
                 true_position.y_km + error_sigma_km_ * util::sample_standard_normal(rng)};
  table_.emplace(ip, noisy);
  return ip;
}

void IpLocator::unregister_node(IpAddress ip) { table_.erase(ip); }

std::optional<GeoPoint> IpLocator::locate(IpAddress ip) const {
  const auto it = table_.find(ip);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cloudfog::net
