#include "reputation/reputation_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::reputation {

ReputationStore::ReputationStore(double aging_factor, std::size_t max_ratings_per_supernode)
    : aging_factor_(aging_factor), max_ratings_(max_ratings_per_supernode) {
  CLOUDFOG_REQUIRE(aging_factor > 0.0 && aging_factor < 1.0, "λ must be in (0,1)");
  CLOUDFOG_REQUIRE(max_ratings_per_supernode >= 1, "must retain at least one rating");
}

void ReputationStore::add_rating(SupernodeId sn, double value, int day) {
  CLOUDFOG_REQUIRE(value >= 0.0 && value <= 1.0, "rating out of [0,1]");
  CLOUDFOG_REQUIRE(day >= 1, "days are 1-based");
  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    static const obs::CounterId ratings = rec.registry().counter("reputation.ratings");
    rec.registry().add(ratings);
    rec.trace(obs::EventKind::kRating, static_cast<std::int64_t>(sn), day, value);
  }
  auto& list = ratings_[sn];
  list.push_back(Rating{value, day});
  if (list.size() > max_ratings_) {
    // Evict the oldest rating (smallest day; FIFO among ties).
    const auto oldest = std::min_element(
        list.begin(), list.end(), [](const Rating& a, const Rating& b) { return a.day < b.day; });
    list.erase(oldest);
  }
}

double ReputationStore::score(SupernodeId sn, int current_day) const {
  const auto it = ratings_.find(sn);
  if (it == ratings_.end() || it->second.empty()) return 0.0;
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (const Rating& r : it->second) {
    const int age = std::max(0, current_day - r.day);
    const double w = std::pow(aging_factor_, static_cast<double>(age));
    weighted += r.value * w;
    weight_sum += w;
  }
  return weight_sum == 0.0 ? 0.0 : weighted / weight_sum;
}

std::size_t ReputationStore::rating_count(SupernodeId sn) const {
  const auto it = ratings_.find(sn);
  return it == ratings_.end() ? 0 : it->second.size();
}

void ReputationStore::forget(SupernodeId sn) { ratings_.erase(sn); }

std::vector<SupernodeId> ReputationStore::rated_supernodes() const {
  std::vector<SupernodeId> out;
  out.reserve(ratings_.size());
  // NOLINTNEXTLINE(cloudfog-unordered-iter): keys only, sorted before returning
  for (const auto& [sn, list] : ratings_) {
    if (!list.empty()) out.push_back(sn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ReputationStore::prune(int current_day, double min_weight) {
  // NOLINTNEXTLINE(cloudfog-unordered-iter): erase-only pass, order-insensitive
  for (auto it = ratings_.begin(); it != ratings_.end();) {
    auto& list = it->second;
    std::erase_if(list, [&](const Rating& r) {
      const int age = std::max(0, current_day - r.day);
      return std::pow(aging_factor_, static_cast<double>(age)) < min_weight;
    });
    if (list.empty()) {
      it = ratings_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cloudfog::reputation
