#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/require.hpp"

namespace cloudfog::util {
namespace {

TEST(Rng, SameSeedProducesIdenticalSequences) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() != b.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(123, 1);
  Rng b(123, 2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() != b.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(6);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    saw_lo |= v == 0;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(8);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, -1);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, -1);
  }
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_int(3, 2), ConfigError);
}

TEST(Rng, UniformDoubleRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.5, 7.5);
    ASSERT_GE(v, 2.5);
    ASSERT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform(1.0, 1.0), ConfigError);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceRejectsOutOfRange) {
  Rng rng(15);
  EXPECT_THROW(rng.chance(-0.1), ConfigError);
  EXPECT_THROW(rng.chance(1.1), ConfigError);
}

TEST(Rng, ForkedChildrenAreIndependentOfParentLabel) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child_a = parent1.fork("a");
  Rng child_b = parent2.fork("b");
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u32() != child_b.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(99);
  Rng p2(99);
  Rng c1 = p1.fork("sub");
  Rng c2 = p2.fork("sub");
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(c1.next_u32(), c2.next_u32());
  }
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  Rng rng(21);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);  // a permutation, nothing lost
}

TEST(Splitmix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(Hash64, DistinctStringsDistinctHashes) {
  EXPECT_NE(hash64("players"), hash64("supernodes"));
  EXPECT_EQ(hash64("x"), hash64("x"));
}

}  // namespace
}  // namespace cloudfog::util
