// Precondition / configuration checking.
//
// CloudFog distinguishes two error classes:
//  * programmer/configuration errors (bad parameters, violated invariants)
//    -> throw cloudfog::ConfigError via CLOUDFOG_REQUIRE;
//  * modelled runtime conditions (no supernode available, capacity full)
//    -> in-band return values, never exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cloudfog {

/// Thrown when a caller violates a documented precondition or supplies an
/// inconsistent configuration. Catching it is almost always a bug; fix the
/// call site instead.
class ConfigError : public std::logic_error {
 public:
  explicit ConfigError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw ConfigError(os.str());
}

}  // namespace detail
}  // namespace cloudfog

/// Validate a precondition; throws cloudfog::ConfigError on failure.
#define CLOUDFOG_REQUIRE(expr, msg)                                       \
  do {                                                                    \
    if (!(expr))                                                          \
      ::cloudfog::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
