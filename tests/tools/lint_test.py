#!/usr/bin/env python3
"""Self-test for tools/lint/cloudfog_lint.py.

Each *_bad fixture must trip exactly its target rule (non-zero exit, the
rule id in the output); the clean fixture must pass; the full src/ + bench/
tree must be clean. Run directly or via ctest (`lint_selftest`).
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "lint", "cloudfog_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout, proc.stderr


class FixtureCase(unittest.TestCase):
    def assert_trips(self, fixture, rule, min_findings=1):
        path = os.path.join(FIXTURES, fixture)
        code, out, _ = run_lint(path)
        self.assertEqual(code, 1, f"{fixture} should fail the lint\n{out}")
        hits = [l for l in out.splitlines() if f"[{rule}]" in l]
        self.assertGreaterEqual(
            len(hits), min_findings,
            f"{fixture} should trip {rule} at least {min_findings}x\n{out}")
        return out

    def test_wallclock_fixture(self):
        out = self.assert_trips("wallclock_bad.cpp", "cloudfog-wallclock",
                                min_findings=5)
        self.assertNotIn("sim_time_ok", out)

    def test_unordered_iter_fixture(self):
        out = self.assert_trips("unordered_iter_bad.cpp",
                                "cloudfog-unordered-iter", min_findings=2)
        # find()-based lookup must not be flagged.
        for line in out.splitlines():
            self.assertNotIn(":30:", line.split(" ")[0])

    def test_pointer_key_fixture(self):
        self.assert_trips("pointer_key_bad.cpp", "cloudfog-pointer-key",
                          min_findings=3)

    def test_uninit_pod_fixture(self):
        out = self.assert_trips(os.path.join("src", "uninit_pod_bad.hpp"),
                                "cloudfog-uninit-pod", min_findings=3)
        self.assertNotIn("StatsOk", out)
        flagged = [l for l in out.splitlines() if "cloudfog-uninit-pod" in l]
        for member in ("mean", "count", "cursor"):
            self.assertTrue(any(f"'{member}'" in l for l in flagged),
                            f"member {member} should be flagged\n{out}")

    def test_metric_once_fixture(self):
        out = self.assert_trips("metric_once_bad.cpp", "cloudfog-metric-once",
                                min_findings=2)
        self.assertIn("fixture.duplicated", out)
        self.assertNotIn("fixture.unique_gauge", out)
        self.assertNotIn("fixture.unique_counter", out)

    def test_nolint_requires_justification(self):
        out = self.assert_trips("nolint_nojust_bad.cpp", "cloudfog-nolint")
        # The bare NOLINT must not silently suppress the underlying finding
        # report — the justification requirement is the error.
        self.assertIn("justification", out)

    def test_clean_fixture_passes(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "clean_ok.cpp"))
        self.assertEqual(code, 0, f"clean fixture should pass\n{out}{err}")
        self.assertEqual(out.strip(), "")

    def test_rule_filter(self):
        # With the unrelated rule selected, the wallclock fixture is clean.
        code, out, _ = run_lint(
            os.path.join(FIXTURES, "wallclock_bad.cpp"),
            "--rule", "cloudfog-pointer-key")
        self.assertEqual(code, 0, out)

    def test_unknown_rule_is_usage_error(self):
        code, _, err = run_lint("--rule", "cloudfog-no-such-rule")
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_list_rules(self):
        code, out, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("cloudfog-wallclock", "cloudfog-unordered-iter",
                     "cloudfog-pointer-key", "cloudfog-uninit-pod",
                     "cloudfog-metric-once", "cloudfog-nolint"):
            self.assertIn(rule, out)


class TreeCase(unittest.TestCase):
    def test_full_tree_is_clean(self):
        code, out, err = run_lint("src", "bench")
        self.assertEqual(code, 0,
                         f"src/ + bench/ must stay lint-clean\n{out}{err}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
