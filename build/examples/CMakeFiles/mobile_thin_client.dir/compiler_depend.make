# Empty compiler generated dependencies file for mobile_thin_client.
# This may be replaced when dependencies are built.
