#include "fault/fallback.hpp"

#include <gtest/gtest.h>

namespace cloudfog::fault {
namespace {

FallbackConfig quick_cfg() {
  FallbackConfig cfg;
  cfg.min_residency_s = 100.0;
  cfg.stability_window_s = 200.0;
  return cfg;
}

TEST(FallbackGovernor, TracksEntriesExitsAndActiveCount) {
  FallbackGovernor gov(quick_cfg());
  gov.resize(4);
  EXPECT_EQ(gov.active_count(), 0u);
  EXPECT_FALSE(gov.in_fallback(0));

  gov.enter(0, 10.0);
  gov.enter(2, 15.0);
  EXPECT_TRUE(gov.in_fallback(0));
  EXPECT_FALSE(gov.in_fallback(1));
  EXPECT_EQ(gov.active_count(), 2u);
  EXPECT_EQ(gov.entries(), 2u);

  // Re-entering while already in fallback refreshes the clock but is not
  // a new entry.
  gov.enter(0, 20.0);
  EXPECT_EQ(gov.entries(), 2u);

  gov.exit(0);
  EXPECT_FALSE(gov.in_fallback(0));
  EXPECT_EQ(gov.active_count(), 1u);
  EXPECT_EQ(gov.exits(), 1u);
  // Exit of a player not in fallback is a no-op.
  gov.exit(0);
  EXPECT_EQ(gov.exits(), 1u);
}

TEST(FallbackGovernor, MinResidencyBlocksTheEarlyReturn) {
  FallbackGovernor gov(quick_cfg());
  gov.resize(2);
  gov.enter(0, 1000.0);
  // No fleet change ever recorded: only residency gates.
  EXPECT_TRUE(gov.blocked(0, 1050.0));    // 50 s < 100 s residency
  EXPECT_FALSE(gov.blocked(0, 1100.0));   // residency met, fleet stable
  EXPECT_FALSE(gov.blocked(1, 1050.0));   // not in fallback — never blocked
}

TEST(FallbackGovernor, FleetChurnRestartsTheStabilityWindow) {
  FallbackGovernor gov(quick_cfg());
  gov.resize(2);
  gov.enter(0, 0.0);
  gov.note_fleet_change(150.0);  // a crash/recovery mid-residency

  // Residency (100 s) is met at t=150, but the fleet changed at t=150:
  // blocked until 150 + 200 s stability window.
  EXPECT_TRUE(gov.blocked(0, 200.0));
  EXPECT_TRUE(gov.blocked(0, 349.0));
  EXPECT_FALSE(gov.blocked(0, 350.0));

  // Another change pushes the window out again.
  gov.note_fleet_change(400.0);
  EXPECT_TRUE(gov.blocked(0, 500.0));
  EXPECT_FALSE(gov.blocked(0, 600.0));
}

TEST(FallbackGovernor, OutOfRangePlayersAreSafeNoOps) {
  FallbackGovernor gov(quick_cfg());  // never resized
  gov.enter(7, 10.0);
  gov.exit(7);
  EXPECT_FALSE(gov.in_fallback(7));
  EXPECT_FALSE(gov.blocked(7, 1.0e9));
  EXPECT_EQ(gov.active_count(), 0u);
  EXPECT_EQ(gov.entries(), 0u);
  EXPECT_EQ(gov.exits(), 0u);
}

}  // namespace
}  // namespace cloudfog::fault
