#include "economics/incentives.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::economics {
namespace {

TEST(Incentives, Eq1SupernodeProfit) {
  // P_s = c_s·c_j·u_j − cost_j = 0.5·10·0.8 − 1.0 = 3.0.
  const SupernodeContribution sn{10.0, 0.8, 1.0};
  EXPECT_DOUBLE_EQ(supernode_profit(sn, 0.5), 3.0);
}

TEST(Incentives, ProfitCanBeNegative) {
  const SupernodeContribution sn{1.0, 0.1, 5.0};
  EXPECT_LT(supernode_profit(sn, 0.5), 0.0);
}

TEST(Incentives, TotalContributionSums) {
  const std::vector<SupernodeContribution> fleet{
      {10.0, 1.0, 0.0}, {20.0, 0.5, 0.0}, {6.0, 0.0, 0.0}};
  EXPECT_DOUBLE_EQ(total_contribution(fleet), 20.0);
}

TEST(Incentives, Eq2BandwidthReduction) {
  // B_r = n·R − Λ·m = 100·1.2 − 0.2·10 = 118.
  ProviderEconomics econ;
  econ.streaming_rate = 1.2;
  econ.update_rate = 0.2;
  EXPECT_DOUBLE_EQ(bandwidth_reduction(econ, 500, 100, 10), 118.0);
}

TEST(Incentives, Eq3ProviderSaving) {
  ProviderEconomics econ;
  econ.streaming_rate = 1.0;
  econ.update_rate = 0.0;
  econ.revenue_per_unit = 1.0;
  econ.reward_per_unit = 0.5;
  const std::vector<SupernodeContribution> fleet{{100.0, 1.0, 0.0}};
  // saving = 1·(100·1 − 0) − 0.5·100 = 50.
  EXPECT_DOUBLE_EQ(provider_saving(econ, 100, 1, fleet), 50.0);
}

TEST(Incentives, FewerSupernodesSaveMore) {
  // Eq. 3 insight: for fixed coverage n, fewer supernodes (less Λ) is
  // cheaper.
  ProviderEconomics econ;
  const std::vector<SupernodeContribution> fleet{{100.0, 1.0, 0.0}};
  EXPECT_GT(provider_saving(econ, 100, 5, fleet), provider_saving(econ, 100, 50, fleet));
}

TEST(Incentives, Eq4Feasibility) {
  ProviderEconomics econ;
  econ.streaming_rate = 1.0;
  const std::vector<SupernodeContribution> fleet{{10.0, 1.0, 0.0}};
  EXPECT_TRUE(fleet_feasible(econ, 10, fleet));
  EXPECT_FALSE(fleet_feasible(econ, 11, fleet));
}

TEST(Incentives, Eq6MarginalGain) {
  // G_s = c_c·(ν·R − Λ) − c_s·c_j·u_j = 1·(5·1.2 − 0.2) − 0.5·4 = 3.8.
  ProviderEconomics econ;
  econ.streaming_rate = 1.2;
  econ.update_rate = 0.2;
  econ.revenue_per_unit = 1.0;
  econ.reward_per_unit = 0.5;
  const SupernodeContribution sn{8.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(marginal_supernode_gain(econ, 5, sn), 3.8);
}

TEST(Incentives, MarginalGainNegativeForUselessSupernode) {
  const ProviderEconomics econ;
  const SupernodeContribution sn{10.0, 1.0, 0.0};
  EXPECT_LT(marginal_supernode_gain(econ, 0, sn), 0.0);
}

TEST(FleetPlan, PicksFewestLargestContributors) {
  ProviderEconomics econ;
  econ.streaming_rate = 1.0;
  const std::vector<SupernodeContribution> candidates{
      {5.0, 1.0, 0.0}, {50.0, 1.0, 0.0}, {20.0, 1.0, 0.0}};
  const auto plan = plan_min_fleet(econ, 60, candidates);
  ASSERT_TRUE(plan.feasible);
  // 50 + 20 = 70 ≥ 60 with two machines; the 5-unit one is unnecessary.
  EXPECT_EQ(plan.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(FleetPlan, FewerSupernodesBeatUsingEveryone) {
  ProviderEconomics econ;
  econ.streaming_rate = 1.0;
  std::vector<SupernodeContribution> candidates(20, SupernodeContribution{10.0, 1.0, 0.0});
  const auto plan = plan_min_fleet(econ, 50, candidates);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.chosen.size(), 5u);
  // Eq. 3: the minimal fleet saves more than rewarding all 20.
  EXPECT_GT(plan.saving, provider_saving(econ, 50, 20, candidates));
}

TEST(FleetPlan, InfeasibleWhenDemandExceedsSupply) {
  ProviderEconomics econ;
  econ.streaming_rate = 1.0;
  const std::vector<SupernodeContribution> candidates{{1.0, 1.0, 0.0}};
  const auto plan = plan_min_fleet(econ, 100, candidates);
  EXPECT_FALSE(plan.feasible);
  EXPECT_TRUE(plan.chosen.empty());
}

TEST(FleetPlan, ZeroDemandNeedsNoSupernodes) {
  const ProviderEconomics econ;
  const auto plan = plan_min_fleet(econ, 0, {{10.0, 1.0, 0.0}});
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.chosen.empty());
  EXPECT_DOUBLE_EQ(plan.saving, 0.0);
}

TEST(Incentives, Validation) {
  EXPECT_THROW(supernode_profit({-1.0, 0.5, 0.0}, 1.0), cloudfog::ConfigError);
  EXPECT_THROW(supernode_profit({1.0, 1.5, 0.0}, 1.0), cloudfog::ConfigError);
  ProviderEconomics econ;
  EXPECT_THROW(bandwidth_reduction(econ, 10, 11, 0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::economics
