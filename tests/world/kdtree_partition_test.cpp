#include "world/kdtree_partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/require.hpp"

namespace cloudfog::world {
namespace {

VirtualWorld hotspot_world(std::uint64_t seed, int population) {
  WorldConfig cfg;
  cfg.hotspot_fraction = 0.85;  // strongly skewed population
  VirtualWorld world(cfg, util::Rng(seed));
  for (int i = 0; i < population; ++i) world.spawn();
  return world;
}

TEST(KdTree, RegionsTileTheWorld) {
  auto world = hotspot_world(1, 1000);
  const auto partition = build_kdtree_partition(world, 32, 8);
  EXPECT_EQ(partition.region_count(), 32u);
  // Every live avatar falls into exactly one region (region_of throws if
  // coverage fails); total region area equals world area.
  double area = 0.0;
  for (const Region& r : partition.regions()) {
    EXPECT_GE(r.bounds.x1, r.bounds.x0);
    EXPECT_GE(r.bounds.y1, r.bounds.y0);
    area += (r.bounds.x1 - r.bounds.x0) * (r.bounds.y1 - r.bounds.y0);
  }
  EXPECT_NEAR(area, world.config().width * world.config().height, 1.0);
  for (const Avatar& a : world.avatars()) {
    if (a.alive) {
      EXPECT_NO_THROW(partition.region_of(a.position));
    }
  }
}

TEST(KdTree, LeavesCarryNearEqualPopulation) {
  auto world = hotspot_world(2, 2048);
  const auto partition = build_kdtree_partition(world, 16, 4);
  for (const Region& r : partition.regions()) {
    EXPECT_NEAR(static_cast<double>(r.load), 2048.0 / 16.0, 2048.0 / 16.0 * 0.1);
  }
}

TEST(KdTree, BalancesSkewedPopulationsBetterThanGrid) {
  // The [13] claim the paper builds on: median splits adapt to hotspots,
  // uniform grids do not.
  auto world = hotspot_world(3, 4000);
  const std::size_t servers = 8;
  const auto kd = build_kdtree_partition(world, 64, servers);
  const auto grid = build_grid_partition(world, 8, 8, servers);
  const double kd_imbalance = WorldPartition::imbalance(kd.server_loads(world, servers));
  const double grid_imbalance = WorldPartition::imbalance(grid.server_loads(world, servers));
  EXPECT_LT(kd_imbalance, 1.3);
  EXPECT_GT(grid_imbalance, kd_imbalance * 1.3);
}

TEST(KdTree, ServerAssignmentUsesAllServers) {
  auto world = hotspot_world(4, 1000);
  const auto partition = build_kdtree_partition(world, 32, 8);
  std::vector<bool> used(8, false);
  for (const Region& r : partition.regions()) used[r.server] = true;
  for (bool u : used) EXPECT_TRUE(u);
}

TEST(KdTree, RejectsNonPowerOfTwoRegions) {
  auto world = hotspot_world(5, 100);
  EXPECT_THROW(build_kdtree_partition(world, 12, 4), ConfigError);
  EXPECT_THROW(build_kdtree_partition(world, 0, 4), ConfigError);
}

TEST(KdTree, EmptyWorldStillPartitions) {
  WorldConfig cfg;
  VirtualWorld world(cfg, util::Rng(6));
  const auto partition = build_kdtree_partition(world, 8, 2);
  EXPECT_EQ(partition.region_count(), 8u);
  EXPECT_EQ(partition.region_of(Vec2{1.0, 1.0}),
            partition.region_of(Vec2{1.0, 1.0}));  // total, deterministic
}

TEST(GridPartition, UniformCells) {
  auto world = hotspot_world(7, 10);
  const auto grid = build_grid_partition(world, 2, 3, 6);
  EXPECT_EQ(grid.region_count(), 6u);
  const Region& first = grid.regions().front();
  EXPECT_NEAR(first.bounds.x1 - first.bounds.x0, world.config().width / 3.0, 1e-9);
  EXPECT_NEAR(first.bounds.y1 - first.bounds.y0, world.config().height / 2.0, 1e-9);
}

TEST(Imbalance, KnownValues) {
  EXPECT_DOUBLE_EQ(WorldPartition::imbalance({10, 10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(WorldPartition::imbalance({30, 0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(WorldPartition::imbalance({0, 0}), 1.0);
}

TEST(CrossServer, FractionBetweenZeroAndOne) {
  auto world = hotspot_world(8, 2000);
  const auto partition = build_kdtree_partition(world, 64, 8);
  const double frac = partition.cross_server_interaction_fraction(world);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(CrossServer, SingleServerHasNoCrossTraffic) {
  auto world = hotspot_world(9, 1000);
  const auto partition = build_kdtree_partition(world, 8, 1);
  EXPECT_DOUBLE_EQ(partition.cross_server_interaction_fraction(world), 0.0);
}

TEST(BoundaryPoints, OuterEdgeIsCovered) {
  auto world = hotspot_world(10, 100);
  const auto partition = build_kdtree_partition(world, 16, 4);
  EXPECT_NO_THROW(partition.region_of(Vec2{world.config().width, world.config().height}));
  EXPECT_NO_THROW(partition.region_of(Vec2{0.0, 0.0}));
}

}  // namespace
}  // namespace cloudfog::world
