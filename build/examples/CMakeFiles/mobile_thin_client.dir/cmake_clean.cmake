file(REMOVE_RECURSE
  "CMakeFiles/mobile_thin_client.dir/mobile_thin_client.cpp.o"
  "CMakeFiles/mobile_thin_client.dir/mobile_thin_client.cpp.o.d"
  "mobile_thin_client"
  "mobile_thin_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_thin_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
