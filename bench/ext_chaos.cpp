// Chaos sweep: a seeded schedule of mixed faults — supernode crashes,
// slow nodes, regional partitions, update-channel loss/delay bursts and
// probe blackholes — hits the advanced CloudFog arm at increasing
// intensity. Reports QoS next to the recovery metrics (MTTR, fault-driven
// cloud-fallback residency, interrupted sessions). Set CLOUDFOG_FAULT_SEED
// to replay the exact fault/recovery sequence from a CI log.
//
// Each intensity row is one chaos_scenario run through the scenario
// engine (src/scenario) over a shared testbed — the same machinery that
// drives the bundled stress scenarios in bench_scenarios.
#include "bench_common.hpp"

#include "scenario/scenario_engine.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(scenario::chaos_sweep_table(core::TestbedProfile::kPeerSim,
                                           {0.0, 0.5, 1.0, 2.0, 4.0}, scale));
  return 0;
}
