#include "net/trace_io.hpp"

#include "net/ping_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace cloudfog::net {
namespace {

TEST(TraceIo, ParsesSimpleHistogram) {
  std::istringstream in("10 5\n20 10\n30 5\n");
  const auto dist = load_latency_histogram(in);
  EXPECT_DOUBLE_EQ(dist.mean(), (10.0 * 5 + 20.0 * 10 + 30.0 * 5) / 20.0);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n10 5\n  # another\n20 5 # inline\n");
  const auto dist = load_latency_histogram(in);
  EXPECT_DOUBLE_EQ(dist.mean(), 15.0);
}

TEST(TraceIo, SamplingFollowsWeights) {
  std::istringstream in("10 1\n90 3\n");
  const auto dist = load_latency_histogram(in);
  util::Rng rng(1);
  int high = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) == 90.0) ++high;
  }
  EXPECT_NEAR(high / static_cast<double>(n), 0.75, 0.01);
}

TEST(TraceIo, RejectsMalformedLines) {
  std::istringstream missing_count("10\n");
  EXPECT_THROW(load_latency_histogram(missing_count), cloudfog::ConfigError);
  std::istringstream trailing("10 5 extra\n");
  EXPECT_THROW(load_latency_histogram(trailing), cloudfog::ConfigError);
  std::istringstream negative("-5 3\n");
  EXPECT_THROW(load_latency_histogram(negative), cloudfog::ConfigError);
  std::istringstream zero_count("10 0\n");
  EXPECT_THROW(load_latency_histogram(zero_count), cloudfog::ConfigError);
  std::istringstream empty("# only comments\n");
  EXPECT_THROW(load_latency_histogram(empty), cloudfog::ConfigError);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_latency_histogram_file("/nonexistent/trace.txt"),
               cloudfog::ConfigError);
}

TEST(TraceIo, RoundTripsThroughSave) {
  const std::vector<util::EmpiricalDistribution::Bin> bins{{10.0, 2.0}, {50.5, 7.0}};
  std::ostringstream out;
  save_latency_histogram(out, bins);
  std::istringstream in(out.str());
  const auto dist = load_latency_histogram(in);
  EXPECT_DOUBLE_EQ(dist.mean(), (10.0 * 2 + 50.5 * 7) / 9.0);
}

TEST(TraceIo, LoadedHistogramDrivesPingTrace) {
  std::istringstream in("40 1\n");  // degenerate: every RTT is 40 ms
  PingTrace trace(load_latency_histogram(in), TraceProfile::kLeagueOfLegends);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(trace.sample_rtt_ms(rng), 40.0);
  }
  // Access latencies still come from the base profile.
  EXPECT_GT(trace.sample_access_latency_ms(rng), 0.0);
}

TEST(TraceIo, ShippedLolHistogramLoadsAndLooksRight) {
  const auto dist = load_latency_histogram_file(std::string(CLOUDFOG_DATA_DIR) +
                                                "/lol_ping_histogram.txt");
  // The published shape: median in the 50–90 ms band, visible tail.
  util::Rng rng(2);
  util::SampleSet samples;
  for (int i = 0; i < 20000; ++i) samples.add(dist.sample(rng));
  EXPECT_GT(samples.median(), 40.0);
  EXPECT_LT(samples.median(), 95.0);
  EXPECT_GT(samples.percentile(0.95), 140.0);
}

}  // namespace
}  // namespace cloudfog::net
