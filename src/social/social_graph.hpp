// Undirected player friendship graph.
//
// §4.1: "The number of friends for each player follows power-law
// distribution with skew factor of 1.5". The generator samples a power-law
// degree sequence and wires it with random stub matching (configuration
// model), rejecting self-loops and duplicate edges.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace cloudfog::social {

using PlayerId = std::size_t;

class SocialGraph {
 public:
  /// Empty graph over `n` players.
  explicit SocialGraph(std::size_t n);

  std::size_t player_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds an undirected edge; ignores self-loops and duplicates.
  /// Returns true if the edge was newly added.
  bool add_friendship(PlayerId a, PlayerId b);

  bool are_friends(PlayerId a, PlayerId b) const;

  /// F(i): the friend list of a player (unordered).
  const std::vector<PlayerId>& friends(PlayerId p) const;

  std::size_t degree(PlayerId p) const { return friends(p).size(); }

  /// All edges as (a, b) with a < b.
  std::vector<std::pair<PlayerId, PlayerId>> edges() const;

 private:
  std::vector<std::vector<PlayerId>> adjacency_;
  std::size_t edge_count_ = 0;
};

struct SocialGraphConfig {
  double power_law_skew = 1.5;
  int min_degree = 0;
  int max_degree = 100;
  /// Real gaming friendships are clustered ("social friends always play
  /// together", §3.4 / [2]): players belong to latent guilds and this
  /// fraction of their friendship stubs attach inside the guild; the rest
  /// attach globally at random.
  double in_guild_fraction = 0.9;
  int guild_size_min = 8;
  int guild_size_max = 40;
};

/// Generates a guild-clustered friendship graph over `n` players whose
/// degree distribution follows a power law with the configured skew.
/// Setting in_guild_fraction to 0 recovers the plain configuration model.
SocialGraph generate_power_law_graph(std::size_t n, const SocialGraphConfig& cfg,
                                     util::Rng& rng);

}  // namespace cloudfog::social
