// Wall-clock profiling of named simulator phases (candidate discovery,
// probing, QoS evaluation, provisioning, ...).
//
// A phase is registered once (name → PhaseId) and then recorded with raw
// steady_clock durations by ScopedTimer (see recorder.hpp for the
// CLOUDFOG_TIMED_SCOPE macro). Per phase the profiler keeps count, total /
// min / max, and a log2-bucketed duration histogram — timings span six
// orders of magnitude, so fixed-width linear buckets would waste most of
// their resolution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cloudfog::obs {

struct PhaseId {
  std::uint32_t index = 0;
};

class PhaseProfiler {
 public:
  /// Number of log2 duration buckets: bucket b holds durations in
  /// [2^b, 2^{b+1}) nanoseconds (bucket 0 also holds 0 ns).
  static constexpr std::size_t kBuckets = 40;

  struct PhaseStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::vector<std::uint64_t> log2_ns_buckets = std::vector<std::uint64_t>(kBuckets, 0);

    double mean_us() const;
    double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
    /// Scope entries per wall-clock second spent inside the phase.
    double per_second() const;
  };

  /// Idempotent: the same name always yields the same id.
  PhaseId phase(std::string_view name);

  void record(PhaseId id, std::uint64_t ns);

  const std::vector<PhaseStats>& phases() const { return phases_; }

  /// Stats by name; nullptr if the phase was never registered.
  const PhaseStats* find(std::string_view name) const;

  /// Zeroes accumulated stats; names and ids stay valid.
  void reset_values();

  static std::size_t bucket_for(std::uint64_t ns);

 private:
  std::vector<PhaseStats> phases_;
};

}  // namespace cloudfog::obs
