// Concurrency & determinism annotation vocabulary (DESIGN.md §13).
//
// Two families live here:
//
//  1. Clang thread-safety capability macros (CF_CAPABILITY, CF_GUARDED_BY,
//     CF_REQUIRES, CF_ACQUIRE/CF_RELEASE, ...). Under clang these expand to
//     the `-Wthread-safety` attributes, so a write to a guarded member
//     without its mutex held is a *compile error* (ENABLE_WERROR). Under
//     GCC they expand to nothing — the reference CI image still builds, and
//     the dedicated clang job enforces the analysis.
//
//  2. Shard-discipline markers for deterministic parallel regions
//     (CF_PARALLEL_REGION, CF_SHARD_LOCAL, CF_SHARD_SHARED_READONLY,
//     CF_MAIN_THREAD_ONLY). These expand to nothing for every compiler;
//     they are machine-checked by tools/lint/cloudfog_lint.py
//     (cloudfog-parallel-shared-write, cloudfog-float-reduce), which keys
//     on the marker tokens to know which lambdas run on pool shards and
//     which state is legitimately written from them.
//
// The annotated util::Mutex / util::MutexLock wrappers exist because
// libstdc++'s std::mutex carries no capability attributes, so clang's
// analysis cannot track it. The wrappers cost nothing beyond the wrapped
// std::mutex and interoperate with std::condition_variable_any.
#pragma once

#include <mutex>

#if defined(__clang__)
#define CF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CF_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (e.g. CF_CAPABILITY("mutex")).
#define CF_CAPABILITY(x) CF_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define CF_SCOPED_CAPABILITY CF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define CF_GUARDED_BY(x) CF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define CF_PT_GUARDED_BY(x) CF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held by the caller.
#define CF_REQUIRES(...) CF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (and did not hold them).
#define CF_ACQUIRE(...) CF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define CF_RELEASE(...) CF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire and reports success as `ret`.
#define CF_TRY_ACQUIRE(ret, ...) \
  CF_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must be called with the listed capabilities *not* held.
#define CF_EXCLUDES(...) CF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define CF_RETURN_CAPABILITY(x) CF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment saying why the function is safe.
#define CF_NO_THREAD_SAFETY_ANALYSIS CF_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Shard-discipline markers (lint-enforced, zero codegen).
//
// The deterministic parallel pattern (DESIGN.md §10): a CF_PARALLEL_REGION
// lambda runs once per shard on util::ShardPool workers. Inside it, code
// may write only (a) state reached through the shard's own parameters,
// (b) disjoint slots of containers marked CF_SHARD_LOCAL (indexed by the
// shard id / the shard's slice of the work list), and (c) the thread's
// installed obs::ObsCapture (via Recorder::trace / Recorder::count).
// Everything else it touches must be marked CF_SHARD_SHARED_READONLY and
// stay bit-identical while the region runs. Metrics, traces and any
// order-sensitive float accumulation go through the capture buffers and
// are replayed in shard order on the owning thread afterwards.
// ---------------------------------------------------------------------------

/// Marks a lambda/function whose body executes on ShardPool workers.
/// The lint applies the parallel-region write rules to the marked body.
#define CF_PARALLEL_REGION

/// Marks a container whose elements are partitioned one-per-shard (or
/// per work item): parallel writes through disjoint indices are safe.
#define CF_SHARD_LOCAL

/// Marks state a parallel region reads but never writes; it must not be
/// mutated by anyone while a region is in flight.
#define CF_SHARD_SHARED_READONLY

/// Marks state only the owning (main) thread may touch directly; shard
/// code goes through the capture/replay path instead.
#define CF_MAIN_THREAD_ONLY

namespace cloudfog::util {

/// std::mutex with clang capability attributes, so members declared
/// CF_GUARDED_BY(mu_) are actually enforced. Methods mirror std::mutex;
/// native() exposes the wrapped mutex for condition_variable_any.
class CF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CF_ACQUIRE() { mu_.lock(); }
  void unlock() CF_RELEASE() { mu_.unlock(); }
  bool try_lock() CF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Relockable scoped lock over util::Mutex (the std::unique_lock shape the
/// analysis can see). Satisfies BasicLockable, so it works directly as the
/// lock argument of std::condition_variable_any::wait — the wait's
/// internal unlock/relock nets out to "still held", which matches what the
/// analysis assumes.
class CF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CF_ACQUIRE(mu) : mu_(mu), owned_(true) { mu_.lock(); }
  ~MutexLock() CF_RELEASE() {
    if (owned_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() CF_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() CF_RELEASE() {
    owned_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool owned_;
};

}  // namespace cloudfog::util
