// Fixture: must pass every cloudfog lint rule, including a correctly
// justified suppression.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Sample {
  double value = 0.0;
  std::uint64_t weight = 1;
};

class Ledger {
 public:
  void add(std::uint64_t key, double v) { cells_[key] += v; }

  double lookup(std::uint64_t key) const {
    const auto it = cells_.find(key);
    return it == cells_.end() ? 0.0 : it->second;
  }

  std::vector<std::uint64_t> keys_sorted() const {
    std::vector<std::uint64_t> out;
    out.reserve(cells_.size());
    // NOLINT-justified: keys only, sorted before returning.
    // NOLINTNEXTLINE(cloudfog-unordered-iter): keys only, sorted before returning
    for (const auto& [k, v] : cells_) out.push_back(k);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::uint64_t, double> cells_;
};

// Deterministic ordered map keyed on a stable id: allowed.
std::map<std::uint64_t, Sample> by_id;

void sort_by_value(std::vector<Sample*>& samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample* a, const Sample* b) { return a->value < b->value; });
}

}  // namespace fixture
