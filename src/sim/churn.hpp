// Poisson arrival process for player churn.
//
// §4.1: "players join the system following the Poisson distribution with
// an average rate of 5 players per second"; the provisioning experiments
// (§4.3.4) instead vary a per-minute peak arrival rate against a fixed
// off-peak rate. ArrivalProcess supports both by letting the rate change
// at any time.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cloudfog::sim {

class ArrivalProcess {
 public:
  using ArrivalHook = std::function<void(SimTime)>;

  /// `rate` is in arrivals per second. A rate of 0 pauses the process.
  ArrivalProcess(Simulator& sim, util::Rng rng, double rate, ArrivalHook hook);
  ~ArrivalProcess();

  ArrivalProcess(const ArrivalProcess&) = delete;
  ArrivalProcess& operator=(const ArrivalProcess&) = delete;

  /// Changes the arrival rate; takes effect for the next inter-arrival gap.
  void set_rate(double rate);
  double rate() const { return rate_; }

  void stop();

  /// Number of arrivals generated so far.
  std::size_t arrivals() const { return arrivals_; }

 private:
  void arm();

  Simulator& sim_;
  util::Rng rng_;
  double rate_;
  ArrivalHook hook_;
  EventId pending_ = 0;
  bool running_ = true;
  std::size_t arrivals_ = 0;
  /// Liveness token: scheduled events hold a weak_ptr so an event left in
  /// the queue past stop()/destruction can never fire into a dead hook.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// Converts a per-minute arrival rate (how the paper quotes peak rates)
/// to the per-second rate ArrivalProcess expects.
constexpr double per_minute(double players_per_minute) { return players_per_minute / 60.0; }

}  // namespace cloudfog::sim
