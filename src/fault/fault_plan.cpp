#include "fault/fault_plan.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "util/require.hpp"

namespace cloudfog::fault {

namespace {

/// Poisson arrival walk for one fault kind: exponential inter-arrival gaps
/// at `rate_per_s` until the horizon is crossed. One dedicated Rng stream
/// per kind keeps the schedule of each kind independent of the others'
/// mix weights.
template <typename MakeSpec>
void walk_arrivals(double horizon_s, double rate_per_s, util::Rng rng,
                   std::vector<FaultSpec>& out, MakeSpec&& make_spec) {
  if (rate_per_s <= 0.0 || horizon_s <= 0.0) return;
  double t = 0.0;
  for (;;) {
    // Inverse-CDF exponential draw; 1 - u avoids log(0).
    t += -std::log(1.0 - rng.next_double()) / rate_per_s;
    if (t >= horizon_s) break;
    out.push_back(make_spec(t, rng));
  }
}

double draw_duration(const FaultPlanConfig& cfg, util::Rng& rng) {
  const double d = -std::log(1.0 - rng.next_double()) * cfg.mean_duration_s;
  return std::max(d, 60.0);
}

/// Supernode indices random victims are drawn from: the in-box subset when
/// a target box selects one, the whole fleet otherwise (empty = whole).
std::vector<std::size_t> victim_pool(const FaultPlanConfig& cfg) {
  if (!cfg.target_box.has_value() || cfg.positions.empty()) return {};
  return nodes_in_box(cfg.positions, *cfg.target_box);
}

std::size_t draw_supernode(const FaultPlanConfig& cfg,
                           const std::vector<std::size_t>& pool, util::Rng& rng) {
  if (!pool.empty()) {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }
  if (cfg.supernode_count == 0) return kAnyTarget;
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(cfg.supernode_count) - 1));
}

}  // namespace

std::vector<std::size_t> nodes_in_box(const std::vector<NodePosition>& positions,
                                      const GeoBox& box) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (box.contains(positions[i].x_km, positions[i].y_km)) out.push_back(i);
  }
  return out;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSupernodeCrash: return "supernode_crash";
    case FaultKind::kSlowNode: return "slow_node";
    case FaultKind::kNetworkPartition: return "network_partition";
    case FaultKind::kPacketLossBurst: return "packet_loss_burst";
    case FaultKind::kMessageDelayBurst: return "message_delay_burst";
    case FaultKind::kProbeBlackhole: return "probe_blackhole";
  }
  return "unknown";
}

obs::NoteId fault_kind_note(FaultKind kind) {
  static const std::array<obs::NoteId, 6> notes = {
      obs::intern_note("supernode_crash"),    obs::intern_note("slow_node"),
      obs::intern_note("network_partition"),  obs::intern_note("packet_loss_burst"),
      obs::intern_note("message_delay_burst"), obs::intern_note("probe_blackhole"),
  };
  const auto index = static_cast<std::size_t>(kind);
  return index < notes.size() ? notes[index] : obs::NoteId{};
}

FaultPlan FaultPlan::generate(const FaultPlanConfig& cfg) {
  CLOUDFOG_REQUIRE(cfg.faults_per_hour >= 0.0, "fault rate must be non-negative");
  CLOUDFOG_REQUIRE(cfg.mean_duration_s > 0.0, "mean duration must be positive");
  CLOUDFOG_REQUIRE(cfg.loss_fraction >= 0.0 && cfg.loss_fraction <= 1.0,
                   "loss fraction must be within [0, 1]");

  FaultPlan plan;
  const double mix_total = cfg.mix.total();
  if (cfg.faults_per_hour > 0.0 && cfg.horizon_s > 0.0 && mix_total > 0.0) {
    const double rate_s = cfg.faults_per_hour / 3600.0;
    const auto kind_rng = [&](const char* label) {
      return util::Rng(util::splitmix64(cfg.seed ^ util::hash64(label)),
                       util::hash64(label));
    };
    const auto kind_rate = [&](double weight) { return rate_s * weight / mix_total; };
    const std::vector<std::size_t> pool = victim_pool(cfg);

    walk_arrivals(cfg.horizon_s, kind_rate(cfg.mix.crash), kind_rng("crash"),
                  plan.specs_, [&](double t, util::Rng& rng) {
                    FaultSpec s;
                    s.kind = FaultKind::kSupernodeCrash;
                    s.at_s = t;
                    s.duration_s = draw_duration(cfg, rng);
                    // Unboxed plans defer to the executor (it prefers a
                    // serving victim); a geo-boxed plan must name an in-box
                    // node or the correlation is lost.
                    s.target = pool.empty() ? kAnyTarget : draw_supernode(cfg, pool, rng);
                    return s;
                  });
    walk_arrivals(cfg.horizon_s, kind_rate(cfg.mix.slow_node), kind_rng("slow"),
                  plan.specs_, [&](double t, util::Rng& rng) {
                    FaultSpec s;
                    s.kind = FaultKind::kSlowNode;
                    s.at_s = t;
                    s.duration_s = draw_duration(cfg, rng);
                    s.target = draw_supernode(cfg, pool, rng);
                    s.magnitude = cfg.slow_ms;
                    return s;
                  });
    if (cfg.region_count >= 2) {
      walk_arrivals(cfg.horizon_s, kind_rate(cfg.mix.partition), kind_rng("partition"),
                    plan.specs_, [&](double t, util::Rng& rng) {
                      FaultSpec s;
                      s.kind = FaultKind::kNetworkPartition;
                      s.at_s = t;
                      s.duration_s = draw_duration(cfg, rng);
                      const auto n = static_cast<std::int64_t>(cfg.region_count);
                      s.target = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
                      s.target_b = static_cast<std::size_t>(rng.uniform_int(0, n - 2));
                      if (s.target_b >= s.target) ++s.target_b;  // distinct regions
                      return s;
                    });
    }
    walk_arrivals(cfg.horizon_s, kind_rate(cfg.mix.loss_burst), kind_rng("loss"),
                  plan.specs_, [&](double t, util::Rng& rng) {
                    FaultSpec s;
                    s.kind = FaultKind::kPacketLossBurst;
                    s.at_s = t;
                    s.duration_s = draw_duration(cfg, rng);
                    s.magnitude = cfg.loss_fraction;
                    return s;
                  });
    walk_arrivals(cfg.horizon_s, kind_rate(cfg.mix.delay_burst), kind_rng("delay"),
                  plan.specs_, [&](double t, util::Rng& rng) {
                    FaultSpec s;
                    s.kind = FaultKind::kMessageDelayBurst;
                    s.at_s = t;
                    s.duration_s = draw_duration(cfg, rng);
                    s.magnitude = cfg.delay_ms;
                    return s;
                  });
    walk_arrivals(cfg.horizon_s, kind_rate(cfg.mix.blackhole), kind_rng("blackhole"),
                  plan.specs_, [&](double t, util::Rng& rng) {
                    FaultSpec s;
                    s.kind = FaultKind::kProbeBlackhole;
                    s.at_s = t;
                    s.duration_s = draw_duration(cfg, rng);
                    s.target = draw_supernode(cfg, pool, rng);
                    return s;
                  });
  }

  plan.specs_.insert(plan.specs_.end(), cfg.extra_specs.begin(), cfg.extra_specs.end());
  std::stable_sort(plan.specs_.begin(), plan.specs_.end(),
                   [](const FaultSpec& a, const FaultSpec& b) { return a.at_s < b.at_s; });
  return plan;
}

FaultPlan FaultPlan::from_specs(std::vector<FaultSpec> specs) {
  std::stable_sort(specs.begin(), specs.end(),
                   [](const FaultSpec& a, const FaultSpec& b) { return a.at_s < b.at_s; });
  FaultPlan plan;
  plan.specs_ = std::move(specs);
  return plan;
}

std::vector<FaultSpec> regional_outage_specs(const std::vector<NodePosition>& positions,
                                             const GeoBox& box, double at_s,
                                             double duration_s, double crash_fraction,
                                             double loss_fraction, double delay_ms,
                                             std::uint64_t seed) {
  CLOUDFOG_REQUIRE(crash_fraction >= 0.0 && crash_fraction <= 1.0,
                   "crash fraction must be within [0, 1]");
  CLOUDFOG_REQUIRE(loss_fraction >= 0.0 && loss_fraction <= 1.0,
                   "loss fraction must be within [0, 1]");
  std::vector<std::size_t> in_box = nodes_in_box(positions, box);
  if (in_box.empty()) return {};

  std::vector<FaultSpec> specs;
  util::Rng rng(util::splitmix64(seed ^ util::hash64("outage")), util::hash64("outage"));
  std::shuffle(in_box.begin(), in_box.end(), rng);
  const auto victims = static_cast<std::size_t>(
      std::ceil(crash_fraction * static_cast<double>(in_box.size())));
  for (std::size_t i = 0; i < victims; ++i) {
    FaultSpec s;
    s.kind = FaultKind::kSupernodeCrash;
    s.at_s = at_s;
    s.duration_s = duration_s;
    s.target = in_box[i];
    specs.push_back(s);
  }
  if (loss_fraction > 0.0) {
    FaultSpec s;
    s.kind = FaultKind::kPacketLossBurst;
    s.at_s = at_s;
    s.duration_s = duration_s;
    s.magnitude = loss_fraction;
    specs.push_back(s);
  }
  if (delay_ms > 0.0) {
    FaultSpec s;
    s.kind = FaultKind::kMessageDelayBurst;
    s.at_s = at_s;
    s.duration_s = duration_s;
    s.magnitude = delay_ms;
    specs.push_back(s);
  }
  return specs;
}

std::uint64_t fault_seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("CLOUDFOG_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace cloudfog::fault
