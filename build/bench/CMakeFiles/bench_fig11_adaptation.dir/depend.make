# Empty dependencies file for bench_fig11_adaptation.
# This may be replaced when dependencies are built.
