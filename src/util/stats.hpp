// Small statistics toolkit: streaming moments, exact percentiles over
// retained samples, and fixed-width histograms. Used by the metrics
// collector and by the benchmark harnesses that regenerate the paper's
// figures.
#pragma once

#include <cstddef>
#include <vector>

namespace cloudfog::util {

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm): tracks
/// one p-quantile in O(1) memory with five markers. Exact up to five
/// samples; a piecewise-parabolic estimate beyond. Used by RunningStats to
/// offer percentiles without retaining samples.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x);
  /// Current estimate; 0 with no samples, exact for n ≤ 5.
  double value() const;
  std::size_t count() const { return count_; }

  /// Approximate merge: with both estimators past their warm-up, marker
  /// heights are combined as count-weighted averages — the result is an
  /// estimate of the pooled quantile, not the exact pooled statistic.
  void merge(const P2Quantile& other);

 private:
  double p_;
  std::size_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {0, 0, 0, 0, 0};
};

/// Streaming mean/variance/min/max (Welford) plus P² percentile estimates
/// (p50/p95/p99). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

  /// P²-estimated percentiles (exact for ≤ 5 samples; after merge(),
  /// approximate — see P2Quantile::merge).
  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// Retains every sample; supports exact order statistics.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  /// Exact p-quantile, p in [0,1], linear interpolation between ranks.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// Fraction of samples with value < x (linear within the containing bin).
  double cdf(double x) const;
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cloudfog::util
