// Umbrella header for the observability subsystem: the global Recorder
// (counters / gauges / histograms, structured trace, phase profiling via
// CLOUDFOG_TIMED_SCOPE) and the JSON run-report exporter.
#pragma once

#include "obs/recorder.hpp"
#include "obs/report.hpp"
