// rating.hpp is a plain aggregate; this translation unit exists so the
// header is compiled standalone at least once (catches missing includes).
#include "reputation/rating.hpp"
