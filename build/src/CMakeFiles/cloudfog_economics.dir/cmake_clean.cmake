file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_economics.dir/economics/contributor_market.cpp.o"
  "CMakeFiles/cloudfog_economics.dir/economics/contributor_market.cpp.o.d"
  "CMakeFiles/cloudfog_economics.dir/economics/cost_model.cpp.o"
  "CMakeFiles/cloudfog_economics.dir/economics/cost_model.cpp.o.d"
  "CMakeFiles/cloudfog_economics.dir/economics/incentives.cpp.o"
  "CMakeFiles/cloudfog_economics.dir/economics/incentives.cpp.o.d"
  "libcloudfog_economics.a"
  "libcloudfog_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
