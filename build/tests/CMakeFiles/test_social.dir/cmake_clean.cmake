file(REMOVE_RECURSE
  "CMakeFiles/test_social.dir/social/community_partitioner_test.cpp.o"
  "CMakeFiles/test_social.dir/social/community_partitioner_test.cpp.o.d"
  "CMakeFiles/test_social.dir/social/friendship_tracker_test.cpp.o"
  "CMakeFiles/test_social.dir/social/friendship_tracker_test.cpp.o.d"
  "CMakeFiles/test_social.dir/social/modularity_test.cpp.o"
  "CMakeFiles/test_social.dir/social/modularity_test.cpp.o.d"
  "CMakeFiles/test_social.dir/social/social_graph_test.cpp.o"
  "CMakeFiles/test_social.dir/social/social_graph_test.cpp.o.d"
  "test_social"
  "test_social.pdb"
  "test_social[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
