#include "net/ping_trace.hpp"

namespace cloudfog::net {

namespace {

// Mixture parameters are fitted to the published LoL latency histogram
// buckets: ~30 % of sessions in 20–50 ms, ~40 % in 50–90 ms, ~20 % in
// 90–150 ms, ~10 % above. lognormal(mu, sigma) has median e^mu.
util::LognormalMixture make_rtt_mixture(TraceProfile profile) {
  using C = util::LognormalMixture::Component;
  switch (profile) {
    case TraceProfile::kLeagueOfLegends:
      return util::LognormalMixture({
          C{0.30, 3.55, 0.25},  // median ~35 ms
          C{0.40, 4.22, 0.20},  // median ~68 ms
          C{0.20, 4.75, 0.20},  // median ~115 ms
          C{0.10, 5.30, 0.35},  // median ~200 ms tail
      });
    case TraceProfile::kPlanetLab:
      // PlanetLab paths cross academic backbones; fatter tail, higher base.
      return util::LognormalMixture({
          C{0.25, 3.70, 0.30},  // median ~40 ms
          C{0.35, 4.40, 0.25},  // median ~81 ms
          C{0.25, 4.95, 0.25},  // median ~141 ms
          C{0.15, 5.55, 0.40},  // median ~257 ms tail
      });
  }
  return util::LognormalMixture({C{1.0, 4.0, 0.3}});
}

util::LognormalMixture make_access_mixture(TraceProfile profile) {
  using C = util::LognormalMixture::Component;
  switch (profile) {
    case TraceProfile::kLeagueOfLegends:
      // Cable/fibre majority (~6 ms), DSL minority (~14 ms), a congested
      // or wireless tail (~28 ms). Backbone distance, not the last mile,
      // dominates the trace's latency spread.
      return util::LognormalMixture({
          C{0.55, 1.79, 0.35},
          C{0.35, 2.64, 0.30},
          C{0.10, 3.33, 0.35},
      });
    case TraceProfile::kPlanetLab:
      return util::LognormalMixture({
          C{0.50, 2.08, 0.35},
          C{0.35, 2.83, 0.30},
          C{0.15, 3.50, 0.40},
      });
  }
  return util::LognormalMixture({C{1.0, 2.0, 0.3}});
}

double base_jitter_for(TraceProfile profile) {
  switch (profile) {
    case TraceProfile::kLeagueOfLegends:
      return 6.0;
    case TraceProfile::kPlanetLab:
      return 10.0;
  }
  return 6.0;
}

}  // namespace

PingTrace::PingTrace(TraceProfile profile)
    : profile_(profile),
      rtt_mixture_(make_rtt_mixture(profile)),
      access_mixture_(make_access_mixture(profile)),
      base_jitter_ms_(base_jitter_for(profile)) {}

PingTrace::PingTrace(util::EmpiricalDistribution rtt_histogram, TraceProfile base_profile)
    : profile_(base_profile),
      rtt_mixture_(make_rtt_mixture(base_profile)),
      rtt_histogram_(std::move(rtt_histogram)),
      access_mixture_(make_access_mixture(base_profile)),
      base_jitter_ms_(base_jitter_for(base_profile)) {}

double PingTrace::sample_access_latency_ms(util::Rng& rng) const {
  return access_mixture_.sample(rng);
}

double PingTrace::sample_rtt_ms(util::Rng& rng) const {
  if (rtt_histogram_.has_value()) return rtt_histogram_->sample(rng);
  return rtt_mixture_.sample(rng);
}

double PingTrace::rtt_fraction_within(double ms, util::Rng& rng, int samples) const {
  int within = 0;
  for (int i = 0; i < samples; ++i) {
    if (sample_rtt_ms(rng) <= ms) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(samples);
}

}  // namespace cloudfog::net
