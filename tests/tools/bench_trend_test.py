#!/usr/bin/env python3
"""Tests for scripts/bench_trend.py: the bench trending gate must flag a
synthetic 20% subcycle-time regression, pass a clean run, respect the
warn/enforce modes, and read exactly the column format obs::RunStore
writes (the append_run writer here is byte-compatible by construction and
cross-checked against the C++ reader in scripts/check.sh)."""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "scripts"))
import bench_trend  # noqa: E402


def seed_history(store, runs=3):
    for i in range(runs):
        bench_trend.append_run(store, (f"hist{i}", f"sha{i}", "cfgA"), {
            "scale.subcycle.fleet10000.baseline_ms": 100.0 + i,
            "scale.subcycle.fleet10000.speedup_nt": 3.0 + 0.05 * i,
            "scale.trace.time_ratio": 4.0 + 0.1 * i,
            "fig7.latency.mean": 80.0,
        })


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self.store = tempfile.mkdtemp(prefix="bench_trend_test_")
        self.addCleanup(shutil.rmtree, self.store, ignore_errors=True)

    def fresh(self, **overrides):
        values = {
            "scale.subcycle.fleet10000.baseline_ms": 101.0,
            "scale.subcycle.fleet10000.speedup_nt": 3.05,
            "scale.trace.time_ratio": 4.1,
            "fig7.latency.mean": 80.0,
        }
        values.update(overrides)
        bench_trend.append_run(self.store, ("fresh", "shaF", "cfgA"), values)

    def test_flags_20pct_subcycle_regression(self):
        seed_history(self.store)
        self.fresh(**{"scale.subcycle.fleet10000.baseline_ms": 121.2})  # +20%
        findings = bench_trend.trend(self.store, "fresh", 0.10, 2)
        by_col = {f["column"]: f for f in findings}
        self.assertEqual(
            by_col["scale.subcycle.fleet10000.baseline_ms"]["status"], "regression")
        rc = bench_trend.main(["--runstore", self.store, "--run-id", "fresh",
                               "--mode", "enforce"])
        self.assertEqual(rc, 1)

    def test_warn_mode_reports_but_passes(self):
        seed_history(self.store)
        self.fresh(**{"scale.subcycle.fleet10000.baseline_ms": 121.2})
        rc = bench_trend.main(["--runstore", self.store, "--run-id", "fresh",
                               "--mode", "warn"])
        self.assertEqual(rc, 0)

    def test_clean_run_passes_enforce(self):
        seed_history(self.store)
        self.fresh()
        rc = bench_trend.main(["--runstore", self.store, "--run-id", "fresh",
                               "--mode", "enforce"])
        self.assertEqual(rc, 0)

    def test_speedup_drop_is_a_regression(self):
        seed_history(self.store)
        self.fresh(**{"scale.trace.time_ratio": 3.0})  # -26% on a ratio column
        findings = bench_trend.trend(self.store, "fresh", 0.10, 2)
        by_col = {f["column"]: f for f in findings}
        self.assertEqual(by_col["scale.trace.time_ratio"]["status"], "regression")

    def test_lower_time_is_an_improvement_not_a_regression(self):
        seed_history(self.store)
        self.fresh(**{"scale.subcycle.fleet10000.baseline_ms": 80.0})  # -21%
        findings = bench_trend.trend(self.store, "fresh", 0.10, 2)
        by_col = {f["column"]: f for f in findings}
        self.assertEqual(
            by_col["scale.subcycle.fleet10000.baseline_ms"]["status"], "improvement")

    def test_insufficient_history_never_gates(self):
        seed_history(self.store, runs=1)
        self.fresh(**{"scale.subcycle.fleet10000.baseline_ms": 500.0})
        findings = bench_trend.trend(self.store, "fresh", 0.10, 2)
        self.assertTrue(all(f["status"] == "no-history" for f in findings))
        rc = bench_trend.main(["--runstore", self.store, "--run-id", "fresh",
                               "--mode", "enforce"])
        self.assertEqual(rc, 0)

    def test_config_hash_separates_histories(self):
        # Quick-mode history must not gate a full-mode run: the fresh run's
        # config hash matches nothing, so there is no usable history.
        for i in range(3):
            bench_trend.append_run(self.store, (f"q{i}", "sha", "cfgQuick"),
                                   {"scale.subcycle.fleet10000.baseline_ms": 5.0})
        bench_trend.append_run(self.store, ("fresh", "sha", "cfgFull"),
                               {"scale.subcycle.fleet10000.baseline_ms": 100.0})
        findings = bench_trend.trend(self.store, "fresh", 0.10, 2)
        self.assertEqual(findings[0]["status"], "no-history")

    def test_per_row_series_uses_the_median(self):
        for i in range(2):
            bench_trend.append_run(self.store, (f"hist{i}", "sha", "cfgA"),
                                   {"subcycle_ms": [9.0, 10.0, 11.0]})
        bench_trend.append_run(self.store, ("fresh", "sha", "cfgA"),
                               {"subcycle_ms": [9.5, 10.5, 200.0]})
        findings = bench_trend.trend(self.store, "fresh", 0.10, 2)
        self.assertEqual(findings[0]["status"], "ok")  # median 10.5 vs 10.0

    def test_unknown_run_id_errors(self):
        seed_history(self.store)
        with self.assertRaises(ValueError):
            bench_trend.trend(self.store, "missing", 0.10, 2)


if __name__ == "__main__":
    unittest.main()
