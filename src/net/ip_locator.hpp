// IP-address-based geolocation stub.
//
// §3.2.1: "the cloud uses a supernode's IP address [29,30] to determine its
// coordinate, and then uses the coordinate to calculate its distance from a
// player". Real IP geolocation is city-accurate at best; we model it as a
// registry that returns the true position perturbed by a configurable
// city-scale error, so distance-based candidate selection in the cloud is
// realistically imprecise.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/coordinates.hpp"
#include "util/rng.hpp"

namespace cloudfog::net {

/// Synthetic IPv4 address.
using IpAddress = std::uint32_t;

class IpLocator {
 public:
  /// `error_sigma_km` is the std-dev of the per-axis geolocation error.
  explicit IpLocator(double error_sigma_km = 25.0);

  /// Allocates a fresh synthetic address for a node at `true_position`
  /// and records its (noisy) geolocation entry.
  IpAddress register_node(GeoPoint true_position, util::Rng& rng);

  /// Removes an address from the registry (node left the system).
  void unregister_node(IpAddress ip);

  /// Geolocates an address; nullopt if the address is unknown.
  std::optional<GeoPoint> locate(IpAddress ip) const;

  std::size_t registered_count() const { return table_.size(); }
  double error_sigma_km() const { return error_sigma_km_; }

 private:
  double error_sigma_km_;
  IpAddress next_ip_ = 0x0a000001;  // 10.0.0.1
  std::unordered_map<IpAddress, GeoPoint> table_;
};

}  // namespace cloudfog::net
