#include "obs/recorder.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/shard_pool.hpp"

namespace cloudfog::obs {

namespace {
// Per-thread obs sink for deterministic parallel shards. The main thread
// never installs one, so serial code paths are unaffected.
thread_local ObsCapture* t_capture = nullptr;

// ShardPool hygiene probe: a shard body that returns with its capture
// still installed would silently swallow the next region's emissions on
// this worker — reject it from ShardPool::run.
const char* capture_still_installed() {
  return t_capture != nullptr ? "shard returned with its obs capture still installed"
                              : nullptr;
}

[[maybe_unused]] const bool hygiene_registered = [] {
  util::ShardPool::set_worker_hygiene_check(&capture_still_installed);
  return true;
}();
}  // namespace

Recorder& Recorder::global() {
  // The process-wide recorder: mutability is its whole point (every run
  // resets and repopulates it), and tests swap sinks on it freely.
  static Recorder instance;  // NOLINT(cloudfog-static-mutable): sanctioned process-wide observability root, reset per run via reset_all()
  return instance;
}

double Recorder::now() const {
  const double t = std::max(base_time_ + sim_time_, last_emitted_);
  last_emitted_ = t;
  return t;
}

void Recorder::trace(EventKind kind, std::int64_t subject, std::int64_t object,
                     double value, Note note) {
  if (!enabled_) return;
  if (t_capture != nullptr) {
    t_capture->ops_.push_back(
        ObsCapture::Op{true, CounterId{}, 0, kind, subject, object, value, note});
    return;
  }
  trace_.push(TraceEvent{now(), kind, subject, object, value, note});
}

void Recorder::count(CounterId id, std::uint64_t n) {
  if (t_capture != nullptr) {
    t_capture->ops_.push_back(ObsCapture::Op{false, id, n, EventKind::kRunStart, -1, -1, 0.0, {}});
    return;
  }
  registry_.add(id, n);
}

void Recorder::set_thread_capture(ObsCapture* cap) {
  CLOUDFOG_REQUIRE(cap == nullptr || cap->empty(),
                   "capture buffer still holds un-replayed ops from a previous "
                   "parallel region; replay it (Recorder::replay) before reuse");
  t_capture = cap;
}

void Recorder::replay(ObsCapture& cap) {
  for (const ObsCapture::Op& op : cap.ops_) {
    if (op.is_trace) {
      trace(op.kind, op.subject, op.object, op.value, op.note);
    } else {
      registry_.add(op.counter, op.n);
    }
  }
  cap.ops_.clear();
}

void Recorder::trace_at(double t_seconds, EventKind kind, std::int64_t subject,
                        std::int64_t object, double value, Note note) {
  if (!enabled_) return;
  const double t = std::max(base_time_ + t_seconds, last_emitted_);
  last_emitted_ = t;
  trace_.push(TraceEvent{t, kind, subject, object, value, note});
}

void Recorder::begin_run(std::string label) {
  // Re-base so the new run's sim clock (restarting at 0) continues the
  // monotone trace timeline where the previous run left off.
  base_time_ = last_emitted_;
  sim_time_ = 0.0;
  if (!enabled_) return;
  trace_.push(TraceEvent{now(), EventKind::kRunStart, -1, -1,
                         static_cast<double>(runs_.size()), Note{intern_note(label)}});
}

void Recorder::add_run_summary(RunSummary summary) {
  if (!enabled_) return;
  runs_.push_back(std::move(summary));
}

void Recorder::reset() {
  registry_.reset_values();
  profiler_.reset_values();
  trace_.clear();
  runs_.clear();
  sim_time_ = 0.0;
  base_time_ = 0.0;
  last_emitted_ = 0.0;
}

}  // namespace cloudfog::obs
