// Video segment model.
//
// Game video is streamed as fixed-duration segments; a segment's size in
// bits is bitrate × duration (the paper's τ). The playback buffer and the
// adaptation rules (§3.3) are all expressed in segments.
#pragma once

namespace cloudfog::video {

struct SegmentSpec {
  double duration_s = 1.0;     ///< segment playback duration
  double bitrate_kbps = 800.0; ///< encoding bitrate
};

/// Segment size in bits (the paper's τ when used as a divisor of buffered
/// bits).
double segment_bits(const SegmentSpec& spec);

/// Number of whole+fractional segments represented by `bits` of buffered
/// video at the given spec.
double segments_from_bits(double bits, const SegmentSpec& spec);

}  // namespace cloudfog::video
