#include "video/playback_buffer.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::video {

PlaybackBuffer::PlaybackBuffer(double capacity_bits) : capacity_(capacity_bits) {
  CLOUDFOG_REQUIRE(capacity_bits > 0.0, "buffer capacity must be positive");
}

PlaybackBuffer::StepResult PlaybackBuffer::step(double dt, double download_bps,
                                                double playback_bps) {
  CLOUDFOG_REQUIRE(dt >= 0.0, "negative time step");
  CLOUDFOG_REQUIRE(download_bps >= 0.0 && playback_bps >= 0.0, "negative rate");
  StepResult result;
  const double in = download_bps * dt;
  const double out = playback_bps * dt;
  double next = bits_ + in - out;
  if (next < 0.0) {
    result.starved_bits = -next;
    next = 0.0;
  }
  if (next > capacity_) {
    result.overflow_bits = next - capacity_;
    next = capacity_;
  }
  bits_ = next;
  result.buffered_bits = bits_;
  return result;
}

void PlaybackBuffer::set_capacity(double capacity_bits) {
  CLOUDFOG_REQUIRE(capacity_bits > 0.0, "buffer capacity must be positive");
  capacity_ = capacity_bits;
  bits_ = std::min(bits_, capacity_);
}

}  // namespace cloudfog::video
