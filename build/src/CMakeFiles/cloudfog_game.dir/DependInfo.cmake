
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/activity_model.cpp" "src/CMakeFiles/cloudfog_game.dir/game/activity_model.cpp.o" "gcc" "src/CMakeFiles/cloudfog_game.dir/game/activity_model.cpp.o.d"
  "/root/repo/src/game/game_catalog.cpp" "src/CMakeFiles/cloudfog_game.dir/game/game_catalog.cpp.o" "gcc" "src/CMakeFiles/cloudfog_game.dir/game/game_catalog.cpp.o.d"
  "/root/repo/src/game/quality_ladder.cpp" "src/CMakeFiles/cloudfog_game.dir/game/quality_ladder.cpp.o" "gcc" "src/CMakeFiles/cloudfog_game.dir/game/quality_ladder.cpp.o.d"
  "/root/repo/src/game/workload.cpp" "src/CMakeFiles/cloudfog_game.dir/game/workload.cpp.o" "gcc" "src/CMakeFiles/cloudfog_game.dir/game/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
