#include "core/qos_engine.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "video/rate_adapter.hpp"

namespace cloudfog::core {
namespace {

class QosEngineTest : public ::testing::Test {
 protected:
  QosEngineTest()
      : latency_(net::LatencyModelConfig{}), catalog_(game::GameCatalog::paper_default()) {
    std::vector<DatacenterState> dcs(1);
    dcs[0].endpoint = net::make_infrastructure_endpoint({1500.0, 0.0});
    dcs[0].uplink_mbps = 100.0;
    cloud_.emplace(std::move(dcs), latency_, net::IpLocator{0.0});
    engine_.emplace(QosEngineConfig{}, latency_, catalog_);
  }

  PlayerState make_player(double x, game::GameId game, ServingRef serving) {
    PlayerState p;
    p.info.id = players_.size();
    p.info.endpoint = net::Endpoint{{x, 0.0}, 5.0};
    p.info.bandwidth = {10.0, 3.3};
    p.game = game;
    p.online = true;
    p.serving = serving;
    p.state_dc = 0;
    video::RateAdapterConfig adapter;
    adapter.enabled = false;
    p.session.emplace(catalog_, game, adapter);
    return p;
  }

  void add_sn(double x, double upload = 20.0, int capacity = 10) {
    SupernodeState sn;
    sn.id = fleet_.size();
    sn.endpoint = net::Endpoint{{x, 0.0}, 2.0};
    sn.upload_mbps = upload;
    sn.capacity = capacity;
    fleet_.push_back(sn);
  }

  net::LatencyModel latency_;
  game::GameCatalog catalog_;
  std::optional<Cloud> cloud_;
  std::optional<QosEngine> engine_;
  std::vector<PlayerState> players_;
  std::vector<SupernodeState> fleet_;
  std::vector<CdnServerState> cdn_;
};

TEST_F(QosEngineTest, NearbySupernodeBeatsFarCloud) {
  add_sn(10.0);
  fleet_[0].served = 1;
  players_.push_back(make_player(0.0, 4, {ServingKind::kSupernode, 0}));
  players_.push_back(make_player(0.0, 4, {ServingKind::kCloud, 0}));
  engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  // Both sessions ran; the fog-served one saw higher continuity.
  const double fog_cont = players_[0].cycle_continuity_sum;
  const double cloud_cont = players_[1].cycle_continuity_sum;
  EXPECT_GT(fog_cont, cloud_cont);
}

TEST_F(QosEngineTest, AggregatesCountServingKinds) {
  add_sn(10.0);
  fleet_[0].served = 1;
  players_.push_back(make_player(0.0, 4, {ServingKind::kSupernode, 0}));
  players_.push_back(make_player(100.0, 3, {ServingKind::kCloud, 0}));
  players_.push_back(make_player(200.0, 2, {ServingKind::kNone, 0}));
  players_[2].online = false;
  const auto qos = engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  EXPECT_EQ(qos.online_sessions, 2u);
  EXPECT_EQ(qos.fog_served, 1u);
  EXPECT_EQ(qos.cloud_served, 1u);
  EXPECT_EQ(qos.cdn_served, 0u);
}

TEST_F(QosEngineTest, EgressIncludesVideoAndUpdateFeeds) {
  add_sn(10.0);
  fleet_[0].served = 1;
  players_.push_back(make_player(0.0, 4, {ServingKind::kSupernode, 0}));
  players_.push_back(make_player(0.0, 4, {ServingKind::kCloud, 0}));
  const auto qos = engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  // One direct 1800 kbps stream + one 200 kbps update feed = 2.0 Mbps.
  EXPECT_NEAR(qos.cloud_egress_mbps, 2.0, 1e-6);
}

TEST_F(QosEngineTest, IdleSupernodeGetsNoUpdateFeed) {
  add_sn(10.0);  // deployed but serving nobody
  players_.push_back(make_player(0.0, 4, {ServingKind::kCloud, 0}));
  const auto qos = engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  EXPECT_NEAR(qos.cloud_egress_mbps, 1.8, 1e-6);
}

TEST_F(QosEngineTest, OverloadedSupernodeHurtsContinuity) {
  add_sn(10.0, /*upload=*/3.0, /*capacity=*/10);  // tiny uplink
  add_sn(12.0, /*upload=*/40.0, /*capacity=*/10);
  fleet_[0].served = 3;
  fleet_[1].served = 3;
  for (int i = 0; i < 3; ++i) {
    players_.push_back(make_player(0.0, 4, {ServingKind::kSupernode, 0}));
    players_.push_back(make_player(0.0, 4, {ServingKind::kSupernode, 1}));
  }
  engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  // Players on the saturated supernode (3 × 1.8 Mbps demand vs 3 Mbps)
  // experienced worse continuity than those on the healthy one.
  EXPECT_LT(players_[0].cycle_continuity_sum, players_[1].cycle_continuity_sum);
}

TEST_F(QosEngineTest, CrossServerLatencyAddsToResponse) {
  players_.push_back(make_player(0.0, 4, {ServingKind::kCloud, 0}));
  players_.push_back(make_player(0.0, 4, {ServingKind::kCloud, 0}));
  players_[1].cross_server_ms = 40.0;
  const auto qos = engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  EXPECT_NEAR(qos.avg_server_latency_ms, 20.0, 1e-9);
  // The response latencies differ by exactly the cross-server term.
  const double lat0 = players_[0].cycle_continuity_samples;  // both sampled
  ASSERT_GT(lat0, 0.0);
}

TEST_F(QosEngineTest, CdnPathIncludesCooperationPenalty) {
  CdnServerState edge;
  edge.endpoint = net::make_infrastructure_endpoint({10.0, 0.0});
  edge.uplink_mbps = 100.0;
  edge.capacity = 10;
  edge.served = 1;
  cdn_.push_back(edge);
  players_.push_back(make_player(0.0, 4, {ServingKind::kCdn, 0}));

  add_sn(10.0);
  fleet_[0].served = 1;
  players_.push_back(make_player(0.0, 4, {ServingKind::kSupernode, 0}));

  const PlayerState& cdn_p = players_[0];
  const PlayerState& fog_p = players_[1];
  const double cdn_lat = engine_->unloaded_response_latency_ms(
      cdn_p, cdn_p.serving, fleet_, *cloud_, cdn_, 1800.0);
  const double fog_lat = engine_->unloaded_response_latency_ms(
      fog_p, fog_p.serving, fleet_, *cloud_, cdn_, 1800.0);
  // Same geometry, but the CDN pays wide-area state cooperation.
  EXPECT_GT(cdn_lat, fog_lat + QosEngineConfig{}.cdn_cooperation_ms * 0.5);
}

TEST_F(QosEngineTest, UnloadedLatencyGrowsWithBitrate) {
  players_.push_back(make_player(0.0, 4, {ServingKind::kCloud, 0}));
  const double slow = engine_->unloaded_response_latency_ms(
      players_[0], players_[0].serving, fleet_, *cloud_, cdn_, 300.0);
  const double fast = engine_->unloaded_response_latency_ms(
      players_[0], players_[0].serving, fleet_, *cloud_, cdn_, 1800.0);
  EXPECT_GT(fast, slow);
}

TEST_F(QosEngineTest, EmptySubcycleIsWellDefined) {
  const auto qos = engine_->run_subcycle(players_, fleet_, *cloud_, cdn_);
  EXPECT_EQ(qos.online_sessions, 0u);
  EXPECT_DOUBLE_EQ(qos.cloud_egress_mbps, 0.0);
}

TEST_F(QosEngineTest, ConfigValidation) {
  QosEngineConfig cfg;
  cfg.substeps = 0;
  EXPECT_THROW(QosEngine(cfg, latency_, catalog_), ConfigError);
  cfg = QosEngineConfig{};
  cfg.burst_headroom = 0.5;
  EXPECT_THROW(QosEngine(cfg, latency_, catalog_), ConfigError);
}

}  // namespace
}  // namespace cloudfog::core
