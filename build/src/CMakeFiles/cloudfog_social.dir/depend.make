# Empty dependencies file for cloudfog_social.
# This may be replaced when dependencies are built.
