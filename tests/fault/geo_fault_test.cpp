#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fault/fault_plan.hpp"

namespace cloudfog::fault {
namespace {

std::vector<NodePosition> grid_positions(std::size_t side, double spacing_km) {
  std::vector<NodePosition> positions;
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      positions.push_back({static_cast<double>(x) * spacing_km,
                           static_cast<double>(y) * spacing_km});
    }
  }
  return positions;
}

bool specs_equal(const FaultSpec& a, const FaultSpec& b) {
  return a.kind == b.kind && a.at_s == b.at_s && a.duration_s == b.duration_s &&
         a.target == b.target && a.target_b == b.target_b && a.magnitude == b.magnitude;
}

TEST(GeoBox, ContainsIsInclusive) {
  const GeoBox box{100.0, 200.0, 300.0, 400.0};
  EXPECT_TRUE(box.contains(100.0, 200.0));  // corners belong to the box
  EXPECT_TRUE(box.contains(300.0, 400.0));
  EXPECT_TRUE(box.contains(150.0, 350.0));
  EXPECT_FALSE(box.contains(99.9, 300.0));
  EXPECT_FALSE(box.contains(150.0, 400.1));
  EXPECT_EQ(box.center_x_km(), 200.0);
  EXPECT_EQ(box.center_y_km(), 300.0);
}

TEST(NodesInBox, SelectsExactlyTheInteriorAscending) {
  // 4x4 grid at 100 km spacing; the box covers x,y in [100, 200].
  const auto positions = grid_positions(4, 100.0);
  const auto in = nodes_in_box(positions, GeoBox{100.0, 100.0, 200.0, 200.0});
  EXPECT_EQ(in, (std::vector<std::size_t>{5, 6, 9, 10}));
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

TEST(NodesInBox, EmptyBoxOrEmptyPositions) {
  const auto positions = grid_positions(3, 100.0);
  EXPECT_TRUE(nodes_in_box(positions, GeoBox{5000.0, 5000.0, 6000.0, 6000.0}).empty());
  EXPECT_TRUE(nodes_in_box({}, GeoBox{0.0, 0.0, 1000.0, 1000.0}).empty());
}

TEST(GeoFaultPlan, BoxedPlansPickOnlyInBoxSupernodeVictims) {
  FaultPlanConfig cfg;
  cfg.enabled = true;
  cfg.horizon_s = 48.0 * 3600.0;
  cfg.faults_per_hour = 4.0;
  cfg.supernode_count = 16;
  cfg.region_count = 4;
  cfg.seed = 777;
  cfg.positions = grid_positions(4, 100.0);
  cfg.target_box = GeoBox{100.0, 100.0, 200.0, 200.0};

  const auto in_box =
      nodes_in_box(cfg.positions, *cfg.target_box);  // {5, 6, 9, 10}
  const std::set<std::size_t> allowed(in_box.begin(), in_box.end());
  const FaultPlan plan = FaultPlan::generate(cfg);
  ASSERT_FALSE(plan.empty());
  std::size_t node_faults = 0;
  for (const FaultSpec& spec : plan.specs()) {
    // Only the kinds that name a random supernode victim are geo-steered;
    // partitions name regions and bursts hit the shared update channel.
    if (spec.kind != FaultKind::kSupernodeCrash && spec.kind != FaultKind::kSlowNode &&
        spec.kind != FaultKind::kProbeBlackhole) {
      continue;
    }
    ++node_faults;
    EXPECT_TRUE(allowed.count(spec.target) == 1)
        << fault_kind_name(spec.kind) << " hit out-of-box node " << spec.target;
  }
  EXPECT_GT(node_faults, 0u);
}

TEST(GeoFaultPlan, UnboxedPlanUnchangedByPositionData) {
  // Geo data must be inert until a box is set: same seed, same schedule.
  FaultPlanConfig plain;
  plain.enabled = true;
  plain.horizon_s = 24.0 * 3600.0;
  plain.faults_per_hour = 3.0;
  plain.supernode_count = 16;
  plain.region_count = 4;
  plain.seed = 4242;

  FaultPlanConfig with_positions = plain;
  with_positions.positions = grid_positions(4, 100.0);

  const FaultPlan a = FaultPlan::generate(plain);
  const FaultPlan b = FaultPlan::generate(with_positions);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(specs_equal(a.specs()[i], b.specs()[i])) << "spec " << i;
  }
}

TEST(RegionalOutage, CrashesTheRightFractionInsideTheBox) {
  const auto positions = grid_positions(8, 50.0);  // 64 nodes
  const GeoBox box{0.0, 0.0, 150.0, 350.0};        // 4 x 8 corner = 32 nodes
  const auto in_box = nodes_in_box(positions, box);
  ASSERT_EQ(in_box.size(), 32u);

  const double at_s = 30.0 * 3600.0;
  const double duration_s = 6.0 * 3600.0;
  const auto specs =
      regional_outage_specs(positions, box, at_s, duration_s, 0.75, 0.25, 120.0, 99);

  const std::set<std::size_t> allowed(in_box.begin(), in_box.end());
  std::set<std::size_t> crashed;
  std::size_t loss_bursts = 0;
  std::size_t delay_bursts = 0;
  for (const FaultSpec& spec : specs) {
    EXPECT_EQ(spec.at_s, at_s);
    EXPECT_EQ(spec.duration_s, duration_s);
    switch (spec.kind) {
      case FaultKind::kSupernodeCrash:
        EXPECT_EQ(allowed.count(spec.target), 1u) << spec.target;
        crashed.insert(spec.target);
        break;
      case FaultKind::kPacketLossBurst:
        EXPECT_EQ(spec.magnitude, 0.25);
        ++loss_bursts;
        break;
      case FaultKind::kMessageDelayBurst:
        EXPECT_EQ(spec.magnitude, 120.0);
        ++delay_bursts;
        break;
      default:
        ADD_FAILURE() << "unexpected kind " << fault_kind_name(spec.kind);
    }
  }
  // 0.75 of 32: the crash count is the rounded share of the box population.
  EXPECT_EQ(crashed.size(), 24u);
  EXPECT_EQ(loss_bursts, 1u);
  EXPECT_EQ(delay_bursts, 1u);
}

TEST(RegionalOutage, SeededVictimChoiceIsStable) {
  const auto positions = grid_positions(8, 50.0);
  const GeoBox box{0.0, 0.0, 350.0, 150.0};
  const auto a = regional_outage_specs(positions, box, 7200.0, 3600.0, 0.5, 0.3, 80.0, 5);
  const auto b = regional_outage_specs(positions, box, 7200.0, 3600.0, 0.5, 0.3, 80.0, 5);
  const auto c = regional_outage_specs(positions, box, 7200.0, 3600.0, 0.5, 0.3, 80.0, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(specs_equal(a[i], b[i])) << "spec " << i;
  }
  // A different seed fails a different subset (same size, same shape).
  ASSERT_EQ(a.size(), c.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!specs_equal(a[i], c[i])) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RegionalOutage, EmptyBoxYieldsNoFaults) {
  const auto positions = grid_positions(4, 100.0);
  const GeoBox desert{9000.0, 9000.0, 9500.0, 9500.0};
  EXPECT_TRUE(
      regional_outage_specs(positions, desert, 3600.0, 3600.0, 0.7, 0.25, 120.0, 1)
          .empty());
}

}  // namespace
}  // namespace cloudfog::fault
