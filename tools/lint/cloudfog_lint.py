#!/usr/bin/env python3
"""CloudFog determinism & correctness lint.

Enforces project-specific invariants that the compiler cannot:

  cloudfog-wallclock       no wall-clock or libc randomness outside src/sim/
                           seeding: std::chrono::system_clock, time(),
                           rand()/srand(), std::random_device, gettimeofday,
                           clock_gettime, localtime/gmtime/strftime. Seeded
                           replay (CLOUDFOG_FAULT_SEED) and byte-identical
                           fig7/fig8 reports both die the moment real time
                           leaks into simulation state.
  cloudfog-unordered-iter  no iteration over std::unordered_{map,set}:
                           bucket order is implementation- and seed-defined,
                           so any loop over one is a nondeterminism hazard
                           for metrics, traces and reports. Iterate a sorted
                           copy, keep a side vector in insertion order, or
                           suppress with a justification when the loop is
                           provably order-insensitive.
  cloudfog-pointer-key     no pointer-keyed std::map/std::set/unordered
                           containers and no sort comparators that order by
                           raw pointer value: addresses vary run to run.
  cloudfog-uninit-pod      POD members of structs under src/ must carry an
                           in-class initializer; an uninitialized member read
                           is UB and (worse for us) nondeterministic.
  cloudfog-metric-once     every obs metric name (counter/gauge/histogram)
                           is registered at exactly one site; Registry
                           registration is idempotent, so two subsystems
                           silently aliasing one name is a reporting bug.

Suppression: append `// NOLINT(cloudfog-<rule>): <justification>` to the
offending line, or put `// NOLINTNEXTLINE(cloudfog-<rule>): <justification>`
on the line above. A suppression without a justification is itself an error
(cloudfog-nolint).

Engine: uses the libclang AST when the `clang` python package is importable
(exact type resolution for unordered-iter / pointer-key), and falls back to a
resilient token-level scanner otherwise. The token engine strips comments and
string literals before matching, tracks declarations of unordered containers
(including those in a sibling header), and is the engine of record in CI
images without libclang.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

RULES = {
    "cloudfog-wallclock": "wall-clock / libc randomness outside src/sim/ seeding",
    "cloudfog-unordered-iter": "iteration over an unordered container",
    "cloudfog-pointer-key": "pointer-keyed associative container or pointer-order comparator",
    "cloudfog-uninit-pod": "uninitialized POD member in a struct under src/",
    "cloudfog-metric-once": "obs metric name registered at more than one site",
    "cloudfog-nolint": "NOLINT suppression without a justification",
}

# Directories (relative to repo root) whose files are exempt from the
# wallclock rule: simulation seeding legitimately consumes entropy here.
WALLCLOCK_EXEMPT_PREFIXES = ("src/sim/",)


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str          # repo-relative, forward slashes
    raw_lines: list[str]
    code_lines: list[str] = field(default_factory=list)  # comments/strings blanked


NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?\s*\(([^)]*)\)\s*(?::\s*(.*\S))?")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments, string and char literals, preserving layout.

    Replaced characters become spaces so that column/line arithmetic and
    word boundaries survive. Handles // and /* */ comments, escapes inside
    literals, and raw strings well enough for this codebase (no multi-line
    raw strings with parens in the delimiter).
    """
    out = []
    in_block_comment = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block_comment:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block_comment = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block_comment = True
                buf.append("  ")
                i += 2
                continue
            if c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def load_source(abs_path: str, rel_path: str) -> SourceFile:
    with open(abs_path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    sf = SourceFile(path=rel_path.replace(os.sep, "/"), raw_lines=raw)
    sf.code_lines = strip_comments_and_strings(raw)
    return sf


# --------------------------------------------------------------------------
# Suppression handling
# --------------------------------------------------------------------------

def suppressions_for(sf: SourceFile) -> tuple[dict[int, set[str]], list[Finding]]:
    """Returns {1-based line: {rules suppressed on that line}} and any
    malformed-suppression findings (missing justification)."""
    by_line: dict[int, set[str]] = {}
    bad: list[Finding] = []
    for idx, line in enumerate(sf.raw_lines, start=1):
        m = NOLINT_RE.search(line)
        if not m:
            continue
        nextline, rules_text, justification = m.group(1), m.group(2), m.group(3)
        rules = {r.strip() for r in rules_text.split(",") if r.strip()}
        unknown = {r for r in rules if r.startswith("cloudfog-") and r not in RULES}
        for r in sorted(unknown):
            bad.append(Finding(sf.path, idx, "cloudfog-nolint",
                               f"NOLINT names unknown rule '{r}'"))
        cloudfog_rules = {r for r in rules if r in RULES}
        if not cloudfog_rules:
            continue  # foreign NOLINT (e.g. clang-tidy) — not ours to police
        if not justification:
            bad.append(Finding(sf.path, idx, "cloudfog-nolint",
                               "NOLINT(cloudfog-*) requires a justification: "
                               "`// NOLINT(cloudfog-rule): why this is safe`"))
            continue
        target = idx + 1 if nextline else idx
        by_line.setdefault(target, set()).update(cloudfog_rules)
    return by_line, bad


# --------------------------------------------------------------------------
# Rule: cloudfog-wallclock
# --------------------------------------------------------------------------

WALLCLOCK_PATTERNS = [
    (re.compile(r"std::chrono::system_clock|\bsystem_clock\s*::"),
     "std::chrono::system_clock reads wall-clock time"),
    (re.compile(r"(?<![\w.:>])time\s*\(|std::time\s*\("),
     "time() reads wall-clock time"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\(|std::s?rand\s*\("),
     "rand()/srand() is non-seedable global state"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device draws real entropy"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|localtime(?:_r)?|gmtime(?:_r)?|strftime)\s*\("),
     "libc wall-clock API"),
]


def check_wallclock(sf: SourceFile) -> list[Finding]:
    if any(sf.path.startswith(p) for p in WALLCLOCK_EXEMPT_PREFIXES):
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        for pat, why in WALLCLOCK_PATTERNS:
            if pat.search(line):
                findings.append(Finding(
                    sf.path, idx, "cloudfog-wallclock",
                    f"{why}; simulation code must derive all time/randomness "
                    "from the sim clock and seeded util::Rng"))
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-unordered-iter
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_vars(code_lines: list[str]) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Scans for `unordered_map<...> name` / `unordered_set<...> name`,
    balancing template angle brackets across line breaks.
    """
    names: set[str] = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        i = m.end() - 1  # at '<'
        depth = 0
        n = len(text)
        while i < n:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if depth != 0:
            continue
        rest = text[i + 1:i + 200]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)", rest)
        if dm:
            name = dm.group(1)
            if name not in ("const",):
                names.add(name)
    return names


def sibling_header_vars(abs_path: str) -> set[str]:
    """For foo.cpp, also pick up unordered members declared in foo.hpp/.h."""
    base, ext = os.path.splitext(abs_path)
    if ext not in (".cpp", ".cc", ".cxx"):
        return set()
    for hext in (".hpp", ".hh", ".h"):
        hpath = base + hext
        if os.path.isfile(hpath):
            with open(hpath, encoding="utf-8", errors="replace") as f:
                return unordered_vars(strip_comments_and_strings(f.read().splitlines()))
    return set()


def range_for_expr(line: str) -> str | None:
    """Range expression of a range-for on this line, or None.

    Balances parens after `for (` (the head may close on a later line — then
    the rest of this line is taken), skips classic three-clause fors (`;` in
    the head), and splits at the top-level `:` that is not part of `::`.
    """
    m = re.search(r"\bfor\s*\(", line)
    if not m:
        return None
    i = m.end()
    depth = 1
    head_end = len(line)
    while i < len(line):
        if line[i] == "(":
            depth += 1
        elif line[i] == ")":
            depth -= 1
            if depth == 0:
                head_end = i
                break
        i += 1
    head = line[m.end():head_end]
    if ";" in head:
        return None
    colon = None
    j = 0
    bracket = 0
    while j < len(head):
        c = head[j]
        if c in "[<(":
            bracket += 1
        elif c in "]>)":
            bracket -= 1
        elif c == ":" and bracket <= 0:
            if head[j - 1:j] == ":" or head[j + 1:j + 2] == ":":
                j += 2
                continue
            colon = j
            break
        j += 1
    if colon is None:
        return None
    return head[colon + 1:]


def check_unordered_iter(sf: SourceFile, abs_path: str) -> list[Finding]:
    names = unordered_vars(sf.code_lines) | sibling_header_vars(abs_path)
    findings = []
    fix = ("iterate a sorted copy or a side vector in insertion order, or "
           "suppress with a justification if provably order-insensitive")
    for idx, line in enumerate(sf.code_lines, start=1):
        # Range-for directly over an unordered-typed expression.
        expr = range_for_expr(line)
        if expr is not None:
            if "unordered_" in expr:
                findings.append(Finding(
                    sf.path, idx, "cloudfog-unordered-iter",
                    f"range-for over an unordered container; {fix}"))
                continue
            expr_ids = set(IDENT_RE.findall(expr))
            hit = expr_ids & names
            if hit:
                findings.append(Finding(
                    sf.path, idx, "cloudfog-unordered-iter",
                    f"range-for over unordered container '{sorted(hit)[0]}'; {fix}"))
                continue
        # Iterator-style loops / explicit traversal entry points.
        for name in names:
            if re.search(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(", line):
                findings.append(Finding(
                    sf.path, idx, "cloudfog-unordered-iter",
                    f"iterator traversal of unordered container '{name}'; {fix}"))
                break
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-pointer-key
# --------------------------------------------------------------------------

POINTER_KEY_RE = re.compile(
    r"\b(?:std::)?(unordered_)?(map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:<>]*\s*\*")
SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")
PTR_LAMBDA_RE = re.compile(
    r"\[[^\]]*\]\s*\(\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*,"
    r"\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*\)")


def check_pointer_key(sf: SourceFile) -> list[Finding]:
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        if POINTER_KEY_RE.search(line):
            findings.append(Finding(
                sf.path, idx, "cloudfog-pointer-key",
                "associative container keyed on a raw pointer: address order "
                "(and hash placement) varies run to run; key on a stable id"))
    # Pointer-ordering comparators: a sort whose lambda takes two pointers
    # and returns `a < b` on the pointers themselves. Window a few lines
    # past the sort call to catch wrapped arguments.
    text_lines = sf.code_lines
    for idx, line in enumerate(text_lines, start=1):
        if not SORT_CALL_RE.search(line):
            continue
        window = " ".join(text_lines[idx - 1:idx + 3])
        lm = PTR_LAMBDA_RE.search(window)
        if not lm:
            continue
        a, b = lm.group(1), lm.group(2)
        if re.search(rf"return\s+{re.escape(a)}\s*[<>]\s*{re.escape(b)}\s*;", window):
            findings.append(Finding(
                sf.path, idx, "cloudfog-pointer-key",
                f"sort comparator orders by raw pointer value ('{a} < {b}'): "
                "addresses vary run to run; compare a stable field instead"))
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-uninit-pod
# --------------------------------------------------------------------------

POD_TYPE_RE = (
    r"(?:unsigned\s+|signed\s+)?"
    r"(?:bool|char|short|int|long(?:\s+long)?|float|double|"
    r"std::size_t|std::ptrdiff_t|std::u?int(?:8|16|32|64)?_t|size_t|"
    r"u?int(?:8|16|32|64)_t)"
)
POD_MEMBER_RE = re.compile(
    rf"^\s*(?:const\s+)?({POD_TYPE_RE})(?:\s+const)?\s+"
    r"([A-Za-z_]\w*)\s*;\s*$")
POD_PTR_MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:<[^;]*>)?\s*\*\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*;\s*$")
STRUCT_OPEN_RE = re.compile(r"\bstruct\s+([A-Za-z_]\w*)?[^;{]*\{")


def check_uninit_pod(sf: SourceFile) -> list[Finding]:
    # Applies to the library tree (any path with a src/ segment, so lint
    # fixtures can exercise the rule from tests/tools/fixtures/src/).
    if not re.search(r"(^|/)src/", sf.path):
        return []
    findings = []
    # Track `struct ... {` regions by brace depth; only flag member lines at
    # the struct body's own depth (nested function bodies sit deeper, nested
    # structs push their own frame).
    struct_depths: list[int] = []  # brace depth of each open struct body
    depth = 0
    for idx, line in enumerate(sf.code_lines, start=1):
        opens = STRUCT_OPEN_RE.search(line)
        if struct_depths and depth == struct_depths[-1] and not opens:
            m = POD_MEMBER_RE.match(line) or POD_PTR_MEMBER_RE.match(line)
            if m:
                name = m.group(m.lastindex)
                findings.append(Finding(
                    sf.path, idx, "cloudfog-uninit-pod",
                    f"POD member '{name}' has no in-class initializer; "
                    "default-constructed instances read indeterminate "
                    "values — add `{}` or an explicit default"))
        if opens:
            before = line[:opens.end()]
            struct_depths.append(depth + before.count("{") - before.count("}"))
        depth += line.count("{") - line.count("}")
        while struct_depths and depth < struct_depths[-1]:
            struct_depths.pop()
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-metric-once (cross-file)
# --------------------------------------------------------------------------

METRIC_REG_RE = re.compile(r"\b(counter|gauge|histogram)\s*\(\s*\"")
METRIC_NAME_RE = re.compile(r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"")


def collect_metric_sites(sf: SourceFile) -> list[tuple[str, int, str]]:
    """(metric name, line, kind) for each registration site in this file.

    Matches against raw lines (the name lives in a string literal, which the
    sanitized text blanks out) but requires the call shape on the sanitized
    line so that commented-out code does not count.
    """
    sites = []
    for idx, (raw, code) in enumerate(zip(sf.raw_lines, sf.code_lines), start=1):
        if not METRIC_REG_RE.search(code):
            continue
        for m in METRIC_NAME_RE.finditer(raw):
            # Skip read-side helpers like counter_or_zero("name").
            prefix = raw[:m.start()]
            if prefix.rstrip().endswith(("_or_zero", "_value", "_name")):
                continue
            kind = m.group(0).split("(")[0].strip()
            sites.append((m.group(1), idx, kind))
    return sites


def check_metric_once(per_file_sites: dict[str, list[tuple[str, int, str]]],
                      suppressed: dict[str, dict[int, set[str]]]) -> list[Finding]:
    by_name: dict[str, list[tuple[str, int, str]]] = {}
    for path, sites in per_file_sites.items():
        for name, line, kind in sites:
            if "cloudfog-metric-once" in suppressed.get(path, {}).get(line, set()):
                continue
            by_name.setdefault(name, []).append((path, line, kind))
    findings = []
    for name, sites in sorted(by_name.items()):
        if len(sites) <= 1:
            continue
        locs = ", ".join(f"{p}:{l}" for p, l, _ in sites)
        for path, line, _ in sites:
            findings.append(Finding(
                path, line, "cloudfog-metric-once",
                f"metric '{name}' registered at {len(sites)} sites ({locs}); "
                "register once and pass the handle"))
    return findings


# --------------------------------------------------------------------------
# Optional libclang engine
# --------------------------------------------------------------------------

def try_clang_engine():
    """Returns the clang.cindex module if importable and able to parse, else
    None. The AST engine refines unordered-iter and pointer-key; all other
    rules always run on the token engine."""
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_check_file(cindex, abs_path: str, rel_path: str) -> list[Finding] | None:
    """AST-precise unordered-iter + pointer-key for one file. Returns None on
    any parse trouble so the caller falls back to the token engine."""
    try:
        index = cindex.Index.create()
        tu = index.parse(abs_path, args=["-std=c++20", f"-I{os.path.join(REPO_ROOT, 'src')}"])
        if any(d.severity >= cindex.Diagnostic.Fatal for d in tu.diagnostics):
            return None
        findings: list[Finding] = []

        def type_is_unordered(t) -> bool:
            return "unordered_map" in t.spelling or "unordered_set" in t.spelling

        def walk(node):
            if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                if len(children) >= 2 and type_is_unordered(children[-2].type):
                    findings.append(Finding(
                        rel_path, node.location.line, "cloudfog-unordered-iter",
                        "range-for over an unordered container (AST engine)"))
            if node.kind in (cindex.CursorKind.VAR_DECL, cindex.CursorKind.FIELD_DECL):
                t = node.type.spelling
                if re.search(r"\b(?:unordered_)?(?:map|set)<[^,>]*\*", t):
                    findings.append(Finding(
                        rel_path, node.location.line, "cloudfog-pointer-key",
                        f"associative container keyed on a raw pointer: {t}"))
            for c in node.get_children():
                if c.location.file and c.location.file.name == abs_path:
                    walk(c)

        walk(tu.cursor)
        return findings
    except Exception:
        return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def gather_files(paths: list[str]) -> list[tuple[str, str]]:
    """(abs, repo-relative) pairs for every C++ source under `paths`."""
    result = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        ap = os.path.abspath(ap)
        if os.path.isfile(ap):
            if ap.endswith(CXX_EXTENSIONS):
                result.append((ap, os.path.relpath(ap, REPO_ROOT)))
            continue
        if not os.path.isdir(ap):
            print(f"cloudfog_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
        for root, dirs, files in os.walk(ap):
            dirs[:] = sorted(d for d in dirs if not d.startswith(".") and d != "build")
            for f in sorted(files):
                if f.endswith(CXX_EXTENSIONS):
                    full = os.path.join(root, f)
                    result.append((full, os.path.relpath(full, REPO_ROOT)))
    return result


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="cloudfog_lint.py",
        description="CloudFog determinism & correctness lint")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src bench)")
    ap.add_argument("--rule", action="append", default=None, metavar="RULE",
                    help="run only this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--engine", choices=("auto", "token", "clang"), default="auto",
                    help="auto: libclang AST when importable, token otherwise")
    ap.add_argument("--quiet", action="store_true", help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:26s} {desc}")
        return 0

    active = set(args.rule) if args.rule else set(RULES)
    unknown = active - set(RULES)
    if unknown:
        print(f"cloudfog_lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or ["src", "bench"]
    files = gather_files(paths)
    if not files:
        print("cloudfog_lint: no C++ sources found", file=sys.stderr)
        return 2

    cindex = None
    if args.engine in ("auto", "clang"):
        cindex = try_clang_engine()
        if cindex is None and args.engine == "clang":
            print("cloudfog_lint: libclang unavailable, falling back to the "
                  "token engine", file=sys.stderr)

    findings: list[Finding] = []
    per_file_sites: dict[str, list[tuple[str, int, str]]] = {}
    suppressed: dict[str, dict[int, set[str]]] = {}

    for abs_path, rel_path in files:
        sf = load_source(abs_path, rel_path)
        sup, bad_sup = suppressions_for(sf)
        suppressed[sf.path] = sup
        if "cloudfog-nolint" in active:
            findings.extend(bad_sup)

        file_findings: list[Finding] = []
        if "cloudfog-wallclock" in active:
            file_findings += check_wallclock(sf)
        if "cloudfog-unordered-iter" in active or "cloudfog-pointer-key" in active:
            ast = clang_check_file(cindex, abs_path, sf.path) if cindex else None
            if ast is not None:
                file_findings += [f for f in ast if f.rule in active]
                # The AST engine covers pointer-key decls but not the sort-
                # comparator heuristic; keep the token check for those.
                if "cloudfog-pointer-key" in active:
                    file_findings += [f for f in check_pointer_key(sf)
                                      if "comparator" in f.message]
            else:
                if "cloudfog-unordered-iter" in active:
                    file_findings += check_unordered_iter(sf, abs_path)
                if "cloudfog-pointer-key" in active:
                    file_findings += check_pointer_key(sf)
        if "cloudfog-uninit-pod" in active:
            file_findings += check_uninit_pod(sf)
        if "cloudfog-metric-once" in active:
            per_file_sites[sf.path] = collect_metric_sites(sf)

        for f in file_findings:
            if f.rule in sup.get(f.line, set()):
                continue
            findings.append(f)

    if "cloudfog-metric-once" in active:
        findings += check_metric_once(per_file_sites, suppressed)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.format())
    if not args.quiet:
        engine = "libclang+token" if cindex else "token"
        status = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"cloudfog_lint: {len(files)} file(s), engine={engine}: {status}",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
