// §3.2.2 churn under injected faults: crash → detection → migration →
// re-selection, driven through the FaultInjector instead of the legacy
// inject_supernode_failures() entry point.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "fault/fault_plan.hpp"

namespace cloudfog::core {
namespace {

const Testbed& small_testbed() {
  static const Testbed tb(TestbedConfig::peersim(600), 11);
  return tb;
}

sim::CycleConfig short_run() {
  sim::CycleConfig cfg;
  cfg.total_cycles = 3;
  cfg.warmup_cycles = 1;
  return cfg;
}

/// CloudFog/B with `crashes` wildcard crash faults firing at hour 9 of
/// day 1 (the clock advance of run_subcycle(1, 10)), never clearing within
/// the day.
SystemConfig crash_config(std::size_t crashes) {
  SystemConfig cfg = cloudfog_basic_config(small_testbed(),
                                           default_supernode_count(small_testbed()));
  cfg.faults.enabled = true;
  for (std::size_t i = 0; i < crashes; ++i) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kSupernodeCrash;
    spec.at_s = 9.0 * 3600.0 + 1.0 + static_cast<double>(i) * 1e-3;
    spec.duration_s = 48.0 * 3600.0;
    cfg.faults.extra_specs.push_back(spec);
  }
  return cfg;
}

TEST(ChaosRun, CrashMidSessionDisplacesAndMigratesEveryAffectedPlayer) {
  System sys(small_testbed(), crash_config(2), 21);
  ASSERT_NE(sys.injector(), nullptr);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 24; ++sub) sys.run_subcycle(1, sub, false, sub >= 20);

  EXPECT_EQ(sys.injector()->injected(), 2u);
  EXPECT_EQ(sys.injector()->cleared(), 0u);
  EXPECT_GT(sys.metrics().sessions_interrupted, 0u);
  EXPECT_GT(sys.metrics().migration_latency_ms.count(), 0u);
  EXPECT_GT(sys.metrics().mttr_ms.count(), 0u);
  EXPECT_LT(sys.metrics().mttr_ms.mean(), 10000.0);  // recovery within seconds

  // The victims are marked failed, drained, and serve nobody.
  std::size_t failed = 0;
  for (const auto& sn : sys.fleet()) {
    if (sn.failed) {
      ++failed;
      EXPECT_EQ(sn.served, 0);
    }
  }
  EXPECT_EQ(failed, 2u);
  for (const auto& p : sys.players()) {
    if (p.online && p.serving.kind == ServingKind::kSupernode) {
      ASSERT_FALSE(sys.fleet()[p.serving.index].failed);
    }
  }
  sys.end_cycle(1);
}

TEST(ChaosRun, ReselectionAfterCrashStillRespectsLmax) {
  System sys(small_testbed(), crash_config(3), 22);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 12; ++sub) sys.run_subcycle(1, sub, false, false);

  // §3.2: every fog-served session — including the migrated ones — keeps a
  // one-way transmission delay within the game's L_max.
  const auto& tb = small_testbed();
  const double fraction = sys.config().fog.lmax_fraction_of_requirement;
  std::size_t fog_served = 0;
  for (const auto& p : sys.players()) {
    if (!p.online || p.serving.kind != ServingKind::kSupernode) continue;
    ++fog_served;
    const double lmax_ms =
        tb.catalog().game(p.game).latency_requirement_ms * fraction;
    const double rtt_ms = tb.latency().rtt_ms(p.info.endpoint,
                                              sys.fleet()[p.serving.index].endpoint);
    ASSERT_LE(rtt_ms / 2.0, lmax_ms + 1e-9);
  }
  EXPECT_GT(fog_served, 0u);
  sys.end_cycle(1);
}

TEST(ChaosRun, CrashedSupernodeReputationIsPenalised) {
  System sys(small_testbed(), crash_config(1), 23);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 12; ++sub) sys.run_subcycle(1, sub, false, false);

  std::size_t crashed = fault::kAnyTarget;
  for (std::size_t i = 0; i < sys.fleet().size(); ++i) {
    if (sys.fleet()[i].failed) crashed = i;
  }
  ASSERT_NE(crashed, fault::kAnyTarget);

  // Mid-day the only ratings in the system are the crash penalties: each
  // displaced player rated the dead node 0.0, which floors its score — a
  // crashed node ranks below any node with positive history (§3.2).
  std::size_t raters = 0;
  for (const auto& p : sys.players()) {
    const auto rated = p.reputation.rated_supernodes();
    if (std::find(rated.begin(), rated.end(), crashed) != rated.end()) {
      ++raters;
      EXPECT_DOUBLE_EQ(p.reputation.score(crashed, 1), 0.0);
    }
  }
  EXPECT_GT(raters, 0u);
  sys.end_cycle(1);
}

TEST(ChaosRun, ArmedButEmptyPlanMatchesDisabledBitForBit) {
  SystemConfig off = cloudfog_basic_config(small_testbed(),
                                           default_supernode_count(small_testbed()));
  SystemConfig on = off;
  on.faults.enabled = true;  // zero rate, no extra specs — armed but empty

  System a(small_testbed(), off, 33);
  System b(small_testbed(), on, 33);
  ASSERT_EQ(a.injector(), nullptr);
  ASSERT_NE(b.injector(), nullptr);

  const RunMetrics& ma = a.run(short_run());
  const RunMetrics& mb = b.run(short_run());
  EXPECT_EQ(b.injector()->injected(), 0u);
  EXPECT_DOUBLE_EQ(ma.continuity.mean(), mb.continuity.mean());
  EXPECT_DOUBLE_EQ(ma.response_latency_ms.mean(), mb.response_latency_ms.mean());
  EXPECT_DOUBLE_EQ(ma.cloud_egress_mbps.mean(), mb.cloud_egress_mbps.mean());
  EXPECT_DOUBLE_EQ(ma.fog_served_fraction.mean(), mb.fog_served_fraction.mean());
  EXPECT_EQ(mb.sessions_interrupted, 0u);
}

TEST(ChaosRun, SeededChaosReplaysTheSameFaultAndRecoverySequence) {
  SystemConfig cfg = cloudfog_basic_config(small_testbed(),
                                           default_supernode_count(small_testbed()));
  cfg.faults.enabled = true;
  cfg.faults.faults_per_hour = 2.0;
  cfg.faults.horizon_s = 3.0 * 24.0 * 3600.0;
  cfg.faults.seed = 7;

  System a(small_testbed(), cfg, 44);
  System b(small_testbed(), cfg, 44);
  const RunMetrics& ma = a.run(short_run());
  const RunMetrics& mb = b.run(short_run());

  ASSERT_NE(a.injector(), nullptr);
  EXPECT_GT(a.injector()->injected(), 0u);
  EXPECT_EQ(a.injector()->injected(), b.injector()->injected());
  EXPECT_EQ(a.injector()->cleared(), b.injector()->cleared());
  EXPECT_EQ(ma.sessions_interrupted, mb.sessions_interrupted);
  EXPECT_EQ(ma.mttr_ms.count(), mb.mttr_ms.count());
  EXPECT_DOUBLE_EQ(ma.continuity.mean(), mb.continuity.mean());
  EXPECT_DOUBLE_EQ(ma.response_latency_ms.mean(), mb.response_latency_ms.mean());
}

}  // namespace
}  // namespace cloudfog::core
