#include "video/rate_adapter.hpp"

#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::video {

namespace {

SegmentSpec spec_for(const game::QualityLevel& level, double duration_s) {
  return SegmentSpec{duration_s, level.bitrate_kbps};
}

struct RateObs {
  obs::CounterId up{};
  obs::CounterId down{};
};

const RateObs& rate_obs() {
  static const RateObs handles = [] {
    auto& reg = obs::Recorder::global().registry();
    return RateObs{reg.counter("rate.switch_up"), reg.counter("rate.switch_down")};
  }();
  return handles;
}

void note_switch(game::GameId game, int new_level, bool up) {
  auto& rec = obs::Recorder::global();
  if (!rec.enabled()) return;
  const RateObs& handles = rate_obs();
  // count()/trace() honour a thread-installed ObsCapture — note_switch is
  // the one emission site reachable from the QoS engine's parallel pass.
  rec.count(up ? handles.up : handles.down);
  rec.trace(obs::EventKind::kRateSwitch, static_cast<std::int64_t>(game), new_level,
            up ? 1.0 : -1.0);
}

}  // namespace

void warm_rate_adapter_obs() { rate_obs(); }

RateAdapter::RateAdapter(const game::GameCatalog& catalog, game::GameId game,
                         RateAdapterConfig cfg, util::Rng rng)
    : catalog_(catalog),
      game_(game),
      cfg_(cfg),
      level_(&catalog.ladder().at_level(catalog.game(game).default_quality_level)),
      max_level_(catalog.game(game).default_quality_level),
      rho_(catalog.game(game).latency_tolerance),
      beta_(catalog.ladder().adjust_up_factor()),
      buffer_(cfg.buffer_capacity_segments *
              segment_bits(spec_for(*level_, cfg.segment_duration_s))),
      rng_(rng) {
  CLOUDFOG_REQUIRE(cfg.theta > 0.0 && cfg.theta <= 1.0, "θ must be in (0,1]");
  CLOUDFOG_REQUIRE(cfg.consecutive_required >= 1, "need at least one confirmation");
  CLOUDFOG_REQUIRE(cfg.consecutive_up_required >= 1, "need at least one confirmation");
  CLOUDFOG_REQUIRE(cfg.up_probability > 0.0 && cfg.up_probability <= 1.0,
                   "up probability must be in (0,1]");
  CLOUDFOG_REQUIRE(cfg.segment_duration_s > 0.0, "segment duration must be positive");
  CLOUDFOG_REQUIRE(cfg.buffer_capacity_segments > (1.0 + beta_) / rho_,
                   "buffer capacity must exceed the adjust-up threshold or the "
                   "adapter can never step up");
}

double RateAdapter::buffered_segments() const {
  return segments_from_bits(buffer_.buffered_bits(),
                            spec_for(*level_, cfg_.segment_duration_s));
}

double RateAdapter::up_threshold() const { return (1.0 + beta_) / rho_; }

double RateAdapter::down_threshold() const { return cfg_.theta / rho_; }

void RateAdapter::switch_level(const game::QualityLevel& next) {
  if (next.level == level_->level) return;
  level_ = &catalog_.ladder().at_level(next.level);
  // Buffered bits persist across a switch; capacity is re-expressed in the
  // new segment size so `buffer_capacity_segments` stays the bound.
  buffer_.set_capacity(cfg_.buffer_capacity_segments *
                       segment_bits(spec_for(*level_, cfg_.segment_duration_s)));
  up_streak_ = 0;
  down_streak_ = 0;
}

RateAdapter::StepOutcome RateAdapter::step(double dt, double download_bps) {
  StepOutcome out;
  const double playback_bps = level_->bitrate_kbps * 1000.0;
  const auto buf = buffer_.step(dt, download_bps, playback_bps);
  out.starved_bits = buf.starved_bits;
  const double r = segments_from_bits(buf.buffered_bits,
                                      spec_for(*level_, cfg_.segment_duration_s));
  out.buffered_segments = r;
  if (!cfg_.enabled) return out;

  // Eq. 10's premise is that the buffer is *growing* — "the downloading
  // rate is faster than the playback rate" — so a full-but-draining buffer
  // must not confirm an up-step. Conversely Eq. 12 reacts to congestion,
  // where "the segment transmission time is typically much longer than
  // usual": a sustained delivery deficit counts as a down signal even
  // before the buffer has drained to θ.
  const bool surplus = download_bps >= playback_bps;
  const bool deficit = download_bps < cfg_.deficit_fraction * playback_bps;
  if (r > up_threshold() && surplus) {
    ++up_streak_;
    down_streak_ = 0;
  } else if (r < down_threshold() || deficit) {
    ++down_streak_;
    up_streak_ = 0;
  } else {
    up_streak_ = 0;
    down_streak_ = 0;
  }

  if (up_streak_ >= cfg_.consecutive_up_required && level_->level < max_level_) {
    if (rng_.chance(cfg_.up_probability)) {
      switch_level(catalog_.ladder().step_up(level_->level));
      out.decision = RateDecision::kUp;
      note_switch(game_, level_->level, /*up=*/true);
    } else {
      up_streak_ = 0;  // lost the draw; re-confirm before trying again
    }
  } else if (down_streak_ >= cfg_.consecutive_required &&
             level_->level > catalog_.ladder().min_level()) {
    switch_level(catalog_.ladder().step_down(level_->level));
    out.decision = RateDecision::kDown;
    note_switch(game_, level_->level, /*up=*/false);
  }
  return out;
}

}  // namespace cloudfog::video
