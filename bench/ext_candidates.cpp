// Ablation: how many candidates should the cloud return (§3.2.1)?
// A tiny list strands players on the cloud whenever their closest
// supernodes are full; a huge list buys little and costs probe traffic
// and join latency.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::candidate_count_ablation(core::TestbedProfile::kPeerSim,
                                              {1, 2, 4, 8, 16, 32}, scale));
  return 0;
}
