#include "reputation/reputation_store.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace cloudfog::reputation {
namespace {

TEST(ReputationStore, UnknownSupernodeScoresZero) {
  const ReputationStore store;
  EXPECT_DOUBLE_EQ(store.score(7, 10), 0.0);
}

TEST(ReputationStore, SingleRatingScoresItsValue) {
  ReputationStore store(0.9);
  store.add_rating(1, 0.8, /*day=*/3);
  // Weighted average of one rating is the rating, regardless of age.
  EXPECT_DOUBLE_EQ(store.score(1, 3), 0.8);
  EXPECT_DOUBLE_EQ(store.score(1, 30), 0.8);
}

TEST(ReputationStore, Eq7WeightedAverage) {
  const double lambda = 0.5;
  ReputationStore store(lambda);
  store.add_rating(2, 1.0, /*day=*/1);
  store.add_rating(2, 0.0, /*day=*/3);
  // On day 3: ages 2 and 0 → weights 0.25 and 1.0.
  // s = (1.0*0.25 + 0.0*1.0) / 1.25 = 0.2.
  EXPECT_NEAR(store.score(2, 3), 0.2, 1e-12);
}

TEST(ReputationStore, RecentRatingsDominate) {
  ReputationStore store(0.5);
  store.add_rating(3, 0.1, 1);   // old, bad
  store.add_rating(3, 0.9, 10);  // fresh, good
  EXPECT_GT(store.score(3, 10), 0.85);
}

TEST(ReputationStore, ScoreDriftsAsRatingsAgeTogether) {
  ReputationStore store(0.5);
  store.add_rating(4, 1.0, 1);
  store.add_rating(4, 0.0, 5);
  const double early = store.score(4, 5);
  const double late = store.score(4, 50);
  // Relative weights stay fixed once both ratings age equally — the
  // weighted average is invariant under common scaling.
  EXPECT_NEAR(early, late, 1e-9);
}

TEST(ReputationStore, EvictionKeepsNewest) {
  ReputationStore store(0.9, /*max_ratings=*/3);
  for (int day = 1; day <= 5; ++day) {
    store.add_rating(5, day == 1 ? 0.0 : 1.0, day);
  }
  EXPECT_EQ(store.rating_count(5), 3u);
  // The day-1 zero rating was evicted first.
  EXPECT_DOUBLE_EQ(store.score(5, 5), 1.0);
}

TEST(ReputationStore, SupernodesAreIndependent) {
  ReputationStore store;
  store.add_rating(1, 0.9, 1);
  store.add_rating(2, 0.1, 1);
  EXPECT_GT(store.score(1, 1), store.score(2, 1));
}

TEST(ReputationStore, RatedSupernodesEnumerated) {
  ReputationStore store;
  store.add_rating(9, 0.5, 1);
  store.add_rating(3, 0.5, 1);
  const auto rated = store.rated_supernodes();
  EXPECT_EQ(rated, (std::vector<SupernodeId>{3, 9}));
}

TEST(ReputationStore, PruneDropsDecayedRatings) {
  ReputationStore store(0.5);
  store.add_rating(6, 0.7, 1);
  store.prune(/*current_day=*/40, /*min_weight=*/1e-4);
  // 0.5^39 is far below 1e-4.
  EXPECT_EQ(store.rating_count(6), 0u);
  EXPECT_DOUBLE_EQ(store.score(6, 40), 0.0);
}

TEST(ReputationStore, PruneKeepsFreshRatings) {
  ReputationStore store(0.9);
  store.add_rating(6, 0.7, 10);
  store.prune(11);
  EXPECT_EQ(store.rating_count(6), 1u);
}

TEST(ReputationStore, SybilResistanceByConstruction) {
  // A player's score of a supernode never changes because some other
  // store (another player, or forged identities) rated it: scores are
  // computed purely from this store's own ratings.
  ReputationStore victim;
  ReputationStore attacker;
  for (int i = 0; i < 100; ++i) attacker.add_rating(8, 1.0, 1);
  EXPECT_DOUBLE_EQ(victim.score(8, 1), 0.0);
}

TEST(ReputationStore, Validation) {
  EXPECT_THROW(ReputationStore(0.0), cloudfog::ConfigError);
  EXPECT_THROW(ReputationStore(1.0), cloudfog::ConfigError);
  ReputationStore store;
  EXPECT_THROW(store.add_rating(1, 1.5, 1), cloudfog::ConfigError);
  EXPECT_THROW(store.add_rating(1, 0.5, 0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::reputation
