
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/test_util.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/distributions_test.cpp" "tests/CMakeFiles/test_util.dir/util/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/distributions_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
