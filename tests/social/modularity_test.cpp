#include "social/modularity.hpp"

#include <gtest/gtest.h>

#include "social/social_graph.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cloudfog::social {
namespace {

/// Two triangles joined by one bridge edge — the classic two-community
/// example.
SocialGraph two_triangles() {
  SocialGraph g(6);
  g.add_friendship(0, 1);
  g.add_friendship(1, 2);
  g.add_friendship(0, 2);
  g.add_friendship(3, 4);
  g.add_friendship(4, 5);
  g.add_friendship(3, 5);
  g.add_friendship(2, 3);  // bridge
  return g;
}

TEST(Modularity, HandComputedTwoTriangles) {
  const SocialGraph g = two_triangles();
  const Partition partition{0, 0, 0, 1, 1, 1};
  // 7 edges: 3 intra in A, 3 intra in B, 1 cross.
  // q_AA = 3/7, q_BB = 3/7, q_AB = 1/7 (split ½ each direction).
  // p_A = 3/7 + 0.5/7, Γ = Σ q_aa − p_a² = 6/7 − 2·(3.5/7)² = 6/7 − 0.5.
  EXPECT_NEAR(modularity(g, partition, 2), 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(Modularity, SingleCommunityIsZero) {
  const SocialGraph g = two_triangles();
  const Partition partition(6, 0);
  // Tr(Q) = 1, p_0 = 1 → Γ = 1 − 1 = 0.
  EXPECT_NEAR(modularity(g, partition, 1), 0.0, 1e-12);
}

TEST(Modularity, GoodSplitBeatsBadSplit) {
  const SocialGraph g = two_triangles();
  const double good = modularity(g, {0, 0, 0, 1, 1, 1}, 2);
  const double bad = modularity(g, {0, 1, 0, 1, 0, 1}, 2);
  EXPECT_GT(good, bad);
}

TEST(Modularity, EmptyGraphIsZero) {
  const SocialGraph g(4);
  EXPECT_DOUBLE_EQ(modularity(g, {0, 1, 0, 1}, 2), 0.0);
}

TEST(Modularity, ValidatesInput) {
  const SocialGraph g = two_triangles();
  EXPECT_THROW(modularity(g, {0, 0, 0}, 2), cloudfog::ConfigError);       // size
  EXPECT_THROW(modularity(g, {0, 0, 0, 1, 1, 5}, 2), cloudfog::ConfigError);  // range
}

TEST(ModularityState, MatchesFullComputationInitially) {
  const SocialGraph g = two_triangles();
  const Partition partition{0, 0, 0, 1, 1, 1};
  const ModularityState state(g, partition, 2);
  EXPECT_NEAR(state.modularity(), modularity(g, partition, 2), 1e-12);
}

TEST(ModularityState, MoveUpdatesIncrementally) {
  const SocialGraph g = two_triangles();
  ModularityState state(g, {0, 0, 0, 1, 1, 1}, 2);
  state.move(2, 1);
  const Partition moved{0, 0, 1, 1, 1, 1};
  EXPECT_NEAR(state.modularity(), modularity(g, moved, 2), 1e-12);
  EXPECT_EQ(state.community_of(2), 1);
}

TEST(ModularityState, MoveToSameCommunityIsNoop) {
  const SocialGraph g = two_triangles();
  ModularityState state(g, {0, 0, 0, 1, 1, 1}, 2);
  const double before = state.modularity();
  state.move(0, 0);
  EXPECT_DOUBLE_EQ(state.modularity(), before);
}

TEST(ModularityState, CommunitySizesTracked) {
  const SocialGraph g = two_triangles();
  ModularityState state(g, {0, 0, 0, 1, 1, 1}, 2);
  EXPECT_EQ(state.community_size(0), 3u);
  state.move(0, 1);
  EXPECT_EQ(state.community_size(0), 2u);
  EXPECT_EQ(state.community_size(1), 4u);
}

// Property: a long random sequence of incremental moves always agrees
// with the from-scratch computation.
TEST(ModularityState, RandomMoveSequenceMatchesFullRecompute) {
  util::Rng rng(9);
  const auto g = generate_power_law_graph(200, SocialGraphConfig{}, rng);
  Partition partition(200);
  for (auto& c : partition) c = static_cast<CommunityId>(rng.uniform_int(0, 7));
  ModularityState state(g, partition, 8);
  for (int step = 0; step < 500; ++step) {
    const auto p = static_cast<PlayerId>(rng.uniform_int(0, 199));
    const auto target = static_cast<CommunityId>(rng.uniform_int(0, 7));
    state.move(p, target);
  }
  EXPECT_NEAR(state.modularity(),
              modularity(g, state.partition(), 8), 1e-9);
}

TEST(ModularityState, PerfectCommunitiesScoreHigh) {
  // Ten disjoint cliques of 6, partitioned exactly.
  SocialGraph g(60);
  Partition partition(60);
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < 6; ++i) {
      partition[static_cast<std::size_t>(c * 6 + i)] = c;
      for (int j = i + 1; j < 6; ++j) {
        g.add_friendship(static_cast<PlayerId>(c * 6 + i),
                         static_cast<PlayerId>(c * 6 + j));
      }
    }
  }
  // Perfectly separated communities: Γ = 1 − Σ p_a² = 1 − 10·(1/10)² = 0.9.
  EXPECT_NEAR(modularity(g, partition, 10), 0.9, 1e-12);
}

}  // namespace
}  // namespace cloudfog::social
