// Declarative stress scenarios (DESIGN.md §12).
//
// A ScenarioSpec names one reproducible stress experiment: the world it
// runs in (testbed profile, population, fleet), the load shape thrown at
// it (flash crowds, timezone-staggered diurnal waves, churn storms), the
// infrastructure faults (background chaos rate plus a correlated regional
// outage over a geographic box), the workload mix, the adversary, and the
// AcceptanceEnvelope the outcome must stay inside. Specs come from two
// places with identical semantics:
//   * TOML-lite scenario files (`parse_scenario` / `load_scenario_file`,
//     grammar in DESIGN.md §12.2 — the bundled `data/scenarios/*.scn`),
//   * C++ builders (`chaos_scenario`, tests building specs inline).
// Same spec + same seed ⇒ byte-identical run, whatever the source.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"
#include "scenario/adversary.hpp"
#include "scenario/envelope.hpp"

namespace cloudfog::scenario {

/// Game-launch spike: arrivals ramp up over `ramp_hours`, hold a plateau,
/// then decay back to the base rate. `peak_per_minute` is the extra
/// arrival rate on top of the scenario's base at the plateau.
struct FlashCrowdPhase {
  int start_hour = 24;
  int ramp_hours = 2;
  int plateau_hours = 4;
  int decay_hours = 4;
  double peak_per_minute = 120.0;
};

/// Timezone-staggered evening waves: `regions` player populations whose
/// sinusoidal evening peaks are offset by `stagger_hours` each, summed on
/// top of the base rate (only the positive half-wave contributes).
struct DiurnalPhase {
  int regions = 3;
  double stagger_hours = 3.0;
  double amplitude_per_minute = 25.0;
};

/// Mass mobile churn: at `start_hour` every online player leaves with
/// probability `departure_fraction` (the commuter-train tunnel), and new
/// arrivals optionally pause for `duration_hours`.
struct ChurnStormPhase {
  int start_hour = 30;
  int duration_hours = 2;
  double departure_fraction = 0.5;
  bool pause_arrivals = true;
};

/// Regional ISP outage: `crash_fraction` of the supernodes inside `box`
/// crash at `start_hour` for `duration_hours`, while the cloud→supernode
/// update channel suffers a correlated loss + delay burst. Optionally the
/// two datacenter regions nearest/farthest from the box partition too.
struct OutagePhase {
  int start_hour = 24;
  int duration_hours = 6;
  fault::GeoBox box{0.0, 0.0, 1500.0, 1400.0};
  double crash_fraction = 0.7;
  double loss_fraction = 0.25;
  double delay_ms = 120.0;
  bool partition = true;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;

  // World.
  core::TestbedProfile profile = core::TestbedProfile::kPeerSim;
  std::size_t players = 4000;
  std::size_t supernodes = 240;
  int cycles = 4;
  int warmup = 1;
  std::uint64_t seed = 42;
  /// 0 = the System is seeded with `seed` too (the usual case).
  std::uint64_t system_seed = 0;

  // Arm under test (always CloudFog; the toggles pick the §3 strategies).
  bool reputation = true;
  bool rate_adaptation = true;
  bool social_assignment = false;
  bool provisioning = false;
  /// Fog selection deadline budget (ms); 0 = unbounded.
  double selection_deadline_ms = 700.0;

  // Load shaping. `daily_sessions` switches to the §4.1 daily-roll
  // workload (load phases then don't apply); otherwise Poisson arrivals
  // at `base_arrival_per_minute` shaped by the phases below.
  bool daily_sessions = false;
  double base_arrival_per_minute = 30.0;
  std::optional<FlashCrowdPhase> flash_crowd;
  std::optional<DiurnalPhase> diurnal;
  std::optional<ChurnStormPhase> churn_storm;

  // Infrastructure stress.
  double faults_per_hour = 0.0;  ///< background mixed-fault chaos rate
  std::optional<OutagePhase> outage;

  // Workload mix: weights[g] biases catalog game g (empty = the activity
  // model's Zipf popularity).
  std::vector<double> game_mix;

  AdversaryConfig adversary;
  AcceptanceEnvelope envelope;
};

/// Parses the TOML-lite scenario grammar. On failure returns false and
/// puts a "line N: what" message in `*error`. `*out` is default-initialised
/// first, so omitted keys keep their documented defaults.
bool parse_scenario(const std::string& text, ScenarioSpec* out, std::string* error);

/// Reads and parses a scenario file; the filename is reported in errors.
bool load_scenario_file(const std::string& path, ScenarioSpec* out, std::string* error);

/// The six bundled scenario names, in canonical order. CI runs
/// `data/scenarios/<name>.scn` for each.
const std::vector<std::string>& bundled_scenario_names();

/// C++ builder for the chaos sweep (bench/ext_chaos): the legacy
/// `core::chaos_sweep` arm — paper-profile testbed, daily sessions, all
/// strategies, mixed background faults at `faults_per_hour`.
ScenarioSpec chaos_scenario(core::TestbedProfile profile, double faults_per_hour,
                            const core::ExperimentScale& scale);

}  // namespace cloudfog::scenario
