#include "core/provisioner.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::core {
namespace {

std::vector<SupernodeState> make_fleet(std::size_t n) {
  std::vector<SupernodeState> fleet(n);
  for (std::size_t i = 0; i < n; ++i) {
    fleet[i].id = i;
    fleet[i].capacity = 10;
  }
  return fleet;
}

TEST(Provisioner, NoHistoryNeedsNothing) {
  const Provisioner prov(ProvisionerConfig{});
  EXPECT_EQ(prov.supernodes_needed(10.0), 0u);
}

TEST(Provisioner, Eq15FleetSizing) {
  ProvisionerConfig cfg;
  cfg.epsilon = 0.1;
  Provisioner prov(cfg);
  prov.observe_window(1000.0);
  // Persistence forecast = 1000; N_s = ceil(1.1 * 1000 / 10) = 110.
  EXPECT_EQ(prov.supernodes_needed(10.0), 110u);
}

TEST(Provisioner, EpsilonScalesFleet) {
  ProvisionerConfig a;
  a.epsilon = 0.0;
  ProvisionerConfig b;
  b.epsilon = 1.0;
  Provisioner pa(a);
  Provisioner pb(b);
  pa.observe_window(500.0);
  pb.observe_window(500.0);
  EXPECT_EQ(pa.supernodes_needed(10.0), 50u);
  EXPECT_EQ(pb.supernodes_needed(10.0), 100u);
}

TEST(Provisioner, DeploySetsExactCount) {
  const Provisioner prov(ProvisionerConfig{});
  auto fleet = make_fleet(20);
  util::Rng rng(1);
  EXPECT_EQ(prov.deploy(fleet, 7, rng), 7u);
  std::size_t deployed = 0;
  for (const auto& sn : fleet) {
    if (sn.deployed) ++deployed;
  }
  EXPECT_EQ(deployed, 7u);
}

TEST(Provisioner, DeployCapsAtFleetSize) {
  const Provisioner prov(ProvisionerConfig{});
  auto fleet = make_fleet(5);
  util::Rng rng(2);
  EXPECT_EQ(prov.deploy(fleet, 50, rng), 5u);
}

TEST(Provisioner, FailedSupernodesNeverDeployed) {
  const Provisioner prov(ProvisionerConfig{});
  auto fleet = make_fleet(10);
  for (std::size_t i = 0; i < 5; ++i) fleet[i].failed = true;
  util::Rng rng(3);
  EXPECT_EQ(prov.deploy(fleet, 10, rng), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FALSE(fleet[i].deployed);
}

TEST(Provisioner, BusySupernodesPreferred) {
  // Eq. 16: candidates are ranked by last window's supported players and
  // picked with rank-harmonic probability, so the busiest half must be
  // chosen far more often than the idle half.
  const Provisioner prov(ProvisionerConfig{});
  auto fleet = make_fleet(20);
  for (std::size_t i = 0; i < 10; ++i) fleet[i].supported_last_window = 100;
  util::Rng rng(4);
  int busy_picks = 0;
  int idle_picks = 0;
  for (int trial = 0; trial < 200; ++trial) {
    prov.deploy(fleet, 5, rng);
    for (std::size_t i = 0; i < 20; ++i) {
      if (!fleet[i].deployed) continue;
      (fleet[i].supported_last_window > 0 ? busy_picks : idle_picks)++;
    }
  }
  EXPECT_GT(busy_picks, idle_picks * 2);
}

TEST(Provisioner, ForecastFollowsSeasonalPattern) {
  ProvisionerConfig cfg;
  cfg.sarima.season_length = 6;
  Provisioner prov(cfg);
  // Two full "weeks" of a 6-window pattern.
  const std::vector<double> pattern{100, 200, 400, 800, 600, 150};
  for (int rep = 0; rep < 3; ++rep) {
    for (double v : pattern) prov.observe_window(v);
  }
  // Next window corresponds to pattern[0].
  EXPECT_NEAR(prov.forecast_players(), 100.0, 30.0);
}

TEST(Provisioner, Validation) {
  ProvisionerConfig cfg;
  cfg.window_hours = 0;
  EXPECT_THROW(Provisioner{cfg}, ConfigError);
  cfg = ProvisionerConfig{};
  cfg.epsilon = -0.5;
  EXPECT_THROW(Provisioner{cfg}, ConfigError);
  Provisioner prov{ProvisionerConfig{}};
  EXPECT_THROW(prov.supernodes_needed(0.0), ConfigError);
  EXPECT_THROW(prov.observe_window(-1.0), ConfigError);
}

}  // namespace
}  // namespace cloudfog::core
