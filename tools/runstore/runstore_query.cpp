// runstore_query: inspect the columnar run-store (obs::RunStore).
//
//   runstore_query <dir> rows                  manifest rows as TSV
//   runstore_query <dir> columns               sorted column names
//   runstore_query <dir> column <name>         "row<TAB>value" records
//   runstore_query <dir> summary <name>        per-row count/mean/min/max
//
// Values print with shortest-round-trip formatting (the same json_number
// used for reports), so output is stable across runs and platforms.

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/run_store.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <dir> rows|columns|column <name>|summary <name>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string dir = argv[1];
  const std::string cmd = argv[2];
  cloudfog::obs::RunStore store(dir);

  if (cmd == "rows") {
    if (argc != 3) return usage(argv[0]);
    for (const auto& row : store.rows()) {
      std::cout << row.row << '\t' << row.run_id << '\t' << row.git_sha << '\t'
                << row.config_hash << '\n';
    }
    return 0;
  }
  if (cmd == "columns") {
    if (argc != 3) return usage(argv[0]);
    for (const auto& name : store.columns()) std::cout << name << '\n';
    return 0;
  }
  if (cmd == "column") {
    if (argc != 4) return usage(argv[0]);
    for (const auto& [row, value] : store.column(argv[3])) {
      std::cout << row << '\t' << cloudfog::obs::json_number(value) << '\n';
    }
    return 0;
  }
  if (cmd == "summary") {
    if (argc != 4) return usage(argv[0]);
    struct Acc {
      std::uint64_t count = 0;
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
    };
    std::map<std::uint64_t, Acc> per_row;
    for (const auto& [row, value] : store.column(argv[3])) {
      Acc& acc = per_row[row];
      if (acc.count == 0) {
        acc.min = value;
        acc.max = value;
      } else {
        if (value < acc.min) acc.min = value;
        if (value > acc.max) acc.max = value;
      }
      ++acc.count;
      acc.sum += value;
    }
    std::cout << "row\tcount\tmean\tmin\tmax\n";
    for (const auto& [row, acc] : per_row) {
      std::cout << row << '\t' << acc.count << '\t'
                << cloudfog::obs::json_number(acc.sum / static_cast<double>(acc.count))
                << '\t' << cloudfog::obs::json_number(acc.min) << '\t'
                << cloudfog::obs::json_number(acc.max) << '\n';
    }
    return 0;
  }
  return usage(argv[0]);
}
