# Empty compiler generated dependencies file for bench_fig10_reputation.
# This may be replaced when dependencies are built.
