// Guild-battle scenario: tightly connected friend groups (guilds) play
// together every evening. The social server-assignment strategy (§3.4)
// clusters each guild onto one game server, removing most inter-server
// communication from their interactions.
//
//   $ ./guild_battle
#include <iostream>

#include "social/community_partitioner.hpp"
#include "social/modularity.hpp"
#include "social/social_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace cloudfog;

  // 1 200 players in 40 guilds of 30: dense friendships inside a guild,
  // sparse across guilds.
  constexpr std::size_t kGuilds = 40;
  constexpr std::size_t kGuildSize = 30;
  constexpr std::size_t kPlayers = kGuilds * kGuildSize;

  util::Rng rng(99);
  social::SocialGraph graph(kPlayers);
  for (std::size_t g = 0; g < kGuilds; ++g) {
    const std::size_t base = g * kGuildSize;
    for (std::size_t i = 0; i < kGuildSize; ++i) {
      for (std::size_t j = i + 1; j < kGuildSize; ++j) {
        if (rng.chance(0.35)) graph.add_friendship(base + i, base + j);
      }
    }
  }
  for (int cross = 0; cross < 400; ++cross) {  // a few cross-guild friendships
    graph.add_friendship(
        static_cast<std::size_t>(rng.uniform_int(0, kPlayers - 1)),
        static_cast<std::size_t>(rng.uniform_int(0, kPlayers - 1)));
  }

  // Partition onto 20 game servers: random vs the paper's algorithm.
  constexpr int kServers = 20;
  social::Partition random_partition(kPlayers);
  for (auto& s : random_partition) s = static_cast<int>(rng.uniform_int(0, kServers - 1));

  social::PartitionerConfig cfg;
  cfg.communities = kServers;
  cfg.max_swap_trials = 2000;
  cfg.max_consecutive_miss = 300;
  const social::CommunityPartitioner partitioner(cfg);
  const auto result = partitioner.partition(graph, rng);

  auto cross_edge_fraction = [&](const social::Partition& p) {
    std::size_t cross = 0;
    const auto edges = graph.edges();
    for (const auto& [a, b] : edges) {
      if (p[a] != p[b]) ++cross;
    }
    return static_cast<double>(cross) / static_cast<double>(edges.size());
  };

  util::Table table("Guild clustering onto game servers");
  table.set_header({"assignment", "modularity", "cross-server friend edges (%)"});
  table.add_row({"random",
                 util::format_double(
                     social::modularity(graph, random_partition, kServers), 3),
                 util::format_double(cross_edge_fraction(random_partition) * 100, 1)});
  table.add_row({"greedy seed",
                 util::format_double(result.initial_modularity, 3), "-"});
  table.add_row({"after swap optimization",
                 util::format_double(result.final_modularity, 3),
                 util::format_double(cross_edge_fraction(result.partition) * 100, 1)});
  table.print(std::cout);

  std::cout << "Every cross-server friend edge costs an inter-server round trip\n"
               "each time that pair fights in the same battle; clustering guilds\n"
               "removes nearly all of it (paper Fig. 12: about 20 ms saved).\n";
  return 0;
}
