file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_forecast.dir/ext_forecast.cpp.o"
  "CMakeFiles/bench_ext_forecast.dir/ext_forecast.cpp.o.d"
  "bench_ext_forecast"
  "bench_ext_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
