#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "util/require.hpp"

namespace cloudfog::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRunStart: return "run_start";
    case EventKind::kSubcycle: return "subcycle";
    case EventKind::kPlayerJoin: return "player_join";
    case EventKind::kPlayerLeave: return "player_leave";
    case EventKind::kSupernodeJoin: return "supernode_join";
    case EventKind::kSupernodeChurn: return "supernode_churn";
    case EventKind::kProbeSent: return "probe_sent";
    case EventKind::kProbeAnswered: return "probe_answered";
    case EventKind::kCapacityClaim: return "capacity_claim";
    case EventKind::kMigration: return "migration";
    case EventKind::kRateSwitch: return "rate_switch";
    case EventKind::kProvisioning: return "provisioning";
    case EventKind::kRating: return "rating";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kFaultCleared: return "fault_cleared";
    case EventKind::kRetryAttempt: return "retry_attempt";
    case EventKind::kRetryExhausted: return "retry_exhausted";
    case EventKind::kCloudFallback: return "cloud_fallback";
    case EventKind::kFogReturn: return "fog_return";
  }
  return "unknown";
}

void JsonlTraceSink::write(const TraceEvent& event) {
  TraceBuffer::write_jsonl(*os_, event);
}

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

namespace {

/// Structural events always survive sampling and close aggregation
/// windows: they are the timeline the other events hang off.
bool structural(EventKind kind) {
  return kind == EventKind::kRunStart || kind == EventKind::kSubcycle;
}

}  // namespace

void TraceBuffer::push(TraceEvent event) {
  ++total_pushed_;
  switch (retention_) {
    case TraceRetention::kFull:
      break;
    case TraceRetention::kSampled:
      if (!structural(event.kind)) {
        const std::uint64_t seq = sample_seq_++;
        if (sample_every_ > 1 && seq % sample_every_ != 0) {
          ++sampled_out_;
          return;
        }
      }
      break;
    case TraceRetention::kAggregated:
      if (!structural(event.kind)) {
        KindWindow& w = window_[static_cast<std::size_t>(event.kind)];
        ++w.count;
        w.value_sum += event.value;
        window_open_ = true;
        window_last_t_ = event.t;
        ++aggregated_;
        return;
      }
      // A boundary: summarize the window it closes, then pass through.
      if (window_open_) {
        const double t = event.t;
        window_last_t_ = t;
        close_aggregation_window();
      }
      break;
  }
  retain(std::move(event));
}

void TraceBuffer::close_aggregation_window() {
  if (retention_ != TraceRetention::kAggregated || !window_open_) return;
  static const NoteId kAggNote = intern_note("agg");
  window_open_ = false;  // cleared first: retain() below must not recurse
  for (std::size_t k = 0; k < window_.size(); ++k) {
    KindWindow& w = window_[k];
    if (w.count == 0) continue;
    TraceEvent agg;
    agg.t = window_last_t_;
    agg.kind = static_cast<EventKind>(k);
    agg.subject = static_cast<std::int64_t>(w.count);
    agg.object = -1;
    agg.value = w.value_sum;
    agg.note = Note{kAggNote};
    retain(agg);
    w = KindWindow{};
  }
}

void TraceBuffer::retain(TraceEvent event) {
  if (size_ == ring_.size()) {
    if (sink_ != nullptr) {
      flush();
    } else {
      // Overwrite the oldest event.
      ring_[head_] = event;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
      return;
    }
  }
  ring_[(head_ + size_) % ring_.size()] = event;
  ++size_;
}

void TraceBuffer::set_event_sink(TraceSink* sink) {
  owned_jsonl_.reset();
  sink_ = sink;
  if (sink_ != nullptr) flush();
}

void TraceBuffer::set_sink(std::ostream* os) {
  if (os == nullptr) {
    set_event_sink(nullptr);
    return;
  }
  auto jsonl = std::make_unique<JsonlTraceSink>(*os);
  sink_ = jsonl.get();
  owned_jsonl_ = std::move(jsonl);
  flush();
}

void TraceBuffer::flush() {
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < size_; ++i) {
      sink_->write(ring_[(head_ + i) % ring_.size()]);
      ++total_sunk_;
    }
    sink_->flush();
  }
  head_ = 0;
  size_ = 0;
}

void TraceBuffer::set_retention(TraceRetention mode, std::uint64_t sample_every) {
  CLOUDFOG_REQUIRE(total_pushed_ == 0,
                   "trace retention must be chosen before events are pushed");
  CLOUDFOG_REQUIRE(sample_every >= 1, "sample_every must be >= 1");
  retention_ = mode;
  sample_every_ = sample_every;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

void TraceBuffer::clear() {
  head_ = 0;
  size_ = 0;
  total_pushed_ = 0;
  total_sunk_ = 0;
  dropped_ = 0;
  sampled_out_ = 0;
  aggregated_ = 0;
  sample_seq_ = 0;
  window_.fill(KindWindow{});
  window_open_ = false;
  window_last_t_ = 0.0;
}

void TraceBuffer::write_jsonl(std::ostream& os, const TraceEvent& event) {
  os << "{\"t\":" << json_number(event.t) << ",\"kind\":\"" << event_kind_name(event.kind)
     << '"';
  if (event.subject >= 0) os << ",\"subject\":" << event.subject;
  if (event.object >= 0) os << ",\"object\":" << event.object;
  if (event.value != 0.0) os << ",\"value\":" << json_number(event.value);
  const std::string_view note = note_text(event.note.id);
  if (!note.empty() || event.note.has_arg) {
    os << ",\"note\":\"" << json_escape(note);
    if (event.note.has_arg) os << event.note.arg;
    os << '"';
  }
  os << "}\n";
}

}  // namespace cloudfog::obs
