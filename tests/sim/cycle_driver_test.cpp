#include "sim/cycle_driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace cloudfog::sim {
namespace {

CycleConfig small_config() {
  CycleConfig cfg;
  cfg.total_cycles = 3;
  cfg.warmup_cycles = 1;
  cfg.subcycles_per_cycle = 4;
  cfg.subcycle_seconds = 10.0;
  cfg.peak_start_subcycle = 3;
  cfg.peak_end_subcycle = 4;
  return cfg;
}

TEST(CycleDriver, VisitsEverySubcycleInOrder) {
  Simulator sim;
  CycleDriver driver(sim, small_config());
  std::vector<std::pair<int, int>> visited;
  driver.on_subcycle([&](const CyclePoint& p) { visited.emplace_back(p.cycle, p.subcycle); });
  driver.run();
  ASSERT_EQ(visited.size(), 12u);
  EXPECT_EQ(visited.front(), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(visited[4], (std::pair<int, int>{2, 1}));
  EXPECT_EQ(visited.back(), (std::pair<int, int>{3, 4}));
}

TEST(CycleDriver, WarmupFlagFollowsConfig) {
  Simulator sim;
  CycleDriver driver(sim, small_config());
  std::vector<bool> warm;
  driver.on_subcycle([&](const CyclePoint& p) { warm.push_back(p.warmup); });
  driver.run();
  EXPECT_TRUE(warm[0]);
  EXPECT_TRUE(warm[3]);
  EXPECT_FALSE(warm[4]);   // cycle 2
  EXPECT_FALSE(warm[11]);  // cycle 3
}

TEST(CycleDriver, PeakFlagMatchesWindow) {
  Simulator sim;
  CycleDriver driver(sim, small_config());
  std::vector<bool> peak;
  driver.on_subcycle([&](const CyclePoint& p) { peak.push_back(p.peak); });
  driver.run();
  EXPECT_FALSE(peak[0]);
  EXPECT_FALSE(peak[1]);
  EXPECT_TRUE(peak[2]);
  EXPECT_TRUE(peak[3]);
}

TEST(CycleDriver, ClockAdvancesOneSubcycleAtATime) {
  Simulator sim;
  CycleDriver driver(sim, small_config());
  std::vector<double> starts;
  driver.on_subcycle([&](const CyclePoint& p) { starts.push_back(p.start_time); });
  driver.run();
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_DOUBLE_EQ(starts[i], 10.0 * static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(sim.now(), 120.0);
}

TEST(CycleDriver, EventsInsideSubcycleRun) {
  Simulator sim;
  CycleDriver driver(sim, small_config());
  int events = 0;
  driver.on_subcycle([&](const CyclePoint&) { sim.schedule_in(5.0, [&] { ++events; }); });
  driver.run();
  EXPECT_EQ(events, 12);
}

TEST(CycleDriver, CycleEndHookFiresPerCycle) {
  Simulator sim;
  CycleDriver driver(sim, small_config());
  std::vector<std::pair<int, bool>> ends;
  driver.on_cycle_end([&](int cycle, bool warmup) { ends.emplace_back(cycle, warmup); });
  driver.run();
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_EQ(ends[0], (std::pair<int, bool>{1, true}));
  EXPECT_EQ(ends[2], (std::pair<int, bool>{3, false}));
}

TEST(CycleDriver, GlobalSubcycleIndex) {
  const CycleConfig cfg = small_config();
  CyclePoint p;
  p.cycle = 2;
  p.subcycle = 3;
  EXPECT_EQ(p.global_subcycle(cfg), 6);
}

TEST(CycleDriver, PaperDefaultsAreValid) {
  Simulator sim;
  const CycleConfig cfg;  // 28 cycles, 24 subcycles, peak 20-24
  CycleDriver driver(sim, cfg);
  EXPECT_FALSE(driver.is_peak_subcycle(19));
  EXPECT_TRUE(driver.is_peak_subcycle(20));
  EXPECT_TRUE(driver.is_peak_subcycle(24));
}

TEST(CycleDriver, RejectsBadConfig) {
  Simulator sim;
  CycleConfig cfg = small_config();
  cfg.warmup_cycles = 3;  // no measured cycles left
  EXPECT_THROW(CycleDriver(sim, cfg), cloudfog::ConfigError);
  cfg = small_config();
  cfg.peak_start_subcycle = 5;
  EXPECT_THROW(CycleDriver(sim, cfg), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::sim
