#include "overlay/probe_monitor.hpp"

#include <gtest/gtest.h>

#include "overlay/agents.hpp"
#include "overlay/join_session.hpp"
#include "util/require.hpp"

namespace cloudfog::overlay {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : latency_(net::LatencyModelConfig{}), network_(sim_, latency_) {}

  sim::Simulator sim_;
  net::LatencyModel latency_;
  MessageNetwork network_;
};

TEST_F(MonitorTest, HealthySupernodeNeverTriggers) {
  SupernodeAgent sn(network_, net::Endpoint{{10.0, 0.0}, 2.0}, 5);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  bool failed = false;
  player.watch(sn.address(), ProbeMonitorConfig{}, [&failed](double) { failed = true; });
  sim_.run_until(30.0);
  EXPECT_FALSE(failed);
}

TEST_F(MonitorTest, FailureDetectedWithinMissWindow) {
  SupernodeAgent sn(network_, net::Endpoint{{10.0, 0.0}, 2.0}, 5);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  double detected_at = -1.0;
  ProbeMonitorConfig cfg;
  cfg.policy = fault::RetryPolicy::liveness(/*period_ms=*/250.0, /*miss_limit=*/2);
  player.watch(sn.address(), cfg, [&detected_at](double at) { detected_at = at; });
  sim_.run_until(2.0);
  ASSERT_LT(detected_at, 0.0);  // alive so far
  const double failure_time_ms = sim_.now() * 1000.0;
  sn.fail();
  sim_.run_until(10.0);
  ASSERT_GT(detected_at, 0.0);
  // Detection takes between one and (miss_limit + 1) probe periods.
  const double detection_delay = detected_at - failure_time_ms;
  EXPECT_GE(detection_delay, cfg.policy.attempt_timeout_ms);
  EXPECT_LE(detection_delay, cfg.policy.attempt_timeout_ms * (cfg.policy.max_attempts + 1));
}

TEST_F(MonitorTest, StopPreventsDetection) {
  SupernodeAgent sn(network_, net::Endpoint{{10.0, 0.0}, 2.0}, 5);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  bool failed = false;
  player.watch(sn.address(), ProbeMonitorConfig{}, [&failed](double) { failed = true; });
  sim_.run_until(1.0);
  player.stop_watching();
  sn.fail();
  sim_.run_until(30.0);
  EXPECT_FALSE(failed);
}

TEST_F(MonitorTest, FullFailoverLoopReconnectsElsewhere) {
  // The §3.2.2 story end to end on the message layer: watch, detect the
  // failure, rejoin, and measure the total migration time.
  CloudDirectoryAgent directory(network_, net::make_infrastructure_endpoint({2000.0, 0.0}));
  SupernodeAgent primary(network_, net::Endpoint{{10.0, 0.0}, 2.0}, 5);
  SupernodeAgent backup(network_, net::Endpoint{{14.0, 0.0}, 2.0}, 5);
  directory.admit(primary.address(), net::GeoPoint{10.0, 0.0});
  directory.admit(backup.address(), net::GeoPoint{14.0, 0.0});

  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  Address connected = kNoAddress;
  double migration_ms = -1.0;
  double failed_at_ms = -1.0;

  player.join(directory.address(), JoinConfig{}, nullptr,
              [&](const JoinResult& r) { connected = r.supernode; }, util::Rng(5));
  sim_.run();
  ASSERT_EQ(connected, primary.address());

  ProbeMonitorConfig mon_cfg;
  mon_cfg.policy = fault::RetryPolicy::liveness(/*period_ms=*/250.0);
  player.watch(primary.address(), mon_cfg, [&](double) {
    player.stop_watching();
    player.join(directory.address(), JoinConfig{}, nullptr,
                [&](const JoinResult& r) {
                  connected = r.supernode;
                  migration_ms = sim_.now() * 1000.0 - failed_at_ms;
                },
                util::Rng(6));
  });
  sim_.run_until(1.0);
  failed_at_ms = sim_.now() * 1000.0;
  primary.fail();
  sim_.run_until(60.0);

  EXPECT_EQ(connected, backup.address());
  ASSERT_GT(migration_ms, 0.0);
  // Paper Fig. 9: migration completes in under ~2 s (≈0.8 s typical);
  // here detection (≥1 probe period) + a probe timeout on the dead
  // primary + rejoin.
  EXPECT_LT(migration_ms, 3000.0);
  EXPECT_GT(migration_ms, mon_cfg.policy.attempt_timeout_ms);
}

TEST_F(MonitorTest, ConfigValidation) {
  SupernodeAgent sn(network_, net::Endpoint{{10.0, 0.0}, 2.0}, 5);
  PlayerAgent player(sim_, network_, net::Endpoint{{0.0, 0.0}, 5.0});
  ProbeMonitorConfig cfg;
  cfg.policy.attempt_timeout_ms = 0.0;
  EXPECT_THROW(player.watch(sn.address(), cfg, [](double) {}), ConfigError);
}

}  // namespace
}  // namespace cloudfog::overlay
