#include "social/community_partitioner.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::social {
namespace {

SocialGraph clique_graph(int cliques, int size) {
  SocialGraph g(static_cast<std::size_t>(cliques * size));
  for (int c = 0; c < cliques; ++c) {
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        g.add_friendship(static_cast<PlayerId>(c * size + i),
                         static_cast<PlayerId>(c * size + j));
      }
    }
  }
  return g;
}

TEST(Partitioner, SeedAssignsEveryPlayer) {
  util::Rng rng(1);
  const auto g = generate_power_law_graph(500, SocialGraphConfig{}, rng);
  PartitionerConfig cfg;
  cfg.communities = 10;
  const CommunityPartitioner partitioner(cfg);
  const Partition p = partitioner.greedy_seed(g, rng);
  ASSERT_EQ(p.size(), 500u);
  for (CommunityId c : p) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 10);
  }
}

TEST(Partitioner, SeedKeepsSeedFriendsTogether) {
  // Disjoint cliques: friend closure puts each clique into one community.
  const SocialGraph g = clique_graph(8, 10);
  PartitionerConfig cfg;
  cfg.communities = 8;
  cfg.max_swap_trials = 0;
  cfg.max_consecutive_miss = 0;
  const CommunityPartitioner partitioner(cfg);
  util::Rng rng(2);
  const Partition p = partitioner.greedy_seed(g, rng);
  int split_cliques = 0;
  for (int c = 0; c < 8; ++c) {
    const CommunityId first = p[static_cast<std::size_t>(c * 10)];
    for (int i = 1; i < 10; ++i) {
      if (p[static_cast<std::size_t>(c * 10 + i)] != first) {
        ++split_cliques;
        break;
      }
    }
  }
  // Friend closure is clique closure here; few cliques may split when the
  // last community absorbs leftovers.
  EXPECT_LE(split_cliques, 2);
}

TEST(Partitioner, SwapPhaseNeverDecreasesModularity) {
  util::Rng rng(3);
  const auto g = generate_power_law_graph(400, SocialGraphConfig{}, rng);
  PartitionerConfig cfg;
  cfg.communities = 8;
  cfg.max_swap_trials = 500;
  cfg.max_consecutive_miss = 200;
  const CommunityPartitioner partitioner(cfg);
  const auto result = partitioner.partition(g, rng);
  EXPECT_GE(result.final_modularity, result.initial_modularity - 1e-12);
  EXPECT_NEAR(result.final_modularity,
              modularity(g, result.partition, cfg.communities), 1e-9);
}

TEST(Partitioner, ImprovesClusteredGraphBeyondRandom) {
  const SocialGraph g = clique_graph(12, 8);
  PartitionerConfig cfg;
  cfg.communities = 12;
  cfg.max_swap_trials = 3000;
  cfg.max_consecutive_miss = 1000;
  const CommunityPartitioner partitioner(cfg);
  util::Rng rng(4);
  const auto result = partitioner.partition(g, rng);

  // A random partition of this graph scores near zero.
  Partition random_p(g.player_count());
  util::Rng rrng(5);
  for (auto& c : random_p) c = static_cast<CommunityId>(rrng.uniform_int(0, 11));
  EXPECT_GT(result.final_modularity, modularity(g, random_p, 12) + 0.3);
}

TEST(Partitioner, MissStreakStopsEarly) {
  const SocialGraph g = clique_graph(2, 5);
  PartitionerConfig cfg;
  cfg.communities = 2;
  cfg.max_swap_trials = 100000;
  cfg.max_consecutive_miss = 20;
  const CommunityPartitioner partitioner(cfg);
  util::Rng rng(6);
  const auto result = partitioner.partition(g, rng);
  // Once both cliques are separated, every further swap is a Miss.
  EXPECT_LT(result.swap_trials, 100000);
}

TEST(Partitioner, SingleCommunityDegenerate) {
  util::Rng rng(7);
  const auto g = generate_power_law_graph(50, SocialGraphConfig{}, rng);
  PartitionerConfig cfg;
  cfg.communities = 1;
  const CommunityPartitioner partitioner(cfg);
  const auto result = partitioner.partition(g, rng);
  for (CommunityId c : result.partition) EXPECT_EQ(c, 0);
}

TEST(Partitioner, RejectsBadConfig) {
  PartitionerConfig cfg;
  cfg.communities = 0;
  EXPECT_THROW(CommunityPartitioner{cfg}, cloudfog::ConfigError);
  cfg = PartitionerConfig{};
  cfg.max_consecutive_miss = cfg.max_swap_trials + 1;
  EXPECT_THROW(CommunityPartitioner{cfg}, cloudfog::ConfigError);
}

TEST(AssignNewPlayer, FollowsFriendPlurality) {
  SocialGraph g(5);
  g.add_friendship(4, 0);
  g.add_friendship(4, 1);
  g.add_friendship(4, 2);
  const Partition partition{1, 1, 2, 0, 0};
  util::Rng rng(8);
  EXPECT_EQ(assign_new_player(g, partition, 3, 4, rng), 1);
}

TEST(AssignNewPlayer, RandomWhenFriendless) {
  const SocialGraph g(3);
  const Partition partition{0, 1, 2};
  util::Rng rng(9);
  std::vector<int> seen(3, 0);
  for (int i = 0; i < 300; ++i) {
    ++seen[static_cast<std::size_t>(assign_new_player(g, partition, 3, 0, rng))];
  }
  for (int count : seen) EXPECT_GT(count, 50);
}

// Parameterized property: for any community count, the partitioner covers
// every player and yields valid ids.
class PartitionerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerSweep, ValidPartitionForAnyZ) {
  const int z = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(z) + 100);
  const auto g = generate_power_law_graph(300, SocialGraphConfig{}, rng);
  PartitionerConfig cfg;
  cfg.communities = z;
  cfg.max_swap_trials = 200;
  cfg.max_consecutive_miss = 100;
  const CommunityPartitioner partitioner(cfg);
  const auto result = partitioner.partition(g, rng);
  ASSERT_EQ(result.partition.size(), 300u);
  for (CommunityId c : result.partition) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, z);
  }
  EXPECT_GE(result.final_modularity, result.initial_modularity - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CommunityCounts, PartitionerSweep,
                         ::testing::Values(2, 5, 10, 25, 50));

}  // namespace
}  // namespace cloudfog::social
