file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_candidates.dir/ext_candidates.cpp.o"
  "CMakeFiles/bench_ext_candidates.dir/ext_candidates.cpp.o.d"
  "bench_ext_candidates"
  "bench_ext_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
