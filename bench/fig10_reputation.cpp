// Reproduces Fig. 10: percentage of satisfied players with and without
// reputation-based supernode selection, as supernode capacity varies.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::satisfaction_sweep(core::TestbedProfile::kPeerSim,
                                        core::SatisfactionStrategy::kReputation,
                                        {5, 10, 15, 20, 25}, scale));
  bench::print(core::satisfaction_sweep(core::TestbedProfile::kPlanetLab,
                                        core::SatisfactionStrategy::kReputation,
                                        {5, 10, 15, 20, 25}, scale));
  return 0;
}
