// Pairwise latency and wide-area throughput model.
//
// One-way latency between endpoints = both access (last-mile) latencies +
// propagation over the routed path (great-circle distance × per-km delay ×
// route inflation). Per-node access latencies come from the ping trace, so
// the resulting RTT distribution matches the trace the paper sampled from.
//
// The model also exposes a TCP-like sustainable throughput that decays with
// RTT; this is what makes "streaming a game video from a far-away cloud"
// slow in a way that tiny update messages are not — the effect the whole
// CloudFog design exploits.
#pragma once

#include "net/coordinates.hpp"
#include "net/ping_trace.hpp"
#include "util/rng.hpp"

namespace cloudfog::net {

/// A network attachment point: position + last-mile latency.
struct Endpoint {
  GeoPoint position;
  double access_latency_ms = 5.0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

struct LatencyModelConfig {
  /// One-way propagation per km of routed fibre (speed of light in glass
  /// ≈ 0.005 ms/km one-way).
  double propagation_ms_per_km = 0.005;
  /// Routed paths are longer than geodesics (detours, peering, per-hop
  /// queueing folded into an effective distance); calibrated so that a
  /// handful of datacenters reaches ~70 % of players within an 80 ms RTT,
  /// matching the Choy et al. measurement the paper builds on.
  double route_inflation = 3.0;
  /// Fixed per-path overhead (serialization, a few router hops).
  double hop_overhead_ms = 4.0;
  /// Throughput constant: sustainable rate ≈ tcp_constant / RTT(s), the
  /// classic MSS/(RTT·√p) law. With MSS = 1500 B and p ≈ 1.5 % loss —
  /// typical of loaded long-haul consumer paths — this is ≈ 0.12 Mbit·s.
  /// Values in Mbps when RTT is in seconds.
  double tcp_throughput_mbit_s = 0.12;
  /// Upper bound on per-flow WAN throughput regardless of RTT (Mbps).
  double max_flow_mbps = 100.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig cfg);

  const LatencyModelConfig& config() const { return cfg_; }

  /// Deterministic one-way latency in ms between two endpoints.
  double one_way_ms(const Endpoint& a, const Endpoint& b) const;

  /// Round-trip time in ms (2 × one-way; the paths are symmetric here).
  double rtt_ms(const Endpoint& a, const Endpoint& b) const;

  /// Sustainable per-flow throughput in Mbps across the path — the
  /// RTT-limited TCP-friendly rate, capped at max_flow_mbps.
  double wan_throughput_mbps(const Endpoint& a, const Endpoint& b) const;

  /// Same, but from a precomputed RTT (ms).
  double wan_throughput_mbps(double rtt_ms) const;

 private:
  LatencyModelConfig cfg_;
};

/// Builds an endpoint for a node: position from the geo plane, access
/// latency drawn from the trace.
Endpoint make_endpoint(GeoPoint position, const PingTrace& trace, util::Rng& rng);

/// Endpoint for infrastructure (datacenters, CDN servers): well-connected,
/// ~1 ms access latency.
Endpoint make_infrastructure_endpoint(GeoPoint position);

}  // namespace cloudfog::net
