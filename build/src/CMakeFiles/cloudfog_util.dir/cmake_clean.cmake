file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_util.dir/util/cli.cpp.o"
  "CMakeFiles/cloudfog_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/util/distributions.cpp.o"
  "CMakeFiles/cloudfog_util.dir/util/distributions.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/util/rng.cpp.o"
  "CMakeFiles/cloudfog_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/util/stats.cpp.o"
  "CMakeFiles/cloudfog_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/cloudfog_util.dir/util/table.cpp.o"
  "CMakeFiles/cloudfog_util.dir/util/table.cpp.o.d"
  "libcloudfog_util.a"
  "libcloudfog_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
