// Quickstart: build a small world, run CloudFog with all strategies for a
// week of simulated days, and print the headline QoS numbers next to the
// plain-cloud baseline.
//
//   $ ./quickstart
#include <iostream>

#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"

int main() {
  using namespace cloudfog;

  // 1. Build a testbed: 2 000 players, 5 datacenters, LoL-like latencies.
  const core::Testbed testbed(core::TestbedConfig::peersim(2000), /*seed=*/7);

  // 2. Instantiate the systems under test.
  core::System cloudfog = core::make_cloudfog_advanced(testbed, 7);
  core::System cloud = core::make_cloud_system(testbed, 7);

  // 3. Run one week with two warm-up days.
  sim::CycleConfig week;
  week.total_cycles = 7;
  week.warmup_cycles = 2;
  const core::RunMetrics& fog_metrics = cloudfog.run(week);
  const core::RunMetrics& cloud_metrics = cloud.run(week);

  // 4. Compare.
  util::Table table("CloudFog vs plain cloud gaming — one simulated week");
  table.set_header({"metric", "CloudFog/A", "Cloud"});
  table.add_row({"avg response latency (ms)",
                 util::format_double(fog_metrics.response_latency_ms.mean(), 1),
                 util::format_double(cloud_metrics.response_latency_ms.mean(), 1)});
  table.add_row({"avg playback continuity",
                 util::format_double(fog_metrics.continuity.mean(), 3),
                 util::format_double(cloud_metrics.continuity.mean(), 3)});
  table.add_row({"satisfied players (%)",
                 util::format_double(fog_metrics.satisfied_fraction.mean() * 100, 1),
                 util::format_double(cloud_metrics.satisfied_fraction.mean() * 100, 1)});
  table.add_row({"cloud egress (Mbps)",
                 util::format_double(fog_metrics.cloud_egress_mbps.mean(), 1),
                 util::format_double(cloud_metrics.cloud_egress_mbps.mean(), 1)});
  table.add_row({"players served by fog (%)",
                 util::format_double(fog_metrics.fog_served_fraction.mean() * 100, 1), "0.0"});
  table.add_row({"mean opinion score (1-5)",
                 util::format_double(fog_metrics.mos.mean(), 2),
                 util::format_double(cloud_metrics.mos.mean(), 2)});
  table.print(std::cout);

  std::cout << "Fog offloads the video streams: latency drops, continuity rises,\n"
               "and the cloud pays for update feeds instead of full game videos.\n";
  return 0;
}
