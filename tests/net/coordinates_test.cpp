#include "net/coordinates.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::net {
namespace {

TEST(Distance, KnownValues) {
  EXPECT_DOUBLE_EQ(distance_km({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_km({1, 1}, {1, 1}), 0.0);
}

TEST(Distance, Symmetric) {
  const GeoPoint a{10, 20};
  const GeoPoint b{200, 900};
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
}

class GeoPlaneTest : public ::testing::Test {
 protected:
  util::Rng rng_{42};
  GeoPlane plane_{GeoPlaneConfig{}, rng_};
};

TEST_F(GeoPlaneTest, MetroCountMatchesConfig) {
  EXPECT_EQ(plane_.metros().size(), GeoPlaneConfig{}.metro_count);
}

TEST_F(GeoPlaneTest, PopulationPointsInsidePlane) {
  util::Rng rng(1);
  const auto& cfg = plane_.config();
  for (int i = 0; i < 5000; ++i) {
    const GeoPoint p = plane_.sample_population_point(rng);
    ASSERT_GE(p.x_km, 0.0);
    ASSERT_LE(p.x_km, cfg.width_km);
    ASSERT_GE(p.y_km, 0.0);
    ASSERT_LE(p.y_km, cfg.height_km);
  }
}

TEST_F(GeoPlaneTest, PopulationClustersAroundMetros) {
  util::Rng rng(2);
  int near_metro = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const GeoPoint p = plane_.sample_population_point(rng);
    const std::size_t m = plane_.nearest_metro(p);
    if (distance_km(p, plane_.metros()[m]) < 4 * plane_.config().metro_sigma_km) ++near_metro;
  }
  // 85 % of draws are metro-clustered; nearly all of those are within 4σ.
  EXPECT_GT(near_metro, static_cast<int>(0.75 * n));
}

TEST_F(GeoPlaneTest, FirstMetroIsMostPopulous) {
  util::Rng rng(3);
  std::vector<int> counts(plane_.metros().size(), 0);
  for (int i = 0; i < 20000; ++i) {
    const GeoPoint p = plane_.sample_population_point(rng);
    ++counts[plane_.nearest_metro(p)];
  }
  // Zipf weighting: metro 0 must dominate the median metro.
  std::vector<int> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(counts[0], sorted[sorted.size() / 2] * 2);
}

TEST_F(GeoPlaneTest, DatacenterSitesArePrefixStable) {
  const auto five = plane_.datacenter_sites(5);
  const auto ten = plane_.datacenter_sites(10);
  ASSERT_EQ(five.size(), 5u);
  ASSERT_EQ(ten.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(five[i].x_km, ten[i].x_km);
    EXPECT_DOUBLE_EQ(five[i].y_km, ten[i].y_km);
  }
}

TEST_F(GeoPlaneTest, DatacenterSitesBounded) {
  EXPECT_THROW(plane_.datacenter_sites(65), cloudfog::ConfigError);
  EXPECT_NO_THROW(plane_.datacenter_sites(64));
}

TEST_F(GeoPlaneTest, NearestMetroIsActuallyNearest) {
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint p = plane_.sample_uniform_point(rng);
    const std::size_t m = plane_.nearest_metro(p);
    const double d = distance_km(p, plane_.metros()[m]);
    for (const auto& metro : plane_.metros()) {
      ASSERT_LE(d, distance_km(p, metro) + 1e-9);
    }
  }
}

TEST(GeoPlaneConfigValidation, Rejected) {
  util::Rng rng(5);
  GeoPlaneConfig cfg;
  cfg.metro_count = 0;
  EXPECT_THROW(GeoPlane(cfg, rng), cloudfog::ConfigError);
  cfg = GeoPlaneConfig{};
  cfg.rural_fraction = 1.5;
  EXPECT_THROW(GeoPlane(cfg, rng), cloudfog::ConfigError);
}

TEST(GeoPlaneDeterminism, SameSeedSamePlane) {
  util::Rng r1(7);
  util::Rng r2(7);
  const GeoPlane p1(GeoPlaneConfig{}, r1);
  const GeoPlane p2(GeoPlaneConfig{}, r2);
  for (std::size_t i = 0; i < p1.metros().size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.metros()[i].x_km, p2.metros()[i].x_km);
  }
}

}  // namespace
}  // namespace cloudfog::net
