#include "util/shard_pool.hpp"

#include <atomic>

#include "util/require.hpp"

namespace cloudfog::util {

namespace {
// Set once at startup (obs registers its capture-leak probe); read after
// every shard. Atomic so registration needs no lock ordering with pools.
std::atomic<ShardPool::HygieneCheck> g_hygiene_check{nullptr};
}  // namespace

void ShardPool::set_worker_hygiene_check(HygieneCheck check) {
  g_hygiene_check.store(check, std::memory_order_release);
}

ShardPool::ShardPool(int workers) {
  CLOUDFOG_REQUIRE(workers >= 1, "shard pool needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ShardPool::~ShardPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(int shards, const std::function<void(int)>& fn) {
  if (shards <= 0) return;
  MutexLock lk(mu_);
  CLOUDFOG_REQUIRE(fn_ == nullptr, "ShardPool::run is not reentrant");
  fn_ = &fn;
  total_shards_ = shards;
  next_shard_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  while (next_shard_ < total_shards_ || in_flight_ != 0) done_cv_.wait(lk);
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  MutexLock lk(mu_);
  for (;;) {
    while (!stop_ && generation_ == seen) work_cv_.wait(lk);
    if (stop_) return;
    seen = generation_;
    while (next_shard_ < total_shards_) {
      const int shard = next_shard_++;
      ++in_flight_;
      const std::function<void(int)>* fn = fn_;
      lk.unlock();
      std::exception_ptr err;
      try {
        (*fn)(shard);
        // The body must restore the worker thread (uninstall captures,
        // drop thread-local sinks) before returning: the next generation
        // may run a different region on this thread.
        if (const HygieneCheck check = g_hygiene_check.load(std::memory_order_acquire)) {
          if (const char* why = check()) {
            throw ConfigError(std::string("ShardPool worker hygiene: ") + why);
          }
        }
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      if (err && !error_) error_ = err;
      --in_flight_;
    }
    if (in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace cloudfog::util
