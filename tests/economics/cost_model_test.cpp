#include "economics/cost_model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::economics {
namespace {

TEST(CostModel, HourlyElectricityMatchesPaper) {
  // §4.4: 0.25 kW at 10.8 ¢/kWh → $0.027 per hour.
  const CostModel model;
  EXPECT_NEAR(model.running_cost_usd(1.0), 0.027, 1e-9);
}

TEST(CostModel, CostsAreTrivialComparedToRewards) {
  // The paper's Fig. 16(a) takeaway.
  const CostModel model;
  for (double h : {4.0, 12.0, 24.0}) {
    EXPECT_GT(model.reward_usd(h), 20.0 * model.running_cost_usd(h));
  }
}

TEST(CostModel, ProfitIsRewardMinusCost) {
  const CostModel model;
  EXPECT_NEAR(model.contributor_profit_usd(10.0),
              model.reward_usd(10.0) - model.running_cost_usd(10.0), 1e-12);
  EXPECT_GT(model.contributor_profit_usd(8.0), 0.0);
}

TEST(CostModel, Ec2RentLinearInHours) {
  const CostModel model;
  EXPECT_NEAR(model.ec2_renting_fee_usd(100.0), 260.0, 1e-9);
}

TEST(CostModel, ProviderSavesVersusRenting) {
  // Fig. 16(b): rewarding a supernode is cheaper than renting a GPU
  // instance, so savings are positive and grow with hours.
  const CostModel model;
  double prev = 0.0;
  for (double h : {100.0, 400.0, 800.0}) {
    const double saving = model.provider_saving_vs_ec2_usd(h);
    EXPECT_GT(saving, prev);
    prev = saving;
  }
}

TEST(CostModel, AnnualFleetRewardScale) {
  // §4.4: 300 supernodes, 24 h/day, a year — single-digit millions,
  // versus ~$400 M to build a datacenter.
  const CostModel model;
  const double annual = model.annual_fleet_reward_usd(300, 24.0);
  EXPECT_GT(annual, 1e6);
  EXPECT_LT(annual, model.config().datacenter_build_usd / 10.0);
}

TEST(CostModel, Validation) {
  const CostModel model;
  EXPECT_THROW(model.running_cost_usd(-1.0), cloudfog::ConfigError);
  EXPECT_THROW(model.annual_fleet_reward_usd(-1, 8.0), cloudfog::ConfigError);
  EXPECT_THROW(model.annual_fleet_reward_usd(10, 25.0), cloudfog::ConfigError);
  CostModelConfig cfg;
  cfg.supernode_power_kw = 0.0;
  EXPECT_THROW(CostModel{cfg}, cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::economics
