#include "sim/churn.hpp"

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::sim {

ArrivalProcess::ArrivalProcess(Simulator& sim, util::Rng rng, double rate, ArrivalHook hook)
    : sim_(sim), rng_(rng), rate_(rate), hook_(std::move(hook)) {
  CLOUDFOG_REQUIRE(rate >= 0.0, "arrival rate must be non-negative");
  CLOUDFOG_REQUIRE(static_cast<bool>(hook_), "null arrival hook");
  if (rate_ > 0.0) arm();
}

ArrivalProcess::~ArrivalProcess() { stop(); }

void ArrivalProcess::set_rate(double rate) {
  CLOUDFOG_REQUIRE(rate >= 0.0, "arrival rate must be non-negative");
  const bool was_paused = rate_ == 0.0;
  rate_ = rate;
  if (running_ && was_paused && rate_ > 0.0) {
    // The pause left the last scheduled arrival in the queue; cancel it
    // before arming, or two event chains would run side by side.
    sim_.cancel(pending_);
    arm();
  }
  // A lowered (nonzero) rate applies from the next gap; cancelling the
  // in-flight arrival would bias the process.
}

void ArrivalProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  // Invalidate any event that cancel() missed (e.g. one orphaned by a
  // pause/resume before this fix shipped, or a future regression): an
  // expired token makes the callback a no-op instead of a use-after-free.
  alive_.reset();
}

void ArrivalProcess::arm() {
  const double gap = util::sample_exponential(rng_, rate_);
  const std::weak_ptr<int> alive = alive_;
  pending_ = sim_.schedule_in(gap, [this, alive] {
    if (alive.expired() || !running_) return;
    ++arrivals_;
    hook_(sim_.now());
    if (running_ && rate_ > 0.0) arm();
  });
}

}  // namespace cloudfog::sim
