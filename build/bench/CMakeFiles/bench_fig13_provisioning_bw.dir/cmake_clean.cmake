file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_provisioning_bw.dir/fig13_provisioning_bw.cpp.o"
  "CMakeFiles/bench_fig13_provisioning_bw.dir/fig13_provisioning_bw.cpp.o.d"
  "bench_fig13_provisioning_bw"
  "bench_fig13_provisioning_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_provisioning_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
