file(REMOVE_RECURSE
  "libcloudfog_reputation.a"
)
