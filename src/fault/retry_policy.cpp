#include "fault/retry_policy.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::fault {

namespace {

/// Interned metric handles shared by every RetryBudget.
struct RetryObs {
  obs::CounterId attempts;
  obs::CounterId retries;
  obs::CounterId exhaustions;
  RetryObs() {
    auto& reg = obs::Recorder::global().registry();
    attempts = reg.counter("fault.attempts");
    retries = reg.counter("fault.retries");
    exhaustions = reg.counter("fault.exhaustions");
  }
};

const RetryObs& retry_obs() {
  static const RetryObs handles;
  return handles;
}

}  // namespace

RetryPolicy RetryPolicy::single_attempt(double timeout_ms) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.attempt_timeout_ms = timeout_ms;
  return policy;
}

RetryPolicy RetryPolicy::liveness(double period_ms, int miss_limit) {
  RetryPolicy policy;
  policy.max_attempts = miss_limit;
  policy.attempt_timeout_ms = period_ms;
  return policy;
}

double RetryPolicy::backoff_before_attempt(int attempt, util::Rng& rng) const {
  CLOUDFOG_REQUIRE(attempt >= 1, "attempts are 1-based");
  if (attempt == 1 || base_backoff_ms <= 0.0) return 0.0;
  double wait = base_backoff_ms * std::pow(backoff_multiplier, attempt - 2);
  wait = std::min(wait, max_backoff_ms);
  if (jitter_fraction > 0.0) {
    wait *= rng.uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
    wait = std::max(wait, 0.0);
  }
  return wait;
}

void RetryPolicy::validate() const {
  CLOUDFOG_REQUIRE(max_attempts >= 0, "max_attempts must be >= 0 (0 = unlimited)");
  CLOUDFOG_REQUIRE(attempt_timeout_ms > 0.0, "attempt timeout must be positive");
  CLOUDFOG_REQUIRE(base_backoff_ms >= 0.0, "base backoff must be non-negative");
  CLOUDFOG_REQUIRE(backoff_multiplier >= 1.0, "backoff multiplier must be >= 1");
  CLOUDFOG_REQUIRE(max_backoff_ms >= base_backoff_ms,
                   "max backoff must cover the base backoff");
  CLOUDFOG_REQUIRE(jitter_fraction >= 0.0 && jitter_fraction <= 1.0,
                   "jitter fraction must be within [0, 1]");
  CLOUDFOG_REQUIRE(deadline_budget_ms > 0.0, "deadline budget must be positive");
}

RetryBudget::RetryBudget(const RetryPolicy& policy, std::string_view site)
    : policy_(policy), site_(site) {
  policy_.validate();
}

obs::NoteId RetryBudget::site_note() {
  if (site_note_.index == 0 && !site_.empty()) site_note_ = obs::intern_note(site_);
  return site_note_;
}

bool RetryBudget::can_attempt() const {
  if (exhausted_) return false;
  if (!policy_.unbounded_attempts() && attempts_ >= policy_.max_attempts) return false;
  return elapsed_ms_ < policy_.deadline_budget_ms;
}

bool RetryBudget::next_attempt(util::Rng& rng, double* backoff_ms) {
  if (!can_attempt()) {
    if (!exhausted_) {
      exhausted_ = true;
      auto& rec = obs::Recorder::global();
      if (rec.enabled()) {
        rec.registry().add(retry_obs().exhaustions);
        rec.trace(obs::EventKind::kRetryExhausted, attempts_, -1, elapsed_ms_,
                  site_note());
      }
    }
    return false;
  }
  ++attempts_;
  const double wait = policy_.backoff_before_attempt(attempts_, rng);
  elapsed_ms_ += wait;
  if (backoff_ms != nullptr) *backoff_ms = wait;
  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.registry().add(retry_obs().attempts);
    if (attempts_ >= 2) {
      rec.registry().add(retry_obs().retries);
      rec.trace(obs::EventKind::kRetryAttempt, attempts_, -1, wait, site_note());
    }
  }
  return true;
}

void RetryBudget::charge_ms(double elapsed_ms) {
  CLOUDFOG_REQUIRE(elapsed_ms >= 0.0, "cannot charge negative time");
  elapsed_ms_ += elapsed_ms;
}

double RetryBudget::remaining_budget_ms() const {
  return std::max(0.0, policy_.deadline_budget_ms - elapsed_ms_);
}

}  // namespace cloudfog::fault
