// Persistent worker pool for deterministic sharded loops (DESIGN.md §10).
//
// run(shards, fn) executes fn(0) … fn(shards-1) across the pool's worker
// threads and blocks until every shard finished. Determinism is the
// *caller's* contract: shards must touch disjoint mutable state (per-shard
// accumulators / capture buffers) and the caller reduces them in shard
// order afterwards — the pool itself guarantees only completion, never an
// execution order. Workers are parked between calls, so a pool can be kept
// alive across many subcycles without per-call thread spawn cost.
//
// All scheduling state is guarded by mu_ (clang -Wthread-safety enforces
// the annotations below); the shard bodies themselves run with no lock
// held, which is exactly why they may only touch CF_SHARD_LOCAL slots.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace cloudfog::util {

class ShardPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ShardPool(int workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(shard) for every shard in [0, shards); blocks until all
  /// complete. If a shard threw, rethrows one of the exceptions after the
  /// remaining shards have drained. Not reentrant. Each shard body must
  /// leave the worker thread the way it found it — in particular an
  /// obs capture it installed must be uninstalled (and later replayed by
  /// the caller) before the shard returns; run() rejects a dirty worker.
  void run(int shards, const std::function<void(int)>& fn);

  /// Probe consulted after every shard body returns, reporting a worker
  /// thread left dirty (nullptr = clean). Installed by higher layers —
  /// obs registers one that rejects a still-installed capture buffer —
  /// because util cannot see their thread-local state. A violation is
  /// rethrown out of run() as cloudfog::ConfigError.
  using HygieneCheck = const char* (*)();
  static void set_worker_hygiene_check(HygieneCheck check);

 private:
  void worker_loop();

  Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  const std::function<void(int)>* fn_ CF_GUARDED_BY(mu_) = nullptr;
  int total_shards_ CF_GUARDED_BY(mu_) = 0;
  int next_shard_ CF_GUARDED_BY(mu_) = 0;
  int in_flight_ CF_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ CF_GUARDED_BY(mu_) = 0;
  bool stop_ CF_GUARDED_BY(mu_) = false;
  std::exception_ptr error_ CF_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
};

}  // namespace cloudfog::util
