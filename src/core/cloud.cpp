#include "core/cloud.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::core {

Cloud::Cloud(std::vector<DatacenterState> datacenters, const net::LatencyModel& latency,
             net::IpLocator locator)
    : datacenters_(std::move(datacenters)), latency_(latency), locator_(std::move(locator)) {
  CLOUDFOG_REQUIRE(!datacenters_.empty(), "cloud needs at least one datacenter");
}

DatacenterState& Cloud::datacenter(std::size_t i) {
  CLOUDFOG_REQUIRE(i < datacenters_.size(), "datacenter index out of range");
  return datacenters_[i];
}

const DatacenterState& Cloud::datacenter(std::size_t i) const {
  CLOUDFOG_REQUIRE(i < datacenters_.size(), "datacenter index out of range");
  return datacenters_[i];
}

std::size_t Cloud::nearest_datacenter(const net::Endpoint& who) const {
  std::size_t best = 0;
  double best_rtt = latency_.rtt_ms(who, datacenters_[0].endpoint);
  for (std::size_t i = 1; i < datacenters_.size(); ++i) {
    const double rtt = latency_.rtt_ms(who, datacenters_[i].endpoint);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = i;
    }
  }
  return best;
}

void Cloud::register_supernode(SupernodeState& sn, util::Rng& rng) {
  sn.ip = locator_.register_node(sn.endpoint.position, rng);
}

void Cloud::unregister_supernode(const SupernodeState& sn) {
  locator_.unregister_node(sn.ip);
}

std::vector<std::size_t> Cloud::candidate_supernodes(
    const net::Endpoint& player, const std::vector<SupernodeState>& fleet,
    std::size_t count) const {
  struct Scored {
    std::size_t index = 0;
    double distance_km = 0.0;
  };
  std::vector<Scored> scored;
  scored.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const SupernodeState& sn = fleet[i];
    if (!sn.accepting()) continue;
    // Distance via the registry's (noisy) geolocation — the cloud does not
    // know the supernode's true position, only what its IP resolves to.
    const auto located = locator_.locate(sn.ip);
    const net::GeoPoint where = located.value_or(sn.endpoint.position);
    scored.push_back(Scored{i, net::distance_km(player.position, where)});
  }
  const std::size_t take = std::min(count, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(),
                    [](const Scored& a, const Scored& b) { return a.distance_km < b.distance_km; });
  std::vector<std::size_t> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].index);
  return out;
}

}  // namespace cloudfog::core
