#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::sim {
namespace {

TEST(ArrivalProcess, GeneratesApproximatelyRateArrivals) {
  Simulator sim;
  int arrivals = 0;
  ArrivalProcess proc(sim, util::Rng(1), /*rate=*/5.0, [&](SimTime) { ++arrivals; });
  sim.run_until(1000.0);
  // 5/s over 1000 s: Poisson(5000), std ≈ 71.
  EXPECT_NEAR(arrivals, 5000, 300);
  EXPECT_EQ(proc.arrivals(), static_cast<std::size_t>(arrivals));
}

TEST(ArrivalProcess, ZeroRateIsPaused) {
  Simulator sim;
  int arrivals = 0;
  ArrivalProcess proc(sim, util::Rng(2), 0.0, [&](SimTime) { ++arrivals; });
  sim.run_until(100.0);
  EXPECT_EQ(arrivals, 0);
}

TEST(ArrivalProcess, SetRateResumesFromPause) {
  Simulator sim;
  int arrivals = 0;
  ArrivalProcess proc(sim, util::Rng(3), 0.0, [&](SimTime) { ++arrivals; });
  sim.run_until(100.0);
  proc.set_rate(10.0);
  sim.run_until(200.0);
  EXPECT_NEAR(arrivals, 1000, 150);
}

TEST(ArrivalProcess, RateChangeTakesEffect) {
  Simulator sim;
  int before = 0;
  int after = 0;
  bool boosted = false;
  ArrivalProcess proc(sim, util::Rng(4), 1.0, [&](SimTime) { (boosted ? after : before)++; });
  sim.run_until(100.0);
  boosted = true;
  proc.set_rate(20.0);
  sim.run_until(200.0);
  EXPECT_NEAR(before, 100, 40);
  EXPECT_NEAR(after, 2000, 250);
}

TEST(ArrivalProcess, StopHaltsArrivals) {
  Simulator sim;
  int arrivals = 0;
  ArrivalProcess proc(sim, util::Rng(5), 10.0, [&](SimTime) { ++arrivals; });
  sim.run_until(10.0);
  proc.stop();
  const int at_stop = arrivals;
  sim.run_until(100.0);
  EXPECT_EQ(arrivals, at_stop);
}

TEST(ArrivalProcess, ArrivalTimesAreOrdered) {
  Simulator sim;
  SimTime last = -1.0;
  ArrivalProcess proc(sim, util::Rng(6), 5.0, [&](SimTime t) {
    EXPECT_GT(t, last);
    last = t;
  });
  sim.run_until(50.0);
  EXPECT_GT(proc.arrivals(), 0u);
}

TEST(ArrivalProcess, InterArrivalGapsAreExponential) {
  Simulator sim;
  std::vector<SimTime> times;
  ArrivalProcess proc(sim, util::Rng(7), 2.0, [&](SimTime t) { times.push_back(t); });
  sim.run_until(5000.0);
  double acc = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) acc += times[i] - times[i - 1];
  const double mean_gap = acc / static_cast<double>(times.size() - 1);
  EXPECT_NEAR(mean_gap, 0.5, 0.05);
}

TEST(ArrivalProcess, PauseResumeRunsASingleChain) {
  // Regression: a pause used to leave the last scheduled arrival in the
  // queue, and resume armed a second chain next to it — doubling the
  // effective rate after every pause/resume cycle.
  Simulator sim;
  int arrivals = 0;
  ArrivalProcess proc(sim, util::Rng(20), 10.0, [&](SimTime) { ++arrivals; });
  sim.run_until(100.0);
  proc.set_rate(0.0);
  sim.run_until(200.0);
  proc.set_rate(10.0);
  sim.run_until(300.0);
  proc.set_rate(0.0);
  sim.run_until(400.0);
  proc.set_rate(10.0);
  sim.run_until(500.0);
  // 300 s active at 10/s. With the duplicate-chain bug the two resumes
  // would stack chains and push this toward 5000+.
  EXPECT_NEAR(arrivals, 3000, 300);
}

TEST(ArrivalProcess, DestructionLeavesQueuedEventsHarmless) {
  // Regression: the destructor cancels the pending arrival and expires the
  // liveness token, so an event that survives in the queue must not fire
  // into the dead process (use-after-free under ASan).
  Simulator sim;
  int arrivals = 0;
  {
    ArrivalProcess proc(sim, util::Rng(21), 5.0, [&](SimTime) { ++arrivals; });
    sim.run_until(10.0);
    EXPECT_GT(arrivals, 0);
  }
  const int frozen = arrivals;
  sim.run_until(100.0);
  EXPECT_EQ(arrivals, frozen);
}

TEST(ArrivalProcess, StopIsTerminalEvenAfterSetRate) {
  Simulator sim;
  int arrivals = 0;
  ArrivalProcess proc(sim, util::Rng(22), 5.0, [&](SimTime) { ++arrivals; });
  sim.run_until(10.0);
  proc.stop();
  const int at_stop = arrivals;
  // A paused→positive transition normally re-arms; after stop() it must not.
  proc.set_rate(0.0);
  proc.set_rate(10.0);
  sim.run_until(200.0);
  EXPECT_EQ(arrivals, at_stop);
}

TEST(ArrivalProcess, RejectsNegativeRate) {
  Simulator sim;
  EXPECT_THROW(ArrivalProcess(sim, util::Rng(8), -1.0, [](SimTime) {}),
               cloudfog::ConfigError);
}

TEST(PerMinuteHelper, Converts) {
  EXPECT_DOUBLE_EQ(per_minute(60.0), 1.0);
  EXPECT_DOUBLE_EQ(per_minute(30.0), 0.5);
}

}  // namespace
}  // namespace cloudfog::sim
