#include "util/shard_pool.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::util {

ShardPool::ShardPool(int workers) {
  CLOUDFOG_REQUIRE(workers >= 1, "shard pool needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(int shards, const std::function<void(int)>& fn) {
  if (shards <= 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  CLOUDFOG_REQUIRE(fn_ == nullptr, "ShardPool::run is not reentrant");
  fn_ = &fn;
  total_shards_ = shards;
  next_shard_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lk, [this] { return next_shard_ >= total_shards_ && in_flight_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    while (next_shard_ < total_shards_) {
      const int shard = next_shard_++;
      ++in_flight_;
      lk.unlock();
      std::exception_ptr err;
      try {
        (*fn_)(shard);
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      if (err && !error_) error_ = err;
      --in_flight_;
    }
    if (in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace cloudfog::util
