// Evening-peak scenario: a surge of arrivals at 8 pm stresses the fixed
// supernode pool; dynamic provisioning forecasts the surge (seasonal
// ARIMA over 4-hour windows) and pre-deploys supernodes.
//
// Mirrors the §4.3.4 experiment at a single arrival rate, printing the
// per-subcycle cloud egress so the peak is visible.
//
//   $ ./evening_peak
#include <iostream>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"
#include "util/table.hpp"

int main() {
  using namespace cloudfog;

  const core::Testbed testbed(core::TestbedConfig::peersim(4000), /*seed=*/21);

  auto make = [&](bool provisioning) {
    core::SystemConfig cfg =
        core::cloudfog_basic_config(testbed, core::default_supernode_count(testbed));
    cfg.workload = core::WorkloadMode::kArrivalRates;
    cfg.arrivals = core::ArrivalWorkload{/*offpeak=*/5.0, /*peak=*/40.0};
    cfg.fixed_deployment = 150;  // deliberately tight fixed pool
    cfg.strategies.provisioning = provisioning;
    return core::System(testbed, cfg, 21);
  };

  core::System fixed_sys = make(false);
  core::System prov_sys = make(true);

  // Run nine days so the weekly SARIMA season is learnable; show day 9.
  util::Table table("Cloud egress through the day (day 9, Mbps)");
  table.set_header({"hour", "fixed pool", "provisioned"});
  for (int day = 1; day <= 9; ++day) {
    fixed_sys.begin_cycle(day);
    prov_sys.begin_cycle(day);
    for (int sub = 1; sub <= 24; ++sub) {
      const bool peak = sub >= 20;
      const auto q_fixed = fixed_sys.run_subcycle(day, sub, day < 9, peak);
      const auto q_prov = prov_sys.run_subcycle(day, sub, day < 9, peak);
      if (day == 9 && sub % 2 == 0) {
        table.add_row({std::to_string(sub),
                       util::format_double(q_fixed.cloud_egress_mbps, 1),
                       util::format_double(q_prov.cloud_egress_mbps, 1)});
      }
    }
    fixed_sys.end_cycle(day);
    prov_sys.end_cycle(day);
  }
  table.print(std::cout);

  std::cout << "With a fixed pool the 8 pm surge spills onto the cloud;\n"
               "the provisioner pre-deploys supernodes and absorbs it in the fog.\n";
  return 0;
}
