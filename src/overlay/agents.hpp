// Protocol agents: the passive responders of the §3.2 control plane.
//
//  * SupernodeAgent — owns the seat count of one supernode and answers
//    probes, capacity claims, connects and liveness probes. Seats are
//    reserved at CapacityGrant time, exactly like the fluid FogManager:
//    capacity can vanish between the directory lookup and the claim.
//  * CloudDirectoryAgent — the cloud's supernode table: supernodes
//    register with it; players ask it for the k nearest supernodes with
//    spare capacity. Its view of positions is IP-geolocation-noisy and
//    its view of load is whatever supernodes last reported, so it can be
//    stale — the sequential-ask step exists to absorb that.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/coordinates.hpp"
#include "overlay/network.hpp"

namespace cloudfog::overlay {

class SupernodeAgent {
 public:
  /// Registers the agent on `network` at `where` with `capacity` seats.
  SupernodeAgent(MessageNetwork& network, const net::Endpoint& where, int capacity);

  Address address() const { return address_; }
  int capacity() const { return capacity_; }
  int served() const { return served_; }
  bool accepting() const { return alive_ && served_ < capacity_; }

  /// Crash-stop the supernode (it also stops answering liveness probes).
  void fail();
  bool alive() const { return alive_; }

  /// A player disconnected (end of session or migration away).
  void release_seat();

 private:
  void handle(const Message& msg);

  MessageNetwork& network_;
  Address address_ = kNoAddress;
  int capacity_;
  int served_ = 0;
  bool alive_ = true;
};

class CloudDirectoryAgent {
 public:
  CloudDirectoryAgent(MessageNetwork& network, const net::Endpoint& where,
                      std::size_t candidate_count = 8, double geo_error_sigma_km = 25.0,
                      util::Rng rng = util::Rng(0xd1c7));

  Address address() const { return address_; }
  std::size_t table_size() const { return table_.size(); }

  /// Directly seeds a table entry (tests); normal entries arrive via
  /// Register messages.
  void admit(Address supernode, net::GeoPoint believed_position);

  /// The directory's (possibly stale) belief about free seats. Updated
  /// from grant/deny gossip is out of scope; we refresh it lazily from
  /// the live agents via this setter.
  void update_load_estimate(Address supernode, bool accepting);

 private:
  void handle(const Message& msg);

  struct Entry {
    Address address;
    net::GeoPoint believed_position;
    bool believed_accepting = true;
  };

  MessageNetwork& network_;
  Address address_ = kNoAddress;
  std::size_t candidate_count_;
  double geo_error_sigma_km_;
  util::Rng rng_;
  std::vector<Entry> table_;
};

}  // namespace cloudfog::overlay
