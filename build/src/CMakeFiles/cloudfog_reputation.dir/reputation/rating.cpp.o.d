src/CMakeFiles/cloudfog_reputation.dir/reputation/rating.cpp.o: \
 /root/repo/src/reputation/rating.cpp /usr/include/stdc-predef.h \
 /root/repo/src/reputation/rating.hpp
