
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/cloudfog_core.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/cloud.cpp" "src/CMakeFiles/cloudfog_core.dir/core/cloud.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/cloud.cpp.o.d"
  "/root/repo/src/core/entities.cpp" "src/CMakeFiles/cloudfog_core.dir/core/entities.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/entities.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/cloudfog_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/fog_manager.cpp" "src/CMakeFiles/cloudfog_core.dir/core/fog_manager.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/fog_manager.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/cloudfog_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/provisioner.cpp" "src/CMakeFiles/cloudfog_core.dir/core/provisioner.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/provisioner.cpp.o.d"
  "/root/repo/src/core/qos_engine.cpp" "src/CMakeFiles/cloudfog_core.dir/core/qos_engine.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/qos_engine.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/cloudfog_core.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/system.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/CMakeFiles/cloudfog_core.dir/core/testbed.cpp.o" "gcc" "src/CMakeFiles/cloudfog_core.dir/core/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
