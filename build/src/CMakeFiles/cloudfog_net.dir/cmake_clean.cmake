file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_net.dir/net/bandwidth_model.cpp.o"
  "CMakeFiles/cloudfog_net.dir/net/bandwidth_model.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/net/coordinates.cpp.o"
  "CMakeFiles/cloudfog_net.dir/net/coordinates.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/net/ip_locator.cpp.o"
  "CMakeFiles/cloudfog_net.dir/net/ip_locator.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/net/latency_model.cpp.o"
  "CMakeFiles/cloudfog_net.dir/net/latency_model.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/net/ping_trace.cpp.o"
  "CMakeFiles/cloudfog_net.dir/net/ping_trace.cpp.o.d"
  "CMakeFiles/cloudfog_net.dir/net/trace_io.cpp.o"
  "CMakeFiles/cloudfog_net.dir/net/trace_io.cpp.o.d"
  "libcloudfog_net.a"
  "libcloudfog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
