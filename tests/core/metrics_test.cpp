#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace cloudfog::core {
namespace {

SubcycleQos sample_qos(double latency, double continuity, std::size_t online = 10) {
  SubcycleQos qos;
  qos.avg_response_latency_ms = latency;
  qos.avg_continuity = continuity;
  qos.satisfied_fraction = continuity >= 0.95 ? 1.0 : 0.0;
  qos.cloud_egress_mbps = 100.0;
  qos.online_sessions = online;
  qos.fog_served = online / 2;
  return qos;
}

TEST(MetricsCollector, WarmupSubcyclesIgnored) {
  MetricsCollector collector;
  collector.record_subcycle(sample_qos(500.0, 0.1), /*warmup=*/true);
  collector.record_subcycle(sample_qos(100.0, 0.9), /*warmup=*/false);
  EXPECT_EQ(collector.recorded_subcycles(), 1u);
  EXPECT_DOUBLE_EQ(collector.metrics().response_latency_ms.mean(), 100.0);
}

TEST(MetricsCollector, AveragesAcrossSubcycles) {
  MetricsCollector collector;
  collector.record_subcycle(sample_qos(100.0, 0.8), false);
  collector.record_subcycle(sample_qos(200.0, 0.6), false);
  EXPECT_DOUBLE_EQ(collector.metrics().response_latency_ms.mean(), 150.0);
  EXPECT_DOUBLE_EQ(collector.metrics().continuity.mean(), 0.7);
}

TEST(MetricsCollector, EmptySubcyclesKeepQosUndefinedButCountEgress) {
  MetricsCollector collector;
  SubcycleQos qos = sample_qos(0.0, 1.0, /*online=*/0);
  qos.cloud_egress_mbps = 5.0;
  collector.record_subcycle(qos, false);
  EXPECT_EQ(collector.metrics().response_latency_ms.count(), 0u);
  EXPECT_EQ(collector.metrics().cloud_egress_mbps.count(), 1u);
}

TEST(MetricsCollector, FogServedFractionComputed) {
  MetricsCollector collector;
  collector.record_subcycle(sample_qos(100.0, 0.9, 10), false);
  EXPECT_DOUBLE_EQ(collector.metrics().fog_served_fraction.mean(), 0.5);
}

TEST(MetricsCollector, EventSamplesRecordedRegardlessOfWarmup) {
  MetricsCollector collector;
  collector.record_player_join(120.0);
  collector.record_supernode_join(80.0);
  collector.record_migration(800.0);
  collector.record_server_assignment(1.5);
  EXPECT_EQ(collector.metrics().player_join_latency_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(collector.metrics().migration_latency_ms.mean(), 800.0);
  EXPECT_DOUBLE_EQ(collector.metrics().server_assignment_seconds.mean(), 1.5);
}

}  // namespace
}  // namespace cloudfog::core
