#include "sim/cycle_driver.hpp"

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::sim {

CycleDriver::CycleDriver(Simulator& sim, CycleConfig cfg) : sim_(sim), cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.total_cycles > 0, "need at least one cycle");
  CLOUDFOG_REQUIRE(cfg.warmup_cycles >= 0 && cfg.warmup_cycles < cfg.total_cycles,
                   "warm-up must leave at least one measured cycle");
  CLOUDFOG_REQUIRE(cfg.subcycles_per_cycle > 0, "need at least one subcycle");
  CLOUDFOG_REQUIRE(cfg.subcycle_seconds > 0.0, "subcycle length must be positive");
  CLOUDFOG_REQUIRE(cfg.peak_start_subcycle >= 1 &&
                       cfg.peak_end_subcycle <= cfg.subcycles_per_cycle &&
                       cfg.peak_start_subcycle <= cfg.peak_end_subcycle,
                   "peak window out of range");
}

void CycleDriver::on_subcycle(SubcycleHook hook) {
  CLOUDFOG_REQUIRE(static_cast<bool>(hook), "null subcycle hook");
  subcycle_hooks_.push_back(std::move(hook));
}

void CycleDriver::on_cycle_end(CycleHook hook) {
  CLOUDFOG_REQUIRE(static_cast<bool>(hook), "null cycle hook");
  cycle_hooks_.push_back(std::move(hook));
}

bool CycleDriver::is_peak_subcycle(int subcycle) const {
  return subcycle >= cfg_.peak_start_subcycle && subcycle <= cfg_.peak_end_subcycle;
}

void CycleDriver::run() {
  auto& rec = obs::Recorder::global();
  for (int cycle = 1; cycle <= cfg_.total_cycles; ++cycle) {
    const bool warmup = cycle <= cfg_.warmup_cycles;
    for (int sub = 1; sub <= cfg_.subcycles_per_cycle; ++sub) {
      CyclePoint point;
      point.cycle = cycle;
      point.subcycle = sub;
      point.warmup = warmup;
      point.peak = is_peak_subcycle(sub);
      point.start_time = sim_.now();
      if (rec.enabled()) {
        rec.set_sim_time(point.start_time);
        rec.trace(obs::EventKind::kSubcycle, cycle, sub);
      }
      for (const auto& hook : subcycle_hooks_) hook(point);
      {
        CLOUDFOG_TIMED_SCOPE("sim.drain");
        sim_.run_until(point.start_time + cfg_.subcycle_seconds);
      }
    }
    for (const auto& hook : cycle_hooks_) hook(cycle, warmup);
  }
}

}  // namespace cloudfog::sim
