// Tests of the figure-regeneration harness: every experiment function
// produces a well-formed table with the expected series, and the sweeps
// show the qualitative shapes the paper reports.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hpp"

namespace cloudfog::core {
namespace {

double cell(const util::Table& t, std::size_t row, std::size_t col) {
  return std::strtod(t.cell(row, col).c_str(), nullptr);
}

TEST(Experiment, CoverageVsDatacentersShape) {
  const auto table = coverage_vs_datacenters(TestbedProfile::kPeerSim, {5, 15, 25},
                                             {30.0, 110.0}, 42);
  ASSERT_EQ(table.row_count(), 3u);
  ASSERT_EQ(table.column_count(), 3u);
  // Coverage grows with datacenters…
  EXPECT_LE(cell(table, 0, 1), cell(table, 2, 1) + 1e-9);
  // …and with laxer latency requirements.
  for (std::size_t row = 0; row < 3; ++row) {
    EXPECT_LT(cell(table, row, 1), cell(table, row, 2));
  }
}

TEST(Experiment, CoverageVsSupernodesBeatsDatacentersAlone) {
  const std::vector<double> reqs{50.0};
  const auto dc = coverage_vs_datacenters(TestbedProfile::kPeerSim, {5}, reqs, 42);
  const auto sn = coverage_vs_supernodes(TestbedProfile::kPeerSim, {0, 300}, reqs, 42);
  // Row 0 of the supernode sweep (0 supernodes) equals the 5-DC baseline.
  EXPECT_NEAR(cell(sn, 0, 1), cell(dc, 0, 1), 1e-9);
  // Adding 300 supernodes raises coverage substantially (Fig. 4b).
  EXPECT_GT(cell(sn, 1, 1), cell(sn, 0, 1) + 0.1);
}

TEST(Experiment, PopulationSweepTablesWellFormed) {
  const auto result =
      population_sweep(TestbedProfile::kPeerSim, {400, 800}, ExperimentScale::quick());
  EXPECT_EQ(result.bandwidth.row_count(), 2u);
  EXPECT_EQ(result.bandwidth.column_count(), 5u);
  EXPECT_EQ(result.latency.column_count(), 6u);
  EXPECT_EQ(result.continuity.column_count(), 6u);
  // Cloud bandwidth grows with population.
  EXPECT_GT(cell(result.bandwidth, 1, 1), cell(result.bandwidth, 0, 1));
  // CloudFog consumes far less cloud bandwidth than Cloud.
  EXPECT_LT(cell(result.bandwidth, 1, 4), cell(result.bandwidth, 1, 1) / 2.0);
}

TEST(Experiment, SetupLatencyTablesWellFormed) {
  const auto table = setup_latency_vs_players(TestbedProfile::kPeerSim, {400, 800},
                                              ExperimentScale::quick());
  ASSERT_EQ(table.row_count(), 2u);
  ASSERT_EQ(table.column_count(), 5u);
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    for (std::size_t col = 1; col < table.column_count(); ++col) {
      EXPECT_GE(cell(table, row, col), 0.0);
      EXPECT_LT(cell(table, row, col), 60.0);  // everything under a minute
    }
  }
}

TEST(Experiment, SatisfactionSweepHasBothArms) {
  const auto table = satisfaction_sweep(TestbedProfile::kPeerSim,
                                        SatisfactionStrategy::kReputation, {10, 20},
                                        ExperimentScale::quick());
  ASSERT_EQ(table.row_count(), 2u);
  ASSERT_EQ(table.column_count(), 3u);
  for (std::size_t row = 0; row < 2; ++row) {
    EXPECT_GE(cell(table, row, 1), 0.0);
    EXPECT_LE(cell(table, row, 1), 100.0);
  }
}

TEST(Experiment, ServerAssignmentSweepShowsReduction) {
  const auto table = server_assignment_sweep(TestbedProfile::kPeerSim, {10},
                                             ExperimentScale::quick());
  ASSERT_EQ(table.row_count(), 1u);
  // w/ server latency < w/o server latency (Fig. 12).
  EXPECT_LT(cell(table, 0, 1), cell(table, 0, 3));
}

TEST(Experiment, ProvisioningSweepWellFormed) {
  const auto result = provisioning_sweep(TestbedProfile::kPeerSim, {20.0},
                                         ExperimentScale::quick());
  ASSERT_EQ(result.bandwidth.row_count(), 1u);
  ASSERT_EQ(result.bandwidth.column_count(), 3u);
  EXPECT_GT(cell(result.continuity, 0, 2), 0.0);
}

TEST(Experiment, EconomicsTablesMatchPaperNumbers) {
  const auto sn = supernode_economics({24.0});
  // Rewards dominate costs (Fig. 16a).
  EXPECT_GT(cell(sn, 0, 1), 10.0 * cell(sn, 0, 2));
  EXPECT_NEAR(cell(sn, 0, 3), cell(sn, 0, 1) - cell(sn, 0, 2), 0.02);

  const auto provider = provider_savings({100.0});
  // renting fee = 2.6 · 100; savings positive (Fig. 16b).
  EXPECT_NEAR(cell(provider, 0, 1), 260.0, 1e-6);
  EXPECT_GT(cell(provider, 0, 3), 0.0);
}

TEST(Experiment, EpsilonAblationWellFormedAndMoreSeatsHelpQoS) {
  const auto table = epsilon_ablation(TestbedProfile::kPeerSim, {0.0, 2.0}, 15.0,
                                      ExperimentScale::quick());
  ASSERT_EQ(table.row_count(), 2u);
  ASSERT_EQ(table.column_count(), 4u);
  // A larger ε deploys more supernodes: continuity and fog coverage must
  // not get worse. (Egress is non-monotone: under-provisioning trades
  // update feeds for much costlier direct streams.)
  EXPECT_GE(cell(table, 1, 2), cell(table, 0, 2) - 0.02);
  EXPECT_GE(cell(table, 1, 3), cell(table, 0, 3) - 2.0);
  for (std::size_t row = 0; row < 2; ++row) {
    EXPECT_GE(cell(table, row, 2), 0.0);
    EXPECT_LE(cell(table, row, 2), 1.0);
  }
}

TEST(Experiment, MaliciousSweepShowsTheAttackAndTheDefence) {
  const auto table = malicious_supernode_sweep(TestbedProfile::kPeerSim, {0.0, 0.4},
                                               ExperimentScale::quick());
  ASSERT_EQ(table.row_count(), 2u);
  // The attack lowers satisfaction in both arms…
  EXPECT_LT(cell(table, 1, 2), cell(table, 0, 2));
  // …and reputation retains an edge under attack.
  EXPECT_GE(cell(table, 1, 1), cell(table, 1, 2) - 1.0);
}

TEST(Experiment, ScalePresetsAreConsistent) {
  EXPECT_LT(ExperimentScale::quick().cycles, ExperimentScale{}.cycles);
  EXPECT_EQ(ExperimentScale::paper().cycles, 28);
  EXPECT_EQ(ExperimentScale::paper().warmup, 21);
  const auto cfg = to_cycle_config(ExperimentScale::paper());
  EXPECT_EQ(cfg.total_cycles, 28);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a =
      population_sweep(TestbedProfile::kPeerSim, {400}, ExperimentScale::quick());
  const auto b =
      population_sweep(TestbedProfile::kPeerSim, {400}, ExperimentScale::quick());
  for (std::size_t col = 1; col < a.latency.column_count(); ++col) {
    EXPECT_EQ(a.latency.cell(0, col), b.latency.cell(0, col));
  }
}

}  // namespace
}  // namespace cloudfog::core
