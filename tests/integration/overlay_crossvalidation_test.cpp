// Cross-validation: the event-driven overlay protocols (src/overlay) and
// the fluid FogManager (src/core) implement the same §3.2 conversation.
// Their measured join latencies must agree to first order on identical
// geometry — if they diverge, one of the two models is wrong.
#include <gtest/gtest.h>

#include <optional>

#include "core/fog_manager.hpp"
#include "overlay/join_session.hpp"

namespace cloudfog {
namespace {

struct Geometry {
  net::Endpoint player{{0.0, 0.0}, 8.0};
  net::Endpoint supernode{{30.0, 0.0}, 2.5};
  net::Endpoint datacenter = net::make_infrastructure_endpoint({2500.0, 400.0});
};

/// Joins via the event-driven overlay and returns the measured latency.
double overlay_join_ms(const Geometry& geo, const net::LatencyModel& latency) {
  sim::Simulator sim;
  overlay::MessageNetwork network(sim, latency);
  overlay::CloudDirectoryAgent directory(network, geo.datacenter);
  overlay::SupernodeAgent sn(network, geo.supernode, 5);
  directory.admit(sn.address(), geo.supernode.position);
  overlay::PlayerAgent player(sim, network, geo.player);
  std::optional<overlay::JoinResult> result;
  player.join(directory.address(), overlay::JoinConfig{}, nullptr,
              [&result](const overlay::JoinResult& r) { result = r; }, util::Rng(3));
  sim.run();
  EXPECT_TRUE(result.has_value() && result->fog_connected);
  return result->join_latency_ms;
}

/// Joins via the fluid FogManager and returns its estimated latency.
double fluid_join_ms(const Geometry& geo, const net::LatencyModel& latency) {
  std::vector<core::DatacenterState> dcs(1);
  dcs[0].endpoint = geo.datacenter;
  core::Cloud cloud(std::move(dcs), latency, net::IpLocator{0.0});
  core::FogManager fog(core::FogManagerConfig{}, cloud, latency);
  std::vector<core::SupernodeState> fleet(1);
  fleet[0].endpoint = geo.supernode;
  fleet[0].capacity = 5;
  fleet[0].upload_mbps = 10.0;
  util::Rng reg(1);
  cloud.register_supernode(fleet[0], reg);

  core::PlayerState p;
  p.info.endpoint = geo.player;
  p.game = 4;  // 110 ms budget: the supernode qualifies in both models
  const auto catalog = game::GameCatalog::paper_default();
  util::Rng rng(2);
  const auto outcome = fog.select_supernode(p, fleet, catalog, 1, false, rng);
  EXPECT_EQ(outcome.serving.kind, core::ServingKind::kSupernode);
  return outcome.join_latency_ms;
}

TEST(OverlayCrossValidation, JoinLatenciesAgreeToFirstOrder) {
  const net::LatencyModel latency{net::LatencyModelConfig{}};
  const Geometry geo;
  const double event_ms = overlay_join_ms(geo, latency);
  const double fluid_ms = fluid_join_ms(geo, latency);
  // Same conversation, slightly different accounting (the fluid model
  // folds the connect handshake into a constant): they must agree within
  // 40 % and a small absolute slack.
  EXPECT_NEAR(event_ms, fluid_ms, std::max(fluid_ms * 0.4, 40.0));
}

TEST(OverlayCrossValidation, BothModelsChargeTheCloudRoundTrip) {
  // Moving the datacenter further away must raise both latencies by the
  // same amount (one RTT to the directory).
  const net::LatencyModel latency{net::LatencyModelConfig{}};
  Geometry near_geo;
  Geometry far_geo;
  far_geo.datacenter = net::make_infrastructure_endpoint({4400.0, 2700.0});
  const double d_event = overlay_join_ms(far_geo, latency) - overlay_join_ms(near_geo, latency);
  const double d_fluid = fluid_join_ms(far_geo, latency) - fluid_join_ms(near_geo, latency);
  EXPECT_GT(d_event, 0.0);
  EXPECT_GT(d_fluid, 0.0);
  EXPECT_NEAR(d_event, d_fluid, d_fluid * 0.25 + 5.0);
}

}  // namespace
}  // namespace cloudfog
