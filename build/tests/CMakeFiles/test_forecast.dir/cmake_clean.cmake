file(REMOVE_RECURSE
  "CMakeFiles/test_forecast.dir/forecast/baselines_test.cpp.o"
  "CMakeFiles/test_forecast.dir/forecast/baselines_test.cpp.o.d"
  "CMakeFiles/test_forecast.dir/forecast/sarima_test.cpp.o"
  "CMakeFiles/test_forecast.dir/forecast/sarima_test.cpp.o.d"
  "CMakeFiles/test_forecast.dir/forecast/timeseries_test.cpp.o"
  "CMakeFiles/test_forecast.dir/forecast/timeseries_test.cpp.o.d"
  "test_forecast"
  "test_forecast.pdb"
  "test_forecast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
