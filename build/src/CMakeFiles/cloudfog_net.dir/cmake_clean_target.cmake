file(REMOVE_RECURSE
  "libcloudfog_net.a"
)
