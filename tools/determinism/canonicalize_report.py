#!/usr/bin/env python3
"""Canonicalize a cloudfog run report for determinism comparison.

A run report is byte-identical across same-seed runs *except* for the
`phases` section: phase timings come from steady_clock (real nanoseconds of
this machine, this run) and are the one part of the report that is allowed
to vary. Everything else — run metrics, counters, gauges, histograms, trace
accounting — is a pure function of (config, seed) and must not.

This tool projects a report onto its deterministic subset:
  * `phases` is reduced to {name: invocation count}; the invocation count
    IS deterministic (how many times each phase ran), only its duration
    statistics are wall-clock.
  * every other section is kept verbatim, with object keys sorted.

Usage:
  canonicalize_report.py report.json               # canonical JSON to stdout
  canonicalize_report.py --check a.json b.json     # exit 1 + diff summary if
                                                   # the canonical forms differ

The determinism gate in scripts/check.sh runs every gated benchmark twice
and feeds both reports through --check.
"""

import json
import sys


def canonicalize(report: dict) -> dict:
    out = {k: v for k, v in report.items() if k != "phases"}
    phases = report.get("phases", {})
    out["phases"] = {name: stats.get("count", 0) for name, stats in phases.items()}
    return out


def diff_paths(a, b, path=""):
    """Yields human-readable paths where two canonical values differ."""
    if type(a) is not type(b):
        yield f"{path or '/'}: type {type(a).__name__} vs {type(b).__name__}"
        return
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            sub = f"{path}/{k}"
            if k not in a:
                yield f"{sub}: only in second report"
            elif k not in b:
                yield f"{sub}: only in first report"
            else:
                yield from diff_paths(a[k], b[k], sub)
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            yield from diff_paths(x, y, f"{path}[{i}]")
    elif a != b:
        yield f"{path}: {a!r} vs {b!r}"


def main(argv):
    if argv and argv[0] == "--check":
        if len(argv) != 3:
            print("usage: canonicalize_report.py --check a.json b.json", file=sys.stderr)
            return 2
        with open(argv[1]) as f:
            a = canonicalize(json.load(f))
        with open(argv[2]) as f:
            b = canonicalize(json.load(f))
        diffs = list(diff_paths(a, b))
        if diffs:
            print(f"reports diverge at {len(diffs)} path(s):", file=sys.stderr)
            for d in diffs[:20]:
                print(f"  {d}", file=sys.stderr)
            if len(diffs) > 20:
                print(f"  ... and {len(diffs) - 20} more", file=sys.stderr)
            return 1
        return 0

    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[0]) as f:
        report = json.load(f)
    json.dump(canonicalize(report), sys.stdout, sort_keys=True, indent=1)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
