#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace cloudfog::obs {
namespace {

TraceEvent at(double t, EventKind kind = EventKind::kPlayerJoin) {
  TraceEvent e;
  e.t = t;
  e.kind = kind;
  return e;
}

TEST(TraceBuffer, KeepsEventsOldestFirst) {
  TraceBuffer buf(8);
  for (int i = 0; i < 5; ++i) buf.push(at(i));
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t, i);
  EXPECT_EQ(buf.total_pushed(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, WrapsAroundDroppingOldestWithoutSink) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) buf.push(at(i));
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 4u);
  // The surviving window is the most recent four events, oldest first.
  EXPECT_DOUBLE_EQ(events.front().t, 6.0);
  EXPECT_DOUBLE_EQ(events.back().t, 9.0);
  EXPECT_EQ(buf.total_pushed(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
}

TEST(TraceBuffer, SinkStreamsEveryEvent) {
  std::ostringstream os;
  TraceBuffer buf(4);
  buf.set_sink(&os);
  for (int i = 0; i < 10; ++i) buf.push(at(i));
  buf.flush();
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.total_sunk(), 10u);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 10);
}

TEST(TraceBuffer, AttachingSinkFlushesBufferedEvents) {
  TraceBuffer buf(8);
  buf.push(at(1.0));
  buf.push(at(2.0));
  std::ostringstream os;
  buf.set_sink(&os);
  EXPECT_EQ(buf.total_sunk(), 2u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TraceBuffer, JsonlFieldsAndOptionalOmission) {
  TraceEvent e;
  e.t = 1.5;
  e.kind = EventKind::kProbeAnswered;
  e.subject = 7;
  e.object = 3;
  e.value = 42.0;
  e.note = intern_note("within_lmax");
  std::ostringstream os;
  TraceBuffer::write_jsonl(os, e);
  EXPECT_EQ(os.str(),
            "{\"t\":1.5,\"kind\":\"probe_answered\",\"subject\":7,\"object\":3,"
            "\"value\":42,\"note\":\"within_lmax\"}\n");

  TraceEvent bare;
  bare.t = 0.0;
  bare.kind = EventKind::kPlayerLeave;
  bare.subject = 2;
  std::ostringstream os2;
  TraceBuffer::write_jsonl(os2, bare);
  // object, value and note are omitted when unset.
  EXPECT_EQ(os2.str(), "{\"t\":0,\"kind\":\"player_leave\",\"subject\":2}\n");
}

TEST(TraceBuffer, JsonlEscapesNotes) {
  TraceEvent e;
  e.kind = EventKind::kProvisioning;
  e.note = intern_note("a\"b\\c\nd\x01");
  std::ostringstream os;
  TraceBuffer::write_jsonl(os, e);
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd\\u0001"), std::string::npos);
}

TEST(JsonEscape, ControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\x1f")), "nul\\u001f");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(1.25), "1.25");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(EventKindName, CoversAllKinds) {
  EXPECT_STREQ(event_kind_name(EventKind::kRunStart), "run_start");
  EXPECT_STREQ(event_kind_name(EventKind::kSubcycle), "subcycle");
  EXPECT_STREQ(event_kind_name(EventKind::kMigration), "migration");
  EXPECT_STREQ(event_kind_name(EventKind::kRateSwitch), "rate_switch");
  EXPECT_STREQ(event_kind_name(EventKind::kRating), "rating");
}

TEST(TraceBuffer, ClearResetsBufferAndCounters) {
  TraceBuffer buf(4);
  buf.push(at(1.0));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.events().empty());
  // A cleared buffer is fully reusable, including retention re-selection.
  EXPECT_EQ(buf.total_pushed(), 0u);
  buf.set_retention(TraceRetention::kSampled, 4);
  EXPECT_EQ(buf.retention(), TraceRetention::kSampled);
}

TEST(TraceBuffer, SampledRetentionKeepsStructuralAndEveryNth) {
  TraceBuffer buf(64);
  buf.set_retention(TraceRetention::kSampled, 4);
  buf.push(at(0.0, EventKind::kRunStart));
  for (int i = 0; i < 8; ++i) buf.push(at(1.0 + i, EventKind::kPlayerJoin));
  buf.push(at(10.0, EventKind::kSubcycle));
  const auto events = buf.events();
  // run_start + joins 0 and 4 + subcycle.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kRunStart);
  EXPECT_DOUBLE_EQ(events[1].t, 1.0);
  EXPECT_DOUBLE_EQ(events[2].t, 5.0);
  EXPECT_EQ(events[3].kind, EventKind::kSubcycle);
  EXPECT_EQ(buf.sampled_out(), 6u);
  EXPECT_EQ(buf.total_pushed(), 10u);
}

TEST(TraceBuffer, AggregatedRetentionSummarizesPerWindow) {
  TraceBuffer buf(64);
  buf.set_retention(TraceRetention::kAggregated);
  buf.push(at(0.0, EventKind::kRunStart));
  for (int i = 0; i < 3; ++i) {
    TraceEvent e = at(1.0 + i, EventKind::kPlayerJoin);
    e.value = 10.0;
    buf.push(e);
  }
  buf.push(at(2.0, EventKind::kProbeSent));
  buf.push(at(5.0, EventKind::kSubcycle));  // closes the window
  const auto events = buf.events();
  // run_start, then two summaries (enum order: join before probe), then
  // the boundary itself.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kRunStart);
  EXPECT_EQ(events[1].kind, EventKind::kPlayerJoin);
  EXPECT_EQ(events[1].subject, 3);
  EXPECT_DOUBLE_EQ(events[1].value, 30.0);
  EXPECT_EQ(events[1].note.text(), "agg");
  EXPECT_DOUBLE_EQ(events[1].t, 5.0);
  EXPECT_EQ(events[2].kind, EventKind::kProbeSent);
  EXPECT_EQ(events[2].subject, 1);
  EXPECT_EQ(events[3].kind, EventKind::kSubcycle);
  EXPECT_EQ(buf.aggregated(), 4u);
}

TEST(TraceBuffer, CloseAggregationWindowFlushesTrailingEvents) {
  TraceBuffer buf(64);
  buf.set_retention(TraceRetention::kAggregated);
  TraceEvent e = at(7.0, EventKind::kMigration);
  e.value = 2.5;
  buf.push(e);
  EXPECT_TRUE(buf.events().empty());
  buf.close_aggregation_window();
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kMigration);
  EXPECT_DOUBLE_EQ(events[0].t, 7.0);
  EXPECT_DOUBLE_EQ(events[0].value, 2.5);
}

TEST(TraceBuffer, NoteArgumentAppendsToInternedText) {
  TraceEvent e;
  e.kind = EventKind::kProvisioning;
  e.value = 3.0;
  e.note = Note{intern_note("wanted="), 42};
  std::ostringstream os;
  TraceBuffer::write_jsonl(os, e);
  EXPECT_NE(os.str().find("\"note\":\"wanted=42\""), std::string::npos);
  EXPECT_EQ(e.note.text(), "wanted=42");
}

}  // namespace
}  // namespace cloudfog::obs
