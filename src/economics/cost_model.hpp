// Dollar-denominated cost model behind the paper's Fig. 16 and §4.4.
//
// Inputs the paper uses:
//  * a supernode is a typical server drawing ≈ 0.25 kW;
//  * electricity at the US average of 10.8 ¢/kWh
//    → hourly running cost 0.25 × 0.108 = $0.027;
//  * the provider pays $1 per GB of supernode-contributed bandwidth;
//  * the alternative is renting an Amazon EC2 g2.8xlarge at $2.60/hour;
//  * a medium datacenter costs ≈ $400 M to build.
#pragma once

namespace cloudfog::economics {

struct CostModelConfig {
  double supernode_power_kw = 0.25;
  double electricity_usd_per_kwh = 0.108;
  double reward_usd_per_gb = 1.0;
  /// Video upload rate of a busy supernode, in GB per hour of service
  /// (≈ 3 Mbps sustained ≈ 1.35 GB/h — a handful of concurrent streams).
  double contributed_gb_per_hour = 1.35;
  double ec2_gpu_instance_usd_per_hour = 2.60;
  double datacenter_build_usd = 400e6;
};

class CostModel {
 public:
  explicit CostModel(CostModelConfig cfg = {});

  const CostModelConfig& config() const { return cfg_; }

  /// Electricity cost of running a supernode for `hours`.
  double running_cost_usd(double hours) const;

  /// Reward earned by a supernode serving players for `hours`.
  double reward_usd(double hours) const;

  /// Contributor profit for `hours` of service (reward − running cost).
  double contributor_profit_usd(double hours) const;

  /// Fee for renting the EC2 GPU instance for `hours`.
  double ec2_renting_fee_usd(double hours) const;

  /// Provider saving from using one supernode instead of renting for
  /// `hours` (renting fee − reward paid).
  double provider_saving_vs_ec2_usd(double hours) const;

  /// Annual cost of rewarding a fleet of `supernodes` running
  /// `hours_per_day` every day.
  double annual_fleet_reward_usd(int supernodes, double hours_per_day) const;

 private:
  CostModelConfig cfg_;
};

}  // namespace cloudfog::economics
