#include "scenario/adversary.hpp"

#include "util/require.hpp"

namespace cloudfog::scenario {

const char* adversary_kind_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kFixedDelay: return "fixed_delay";
    case AdversaryKind::kOnOff: return "on_off";
    case AdversaryKind::kWhitewash: return "whitewash";
    case AdversaryKind::kCollusion: return "collusion";
  }
  return "unknown";
}

bool adversary_kind_from_name(std::string_view name, AdversaryKind* out) {
  if (name == "none") *out = AdversaryKind::kNone;
  else if (name == "fixed_delay") *out = AdversaryKind::kFixedDelay;
  else if (name == "on_off") *out = AdversaryKind::kOnOff;
  else if (name == "whitewash") *out = AdversaryKind::kWhitewash;
  else if (name == "collusion") *out = AdversaryKind::kCollusion;
  else return false;
  return true;
}

AdversaryModel::AdversaryModel(const AdversaryConfig& cfg,
                               std::vector<core::SupernodeState>& fleet, util::Rng rng)
    : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg_.fraction >= 0.0 && cfg_.fraction <= 1.0,
                   "adversary fraction must be within [0, 1]");
  CLOUDFOG_REQUIRE(cfg_.period_cycles >= 1 && cfg_.on_cycles >= 0,
                   "on-off periods must be positive");
  CLOUDFOG_REQUIRE(cfg_.whitewash_period_cycles >= 1, "whitewash period must be positive");
  CLOUDFOG_REQUIRE(cfg_.ring_count >= 1, "collusion needs at least one ring");

  member_.assign(fleet.size(), 0);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (!rng.chance(cfg_.fraction)) continue;
    member_[i] = 1;
    member_ids_.push_back(i);
    // Always-on kinds sabotage from day one; the phased kinds set their
    // cycle-1 behaviour in begin_cycle before any selection runs.
    if (cfg_.kind == AdversaryKind::kFixedDelay || cfg_.kind == AdversaryKind::kWhitewash) {
      fleet[i].sabotage_delay_ms = cfg_.delay_ms;
    }
  }
  // Round-robin ring assignment: deterministic, roughly equal rings.
  ring_of_.resize(member_ids_.size());
  for (std::size_t m = 0; m < member_ids_.size(); ++m) {
    ring_of_[m] = m % static_cast<std::size_t>(cfg_.ring_count);
  }
}

void AdversaryModel::begin_cycle(int day, std::vector<core::SupernodeState>& fleet,
                                 std::vector<core::PlayerState>& players) {
  switch (cfg_.kind) {
    case AdversaryKind::kNone:
    case AdversaryKind::kFixedDelay:
      break;
    case AdversaryKind::kOnOff: {
      const bool on = (day - 1) % cfg_.period_cycles < cfg_.on_cycles;
      for (std::size_t id : member_ids_) {
        fleet[id].sabotage_delay_ms = on ? cfg_.delay_ms : 0.0;
      }
      break;
    }
    case AdversaryKind::kWhitewash: {
      // Rebirth day: every member sheds its identity, so the ratings the
      // victims accumulated vanish and the "new" node scores 0 (unknown)
      // instead of its earned bad score.
      if (day > 1 && (day - 1) % cfg_.whitewash_period_cycles == 0) {
        for (auto& p : players) {
          for (std::size_t id : member_ids_) p.reputation.forget(id);
        }
      }
      break;
    }
    case AdversaryKind::kCollusion: {
      // One ring attacks per cycle while the rest behave, keeping the
      // coalition's age-weighted scores high enough to stay selectable.
      const auto active_ring =
          static_cast<std::size_t>((day - 1) % cfg_.ring_count);
      for (std::size_t m = 0; m < member_ids_.size(); ++m) {
        fleet[member_ids_[m]].sabotage_delay_ms =
            ring_of_[m] == active_ring ? cfg_.delay_ms : 0.0;
      }
      break;
    }
  }
}

}  // namespace cloudfog::scenario
