# Empty dependencies file for cloudfog_forecast.
# This may be replaced when dependencies are built.
