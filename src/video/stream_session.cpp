#include "video/stream_session.hpp"

#include "game/quality_ladder.hpp"
#include "util/require.hpp"

namespace cloudfog::video {

StreamSession::StreamSession(const game::GameCatalog& catalog, game::GameId game,
                             RateAdapterConfig adapter_cfg, util::Rng rng)
    : catalog_(catalog), game_(game), adapter_(catalog, game, adapter_cfg, rng) {}

const game::GameInfo& StreamSession::game_info() const { return catalog_.game(game_); }

QosSample StreamSession::observe(const PathObservation& path) {
  return apply(path, continuity_for(path));
}

double StreamSession::continuity_for(const PathObservation& path) const {
  double continuity =
      packet_continuity(path.video_latency_ms, game_info().latency_requirement_ms,
                        path.jitter_mean_ms, path.throughput_kbps,
                        adapter_.current_bitrate_kbps());
  if (path.extra_loss > 0.0) {
    // Injected channel loss removes packets regardless of timeliness. The
    // branch keeps the no-fault floating-point path bit-identical.
    continuity *= 1.0 - path.extra_loss;
  }
  return continuity;
}

QosSample StreamSession::apply(const PathObservation& path, double continuity) {
  CLOUDFOG_REQUIRE(path.interval_s > 0.0, "interval must be positive");
  QosSample sample;
  sample.bitrate_kbps = adapter_.current_bitrate_kbps();
  sample.response_latency_ms = path.response_latency_ms;
  sample.continuity = continuity;

  const double packets = game::kFramesPerSecond * path.interval_s;
  meter_.add(sample.continuity, packets);

  const auto outcome = adapter_.step(path.interval_s, path.throughput_kbps * 1000.0);
  sample.decision = outcome.decision;
  return sample;
}

void StreamSession::charge_outage(double outage_s) {
  CLOUDFOG_REQUIRE(outage_s >= 0.0, "outage must be non-negative");
  if (outage_s == 0.0) return;
  meter_.add(0.0, game::kFramesPerSecond * outage_s);
}

}  // namespace cloudfog::video
