// Diurnal/weekly MMOG workload generator.
//
// §3.5 and refs [36,37]: MMOG populations follow a regular weekly pattern
// with week-to-week variation under 10 %, e.g. "the trend of this Friday's
// online players mirrors that of last Friday". The generator produces the
// expected online-player count for every time window of a run: a smooth
// daily curve (evening peak), a weekly weekday/weekend modulation, and a
// bounded multiplicative noise term. The SARIMA forecaster (src/forecast)
// is evaluated against exactly this process.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace cloudfog::game {

struct WorkloadConfig {
  double base_players = 2000.0;   ///< off-peak weekday floor
  double peak_players = 10000.0;  ///< weekday evening peak
  int subcycles_per_day = 24;
  int peak_start_subcycle = 20;   ///< evening peak window start (1-based)
  int peak_end_subcycle = 24;
  double weekend_boost = 1.25;    ///< Sat/Sun multiplier
  double weekly_noise = 0.08;     ///< max |week-to-week| relative deviation (<10 %)
  /// Week-over-week population growth (a launch-phase MMOG); 0 = the
  /// stationary pattern of [36,37].
  double weekly_growth = 0.0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig cfg, util::Rng rng);

  const WorkloadConfig& config() const { return cfg_; }

  /// Expected (noise-free) player count at day `day` (1-based),
  /// subcycle `subcycle` (1-based). Weeks start on day 1 (a Monday).
  double expected_players(int day, int subcycle) const;

  /// Noisy realization; deterministic per (day, subcycle) for a given
  /// generator seed, so repeated queries agree.
  double players(int day, int subcycle);

  /// Generates the full series for `days` days, one value per subcycle.
  std::vector<double> series(int days);

 private:
  double noise_for(int day, int subcycle);

  WorkloadConfig cfg_;
  util::Rng rng_;
  std::vector<double> noise_cache_;  // indexed by global subcycle
};

}  // namespace cloudfog::game
