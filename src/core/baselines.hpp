// Factories for the paper's experimental arms (§4.1):
//   Cloud       — the current cloud-gaming model [6]: every player streams
//                 directly from its nearest datacenter;
//   CDN         — EdgeCloud [21]: edge servers compute state and stream;
//                 server count = ½ of CloudFog's supernode count (equal
//                 budget, §4.1);
//   CDN-45/CDN-8 — fixed small CDN deployments (45 servers in simulation,
//                 8 on PlanetLab);
//   CloudFog/B  — the fog infrastructure with no §3 strategies;
//   CloudFog/A  — all four strategies enabled.
#pragma once

#include <cstdint>

#include "core/system.hpp"

namespace cloudfog::core {

/// Supernode fleet size per profile (600 in simulation, 30 on PlanetLab).
std::size_t default_supernode_count(const Testbed& testbed);

/// Fixed small CDN size (45 in simulation, 8 on PlanetLab).
std::size_t small_cdn_count(const Testbed& testbed);

SystemConfig cloud_config(const Testbed& testbed);
SystemConfig cdn_config(const Testbed& testbed, std::size_t servers);
SystemConfig cloudfog_basic_config(const Testbed& testbed, std::size_t supernodes);
SystemConfig cloudfog_advanced_config(const Testbed& testbed, std::size_t supernodes);

System make_cloud_system(const Testbed& testbed, std::uint64_t seed);
System make_cdn_system(const Testbed& testbed, std::uint64_t seed);
System make_small_cdn_system(const Testbed& testbed, std::uint64_t seed);
System make_cloudfog_basic(const Testbed& testbed, std::uint64_t seed);
System make_cloudfog_advanced(const Testbed& testbed, std::uint64_t seed);

}  // namespace cloudfog::core
