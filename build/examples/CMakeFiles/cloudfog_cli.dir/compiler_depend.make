# Empty compiler generated dependencies file for cloudfog_cli.
# This may be replaced when dependencies are built.
