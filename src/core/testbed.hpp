// Testbed construction: the static world an experiment runs in.
//
// Two profiles mirror the paper's two environments (§4.1):
//  * "peersim"   — 10 000 players, 10 % supernode-capable, 600 supernodes,
//                  5 datacenters × 50 servers, LoL-trace latencies;
//  * "planetlab" — 750 nodes, 30 supernode-capable, 2 datacenters,
//                  heavier-tailed wide-area latencies.
// A Testbed is immutable once built; Systems instantiate their mutable
// entity state (supernode fleet, CDN servers) from it.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/entities.hpp"
#include "game/activity_model.hpp"
#include "game/game_catalog.hpp"
#include "net/bandwidth_model.hpp"
#include "net/coordinates.hpp"
#include "net/latency_model.hpp"
#include "net/ping_trace.hpp"
#include "social/social_graph.hpp"
#include "util/rng.hpp"

namespace cloudfog::core {

enum class TestbedProfile { kPeerSim, kPlanetLab };

struct TestbedConfig {
  TestbedProfile profile = TestbedProfile::kPeerSim;
  std::size_t player_count = 10000;
  double supernode_capable_fraction = 0.10;
  std::size_t datacenter_count = 5;
  int servers_per_datacenter = 50;
  /// Per-datacenter video-streaming egress capacity. Sized so that direct
  /// cloud streaming congests at evening peak — the regime the paper's
  /// Cloud baseline operates in.
  double datacenter_uplink_mbps = 1500.0;
  /// CDN/EdgeCloud edge servers: an edge server costs about twice a
  /// supernode reward (§4.1/Fig. 6b), so it gets roughly twice a
  /// supernode's uplink and seat count.
  double cdn_uplink_mbps = 30.0;
  int cdn_capacity_players = 15;
  /// When set, every supernode gets exactly this capacity (the Fig. 10/11
  /// "# of supporting players of a supernode" sweeps).
  std::optional<int> forced_supernode_capacity;
  net::GeoPlaneConfig geo;
  net::BandwidthModelConfig bandwidth;
  social::SocialGraphConfig social;
  game::ActivityModelConfig activity;

  /// The paper's simulation profile.
  static TestbedConfig peersim(std::size_t players = 10000);
  /// The paper's PlanetLab profile.
  static TestbedConfig planetlab(std::size_t players = 750);
};

/// The built world. Holds the models by value; Systems keep a reference.
class Testbed {
 public:
  Testbed(TestbedConfig cfg, std::uint64_t seed);

  const TestbedConfig& config() const { return cfg_; }
  const net::GeoPlane& plane() const { return plane_; }
  const net::PingTrace& trace() const { return trace_; }
  const net::LatencyModel& latency() const { return latency_; }
  const net::BandwidthModel& bandwidth() const { return bandwidth_; }
  const game::GameCatalog& catalog() const { return catalog_; }
  const game::ActivityModel& activity() const { return activity_; }
  const social::SocialGraph& social_graph() const { return graph_; }

  const std::vector<PlayerInfo>& players() const { return players_; }
  /// Player indices eligible to host a supernode, in a fixed random order
  /// (fleets of size k take the first k).
  const std::vector<std::size_t>& supernode_capable() const { return supernode_capable_; }

  /// Fresh datacenter states for a deployment of `count` datacenters
  /// (defaults to the configured count). Sited at the largest metros.
  std::vector<DatacenterState> make_datacenters(std::optional<std::size_t> count = {}) const;

  /// Fresh supernode fleet of `count` supernodes drawn from the capable
  /// players (capacity/bandwidth sampled deterministically per player).
  std::vector<SupernodeState> make_supernode_fleet(std::size_t count) const;

  /// Fresh CDN deployment of `count` servers placed uniformly at random
  /// (the paper's "randomly distributed servers").
  std::vector<CdnServerState> make_cdn_servers(std::size_t count, std::uint64_t salt = 0) const;

 private:
  TestbedConfig cfg_;
  std::uint64_t seed_;
  util::Rng build_rng_;
  net::GeoPlane plane_;
  net::PingTrace trace_;
  net::LatencyModel latency_;
  net::BandwidthModel bandwidth_;
  game::GameCatalog catalog_;
  game::ActivityModel activity_;
  social::SocialGraph graph_;
  std::vector<PlayerInfo> players_;
  std::vector<std::size_t> supernode_capable_;
  std::vector<int> supernode_capacity_;    // per capable player
  std::vector<double> supernode_upload_;   // Mbps per capable player
  std::vector<double> supernode_access_;   // access latency ms per capable player
};

}  // namespace cloudfog::core
