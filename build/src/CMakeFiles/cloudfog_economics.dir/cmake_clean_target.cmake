file(REMOVE_RECURSE
  "libcloudfog_economics.a"
)
