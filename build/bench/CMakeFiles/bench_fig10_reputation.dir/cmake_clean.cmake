file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_reputation.dir/fig10_reputation.cpp.o"
  "CMakeFiles/bench_fig10_reputation.dir/fig10_reputation.cpp.o.d"
  "bench_fig10_reputation"
  "bench_fig10_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
