// Geographic substrate.
//
// Nodes live on a 2-D plane sized like the continental US. Player positions
// are drawn from a set of metro clusters with Zipf-weighted populations plus
// a uniform rural background — this is what makes "nearby supernode" a
// meaningful concept: supernodes are drawn from the player population, so
// they concentrate where players do, while datacenters are few and far.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace cloudfog::net {

/// Position in kilometres on the simulation plane.
struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Euclidean distance in kilometres.
double distance_km(const GeoPoint& a, const GeoPoint& b);

struct GeoPlaneConfig {
  double width_km = 4500.0;   ///< roughly the continental-US east-west span
  double height_km = 2800.0;  ///< north-south span
  std::size_t metro_count = 20;
  double metro_zipf_skew = 1.0;   ///< population of k-th metro ∝ 1/k
  double metro_sigma_km = 60.0;   ///< spread of a metro's population
  double rural_fraction = 0.15;   ///< players placed uniformly instead
};

/// Generates positions: metros, players, datacenters.
class GeoPlane {
 public:
  GeoPlane(GeoPlaneConfig cfg, util::Rng& rng);

  const GeoPlaneConfig& config() const { return cfg_; }
  const std::vector<GeoPoint>& metros() const { return metros_; }

  /// Draws one player/supernode position (metro-clustered or rural).
  GeoPoint sample_population_point(util::Rng& rng) const;

  /// Draws a uniformly random point (used for CDN server placement).
  GeoPoint sample_uniform_point(util::Rng& rng) const;

  /// Positions for `n` datacenters. Cloud regions are sited for land and
  /// power, not in city centres (Amazon's handful of US regions is the
  /// motivating example), so sites are a fixed uniformly random sequence:
  /// datacenter_sites(k) is always a prefix of datacenter_sites(k+1).
  /// Requires n <= 64.
  std::vector<GeoPoint> datacenter_sites(std::size_t n) const;

  /// Index of the metro nearest to `p`.
  std::size_t nearest_metro(const GeoPoint& p) const;

 private:
  GeoPlaneConfig cfg_;
  std::vector<GeoPoint> metros_;      // ordered by (synthetic) population
  std::vector<double> metro_cdf_;     // cumulative Zipf weights
  std::vector<GeoPoint> dc_sites_;    // fixed datacenter site sequence
};

}  // namespace cloudfog::net
