#include "world/virtual_world.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::world {

double distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

VirtualWorld::VirtualWorld(WorldConfig cfg, util::Rng rng) : cfg_(cfg), rng_(rng) {
  CLOUDFOG_REQUIRE(cfg.width > 0.0 && cfg.height > 0.0, "world must have positive area");
  CLOUDFOG_REQUIRE(cfg.interaction_radius > 0.0, "interaction radius must be positive");
  CLOUDFOG_REQUIRE(cfg.max_speed >= cfg.min_speed && cfg.min_speed > 0.0,
                   "speed bounds inverted");
  CLOUDFOG_REQUIRE(cfg.hotspot_fraction >= 0.0 && cfg.hotspot_fraction <= 1.0,
                   "hotspot fraction out of [0,1]");
  CLOUDFOG_REQUIRE(cfg.hotspot_count >= 1, "need at least one hotspot");
  hotspots_.reserve(cfg.hotspot_count);
  for (std::size_t i = 0; i < cfg.hotspot_count; ++i) {
    hotspots_.push_back(Vec2{rng_.uniform(0.0, cfg.width), rng_.uniform(0.0, cfg.height)});
  }
}

Vec2 VirtualWorld::sample_point() {
  if (rng_.chance(cfg_.hotspot_fraction)) {
    const auto h = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(hotspots_.size()) - 1));
    Vec2 p{hotspots_[h].x + cfg_.hotspot_sigma * util::sample_standard_normal(rng_),
           hotspots_[h].y + cfg_.hotspot_sigma * util::sample_standard_normal(rng_)};
    p.x = std::clamp(p.x, 0.0, cfg_.width);
    p.y = std::clamp(p.y, 0.0, cfg_.height);
    return p;
  }
  return Vec2{rng_.uniform(0.0, cfg_.width), rng_.uniform(0.0, cfg_.height)};
}

void VirtualWorld::retarget(Avatar& avatar) {
  avatar.waypoint = sample_point();
  avatar.speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
}

AvatarId VirtualWorld::spawn() {
  AvatarId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = avatars_.size();
    avatars_.push_back(Avatar{});
  }
  Avatar& avatar = avatars_[id];
  avatar.id = id;
  avatar.position = sample_point();
  avatar.alive = true;
  retarget(avatar);
  ++population_;
  return id;
}

void VirtualWorld::despawn(AvatarId id) {
  CLOUDFOG_REQUIRE(id < avatars_.size() && avatars_[id].alive, "no such avatar");
  avatars_[id].alive = false;
  free_ids_.push_back(id);
  --population_;
}

const Avatar& VirtualWorld::avatar(AvatarId id) const {
  CLOUDFOG_REQUIRE(id < avatars_.size() && avatars_[id].alive, "no such avatar");
  return avatars_[id];
}

void VirtualWorld::step(double dt) {
  CLOUDFOG_REQUIRE(dt >= 0.0, "negative time step");
  for (Avatar& avatar : avatars_) {
    if (!avatar.alive) continue;
    const double remaining = distance(avatar.position, avatar.waypoint);
    const double travel = avatar.speed * dt;
    if (travel >= remaining) {
      avatar.position = avatar.waypoint;
      retarget(avatar);
      continue;
    }
    const double frac = travel / remaining;
    avatar.position.x += (avatar.waypoint.x - avatar.position.x) * frac;
    avatar.position.y += (avatar.waypoint.y - avatar.position.y) * frac;
  }
}

namespace {

std::int64_t cell_key(double x, double y, double cell) {
  const auto cx = static_cast<std::int64_t>(x / cell);
  const auto cy = static_cast<std::int64_t>(y / cell);
  return (cx << 32) ^ (cy & 0xffffffff);
}

}  // namespace

std::vector<std::pair<AvatarId, AvatarId>> VirtualWorld::interaction_pairs() const {
  const double cell = cfg_.interaction_radius;
  std::unordered_map<std::int64_t, std::vector<AvatarId>> grid;
  for (const Avatar& avatar : avatars_) {
    if (!avatar.alive) continue;
    grid[cell_key(avatar.position.x, avatar.position.y, cell)].push_back(avatar.id);
  }
  std::vector<std::pair<AvatarId, AvatarId>> pairs;
  for (const Avatar& avatar : avatars_) {
    if (!avatar.alive) continue;
    // Scan this cell and its 8 neighbours; emit each pair once (a < b).
    const auto cx = static_cast<std::int64_t>(avatar.position.x / cell);
    const auto cy = static_cast<std::int64_t>(avatar.position.y / cell);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = grid.find(((cx + dx) << 32) ^ ((cy + dy) & 0xffffffff));
        if (it == grid.end()) continue;
        for (AvatarId other : it->second) {
          if (other <= avatar.id) continue;
          if (distance(avatar.position, avatars_[other].position) <=
              cfg_.interaction_radius) {
            pairs.emplace_back(avatar.id, other);
          }
        }
      }
    }
  }
  return pairs;
}

std::size_t VirtualWorld::population_near(const Vec2& where, double radius) const {
  CLOUDFOG_REQUIRE(radius >= 0.0, "negative radius");
  std::size_t count = 0;
  for (const Avatar& avatar : avatars_) {
    if (avatar.alive && distance(avatar.position, where) <= radius) ++count;
  }
  return count;
}

}  // namespace cloudfog::world
