#include "core/qos_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/obs.hpp"
#include "util/require.hpp"
#include "video/continuity.hpp"

namespace cloudfog::core {

namespace {

// Worker count: explicit config wins, else the CLOUDFOG_THREADS
// environment override (bench_common's --threads sets it), else serial.
int resolve_threads(int configured) {
  if (configured > 0) return std::min(configured, 64);
  const char* env = std::getenv("CLOUDFOG_THREADS");
  if (env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(std::min(parsed, 64L));
  }
  return 1;
}

}  // namespace

QosEngine::QosEngine(QosEngineConfig cfg, const net::LatencyModel& latency,
                     const game::GameCatalog& catalog)
    : cfg_(cfg), latency_(latency), catalog_(catalog), threads_(resolve_threads(cfg.threads)) {
  CLOUDFOG_REQUIRE(cfg.substeps >= 1, "need at least one substep");
  CLOUDFOG_REQUIRE(cfg.substep_seconds > 0.0, "substep length must be positive");
  CLOUDFOG_REQUIRE(cfg.burst_headroom >= 1.0, "burst headroom below 1");
  CLOUDFOG_REQUIRE(cfg.base_jitter_ms > 0.0, "jitter mean must be positive");
  // Intern the one metric site reachable from parallel shards on this
  // (main) thread, so no worker is ever the first to touch the registry.
  video::warm_rate_adapter_obs();
}

double QosEngine::EntityLoad::utilization() const {
  if (offered_mbps <= 0.0) return 1.0;
  return std::min(1.0, (demanded_kbps / 1000.0) / offered_mbps);
}

double QosEngine::EntityLoad::queue_factor(double cap) const {
  const double u = std::min(utilization(), 0.99);
  return std::min(cap, u / (1.0 - u));
}

double QosEngine::EntityLoad::share_kbps(double bitrate_kbps) const {
  if (offered_mbps <= 0.0) return 0.0;
  const double offered_kbps = offered_mbps * 1000.0;
  if (demanded_kbps <= offered_kbps) return offered_kbps;  // unsaturated
  return bitrate_kbps * offered_kbps / demanded_kbps;      // proportional share
}

const net::Endpoint& QosEngine::serving_endpoint(const ServingRef& ref,
                                                 const std::vector<SupernodeState>& fleet,
                                                 const Cloud& cloud,
                                                 const std::vector<CdnServerState>& cdn) const {
  switch (ref.kind) {
    case ServingKind::kSupernode:
      return fleet[ref.index].endpoint;
    case ServingKind::kCloud:
      return cloud.datacenter(ref.index).endpoint;
    case ServingKind::kCdn:
      return cdn[ref.index].endpoint;
    case ServingKind::kNone:
      break;
  }
  CLOUDFOG_REQUIRE(false, "player has no serving entity");
  return cloud.datacenter(0).endpoint;  // unreachable
}

double QosEngine::base_latency_ms(const PlayerState& player, const ServingRef& ref,
                                  const std::vector<SupernodeState>& fleet,
                                  const Cloud& cloud,
                                  const std::vector<CdnServerState>& cdn) const {
  // Response-latency accounting follows the paper's §3.1: the upstream
  // action message and the cloud→supernode update are small and fast
  // ("uploading from the players to the cloud does not seriously affect
  // the response latency"); the downstream video delivery dominates. So
  // response = playout/processing + state computation + inter-server
  // communication + (rendering) + the video's one-way path; the caller
  // adds the load-dependent transfer term.
  const net::Endpoint& p = player.info.endpoint;
  double lat = cfg_.playout_processing_ms + cfg_.state_compute_ms;
  switch (ref.kind) {
    case ServingKind::kCloud: {
      const net::Endpoint& dc = cloud.datacenter(ref.index).endpoint;
      lat += player.cross_server_ms;         // inter-server state sync
      lat += latency_.one_way_ms(dc, p);     // video down
      break;
    }
    case ServingKind::kSupernode: {
      const net::Endpoint& sn = fleet[ref.index].endpoint;
      lat += player.cross_server_ms;
      lat += cfg_.render_ms;                 // supernode renders the frame
      lat += latency_.one_way_ms(sn, p);     // video to the player
      break;
    }
    case ServingKind::kCdn: {
      const net::Endpoint& edge = cdn[ref.index].endpoint;
      // EdgeCloud computes game state at the edge: interacting players sit
      // on different CDN servers, so every response waits on a wide-area
      // state-sync round between edge servers (§2: the improvement of CDN
      // "is not significant because the servers need to cooperate").
      lat += cfg_.cdn_cooperation_ms;
      lat += cfg_.render_ms;
      lat += latency_.one_way_ms(edge, p);   // video down
      break;
    }
    case ServingKind::kNone:
      CLOUDFOG_REQUIRE(false, "player has no serving entity");
  }
  return lat;
}

double QosEngine::unloaded_response_latency_ms(const PlayerState& player,
                                               const ServingRef& ref,
                                               const std::vector<SupernodeState>& fleet,
                                               const Cloud& cloud,
                                               const std::vector<CdnServerState>& cdn,
                                               double bitrate_kbps) const {
  const double base = base_latency_ms(player, ref, fleet, cloud, cdn);
  const net::Endpoint& e = serving_endpoint(ref, fleet, cloud, cdn);
  const double rtt = latency_.rtt_ms(player.info.endpoint, e);
  const double throughput_kbps =
      std::min(latency_.wan_throughput_mbps(rtt), player.info.bandwidth.download_mbps) * 1000.0;
  const double transfer_ms =
      game::frame_bits(bitrate_kbps) / std::max(1.0, throughput_kbps * 1000.0) * 1000.0;
  return base + transfer_ms;
}

void QosEngine::evaluate_player(PlayerState& player, PlayerMemo& memo, Acc& acc,
                                const std::vector<SupernodeState>& fleet, const Cloud& cloud,
                                const std::vector<CdnServerState>& cdn) const {
  EntityLoad load;
  switch (player.serving.kind) {
    case ServingKind::kSupernode: {
      const auto& sn = fleet[player.serving.index];
      load = EntityLoad{sn.offered_upload_mbps(), sn.demanded_kbps};
      break;
    }
    case ServingKind::kCloud: {
      const auto& dc = cloud.datacenter(player.serving.index);
      load = EntityLoad{dc.uplink_mbps, dc.demanded_kbps};
      break;
    }
    case ServingKind::kCdn: {
      const auto& edge = cdn[player.serving.index];
      load = EntityLoad{edge.uplink_mbps, edge.demanded_kbps};
      break;
    }
    case ServingKind::kNone:
      break;
  }

  const double bitrate = player.session->current_bitrate_kbps();
  const net::Endpoint& e = serving_endpoint(player.serving, fleet, cloud, cdn);

  // Tier-1 memo: the pure geodesic terms. one_way_ms is symmetric bit for
  // bit (a.access + b.access commutes, the distance is a square sum), so
  // one cached value substitutes into both the (p,e) rtt and the (e,p)
  // video-path expression the recompute path uses.
  PathTerms& terms = memo.terms;
  const bool terms_fresh = cfg_.memoize && terms.valid && terms.ref == player.serving &&
                           terms.player_ep == player.info.endpoint && terms.entity_ep == e;
  if (!terms_fresh) {
    terms.ref = player.serving;
    terms.player_ep = player.info.endpoint;
    terms.entity_ep = e;
    terms.one_way_ms = latency_.one_way_ms(e, player.info.endpoint);
    terms.rtt_ms = latency_.rtt_ms(player.info.endpoint, e);
    terms.wan_kbps = latency_.wan_throughput_mbps(terms.rtt_ms) * 1000.0;
    terms.valid = true;
    memo.obs.valid = false;
  }

  // A malicious supernode's deliberate hold-back (§3.6 extension)
  // delays both the response and every video packet.
  const double sabotage_ms = player.serving.kind == ServingKind::kSupernode
                                 ? fleet[player.serving.index].sabotage_delay_ms
                                 : 0.0;
  // Injected faults degrade fog paths: a slow node delays frames like
  // sabotage does; an impaired cloud→supernode update channel delays
  // the response (the supernode renders against stale state) and drops
  // update packets; a partition between the player's state DC and the
  // supernode's region starves the stream entirely.
  double fault_response_ms = 0.0;
  double fault_video_ms = 0.0;
  double fault_loss = 0.0;
  if (faults_ != nullptr && faults_->any_active() &&
      player.serving.kind == ServingKind::kSupernode) {
    const std::size_t sn_index = player.serving.index;
    const double slow = faults_->slow_ms(sn_index);
    fault_response_ms = slow + faults_->channel().update_delay_ms;
    fault_video_ms = slow;
    fault_loss = faults_->channel().update_loss;
    if (faults_->partitioned_from_supernode(player.state_dc, sn_index)) {
      fault_loss = 1.0;
    }
  }

  // Tier-2 memo: with the terms fresh and every remaining arithmetic
  // input bit-unchanged, the cached observation + continuity are exactly
  // what the recomputation below would produce.
  ObsMemo& om = memo.obs;
  video::PathObservation path;
  double continuity = 0.0;
  if (terms_fresh && om.valid && om.game == player.game && om.bitrate == bitrate &&
      om.offered_mbps == load.offered_mbps && om.demanded_kbps == load.demanded_kbps &&
      om.cross_server_ms == player.cross_server_ms && om.sabotage_ms == sabotage_ms &&
      om.fault_response_ms == fault_response_ms && om.fault_video_ms == fault_video_ms &&
      om.fault_loss == fault_loss) {
    path = om.path;
    continuity = om.continuity;
  } else {
    const double down_kbps = player.info.bandwidth.download_mbps * 1000.0;
    const double share = load.share_kbps(bitrate);
    // Raw path rate bounds serialization delay; the sustained rate the
    // adapter/buffer sees is additionally capped at what the sender can
    // generate (realtime video + a small burst window).
    const double raw_kbps = std::max(1.0, std::min({terms.wan_kbps, down_kbps, share}));
    const double throughput_kbps = std::min(raw_kbps, bitrate * cfg_.burst_headroom);

    // Transfer = frame serialization over the path + queueing at the
    // entity's uplink (M/M/1-style u/(1−u) of the uplink service time).
    const double frame = game::frame_bits(bitrate);
    const double queue = load.queue_factor(cfg_.max_queue_factor);
    const double uplink_kbps = std::max(raw_kbps, load.offered_mbps * 1000.0);
    const double transfer_ms = frame / (raw_kbps * 1000.0) * 1000.0 +
                               queue * frame / (uplink_kbps * 1000.0) * 1000.0;
    // Response-latency assembly replicates base_latency_ms() with the
    // cached one-way term substituted in the same addition order.
    double base_ms = cfg_.playout_processing_ms + cfg_.state_compute_ms;
    switch (player.serving.kind) {
      case ServingKind::kCloud:
        base_ms += player.cross_server_ms;
        base_ms += terms.one_way_ms;
        break;
      case ServingKind::kSupernode:
        base_ms += player.cross_server_ms;
        base_ms += cfg_.render_ms;
        base_ms += terms.one_way_ms;
        break;
      case ServingKind::kCdn:
        base_ms += cfg_.cdn_cooperation_ms;
        base_ms += cfg_.render_ms;
        base_ms += terms.one_way_ms;
        break;
      case ServingKind::kNone:
        CLOUDFOG_REQUIRE(false, "player has no serving entity");
    }
    const double response_ms = base_ms + transfer_ms + sabotage_ms + fault_response_ms;
    // Video packets only traverse entity → player; the action path and
    // state computation delay the *response*, not packet delivery.
    const double video_ms = terms.one_way_ms + transfer_ms + sabotage_ms + fault_video_ms;
    const double jitter_ms =
        cfg_.base_jitter_ms * (1.0 + cfg_.jitter_inflation * load.utilization()) +
        cfg_.path_jitter_fraction * terms.rtt_ms;

    path.response_latency_ms = response_ms;
    path.video_latency_ms = video_ms;
    path.jitter_mean_ms = jitter_ms;
    path.throughput_kbps = throughput_kbps;
    path.interval_s = cfg_.substep_seconds;
    path.extra_loss = fault_loss;
    continuity = player.session->continuity_for(path);

    om.game = player.game;
    om.bitrate = bitrate;
    om.offered_mbps = load.offered_mbps;
    om.demanded_kbps = load.demanded_kbps;
    om.cross_server_ms = player.cross_server_ms;
    om.sabotage_ms = sabotage_ms;
    om.fault_response_ms = fault_response_ms;
    om.fault_video_ms = fault_video_ms;
    om.fault_loss = fault_loss;
    om.path = path;
    om.continuity = continuity;
    om.valid = cfg_.memoize;
  }

  const auto sample = player.session->apply(path, continuity);

  acc.latency_sum += sample.response_latency_ms;
  acc.continuity_sum += sample.continuity;
  acc.bitrate_sum += sample.bitrate_kbps;
  ++acc.samples;
}

SubcycleQos QosEngine::run_subcycle(std::vector<PlayerState>& players,
                                    std::vector<SupernodeState>& fleet, Cloud& cloud,
                                    std::vector<CdnServerState>& cdn) const {
  CLOUDFOG_TIMED_SCOPE("qos.subcycle");
  SubcycleQos out;

  // Per-player accumulators across substeps (scratch reused across calls).
  acc_.assign(players.size(), Acc{});
  if (memo_players_ != players.data() || memo_.size() != players.size()) {
    memo_.assign(players.size(), PlayerMemo{});
    memo_players_ = players.data();
  }

  // The work list — online sessions attached to a serving entity — is
  // invariant across substeps: nothing in the subcycle changes liveness
  // or attachment. Build it once; both passes iterate it in index order.
  work_.clear();
  for (std::size_t i = 0; i < players.size(); ++i) {
    const PlayerState& player = players[i];
    if (player.online && player.session.has_value() && player.serving.attached())
      work_.push_back(static_cast<std::uint32_t>(i));
  }

  // Update-feed egress is likewise constant within the subcycle
  // (served/deployed only change between subcycles): one O(fleet) scan
  // instead of one per substep. The summands are exact in double
  // (integral kbps), so the regrouping is bit-neutral.
  double feed_kbps = 0.0;
  for (const auto& sn : fleet) {
    if (sn.deployed && sn.served > 0) feed_kbps += cfg_.update_feed_kbps;
  }
  for (const auto& edge : cdn) {
    if (edge.served > 0) feed_kbps += cfg_.update_feed_kbps;
  }

  double egress_sum_mbps = 0.0;
  double server_latency_sum = 0.0;
  std::size_t server_latency_samples = 0;
  const bool parallel = threads_ > 1 && !work_.empty();
  if (parallel && pool_ == nullptr) pool_ = std::make_unique<util::ShardPool>(threads_);

  for (int step = 0; step < cfg_.substeps; ++step) {
    // Pass 1: demand tallies (bitrates may have adapted last substep).
    for (auto& sn : fleet) sn.demanded_kbps = 0.0;
    for (auto& dc : cloud.datacenters()) {
      dc.demanded_kbps = 0.0;
      dc.direct_players = 0;
    }
    for (auto& edge : cdn) edge.demanded_kbps = 0.0;

    for (const std::uint32_t i : work_) {
      const PlayerState& player = players[i];
      const double bitrate = player.session->current_bitrate_kbps();
      switch (player.serving.kind) {
        case ServingKind::kSupernode:
          fleet[player.serving.index].demanded_kbps += bitrate;
          break;
        case ServingKind::kCloud: {
          auto& dc = cloud.datacenter(player.serving.index);
          dc.demanded_kbps += bitrate;
          ++dc.direct_players;
          break;
        }
        case ServingKind::kCdn:
          cdn[player.serving.index].demanded_kbps += bitrate;
          break;
        case ServingKind::kNone:
          break;
      }
    }

    // Cloud egress this substep: direct video + update feeds to every
    // supernode actively serving players. EdgeCloud servers likewise need
    // a consistency feed to keep their world replicas in sync.
    double egress_kbps = 0.0;
    for (const auto& dc : cloud.datacenters()) egress_kbps += dc.demanded_kbps;
    egress_kbps += feed_kbps;
    egress_sum_mbps += egress_kbps / 1000.0;

    // The inter-server latency term depends only on pass-2-invariant
    // state, so it accumulates serially regardless of the thread count —
    // identical addition order to an all-serial run.
    for (const std::uint32_t i : work_) {
      const PlayerState& player = players[i];
      if (player.serving.kind != ServingKind::kCdn) {
        server_latency_sum += player.cross_server_ms;
        ++server_latency_samples;
      }
    }

    // Pass 2: per-session path observation. Parallel shards partition the
    // work list into fixed contiguous ranges; each worker mutates only its
    // players' state and buffers obs emissions in a per-shard capture,
    // replayed in shard order below — byte-identical to the serial loop.
    CLOUDFOG_TIMED_SCOPE("qos.rate_adapt");
    if (!parallel) {
      for (const std::uint32_t i : work_)
        evaluate_player(players[i], memo_[i], acc_[i], fleet, cloud, cdn);
    } else {
      const std::size_t shards = static_cast<std::size_t>(threads_);
      if (captures_.size() < shards) captures_.resize(shards);
      pool_->run(static_cast<int>(shards), CF_PARALLEL_REGION [&](int s) {
        struct CaptureGuard {
          explicit CaptureGuard(obs::ObsCapture* cap) { obs::Recorder::set_thread_capture(cap); }
          ~CaptureGuard() { obs::Recorder::set_thread_capture(nullptr); }
        };
        const CaptureGuard guard(&captures_[static_cast<std::size_t>(s)]);
        const std::size_t lo = work_.size() * static_cast<std::size_t>(s) / shards;
        const std::size_t hi = work_.size() * (static_cast<std::size_t>(s) + 1) / shards;
        for (std::size_t k = lo; k < hi; ++k) {
          const std::uint32_t i = work_[k];
          evaluate_player(players[i], memo_[i], acc_[i], fleet, cloud, cdn);
        }
      });
      auto& rec = obs::Recorder::global();
      for (std::size_t s = 0; s < shards; ++s) rec.replay(captures_[s]);
    }
  }

  // Aggregate across players.
  double latency_sum = 0.0;
  double continuity_sum = 0.0;
  double mos_sum = 0.0;
  std::size_t satisfied = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    const PlayerState& player = players[i];
    if (!player.online || acc_[i].samples == 0) continue;
    ++out.online_sessions;
    switch (player.serving.kind) {
      case ServingKind::kSupernode:
        ++out.fog_served;
        break;
      case ServingKind::kCloud:
        ++out.cloud_served;
        break;
      case ServingKind::kCdn:
        ++out.cdn_served;
        break;
      case ServingKind::kNone:
        break;
    }
    const double avg_lat = acc_[i].latency_sum / acc_[i].samples;
    const double avg_cont = acc_[i].continuity_sum / acc_[i].samples;
    const double avg_bitrate = acc_[i].bitrate_sum / acc_[i].samples;
    latency_sum += avg_lat;
    continuity_sum += avg_cont;
    mos_sum += qoe_.mos(avg_lat, std::min(1.0, avg_cont), avg_bitrate);
    if (avg_cont >= video::kSatisfactionThreshold) ++satisfied;

    // Feed the per-cycle continuity used for end-of-cycle supernode
    // ratings (§4.1): the player rates what it actually experienced.
    players[i].cycle_continuity_sum += avg_cont;
    players[i].cycle_continuity_samples += 1.0;
  }

  if (out.online_sessions > 0) {
    out.avg_response_latency_ms = latency_sum / static_cast<double>(out.online_sessions);
    out.avg_continuity = continuity_sum / static_cast<double>(out.online_sessions);
    out.avg_mos = mos_sum / static_cast<double>(out.online_sessions);
    out.satisfied_fraction =
        static_cast<double>(satisfied) / static_cast<double>(out.online_sessions);
  }
  out.avg_server_latency_ms = server_latency_samples == 0
                                  ? 0.0
                                  : server_latency_sum / static_cast<double>(server_latency_samples);
  out.cloud_egress_mbps = egress_sum_mbps / static_cast<double>(cfg_.substeps);
  return out;
}

}  // namespace cloudfog::core
