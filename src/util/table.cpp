#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/require.hpp"

namespace cloudfog::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  CLOUDFOG_REQUIRE(rows_.empty(), "set_header must precede add_row");
  CLOUDFOG_REQUIRE(!header.empty(), "header must not be empty");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> cells) {
  CLOUDFOG_REQUIRE(!header_.empty(), "set_header before add_row");
  CLOUDFOG_REQUIRE(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_double(v, precision));
  add_row(std::move(formatted));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  CLOUDFOG_REQUIRE(row < rows_.size(), "row out of range");
  CLOUDFOG_REQUIRE(col < header_.size(), "column out of range");
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  os << '\n';
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace cloudfog::util
