#include "video/packet_stream.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "video/continuity.hpp"

namespace cloudfog::video {
namespace {

TEST(FrameEncoder, LongRunRateMatchesBitrate) {
  FrameEncoderConfig cfg;
  cfg.bitrate_kbps = 1200.0;
  FrameEncoder encoder(cfg, util::Rng(1));
  double bits = 0.0;
  const int frames = 3000;  // 100 s at 30 fps
  for (int i = 0; i < frames; ++i) bits += encoder.next().bits;
  const double seconds = frames / cfg.fps;
  EXPECT_NEAR(bits / seconds / 1000.0, 1200.0, 30.0);
}

TEST(FrameEncoder, KeyframesAreLargerAndPeriodic) {
  FrameEncoderConfig cfg;
  cfg.size_jitter = 0.0;
  FrameEncoder encoder(cfg, util::Rng(2));
  const EncodedFrame first = encoder.next();
  EXPECT_TRUE(first.keyframe);
  double p_bits = 0.0;
  for (int i = 1; i < cfg.gop_length; ++i) {
    const EncodedFrame f = encoder.next();
    EXPECT_FALSE(f.keyframe);
    p_bits = f.bits;
  }
  EXPECT_TRUE(encoder.next().keyframe);  // next GOP
  EXPECT_NEAR(first.bits, cfg.i_frame_ratio * p_bits, 1e-6);
}

TEST(FrameEncoder, NominalRateConservation) {
  const FrameEncoderConfig cfg;
  const FrameEncoder encoder(cfg, util::Rng(3));
  const double gop_bits = encoder.nominal_bits(true) +
                          (cfg.gop_length - 1) * encoder.nominal_bits(false);
  EXPECT_NEAR(gop_bits, cfg.gop_length * cfg.bitrate_kbps * 1000.0 / cfg.fps, 1e-6);
}

TEST(PacketDelivery, CleanPathDeliversEverythingOnTime) {
  FrameEncoder encoder(FrameEncoderConfig{}, util::Rng(4));
  DeliveryPath path;
  path.base_latency_ms = 10.0;
  path.jitter_mean_ms = 2.0;
  path.bottleneck_kbps = 20000.0;  // wide open
  util::Rng rng(5);
  const auto result = simulate_delivery(encoder, 30.0, path, 110.0, rng);
  EXPECT_GT(result.packets, 100u);
  EXPECT_GT(result.continuity(), 0.99);
}

TEST(PacketDelivery, HopelessPathDeliversNothingOnTime) {
  FrameEncoder encoder(FrameEncoderConfig{}, util::Rng(6));
  DeliveryPath path;
  path.base_latency_ms = 200.0;  // beyond any budget by itself
  util::Rng rng(7);
  const auto result = simulate_delivery(encoder, 10.0, path, 110.0, rng);
  EXPECT_DOUBLE_EQ(result.continuity(), 0.0);
}

TEST(PacketDelivery, PersistentOverloadCollapsesContinuity) {
  // A sender that does NOT adapt its rate into a half-capacity bottleneck
  // builds an unbounded queue: delay diverges and almost nothing arrives
  // on time. This is precisely the failure mode the §3.3 rate adapter
  // exists to prevent (the analytic model's delivery-ratio term instead
  // assumes the sender paces to the available rate).
  FrameEncoderConfig cfg;
  cfg.bitrate_kbps = 1600.0;
  FrameEncoder encoder(cfg, util::Rng(8));
  DeliveryPath path;
  path.base_latency_ms = 10.0;
  path.jitter_mean_ms = 2.0;
  path.bottleneck_kbps = 800.0;  // half the encoding rate
  util::Rng rng(9);
  const auto result = simulate_delivery(encoder, 60.0, path, 110.0, rng);
  EXPECT_LT(result.continuity(), 0.05);
}

TEST(PacketDelivery, AdaptedRateRestoresContinuityUnderTheSameBottleneck) {
  // The counterpart: step the encoder down the Table 2 ladder to a rate
  // the bottleneck can carry and the same path delivers nearly everything
  // on time — the §3.3 mechanism's raison d'être, at packet level.
  FrameEncoderConfig cfg;
  cfg.bitrate_kbps = 500.0;  // two ladder rungs below 1600 kbps
  FrameEncoder encoder(cfg, util::Rng(10));
  DeliveryPath path;
  path.base_latency_ms = 10.0;
  path.jitter_mean_ms = 2.0;
  path.bottleneck_kbps = 800.0;
  util::Rng rng(11);
  const auto result = simulate_delivery(encoder, 60.0, path, 110.0, rng);
  EXPECT_GT(result.continuity(), 0.95);
}

// Property sweep: the analytic continuity formula the QoS engine uses
// must agree with the packet-level simulation across operating points
// where its assumptions hold (uncongested bottleneck: serialization is
// folded into deterministic latency, jitter is the random part).
struct OperatingPoint {
  double bitrate_kbps;
  double latency_ms;
  double jitter_ms;
  double requirement_ms;
};

class AnalyticVsPacketLevel : public ::testing::TestWithParam<OperatingPoint> {};

TEST_P(AnalyticVsPacketLevel, ContinuityAgrees) {
  const OperatingPoint op = GetParam();
  FrameEncoderConfig ecfg;
  ecfg.bitrate_kbps = op.bitrate_kbps;
  ecfg.size_jitter = 0.0;  // isolate the path effects
  FrameEncoder encoder(ecfg, util::Rng(10));
  DeliveryPath path;
  path.base_latency_ms = op.latency_ms;
  path.jitter_mean_ms = op.jitter_ms;
  path.bottleneck_kbps = 50000.0;  // serialization negligible
  util::Rng rng(11);
  const auto packet_level = simulate_delivery(encoder, 120.0, path, op.requirement_ms, rng);

  const double analytic =
      packet_continuity(op.latency_ms, op.requirement_ms, op.jitter_ms,
                        /*throughput=*/50000.0, op.bitrate_kbps);
  EXPECT_NEAR(packet_level.continuity(), analytic, 0.05)
      << "bitrate=" << op.bitrate_kbps << " lat=" << op.latency_ms
      << " jitter=" << op.jitter_ms << " req=" << op.requirement_ms;
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, AnalyticVsPacketLevel,
    ::testing::Values(OperatingPoint{800.0, 20.0, 8.0, 70.0},
                      OperatingPoint{1800.0, 40.0, 12.0, 110.0},
                      OperatingPoint{300.0, 15.0, 6.0, 30.0},
                      OperatingPoint{1200.0, 60.0, 10.0, 90.0},
                      OperatingPoint{500.0, 45.0, 20.0, 50.0},
                      OperatingPoint{800.0, 65.0, 8.0, 70.0}));

TEST(PacketDelivery, Validation) {
  FrameEncoder encoder(FrameEncoderConfig{}, util::Rng(12));
  util::Rng rng(13);
  EXPECT_THROW(simulate_delivery(encoder, 0.0, DeliveryPath{}, 100.0, rng),
               cloudfog::ConfigError);
  DeliveryPath bad;
  bad.mtu_bits = 0.0;
  EXPECT_THROW(simulate_delivery(encoder, 1.0, bad, 100.0, rng), cloudfog::ConfigError);
  FrameEncoderConfig cfg;
  cfg.gop_length = 0;
  EXPECT_THROW(FrameEncoder(cfg, util::Rng(1)), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::video
