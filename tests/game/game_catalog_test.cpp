#include "game/game_catalog.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::game {
namespace {

TEST(GameCatalog, PaperDefaultHasFiveGames) {
  const GameCatalog catalog = GameCatalog::paper_default();
  EXPECT_EQ(catalog.size(), 5u);
}

TEST(GameCatalog, GamesSpanTheLatencyLadder) {
  const GameCatalog catalog = GameCatalog::paper_default();
  EXPECT_DOUBLE_EQ(catalog.game(0).latency_requirement_ms, 30.0);
  EXPECT_DOUBLE_EQ(catalog.game(4).latency_requirement_ms, 110.0);
  for (const auto& g : catalog.games()) {
    const auto& level = catalog.ladder().at_level(g.default_quality_level);
    EXPECT_LE(level.latency_requirement_ms, g.latency_requirement_ms);
  }
}

TEST(GameCatalog, TolerancesMatchTable2) {
  const GameCatalog catalog = GameCatalog::paper_default();
  EXPECT_DOUBLE_EQ(catalog.game(0).latency_tolerance, 0.6);
  EXPECT_DOUBLE_EQ(catalog.game(4).latency_tolerance, 1.0);
}

TEST(GameCatalog, RandomGameCoversAllGames) {
  const GameCatalog catalog = GameCatalog::paper_default();
  util::Rng rng(1);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) {
    ++seen[static_cast<std::size_t>(catalog.random_game(rng).id)];
  }
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(GameCatalog, OutOfRangeIdThrows) {
  const GameCatalog catalog = GameCatalog::paper_default();
  EXPECT_THROW(catalog.game(-1), cloudfog::ConfigError);
  EXPECT_THROW(catalog.game(5), cloudfog::ConfigError);
}

TEST(GameCatalog, RejectsNonDenseIds) {
  QualityLadder ladder = QualityLadder::paper_default();
  std::vector<GameInfo> games;
  games.push_back(GameInfo{1, "bad id", 110.0, 5, 1.0});
  EXPECT_THROW(GameCatalog(std::move(games), std::move(ladder)), cloudfog::ConfigError);
}

TEST(GameCatalog, RejectsDefaultLevelAboveBudget) {
  QualityLadder ladder = QualityLadder::paper_default();
  std::vector<GameInfo> games;
  // Level 5 needs 110 ms but the game only allows 50 ms.
  games.push_back(GameInfo{0, "impossible", 50.0, 5, 0.7});
  EXPECT_THROW(GameCatalog(std::move(games), std::move(ladder)), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::game
