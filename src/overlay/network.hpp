// Simulated message transport for the overlay.
//
// Delivery time = one-way propagation (latency model) + serialization at
// the control-plane rate + optional loss. Handlers run inside the
// discrete-event simulator at the delivery timestamp, so protocol state
// machines experience real ordering and real clock readings.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "net/latency_model.hpp"
#include "overlay/message.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cloudfog::overlay {

struct NetworkConfig {
  /// Control-plane serialization rate (message bits / this = delay).
  double control_rate_bps = 1e6;
  /// Probability that any single message is silently dropped.
  double loss_probability = 0.0;
};

class MessageNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  MessageNetwork(sim::Simulator& sim, const net::LatencyModel& latency,
                 NetworkConfig cfg = {}, util::Rng rng = util::Rng(0xfade));

  /// Registers an endpoint and its message handler; returns its address.
  Address register_endpoint(const net::Endpoint& where, Handler handler);

  /// Marks an endpoint dead: messages to it vanish (crash-stop model).
  void set_down(Address addr, bool down);
  bool is_down(Address addr) const;

  /// Sends `msg` (src/dst must be registered). Delivery is scheduled on
  /// the simulator; returns the scheduled delivery time, or a negative
  /// value if the message was lost or the destination is down (the sender
  /// cannot know — timeouts are the only failure detector).
  double send(Message msg);

  const net::Endpoint& endpoint_of(Address addr) const;
  std::size_t delivered_count() const { return delivered_; }
  std::size_t dropped_count() const { return dropped_; }

 private:
  struct Registered {
    net::Endpoint where;
    Handler handler;
    bool down = false;
  };

  sim::Simulator& sim_;
  const net::LatencyModel& latency_;
  NetworkConfig cfg_;
  util::Rng rng_;
  std::vector<Registered> endpoints_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace cloudfog::overlay
