// Shared helpers for the figure-regeneration binaries.
//
// Every binary accepts optional arguments:
//   --paper       run at the paper's full scale (28 cycles, 21 warm-up) —
//                 slower, but the exact §4.1 schedule;
//   --quick       minimal scale for smoke-testing;
//   --csv         emit CSV instead of aligned tables (for plotting);
//   --seed <n>    override the experiment seed.
// Default is a reduced-but-faithful scale (6 cycles, 3 warm-up).
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/experiment.hpp"

namespace cloudfog::bench {

inline bool& csv_mode() {
  static bool mode = false;
  return mode;
}

inline core::ExperimentScale scale_from_args(int argc, char** argv,
                                             core::ExperimentScale fallback = {}) {
  core::ExperimentScale scale = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      const auto seed = scale.seed;
      scale = core::ExperimentScale::paper();
      scale.seed = seed;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      const auto seed = scale.seed;
      scale = core::ExperimentScale::quick();
      scale.seed = seed;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_mode() = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      scale.seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  return scale;
}

inline void print(const util::Table& table) {
  if (csv_mode()) {
    table.print_csv(std::cout);
    std::cout << '\n';
  } else {
    table.print(std::cout);
  }
}

}  // namespace cloudfog::bench
