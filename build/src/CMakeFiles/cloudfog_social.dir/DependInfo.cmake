
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/social/community_partitioner.cpp" "src/CMakeFiles/cloudfog_social.dir/social/community_partitioner.cpp.o" "gcc" "src/CMakeFiles/cloudfog_social.dir/social/community_partitioner.cpp.o.d"
  "/root/repo/src/social/friendship_tracker.cpp" "src/CMakeFiles/cloudfog_social.dir/social/friendship_tracker.cpp.o" "gcc" "src/CMakeFiles/cloudfog_social.dir/social/friendship_tracker.cpp.o.d"
  "/root/repo/src/social/modularity.cpp" "src/CMakeFiles/cloudfog_social.dir/social/modularity.cpp.o" "gcc" "src/CMakeFiles/cloudfog_social.dir/social/modularity.cpp.o.d"
  "/root/repo/src/social/social_graph.cpp" "src/CMakeFiles/cloudfog_social.dir/social/social_graph.cpp.o" "gcc" "src/CMakeFiles/cloudfog_social.dir/social/social_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
