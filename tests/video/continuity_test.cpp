#include "video/continuity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace cloudfog::video {
namespace {

TEST(OnTimeProbability, ZeroWhenLatencyExceedsRequirement) {
  EXPECT_DOUBLE_EQ(on_time_probability(120.0, 100.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(on_time_probability(100.0, 100.0, 10.0), 0.0);
}

TEST(OnTimeProbability, ExponentialForm) {
  // Slack 30 ms, jitter mean 10 ms: P = 1 − e^−3.
  EXPECT_NEAR(on_time_probability(70.0, 100.0, 10.0), 1.0 - std::exp(-3.0), 1e-12);
}

TEST(OnTimeProbability, MonotoneInSlack) {
  double prev = 0.0;
  for (double lat : {90.0, 70.0, 50.0, 30.0, 10.0}) {
    const double p = on_time_probability(lat, 100.0, 15.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(OnTimeProbability, MonotoneInJitter) {
  EXPECT_GT(on_time_probability(50.0, 100.0, 5.0), on_time_probability(50.0, 100.0, 50.0));
}

TEST(OnTimeProbability, Validation) {
  EXPECT_THROW(on_time_probability(-1.0, 100.0, 10.0), cloudfog::ConfigError);
  EXPECT_THROW(on_time_probability(50.0, 0.0, 10.0), cloudfog::ConfigError);
  EXPECT_THROW(on_time_probability(50.0, 100.0, 0.0), cloudfog::ConfigError);
}

TEST(DeliveryRatio, CapsAtOne) {
  EXPECT_DOUBLE_EQ(delivery_ratio(2000.0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(delivery_ratio(500.0, 1000.0), 0.5);
  EXPECT_DOUBLE_EQ(delivery_ratio(0.0, 1000.0), 0.0);
}

TEST(PacketContinuity, CombinesBothFactors) {
  const double p = packet_continuity(70.0, 100.0, 10.0, 600.0, 1200.0);
  EXPECT_NEAR(p, (1.0 - std::exp(-3.0)) * 0.5, 1e-12);
}

TEST(ContinuityMeter, EmptyIsPerfect) {
  const ContinuityMeter meter;
  EXPECT_DOUBLE_EQ(meter.continuity(), 1.0);
  EXPECT_TRUE(meter.satisfied());
}

TEST(ContinuityMeter, PacketWeightedAverage) {
  ContinuityMeter meter;
  meter.add(1.0, 30.0);
  meter.add(0.0, 10.0);
  EXPECT_DOUBLE_EQ(meter.continuity(), 0.75);
}

TEST(ContinuityMeter, SatisfactionAtThreshold) {
  ContinuityMeter meter;
  meter.add(0.95, 100.0);
  EXPECT_TRUE(meter.satisfied());
  meter.add(0.5, 10.0);
  EXPECT_FALSE(meter.satisfied());
}

TEST(ContinuityMeter, ResetClears) {
  ContinuityMeter meter;
  meter.add(0.2, 5.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.continuity(), 1.0);
  EXPECT_DOUBLE_EQ(meter.packets(), 0.0);
}

TEST(ContinuityMeter, RejectsInvalidInput) {
  ContinuityMeter meter;
  EXPECT_THROW(meter.add(1.5), cloudfog::ConfigError);
  EXPECT_THROW(meter.add(0.5, -1.0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::video
