// Lint fixture: shared-state writes inside a CF_PARALLEL_REGION.
// Exercised by tests/tools/lint_test.py; never compiled.
#define CF_PARALLEL_REGION
#define CF_SHARD_LOCAL

#include <cstdint>
#include <vector>

namespace fixture {

struct Engine {
  CF_SHARD_LOCAL std::vector<double> acc_;
  std::vector<double> totals_;
  std::uint64_t counter_ = 0;
  std::vector<int> log_;

  void run_pass(int shards) {
    int shared_count = 0;
    auto body = CF_PARALLEL_REGION [&](int shard) {
      double local = 0.0;       // region-local: fine
      acc_[shard] = local;      // CF_SHARD_LOCAL slot: fine
      totals_[shard] = local;   // BAD: plain shared member
      counter_ += 1;            // BAD: shared member compound assignment
      shared_count++;           // BAD: by-ref capture of an enclosing local
      log_.push_back(shard);    // BAD: mutating container call on shared state
    };
    (void)body;
    (void)shards;
  }
};

}  // namespace fixture
