// Fixed-width binary trace format (DESIGN.md §11).
//
// The JSONL trace is the compatibility format; at million-player scale its
// per-event formatting cost (shortest-round-trip double printing, string
// allocation) dominates the subcycle. The binary format writes each event
// as one fixed 44-byte little-endian record, with note texts interned into
// a per-file string table so the hot path never formats or allocates.
//
// File layout (all integers little-endian, regardless of host):
//
//   header (12 bytes):
//     0  u8[4]  magic "CFTR"
//     4  u16    format version (kBinaryTraceVersion)
//     6  u16    header size in bytes (12)
//     8  u16    event record size in bytes (44)
//     10 u16    reserved (0)
//
//   then a stream of tagged frames:
//     tag u8 = 0x01: string-table entry — u16 file-local id, u16 byte
//                    length, then the UTF-8 bytes. Ids are assigned in
//                    order of first use; id 0 is reserved for the empty
//                    note and never written.
//     tag u8 = 0x02: event record (44 bytes):
//        0  f64  t
//        8  i64  subject
//        16 i64  object
//        24 f64  value
//        32 i64  note argument (meaningful iff flags bit 0)
//        40 u8   event kind
//        41 u8   flags (bit 0: note argument present)
//        42 u16  note id (file-local; 0 = no note text)
//
// tools/trace/tracecat converts a binary trace back to JSONL that is
// byte-identical to what JsonlTraceSink would have written for the same
// events — doubles and note texts round-trip exactly.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace cloudfog::obs {

inline constexpr std::uint16_t kBinaryTraceVersion = 1;
inline constexpr std::size_t kBinaryTraceHeaderBytes = 12;
inline constexpr std::size_t kBinaryTraceRecordBytes = 44;
inline constexpr std::uint8_t kBinaryFrameString = 0x01;
inline constexpr std::uint8_t kBinaryFrameEvent = 0x02;

/// Streaming binary writer. Events are encoded into an internal buffer and
/// written to the stream in large blocks; flush() drains the buffer.
class BinaryTraceSink final : public TraceSink {
 public:
  explicit BinaryTraceSink(std::ostream& os);
  ~BinaryTraceSink() override;

  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::uint16_t file_note_id(NoteId note);

  std::ostream* os_;
  std::vector<char> buf_;
  /// Global note index -> file-local id (0 = not yet assigned).
  std::vector<std::uint16_t> file_ids_;
  std::uint16_t next_file_id_ = 1;
};

/// Streaming binary reader: decodes frames, interning string-table entries
/// into the process-wide note table so decoded events serialize exactly
/// like the originals.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream& is);

  /// Decodes the next event into `*out`. Returns false at clean EOF or on
  /// error — check ok()/error() to distinguish.
  bool next(TraceEvent* out);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(std::string message) { error_ = std::move(message); }

  std::istream* is_;
  /// File-local string id -> interned global note id.
  std::vector<NoteId> notes_;
  std::string error_;
};

}  // namespace cloudfog::obs
