// Property tests: invariants that must hold for EVERY architecture arm,
// workload mode and strategy combination, checked at every subcycle of a
// multi-day run. These are the guard rails under the figure harness —
// if an experiment config breaks accounting, it fails here first.
#include <gtest/gtest.h>

#include <string>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"

namespace cloudfog::core {
namespace {

const Testbed& property_testbed() {
  static const Testbed tb(TestbedConfig::peersim(800), 777);
  return tb;
}

struct SystemCase {
  std::string name;
  Architecture architecture;
  StrategyToggles strategies;
  WorkloadMode workload;
  std::size_t fixed_deployment;
};

class SystemInvariants : public ::testing::TestWithParam<SystemCase> {};

void check_invariants(const System& sys) {
  // 1. Supernode seat accounting: Σ served == fog-attached online players,
  //    and no supernode exceeds its capacity or serves while undeployed.
  std::size_t fog_players = 0;
  std::size_t cdn_players = 0;
  for (const auto& p : sys.players()) {
    if (!p.online) {
      ASSERT_FALSE(p.session.has_value());
      continue;
    }
    ASSERT_TRUE(p.serving.attached());
    ASSERT_TRUE(p.session.has_value());
    switch (p.serving.kind) {
      case ServingKind::kSupernode: {
        ASSERT_LT(p.serving.index, sys.fleet().size());
        const auto& sn = sys.fleet()[p.serving.index];
        ASSERT_TRUE(sn.deployed);
        ASSERT_FALSE(sn.failed);
        ++fog_players;
        break;
      }
      case ServingKind::kCdn:
        ASSERT_LT(p.serving.index, sys.cdn_servers().size());
        ++cdn_players;
        break;
      case ServingKind::kCloud:
        ASSERT_LT(p.serving.index, sys.cloud().datacenter_count());
        break;
      case ServingKind::kNone:
        FAIL() << "online player with no serving entity";
    }
    // 2. Sessions stream within the game's quality budget.
    const auto& game = sys.players()[p.info.id].session->game_info();
    ASSERT_LE(p.session->current_bitrate_kbps(),
              property_testbed().catalog().ladder()
                  .at_level(game.default_quality_level).bitrate_kbps + 1e-9);
  }
  std::size_t seats = 0;
  for (const auto& sn : sys.fleet()) {
    ASSERT_GE(sn.served, 0);
    ASSERT_LE(sn.served, sn.capacity);
    seats += static_cast<std::size_t>(sn.served);
  }
  ASSERT_EQ(seats, fog_players);
  std::size_t cdn_seats = 0;
  for (const auto& edge : sys.cdn_servers()) {
    ASSERT_GE(edge.served, 0);
    ASSERT_LE(edge.served, edge.capacity);
    cdn_seats += static_cast<std::size_t>(edge.served);
  }
  ASSERT_EQ(cdn_seats, cdn_players);
}

TEST_P(SystemInvariants, HoldAtEverySubcycle) {
  const SystemCase& c = GetParam();
  SystemConfig cfg;
  cfg.architecture = c.architecture;
  cfg.strategies = c.strategies;
  cfg.workload = c.workload;
  cfg.fixed_deployment = c.fixed_deployment;
  cfg.supernode_count =
      std::min<std::size_t>(60, property_testbed().supernode_capable().size());
  cfg.cdn_server_count = 30;
  if (c.workload == WorkloadMode::kArrivalRates) {
    cfg.arrivals = ArrivalWorkload{10.0, 40.0};
  }
  System sys(property_testbed(), cfg, 1234);

  for (int day = 1; day <= 3; ++day) {
    sys.begin_cycle(day);
    for (int sub = 1; sub <= 24; ++sub) {
      const auto qos = sys.run_subcycle(day, sub, day == 1, sub >= 20);
      check_invariants(sys);
      // 3. Aggregates stay on their scales.
      ASSERT_GE(qos.avg_continuity, 0.0);
      ASSERT_LE(qos.avg_continuity, 1.0);
      ASSERT_GE(qos.satisfied_fraction, 0.0);
      ASSERT_LE(qos.satisfied_fraction, 1.0);
      ASSERT_GE(qos.avg_mos, 1.0);
      ASSERT_LE(qos.avg_mos, 5.0);
      ASSERT_GE(qos.cloud_egress_mbps, 0.0);
      ASSERT_EQ(qos.online_sessions, qos.fog_served + qos.cloud_served + qos.cdn_served);
      if (qos.online_sessions > 0) {
        ASSERT_GT(qos.avg_response_latency_ms, 0.0);
      }
    }
    // 4. Mid-run failure injection keeps accounting intact (fog arms).
    if (c.architecture == Architecture::kCloudFog && day == 2) {
      sys.inject_supernode_failures(5, day);
      check_invariants(sys);
      sys.recover_supernodes();
    }
    sys.end_cycle(day);
    check_invariants(sys);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArms, SystemInvariants,
    ::testing::Values(
        SystemCase{"cloud_daily", Architecture::kCloudDirect, StrategyToggles::none(),
                   WorkloadMode::kDailySessions, 0},
        SystemCase{"cdn_daily", Architecture::kCdn, StrategyToggles::none(),
                   WorkloadMode::kDailySessions, 0},
        SystemCase{"fog_basic_daily", Architecture::kCloudFog, StrategyToggles::none(),
                   WorkloadMode::kDailySessions, 0},
        SystemCase{"fog_advanced_daily", Architecture::kCloudFog, StrategyToggles::all(),
                   WorkloadMode::kDailySessions, 0},
        SystemCase{"fog_advanced_arrivals", Architecture::kCloudFog,
                   StrategyToggles::all(), WorkloadMode::kArrivalRates, 20},
        SystemCase{"fog_basic_arrivals_fixed_pool", Architecture::kCloudFog,
                   StrategyToggles::none(), WorkloadMode::kArrivalRates, 10}),
    [](const ::testing::TestParamInfo<SystemCase>& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace cloudfog::core
