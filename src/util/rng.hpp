// Deterministic pseudo-random number generation.
//
// Every stochastic decision in CloudFog flows from a single root seed so
// that experiments are exactly reproducible across runs and platforms.
// The generator is PCG32 (O'Neill, 2014): 64-bit state, 32-bit output,
// excellent statistical quality and trivially portable — unlike
// std::mt19937 whose distributions are not specified bit-exactly across
// standard libraries.
#pragma once

#include <cstdint>
#include <string_view>

namespace cloudfog::util {

/// PCG32 generator. Copyable value type; copies evolve independently,
/// which makes it easy to hand each subsystem its own stream.
class Rng {
 public:
  /// Seeds the generator. Two Rngs built from the same (seed, stream)
  /// produce identical sequences; different streams are independent.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Derives an independent child generator; `label` decorrelates children
  /// spawned from the same parent state (e.g. one per subsystem).
  Rng fork(std::string_view label);

  /// Standard-library UniformRandomBitGenerator interface, so Rng can be
  /// used with std::shuffle and friends.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffU; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// SplitMix64 hash step; used for seed derivation and by Rng::fork.
std::uint64_t splitmix64(std::uint64_t x);

/// Stable 64-bit hash of a string, for deriving labelled sub-seeds.
std::uint64_t hash64(std::string_view s);

}  // namespace cloudfog::util
