#include "world/virtual_world.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::world {
namespace {

VirtualWorld make_world(std::uint64_t seed = 1, WorldConfig cfg = {}) {
  return VirtualWorld(cfg, util::Rng(seed));
}

TEST(VirtualWorld, SpawnAndDespawnTrackPopulation) {
  auto world = make_world();
  const AvatarId a = world.spawn();
  const AvatarId b = world.spawn();
  EXPECT_EQ(world.population(), 2u);
  world.despawn(a);
  EXPECT_EQ(world.population(), 1u);
  EXPECT_TRUE(world.avatar(b).alive);
  EXPECT_THROW(world.avatar(a), ConfigError);
}

TEST(VirtualWorld, SlotsAreRecycled) {
  auto world = make_world();
  const AvatarId a = world.spawn();
  world.despawn(a);
  const AvatarId b = world.spawn();
  EXPECT_EQ(a, b);
  EXPECT_EQ(world.population(), 1u);
}

TEST(VirtualWorld, AvatarsStayInBounds) {
  auto world = make_world(2);
  for (int i = 0; i < 300; ++i) world.spawn();
  for (int step = 0; step < 200; ++step) {
    world.step(1.0);
    for (const Avatar& a : world.avatars()) {
      if (!a.alive) continue;
      ASSERT_GE(a.position.x, 0.0);
      ASSERT_LE(a.position.x, world.config().width);
      ASSERT_GE(a.position.y, 0.0);
      ASSERT_LE(a.position.y, world.config().height);
    }
  }
}

TEST(VirtualWorld, AvatarsActuallyMove) {
  auto world = make_world(3);
  const AvatarId id = world.spawn();
  const Vec2 before = world.avatar(id).position;
  world.step(5.0);
  const Vec2 after = world.avatar(id).position;
  EXPECT_GT(distance(before, after), 0.0);
}

TEST(VirtualWorld, MovementRespectsSpeed) {
  auto world = make_world(4);
  const AvatarId id = world.spawn();
  const Vec2 before = world.avatar(id).position;
  const double speed = world.avatar(id).speed;
  world.step(1.0);
  // May have re-targeted after arrival, but a single step can never cover
  // more than max_speed × dt.
  EXPECT_LE(distance(before, world.avatar(id).position),
            world.config().max_speed + 1e-9);
  EXPECT_GE(speed, world.config().min_speed);
  EXPECT_LE(speed, world.config().max_speed);
}

TEST(VirtualWorld, HotspotsConcentratePopulation) {
  WorldConfig cfg;
  cfg.hotspot_fraction = 0.9;
  auto world = VirtualWorld(cfg, util::Rng(5));
  for (int i = 0; i < 2000; ++i) world.spawn();
  // The hotspot area is tiny relative to the world; if spawns were
  // uniform, the densest 50-radius disk would hold a handful of avatars.
  std::size_t densest = 0;
  for (const Avatar& a : world.avatars()) {
    densest = std::max(densest, world.population_near(a.position, 300.0));
  }
  EXPECT_GT(densest, 50u);
}

TEST(VirtualWorld, InteractionPairsMatchBruteForce) {
  auto world = make_world(6);
  for (int i = 0; i < 400; ++i) world.spawn();
  world.step(3.0);
  auto pairs = world.interaction_pairs();
  // Brute-force ground truth.
  std::vector<std::pair<AvatarId, AvatarId>> expected;
  const auto& avatars = world.avatars();
  for (std::size_t i = 0; i < avatars.size(); ++i) {
    for (std::size_t j = i + 1; j < avatars.size(); ++j) {
      if (avatars[i].alive && avatars[j].alive &&
          distance(avatars[i].position, avatars[j].position) <=
              world.config().interaction_radius) {
        expected.emplace_back(i, j);
      }
    }
  }
  auto norm = [](std::vector<std::pair<AvatarId, AvatarId>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(norm(pairs), norm(expected));
}

TEST(VirtualWorld, InteractionPairsUniqueAndOrdered) {
  auto world = make_world(7);
  for (int i = 0; i < 500; ++i) world.spawn();
  const auto pairs = world.interaction_pairs();
  for (const auto& [a, b] : pairs) EXPECT_LT(a, b);
}

TEST(VirtualWorld, DeterministicForSeed) {
  auto w1 = make_world(8);
  auto w2 = make_world(8);
  for (int i = 0; i < 100; ++i) {
    w1.spawn();
    w2.spawn();
  }
  w1.step(10.0);
  w2.step(10.0);
  for (std::size_t i = 0; i < w1.avatars().size(); ++i) {
    EXPECT_DOUBLE_EQ(w1.avatars()[i].position.x, w2.avatars()[i].position.x);
  }
}

TEST(VirtualWorld, ConfigValidation) {
  WorldConfig cfg;
  cfg.interaction_radius = 0.0;
  EXPECT_THROW(VirtualWorld(cfg, util::Rng(1)), ConfigError);
  cfg = WorldConfig{};
  cfg.min_speed = 10.0;
  cfg.max_speed = 5.0;
  EXPECT_THROW(VirtualWorld(cfg, util::Rng(1)), ConfigError);
}

}  // namespace
}  // namespace cloudfog::world
