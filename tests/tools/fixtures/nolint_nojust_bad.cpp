// Fixture: must trip cloudfog-nolint — a suppression without a
// justification is itself an error.
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> table;

int sum() {
  int total = 0;
  for (const auto& [k, v] : table) total += v;  // NOLINT(cloudfog-unordered-iter)
  return total;
}

}  // namespace fixture
