#include "economics/contributor_market.hpp"

#include <algorithm>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::economics {

ContributorMarket::ContributorMarket(std::vector<Contributor> candidates,
                                     ContributorMarketConfig cfg, util::Rng rng)
    : candidates_(std::move(candidates)), cfg_(cfg), rng_(rng) {
  CLOUDFOG_REQUIRE(!candidates_.empty(), "market needs candidates");
  CLOUDFOG_REQUIRE(cfg.reward_per_unit >= 0.0, "negative reward");
  CLOUDFOG_REQUIRE(cfg.join_probability > 0.0 && cfg.join_probability <= 1.0,
                   "join probability out of (0,1]");
}

std::size_t ContributorMarket::active_count() const {
  std::size_t n = 0;
  for (const auto& c : candidates_) {
    if (c.active) ++n;
  }
  return n;
}

double ContributorMarket::active_capacity() const {
  double cap = 0.0;
  for (const auto& c : candidates_) {
    if (c.active) cap += c.upload_capacity;
  }
  return cap;
}

void ContributorMarket::set_reward(double reward_per_unit) {
  CLOUDFOG_REQUIRE(reward_per_unit >= 0.0, "negative reward");
  cfg_.reward_per_unit = reward_per_unit;
}

double ContributorMarket::utilization(double demand, double capacity) {
  if (capacity <= 0.0) return 1.0;
  return std::min(1.0, demand / capacity);
}

MarketRound ContributorMarket::step(double demand) {
  CLOUDFOG_REQUIRE(demand >= 0.0, "negative demand");
  MarketRound round;

  // Utilization each participant experiences this round: demand shared
  // proportionally to capacity, so u is fleet-wide.
  const double capacity_now = active_capacity();
  const double u_now = utilization(demand, capacity_now);

  // Leave decisions use the current round's realized profit (Eq. 1).
  for (auto& c : candidates_) {
    if (!c.active) continue;
    const SupernodeContribution sn{c.upload_capacity, u_now, c.running_cost};
    if (supernode_profit(sn, cfg_.reward_per_unit) < c.profit_threshold) {
      c.active = false;
      ++round.left;
    }
  }

  // Join decisions estimate the utilization after they join (their own
  // capacity dilutes the pool).
  for (auto& c : candidates_) {
    if (c.active) continue;
    const double u_if_joined =
        utilization(demand, active_capacity() + c.upload_capacity);
    const SupernodeContribution sn{c.upload_capacity, u_if_joined, c.running_cost};
    if (supernode_profit(sn, cfg_.reward_per_unit) >= c.profit_threshold &&
        rng_.chance(cfg_.join_probability)) {
      c.active = true;
      ++round.joined;
    }
  }

  round.active = active_count();
  round.fleet_capacity = active_capacity();
  round.mean_utilization = utilization(demand, round.fleet_capacity);
  round.served_demand = std::min(demand, round.fleet_capacity);
  return round;
}

MarketRound ContributorMarket::run_to_equilibrium(double demand, int max_rounds) {
  CLOUDFOG_REQUIRE(max_rounds >= 1, "need at least one round");
  MarketRound last;
  for (int i = 0; i < max_rounds; ++i) {
    last = step(demand);
    if (last.joined == 0 && last.left == 0) break;
  }
  return last;
}

std::vector<Contributor> sample_contributor_population(std::size_t n, util::Rng& rng) {
  // Capacities like the supernode fleet (heavy-tailed), electricity-scale
  // costs, and expectation thresholds spread over an order of magnitude.
  const util::BoundedParetoDistribution capacity(5.0, 60.0, 2.0);
  std::vector<Contributor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Contributor c;
    c.upload_capacity = capacity.sample(rng);
    c.running_cost = rng.uniform(0.1, 0.6);
    c.profit_threshold = rng.uniform(0.2, 2.5);
    out.push_back(c);
  }
  return out;
}

}  // namespace cloudfog::economics
