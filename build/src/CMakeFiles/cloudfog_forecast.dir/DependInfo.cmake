
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/baselines.cpp" "src/CMakeFiles/cloudfog_forecast.dir/forecast/baselines.cpp.o" "gcc" "src/CMakeFiles/cloudfog_forecast.dir/forecast/baselines.cpp.o.d"
  "/root/repo/src/forecast/sarima.cpp" "src/CMakeFiles/cloudfog_forecast.dir/forecast/sarima.cpp.o" "gcc" "src/CMakeFiles/cloudfog_forecast.dir/forecast/sarima.cpp.o.d"
  "/root/repo/src/forecast/timeseries.cpp" "src/CMakeFiles/cloudfog_forecast.dir/forecast/timeseries.cpp.o" "gcc" "src/CMakeFiles/cloudfog_forecast.dir/forecast/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
