#include "net/latency_model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::net {
namespace {

Endpoint ep(double x, double y, double access = 5.0) {
  return Endpoint{GeoPoint{x, y}, access};
}

TEST(LatencyModel, OneWayIsSymmetric) {
  const LatencyModel model({});
  const Endpoint a = ep(0, 0, 3.0);
  const Endpoint b = ep(1000, 500, 8.0);
  EXPECT_DOUBLE_EQ(model.one_way_ms(a, b), model.one_way_ms(b, a));
}

TEST(LatencyModel, RttIsTwiceOneWay) {
  const LatencyModel model({});
  const Endpoint a = ep(0, 0);
  const Endpoint b = ep(500, 0);
  EXPECT_DOUBLE_EQ(model.rtt_ms(a, b), 2.0 * model.one_way_ms(a, b));
}

TEST(LatencyModel, ColocatedPairPaysAccessAndOverheadOnly) {
  LatencyModelConfig cfg;
  const LatencyModel model(cfg);
  const Endpoint a = ep(100, 100, 3.0);
  const Endpoint b = ep(100, 100, 7.0);
  EXPECT_DOUBLE_EQ(model.one_way_ms(a, b), 3.0 + 7.0 + cfg.hop_overhead_ms);
}

TEST(LatencyModel, LatencyGrowsWithDistance) {
  const LatencyModel model({});
  const Endpoint a = ep(0, 0);
  double prev = 0.0;
  for (double x : {100.0, 500.0, 1000.0, 3000.0}) {
    const double lat = model.one_way_ms(a, ep(x, 0));
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST(LatencyModel, PropagationTermMatchesConfig) {
  LatencyModelConfig cfg;
  cfg.propagation_ms_per_km = 0.005;
  cfg.route_inflation = 2.0;
  cfg.hop_overhead_ms = 0.0;
  const LatencyModel model(cfg);
  const Endpoint a = ep(0, 0, 0.001);
  const Endpoint b = ep(1000, 0, 0.001);
  // 1000 km * 2.0 inflation * 0.005 ms/km = 10 ms + 0.002 access.
  EXPECT_NEAR(model.one_way_ms(a, b), 10.002, 1e-9);
}

TEST(LatencyModel, WanThroughputDecaysWithRtt) {
  const LatencyModel model({});
  const double fast = model.wan_throughput_mbps(20.0);
  const double slow = model.wan_throughput_mbps(200.0);
  EXPECT_GT(fast, slow);
  EXPECT_NEAR(fast / slow, 10.0, 1e-6);  // inverse proportionality
}

TEST(LatencyModel, WanThroughputCapped) {
  LatencyModelConfig cfg;
  cfg.max_flow_mbps = 50.0;
  const LatencyModel model(cfg);
  EXPECT_DOUBLE_EQ(model.wan_throughput_mbps(0.1), 50.0);
}

TEST(LatencyModel, WanThroughputKnownPoint) {
  LatencyModelConfig cfg;
  cfg.tcp_throughput_mbit_s = 0.12;
  const LatencyModel model(cfg);
  // At 100 ms RTT: 0.12 / 0.1 = 1.2 Mbps — below a 1.8 Mbps top-rung
  // stream, the effect the whole paper leans on.
  EXPECT_NEAR(model.wan_throughput_mbps(100.0), 1.2, 1e-9);
}

TEST(LatencyModel, EndpointFactories) {
  const PingTrace trace(TraceProfile::kLeagueOfLegends);
  util::Rng rng(1);
  const Endpoint player = make_endpoint(GeoPoint{10, 20}, trace, rng);
  EXPECT_GT(player.access_latency_ms, 0.0);
  const Endpoint infra = make_infrastructure_endpoint(GeoPoint{30, 40});
  EXPECT_DOUBLE_EQ(infra.access_latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(infra.position.x_km, 30.0);
}

TEST(LatencyModel, RejectsBadConfig) {
  LatencyModelConfig cfg;
  cfg.route_inflation = 0.5;
  EXPECT_THROW(LatencyModel{cfg}, cloudfog::ConfigError);
  cfg = LatencyModelConfig{};
  cfg.propagation_ms_per_km = 0.0;
  EXPECT_THROW(LatencyModel{cfg}, cloudfog::ConfigError);
}

TEST(LatencyModel, WanThroughputRejectsNonPositiveRtt) {
  const LatencyModel model({});
  EXPECT_THROW(model.wan_throughput_mbps(0.0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::net
