#include "overlay/stream_channel.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "video/continuity.hpp"

namespace cloudfog::overlay {
namespace {

video::FrameEncoderConfig encoder_cfg(double bitrate_kbps) {
  video::FrameEncoderConfig cfg;
  cfg.bitrate_kbps = bitrate_kbps;
  cfg.size_jitter = 0.0;
  return cfg;
}

TEST(UplinkScheduler, SerializesFifo) {
  sim::Simulator sim;
  UplinkScheduler uplink(sim, /*rate_kbps=*/1000.0);  // 1 Mbps
  // 10 000 bits at 1 Mbps = 10 ms each, back to back.
  EXPECT_NEAR(uplink.enqueue(10000.0), 0.010, 1e-12);
  EXPECT_NEAR(uplink.enqueue(10000.0), 0.020, 1e-12);
  EXPECT_NEAR(uplink.backlog_s(), 0.020, 1e-12);
}

TEST(UplinkScheduler, IdleUplinkStartsFresh) {
  sim::Simulator sim;
  UplinkScheduler uplink(sim, 1000.0);
  uplink.enqueue(1000.0);  // done at 1 ms
  sim.schedule_in(1.0, [] {});
  sim.run();  // now = 1 s, queue long drained
  EXPECT_DOUBLE_EQ(uplink.backlog_s(), 0.0);
  EXPECT_NEAR(uplink.enqueue(1000.0), 1.001, 1e-9);
}

TEST(StreamReceiver, ScoresAgainstRequirement) {
  StreamReceiver receiver(100.0);
  receiver.on_packet(50.0);
  receiver.on_packet(150.0);
  receiver.on_packet(100.0);
  EXPECT_EQ(receiver.packets(), 3u);
  EXPECT_EQ(receiver.on_time(), 2u);
  EXPECT_NEAR(receiver.continuity(), 2.0 / 3.0, 1e-12);
}

TEST(VideoStreamer, CleanPathDeliversOnTime) {
  sim::Simulator sim;
  UplinkScheduler uplink(sim, 20000.0);  // fat pipe
  StreamReceiver receiver(110.0);
  VideoStreamer streamer(sim, uplink, encoder_cfg(1800.0),
                         StreamPath{15.0, 6.0, 12000.0}, receiver, util::Rng(1));
  streamer.start();
  sim.run_until(30.0);
  streamer.stop();
  sim.run();
  EXPECT_GT(receiver.packets(), 800u);
  EXPECT_GT(receiver.continuity(), 0.98);
}

TEST(VideoStreamer, MatchesAnalyticContinuityOnUncongestedPath) {
  sim::Simulator sim;
  UplinkScheduler uplink(sim, 50000.0);
  StreamReceiver receiver(70.0);
  const StreamPath path{45.0, 10.0, 12000.0};
  VideoStreamer streamer(sim, uplink, encoder_cfg(800.0), path, receiver, util::Rng(2));
  streamer.start();
  sim.run_until(120.0);
  streamer.stop();
  sim.run();
  const double analytic = video::packet_continuity(path.one_way_ms, 70.0,
                                                   path.jitter_mean_ms, 50000.0, 800.0);
  EXPECT_NEAR(receiver.continuity(), analytic, 0.05);
}

TEST(VideoStreamer, SharedUplinkOverloadCollapsesEveryStream) {
  sim::Simulator sim;
  UplinkScheduler uplink(sim, 10000.0);  // 10 Mbps for 12 × 1.8 Mbps
  std::vector<std::unique_ptr<StreamReceiver>> receivers;
  std::vector<std::unique_ptr<VideoStreamer>> streams;
  for (int i = 0; i < 12; ++i) {
    receivers.push_back(std::make_unique<StreamReceiver>(110.0));
    streams.push_back(std::make_unique<VideoStreamer>(
        sim, uplink, encoder_cfg(1800.0), StreamPath{15.0, 6.0, 12000.0},
        *receivers.back(), util::Rng(10 + static_cast<std::uint64_t>(i))));
    streams.back()->start();
  }
  sim.run_until(30.0);
  // Demand is 2.16× capacity: after 30 s the serializer is far behind.
  EXPECT_GT(uplink.backlog_s(), 1.0);
  for (auto& s : streams) s->stop();
  sim.run();
  for (const auto& r : receivers) {
    EXPECT_LT(r->continuity(), 0.3);  // queue divergence drowns everyone
  }
}

TEST(VideoStreamer, AdaptingBitrateDownRescuesTheGroup) {
  // Same overload, but after 5 s every stream steps down to a rate the
  // uplink can carry — the §3.3 mechanism on the event-driven data plane.
  sim::Simulator sim;
  UplinkScheduler uplink(sim, 10000.0);
  std::vector<std::unique_ptr<StreamReceiver>> receivers;
  std::vector<std::unique_ptr<VideoStreamer>> streams;
  for (int i = 0; i < 12; ++i) {
    receivers.push_back(std::make_unique<StreamReceiver>(110.0));
    streams.push_back(std::make_unique<VideoStreamer>(
        sim, uplink, encoder_cfg(1800.0), StreamPath{15.0, 6.0, 12000.0},
        *receivers.back(), util::Rng(30 + static_cast<std::uint64_t>(i))));
    streams.back()->start();
  }
  sim.schedule_in(5.0, [&streams] {
    for (auto& s : streams) s->set_bitrate_kbps(500.0);  // 6 Mbps total
  });
  sim.run_until(90.0);
  // Score only the recovered regime: fresh receivers after the queue
  // drains would be cleaner, but the long tail dominates regardless.
  for (auto& s : streams) s->stop();
  sim.run();
  double late_continuity = 0.0;
  for (const auto& r : receivers) late_continuity += r->continuity();
  late_continuity /= 12.0;
  EXPECT_GT(late_continuity, 0.7);
  EXPECT_LT(uplink.backlog_s(), 0.5);  // queue drained
}

TEST(VideoStreamer, StopIsImmediateAndSafe) {
  sim::Simulator sim;
  UplinkScheduler uplink(sim, 20000.0);
  StreamReceiver receiver(110.0);
  auto streamer = std::make_unique<VideoStreamer>(
      sim, uplink, encoder_cfg(800.0), StreamPath{}, receiver, util::Rng(3));
  streamer->start();
  sim.run_until(1.0);
  streamer->stop();
  const std::size_t at_stop = receiver.packets();
  streamer.reset();      // destroy with deliveries still in flight
  sim.run_until(10.0);   // pending callbacks must observe expiry
  EXPECT_LE(receiver.packets(), at_stop + 2);
}

TEST(VideoStreamer, Validation) {
  sim::Simulator sim;
  EXPECT_THROW(UplinkScheduler(sim, 0.0), ConfigError);
  EXPECT_THROW(StreamReceiver(0.0), ConfigError);
  UplinkScheduler uplink(sim, 1000.0);
  EXPECT_THROW(uplink.enqueue(0.0), ConfigError);
  StreamReceiver receiver(100.0);
  StreamPath bad;
  bad.jitter_mean_ms = 0.0;
  EXPECT_THROW(VideoStreamer(sim, uplink, encoder_cfg(800.0), bad, receiver, util::Rng(1)),
               ConfigError);
}

}  // namespace
}  // namespace cloudfog::overlay
