#include "core/experiment.hpp"

#include <string>

#include "economics/cost_model.hpp"
#include "util/require.hpp"

namespace cloudfog::core {

namespace {

TestbedConfig profile_config(TestbedProfile profile, std::size_t players) {
  return profile == TestbedProfile::kPeerSim ? TestbedConfig::peersim(players)
                                             : TestbedConfig::planetlab(players);
}

TestbedConfig profile_config(TestbedProfile profile) {
  return profile == TestbedProfile::kPeerSim ? TestbedConfig::peersim()
                                             : TestbedConfig::planetlab();
}

std::string ms_label(double ms) { return util::format_double(ms, 0) + " ms"; }

}  // namespace

sim::CycleConfig to_cycle_config(const ExperimentScale& scale) {
  CLOUDFOG_REQUIRE(scale.warmup < scale.cycles, "warm-up must leave measured cycles");
  sim::CycleConfig cfg;
  cfg.total_cycles = scale.cycles;
  cfg.warmup_cycles = scale.warmup;
  return cfg;
}

double coverage_of(const Testbed& testbed, const std::vector<net::Endpoint>& points,
                   double req_rtt_ms) {
  if (points.empty()) return 0.0;
  std::size_t covered = 0;
  for (const PlayerInfo& p : testbed.players()) {
    for (const net::Endpoint& e : points) {
      if (testbed.latency().rtt_ms(p.endpoint, e) <= req_rtt_ms) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(testbed.players().size());
}

util::Table coverage_vs_datacenters(TestbedProfile profile,
                                    const std::vector<std::size_t>& dc_counts,
                                    const std::vector<double>& latency_reqs_ms,
                                    std::uint64_t seed) {
  const Testbed testbed(profile_config(profile), seed);
  util::Table table(profile == TestbedProfile::kPeerSim
                        ? "Fig 4(a) — user coverage vs # datacenters (PeerSim)"
                        : "Fig 5(a) — user coverage vs # datacenters (PlanetLab)");
  std::vector<std::string> header{"# datacenters"};
  for (double req : latency_reqs_ms) header.push_back(ms_label(req));
  table.set_header(std::move(header));

  for (std::size_t dcs : dc_counts) {
    std::vector<net::Endpoint> points;
    for (const auto& site : testbed.plane().datacenter_sites(dcs)) {
      points.push_back(net::make_infrastructure_endpoint(site));
    }
    std::vector<std::string> row{std::to_string(dcs)};
    for (double req : latency_reqs_ms) {
      row.push_back(util::format_double(coverage_of(testbed, points, req), 3));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table coverage_vs_supernodes(TestbedProfile profile,
                                   const std::vector<std::size_t>& sn_counts,
                                   const std::vector<double>& latency_reqs_ms,
                                   std::uint64_t seed) {
  const Testbed testbed(profile_config(profile), seed);
  util::Table table(profile == TestbedProfile::kPeerSim
                        ? "Fig 4(b) — user coverage vs # supernodes (PeerSim)"
                        : "Fig 5(b) — user coverage vs # supernodes (PlanetLab)");
  std::vector<std::string> header{"# supernodes"};
  for (double req : latency_reqs_ms) header.push_back(ms_label(req));
  table.set_header(std::move(header));

  // Baseline datacenters (5 / 2) always serve; supernodes add reach.
  std::vector<net::Endpoint> dc_points;
  for (const auto& site :
       testbed.plane().datacenter_sites(testbed.config().datacenter_count)) {
    dc_points.push_back(net::make_infrastructure_endpoint(site));
  }
  const std::size_t max_sns = testbed.supernode_capable().size();
  const auto fleet = testbed.make_supernode_fleet(max_sns);

  for (std::size_t count : sn_counts) {
    std::vector<net::Endpoint> points = dc_points;
    for (std::size_t i = 0; i < std::min(count, fleet.size()); ++i) {
      points.push_back(fleet[i].endpoint);
    }
    std::vector<std::string> row{std::to_string(count)};
    for (double req : latency_reqs_ms) {
      row.push_back(util::format_double(coverage_of(testbed, points, req), 3));
    }
    table.add_row(std::move(row));
  }
  return table;
}

PopulationSweepResult population_sweep(TestbedProfile profile,
                                       const std::vector<std::size_t>& player_counts,
                                       const ExperimentScale& scale) {
  const char* suffix = profile == TestbedProfile::kPeerSim ? " (PeerSim)" : " (PlanetLab)";
  const std::string cdn_small_name =
      profile == TestbedProfile::kPeerSim ? "CDN-45" : "CDN-8";

  PopulationSweepResult out{
      util::Table(std::string("Fig 6 — cloud bandwidth (Mbps) vs # players") + suffix),
      util::Table(std::string("Fig 7 — avg response latency (ms) vs # players") + suffix),
      util::Table(std::string("Fig 8 — playback continuity vs # players") + suffix)};

  out.bandwidth.set_header({"# players", "Cloud", cdn_small_name, "CDN", "CloudFog"});
  out.latency.set_header(
      {"# players", "Cloud", cdn_small_name, "CDN", "CloudFog/B", "CloudFog/A"});
  out.continuity.set_header(
      {"# players", "Cloud", cdn_small_name, "CDN", "CloudFog/B", "CloudFog/A"});

  const auto cycles = to_cycle_config(scale);
  for (std::size_t n : player_counts) {
    const Testbed testbed(profile_config(profile, n), scale.seed + n);

    System cloud_sys = make_cloud_system(testbed, scale.seed + 1);
    System cdn_small = make_small_cdn_system(testbed, scale.seed + 2);
    System cdn_sys = make_cdn_system(testbed, scale.seed + 3);
    System fog_b = make_cloudfog_basic(testbed, scale.seed + 4);
    System fog_a = make_cloudfog_advanced(testbed, scale.seed + 5);

    const RunMetrics& m_cloud = cloud_sys.run(cycles);
    const RunMetrics& m_cdn_small = cdn_small.run(cycles);
    const RunMetrics& m_cdn = cdn_sys.run(cycles);
    const RunMetrics& m_b = fog_b.run(cycles);
    const RunMetrics& m_a = fog_a.run(cycles);

    out.bandwidth.add_row({std::to_string(n),
                           util::format_double(m_cloud.cloud_egress_mbps.mean(), 1),
                           util::format_double(m_cdn_small.cloud_egress_mbps.mean(), 1),
                           util::format_double(m_cdn.cloud_egress_mbps.mean(), 1),
                           util::format_double(m_b.cloud_egress_mbps.mean(), 1)});
    out.latency.add_row({std::to_string(n),
                         util::format_double(m_cloud.response_latency_ms.mean(), 1),
                         util::format_double(m_cdn_small.response_latency_ms.mean(), 1),
                         util::format_double(m_cdn.response_latency_ms.mean(), 1),
                         util::format_double(m_b.response_latency_ms.mean(), 1),
                         util::format_double(m_a.response_latency_ms.mean(), 1)});
    out.continuity.add_row({std::to_string(n),
                            util::format_double(m_cloud.continuity.mean(), 3),
                            util::format_double(m_cdn_small.continuity.mean(), 3),
                            util::format_double(m_cdn.continuity.mean(), 3),
                            util::format_double(m_b.continuity.mean(), 3),
                            util::format_double(m_a.continuity.mean(), 3)});
  }
  return out;
}

namespace {

/// Shared Fig. 9 row computation for one configured CloudFog system.
std::vector<std::string> setup_latency_row(const Testbed& testbed, std::size_t supernodes,
                                           std::size_t failures, const std::string& x_label,
                                           const ExperimentScale& scale) {
  SystemConfig cfg = cloudfog_advanced_config(testbed, supernodes);
  System sys(testbed, cfg, scale.seed + supernodes);

  const auto cycles = to_cycle_config(scale);
  for (int day = 1; day <= cycles.total_cycles; ++day) {
    sys.begin_cycle(day);
    for (int sub = 1; sub <= cycles.subcycles_per_cycle; ++sub) {
      const bool peak = sub >= cycles.peak_start_subcycle && sub <= cycles.peak_end_subcycle;
      sys.run_subcycle(day, sub, day <= cycles.warmup_cycles, peak);
      // Inject the failure burst once, during the peak of the last day.
      if (day == cycles.total_cycles && sub == cycles.peak_start_subcycle) {
        sys.inject_supernode_failures(failures, day);
      }
    }
    sys.end_cycle(day);
  }

  // Server assignment cost over the full population (wall clock).
  const double assignment_s = sys.measure_server_assignment_seconds();

  // Supernode joins: one RTT to the cloud each.
  util::RunningStats sn_join;
  for (double ms : sys.supernode_join_latencies()) sn_join.add(ms);

  const RunMetrics& m = sys.metrics();
  const double player_join_s =
      m.player_join_latency_ms.empty() ? 0.0 : m.player_join_latency_ms.mean() / 1000.0;
  const double migration_s =
      m.migration_latency_ms.empty() ? 0.0 : m.migration_latency_ms.mean() / 1000.0;

  return {x_label, util::format_double(sn_join.mean() / 1000.0, 3),
          util::format_double(player_join_s, 3), util::format_double(assignment_s, 3),
          util::format_double(migration_s, 3)};
}

}  // namespace

util::Table setup_latency_vs_players(TestbedProfile profile,
                                     const std::vector<std::size_t>& player_counts,
                                     const ExperimentScale& scale) {
  util::Table table("Fig 9(a) — setup latencies (s) vs # players");
  table.set_header({"# players", "supernode join", "player join", "server assignment",
                    "migration"});
  for (std::size_t n : player_counts) {
    TestbedConfig cfg = profile_config(profile, n);
    // §4.1: "set the numbers of supernodes to 6/100 of players".
    cfg.supernode_capable_fraction = 0.10;
    const Testbed testbed(cfg, scale.seed + n);
    const std::size_t supernodes =
        std::min(testbed.supernode_capable().size(), n * 6 / 100);
    const std::size_t failures = profile == TestbedProfile::kPeerSim ? 100 : 10;
    table.add_row(
        setup_latency_row(testbed, supernodes, failures, std::to_string(n), scale));
  }
  return table;
}

util::Table setup_latency_vs_supernodes(TestbedProfile profile,
                                        const std::vector<std::size_t>& sn_counts,
                                        const ExperimentScale& scale) {
  util::Table table("Fig 9(b) — setup latencies (s) vs # supernodes");
  table.set_header({"# supernodes", "supernode join", "player join", "server assignment",
                    "migration"});
  const Testbed testbed(profile_config(profile), scale.seed);
  for (std::size_t count : sn_counts) {
    const std::size_t supernodes = std::min(count, testbed.supernode_capable().size());
    const std::size_t failures = profile == TestbedProfile::kPeerSim ? 100 : 10;
    table.add_row(
        setup_latency_row(testbed, supernodes, failures, std::to_string(count), scale));
  }
  return table;
}

util::Table satisfaction_sweep(TestbedProfile profile, SatisfactionStrategy strategy,
                               const std::vector<int>& supernode_capacities,
                               const ExperimentScale& scale) {
  const bool reputation = strategy == SatisfactionStrategy::kReputation;
  util::Table table(reputation
                        ? "Fig 10 — % satisfied players, reputation-based selection"
                        : "Fig 11 — % satisfied players, encoding-rate adaptation");
  const std::string on_name = reputation ? "CloudFog-reputation" : "CloudFog-adapt";
  table.set_header({"supernode capacity", on_name, "CloudFog/B"});

  const auto cycles = to_cycle_config(scale);
  for (int capacity : supernode_capacities) {
    TestbedConfig tb_cfg = profile_config(profile);
    tb_cfg.forced_supernode_capacity = capacity;
    const Testbed testbed(tb_cfg, scale.seed + static_cast<std::uint64_t>(capacity));

    // The sweep varies "the number of supporting players of a supernode":
    // fewer, fuller supernodes as capacity grows, so each supernode really
    // carries ≈ `capacity` players (its hardware/uplink stays what the
    // machine naturally provides — that is the stress being studied).
    const std::size_t peak_online = testbed.players().size() / 2;
    const std::size_t fleet = std::clamp<std::size_t>(
        peak_online / static_cast<std::size_t>(capacity), 20,
        testbed.supernode_capable().size());

    SystemConfig on_cfg = cloudfog_basic_config(testbed, fleet);
    if (reputation) {
      on_cfg.strategies.reputation = true;
    } else {
      on_cfg.strategies.rate_adaptation = true;
    }
    System on_sys(testbed, on_cfg, scale.seed + 11);
    System off_sys(testbed, cloudfog_basic_config(testbed, fleet), scale.seed + 12);

    const RunMetrics& m_on = on_sys.run(cycles);
    const RunMetrics& m_off = off_sys.run(cycles);
    table.add_row({std::to_string(capacity),
                   util::format_double(m_on.satisfied_fraction.mean() * 100.0, 1),
                   util::format_double(m_off.satisfied_fraction.mean() * 100.0, 1)});
  }
  return table;
}

util::Table server_assignment_sweep(TestbedProfile profile,
                                    const std::vector<int>& servers_per_dc,
                                    const ExperimentScale& scale) {
  util::Table table("Fig 12 — response latency split by server communication");
  table.set_header({"servers per DC", "w/ server lat", "w/ other lat", "w/o server lat",
                    "w/o other lat"});
  const auto cycles = to_cycle_config(scale);
  for (int servers : servers_per_dc) {
    TestbedConfig tb_cfg = profile_config(profile);
    tb_cfg.servers_per_datacenter = servers;
    const Testbed testbed(tb_cfg, scale.seed + static_cast<std::uint64_t>(servers));

    SystemConfig with_cfg =
        cloudfog_basic_config(testbed, default_supernode_count(testbed));
    with_cfg.strategies.social_assignment = true;
    System with_sys(testbed, with_cfg, scale.seed + 21);
    System without_sys(testbed,
                       cloudfog_basic_config(testbed, default_supernode_count(testbed)),
                       scale.seed + 22);

    const RunMetrics& m_with = with_sys.run(cycles);
    const RunMetrics& m_without = without_sys.run(cycles);
    const double with_server = m_with.server_latency_ms.mean();
    const double with_other = m_with.response_latency_ms.mean() - with_server;
    const double wo_server = m_without.server_latency_ms.mean();
    const double wo_other = m_without.response_latency_ms.mean() - wo_server;
    table.add_row({std::to_string(servers), util::format_double(with_server, 1),
                   util::format_double(with_other, 1), util::format_double(wo_server, 1),
                   util::format_double(wo_other, 1)});
  }
  return table;
}

ProvisioningSweepResult provisioning_sweep(TestbedProfile profile,
                                           const std::vector<double>& peak_rates_per_min,
                                           const ExperimentScale& scale) {
  const char* suffix = profile == TestbedProfile::kPeerSim ? " (PeerSim)" : " (PlanetLab)";
  ProvisioningSweepResult out{
      util::Table(std::string("Fig 13 — cloud bandwidth (Mbps) vs peak arrival rate") +
                  suffix),
      util::Table(std::string("Fig 14 — avg response latency (ms) vs peak arrival rate") +
                  suffix),
      util::Table(std::string("Fig 15 — continuity vs peak arrival rate") + suffix)};
  for (auto* t : {&out.bandwidth, &out.latency, &out.continuity}) {
    t->set_header({"peak players/min", "CloudFog/B", "CloudFog-provision"});
  }

  const Testbed testbed(profile_config(profile), scale.seed);
  const std::size_t fleet_size = default_supernode_count(testbed);
  // CloudFog/B reserves a constant pool (§4.3.4: 400 of 600 supernodes in
  // simulation; scaled to half the fleet on PlanetLab).
  const std::size_t fixed_pool =
      profile == TestbedProfile::kPeerSim ? 400 : std::max<std::size_t>(1, fleet_size / 2);
  const double offpeak =
      profile == TestbedProfile::kPeerSim ? 5.0 : 1.0;  // players per minute

  const auto cycles = to_cycle_config(scale);
  for (double peak : peak_rates_per_min) {
    SystemConfig base = cloudfog_basic_config(testbed, fleet_size);
    base.workload = WorkloadMode::kArrivalRates;
    base.arrivals = ArrivalWorkload{offpeak, peak};
    base.fixed_deployment = fixed_pool;
    System fixed_sys(testbed, base, scale.seed + 31);

    SystemConfig prov = base;
    prov.strategies.provisioning = true;
    prov.fixed_deployment = fixed_pool;  // starting pool; provisioning rescales
    System prov_sys(testbed, prov, scale.seed + 32);

    const RunMetrics& m_fixed = fixed_sys.run(cycles);
    const RunMetrics& m_prov = prov_sys.run(cycles);

    const std::string x = util::format_double(peak, 0);
    out.bandwidth.add_row({x, util::format_double(m_fixed.cloud_egress_mbps.mean(), 1),
                           util::format_double(m_prov.cloud_egress_mbps.mean(), 1)});
    out.latency.add_row({x, util::format_double(m_fixed.response_latency_ms.mean(), 1),
                         util::format_double(m_prov.response_latency_ms.mean(), 1)});
    out.continuity.add_row({x, util::format_double(m_fixed.continuity.mean(), 3),
                            util::format_double(m_prov.continuity.mean(), 3)});
  }
  return out;
}

util::Table failure_rate_sweep(TestbedProfile profile,
                               const std::vector<double>& failure_fractions,
                               const ExperimentScale& scale) {
  util::Table table("Resilience — QoS under per-cycle supernode failures");
  table.set_header({"failure fraction/cycle", "continuity", "satisfied (%)",
                    "avg migration (s)", "migrations"});
  const Testbed testbed(profile_config(profile), scale.seed);
  const auto cycles = to_cycle_config(scale);
  const std::size_t fleet = default_supernode_count(testbed);

  // Reference arm with the fault subsystem not even constructed. The
  // 0.0-fraction row must reproduce it exactly — arming an empty plan may
  // not perturb the simulation.
  const double unfaulted_continuity = [&] {
    System sys(testbed, cloudfog_advanced_config(testbed, fleet), scale.seed + 61);
    return sys.run(cycles).continuity.mean();
  }();

  for (double fraction : failure_fractions) {
    SystemConfig cfg = cloudfog_advanced_config(testbed, fleet);
    cfg.faults.enabled = true;
    // The legacy churn schedule as a fault plan: a crash burst right after
    // the first peak subcycle of every cycle (when it hurts the most),
    // every victim rebooted by the next day. kAnyTarget victims resolve to
    // serving supernodes at fire time.
    const auto failures_per_cycle =
        static_cast<std::size_t>(fraction * static_cast<double>(fleet));
    const double day_s = static_cast<double>(cycles.subcycles_per_cycle) * 3600.0;
    for (int day = 1; day <= cycles.total_cycles; ++day) {
      const double burst_s = static_cast<double>(day - 1) * day_s +
                             static_cast<double>(cycles.peak_start_subcycle) * 3600.0 + 1.0;
      const double reboot_s = static_cast<double>(day) * day_s + 0.5;
      for (std::size_t i = 0; i < failures_per_cycle; ++i) {
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::kSupernodeCrash;
        spec.at_s = burst_s + static_cast<double>(i) * 1e-3;
        spec.duration_s = reboot_s - spec.at_s;
        cfg.faults.extra_specs.push_back(spec);
      }
    }
    System sys(testbed, cfg, scale.seed + 61);
    const RunMetrics& m = sys.run(cycles);
    if (fraction == 0.0) {
      CLOUDFOG_REQUIRE(m.continuity.mean() == unfaulted_continuity,
                       "armed-but-empty fault plan perturbed the run");
    }
    const double migration_s =
        m.migration_latency_ms.empty() ? 0.0 : m.migration_latency_ms.mean() / 1000.0;
    table.add_row({util::format_double(fraction, 2),
                   util::format_double(m.continuity.mean(), 3),
                   util::format_double(m.satisfied_fraction.mean() * 100.0, 1),
                   util::format_double(migration_s, 3),
                   std::to_string(m.migration_latency_ms.count())});
  }
  return table;
}

util::Table candidate_count_ablation(TestbedProfile profile,
                                     const std::vector<std::size_t>& candidate_counts,
                                     const ExperimentScale& scale) {
  util::Table table("Ablation — cloud candidate-list size k (§3.2.1)");
  table.set_header({"k", "fog served (%)", "continuity", "avg join (ms)"});
  const Testbed testbed(profile_config(profile), scale.seed);
  const auto cycles = to_cycle_config(scale);
  for (std::size_t k : candidate_counts) {
    SystemConfig cfg = cloudfog_basic_config(testbed, default_supernode_count(testbed));
    cfg.fog.candidate_count = k;
    System sys(testbed, cfg, scale.seed + 71);
    const RunMetrics& m = sys.run(cycles);
    table.add_row({std::to_string(k),
                   util::format_double(m.fog_served_fraction.mean() * 100.0, 1),
                   util::format_double(m.continuity.mean(), 3),
                   util::format_double(m.player_join_latency_ms.mean(), 0)});
  }
  return table;
}

util::Table epsilon_ablation(TestbedProfile profile, const std::vector<double>& epsilons,
                             double peak_rate_per_min, const ExperimentScale& scale) {
  util::Table table("Ablation — Eq. 15 over-provisioning factor ε");
  table.set_header({"epsilon", "cloud egress (Mbps)", "continuity", "fog served (%)"});
  const Testbed testbed(profile_config(profile), scale.seed);
  const std::size_t fleet = default_supernode_count(testbed);
  const auto cycles = to_cycle_config(scale);
  for (double eps : epsilons) {
    SystemConfig cfg = cloudfog_basic_config(testbed, fleet);
    cfg.workload = WorkloadMode::kArrivalRates;
    cfg.arrivals = ArrivalWorkload{5.0, peak_rate_per_min};
    cfg.strategies.provisioning = true;
    // A small base pool, so the provisioner's sizing rule does the work.
    cfg.fixed_deployment = std::max<std::size_t>(1, fleet / 10);
    cfg.provisioning.epsilon = eps;
    System sys(testbed, cfg, scale.seed + 51);
    const RunMetrics& m = sys.run(cycles);
    table.add_row({util::format_double(eps, 2),
                   util::format_double(m.cloud_egress_mbps.mean(), 1),
                   util::format_double(m.continuity.mean(), 3),
                   util::format_double(m.fog_served_fraction.mean() * 100.0, 1)});
  }
  return table;
}

util::Table malicious_supernode_sweep(TestbedProfile profile,
                                      const std::vector<double>& malicious_fractions,
                                      const ExperimentScale& scale) {
  util::Table table("Extension — % satisfied players under malicious supernodes");
  table.set_header({"malicious fraction", "with reputation", "without reputation"});
  const Testbed testbed(profile_config(profile), scale.seed);
  const auto cycles = to_cycle_config(scale);
  for (double fraction : malicious_fractions) {
    SystemConfig with_cfg =
        cloudfog_basic_config(testbed, default_supernode_count(testbed));
    // Fixed-delay adversary via the scenario engine's AdversaryModel — the
    // same rng stream as the legacy MaliciousConfig path (a regression test
    // asserts the two stay metric-identical on this workload).
    with_cfg.adversary.kind = scenario::AdversaryKind::kFixedDelay;
    with_cfg.adversary.fraction = fraction;
    with_cfg.adversary.delay_ms = with_cfg.malicious.delay_ms;
    with_cfg.strategies.reputation = true;
    SystemConfig without_cfg = with_cfg;
    without_cfg.strategies.reputation = false;
    System with_sys(testbed, with_cfg, scale.seed + 41);
    System without_sys(testbed, without_cfg, scale.seed + 42);
    table.add_row({util::format_double(fraction, 2),
                   util::format_double(with_sys.run(cycles).satisfied_fraction.mean() * 100, 1),
                   util::format_double(
                       without_sys.run(cycles).satisfied_fraction.mean() * 100, 1)});
  }
  return table;
}

util::Table supernode_economics(const std::vector<double>& hours_per_day) {
  const economics::CostModel model;
  util::Table table("Fig 16(a) — supernode rewards, costs and profits (USD/day)");
  table.set_header({"hours/day", "rewards", "costs", "profits"});
  for (double h : hours_per_day) {
    table.add_row({util::format_double(h, 0), util::format_double(model.reward_usd(h), 2),
                   util::format_double(model.running_cost_usd(h), 2),
                   util::format_double(model.contributor_profit_usd(h), 2)});
  }
  return table;
}

util::Table provider_savings(const std::vector<double>& renting_hours) {
  const economics::CostModel model;
  util::Table table("Fig 16(b) — EC2 renting fee vs supernode reward (USD)");
  table.set_header({"hours", "renting fee", "rewards to SNs", "savings"});
  for (double h : renting_hours) {
    table.add_row({util::format_double(h, 0),
                   util::format_double(model.ec2_renting_fee_usd(h), 2),
                   util::format_double(model.reward_usd(h), 2),
                   util::format_double(model.provider_saving_vs_ec2_usd(h), 2)});
  }
  return table;
}

}  // namespace cloudfog::core
