// Persistent worker pool for deterministic sharded loops (DESIGN.md §10).
//
// run(shards, fn) executes fn(0) … fn(shards-1) across the pool's worker
// threads and blocks until every shard finished. Determinism is the
// *caller's* contract: shards must touch disjoint mutable state (per-shard
// accumulators / capture buffers) and the caller reduces them in shard
// order afterwards — the pool itself guarantees only completion, never an
// execution order. Workers are parked between calls, so a pool can be kept
// alive across many subcycles without per-call thread spawn cost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudfog::util {

class ShardPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ShardPool(int workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(shard) for every shard in [0, shards); blocks until all
  /// complete. If a shard threw, rethrows one of the exceptions after the
  /// remaining shards have drained. Not reentrant.
  void run(int shards, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  int total_shards_ = 0;
  int next_shard_ = 0;
  int in_flight_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> threads_;
};

}  // namespace cloudfog::util
