// Reproduces Fig. 8: average game-video playback continuity vs number of
// players, for Cloud, CDN-45/8, CDN, CloudFog/B and CloudFog/A.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::population_sweep(core::TestbedProfile::kPeerSim,
                                      {2000, 4000, 6000, 8000, 10000}, scale)
                   .continuity);
  bench::print(core::population_sweep(core::TestbedProfile::kPlanetLab,
                                      {150, 300, 450, 600, 750}, scale)
                   .continuity);
  return 0;
}
