#!/usr/bin/env python3
"""Bench trending: compare a fresh benchmark run against run-store history.

Reads the columnar run-store written by the bench binaries (obs::RunStore,
see src/obs/run_store.hpp for the on-disk format) and compares the newest
run's metric values against the median of the stored history for the same
configuration (matched by config hash, so quick and full runs trend
separately). Direction is inferred from the metric name: time/byte-like
columns (``*_ms``, ``*_ns``, ``*_us``, ``*per_event``, ``*_bytes``) must
not grow, speedup/ratio-like columns must not shrink; anything else is
reported but never gated.

Usage:
  scripts/bench_trend.py --runstore data/runstore [--bench BENCH_PR6.json]
                         [--run-id <id>] [--tolerance 0.10]
                         [--min-history 2] [--mode warn|enforce]

Exit status: 0 when clean (or ``--mode warn``), 1 when a regression is
flagged under ``--mode enforce``, 2 on usage errors. CI runs warn mode on
pull requests and enforce mode on main.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import struct
import sys

COLUMN_MAGIC = b"CFRC"
COLUMN_VERSION = 1
COLUMN_HEADER = struct.Struct("<4sHH")
COLUMN_RECORD = struct.Struct("<Qd")

LOWER_IS_BETTER = ("_ms", "_ns", "_us", "per_event", "_bytes")
HIGHER_IS_BETTER = ("speedup", "ratio", "per_second")


def read_manifest(store_dir):
    """Manifest rows as a list of dicts (row, run_id, git_sha, config_hash)."""
    rows = []
    path = os.path.join(store_dir, "manifest.tsv")
    if not os.path.exists(path):
        return rows
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 4:
                raise ValueError(f"malformed manifest line: {line!r}")
            rows.append({
                "row": int(fields[0]),
                "run_id": fields[1],
                "git_sha": fields[2],
                "config_hash": fields[3],
            })
    return rows


def read_column(store_dir, name):
    """All (row, value) records of a column, in append order."""
    path = os.path.join(store_dir, "columns", name + ".col")
    if not os.path.exists(path):
        return []
    with open(path, "rb") as fh:
        header = fh.read(COLUMN_HEADER.size)
        if len(header) < COLUMN_HEADER.size:
            return []
        magic, version, _reserved = COLUMN_HEADER.unpack(header)
        if magic != COLUMN_MAGIC:
            raise ValueError(f"bad column magic in {path}")
        if version != COLUMN_VERSION:
            raise ValueError(f"unsupported column version {version} in {path}")
        records = []
        while True:
            raw = fh.read(COLUMN_RECORD.size)
            if len(raw) < COLUMN_RECORD.size:  # clean EOF or torn tail
                break
            records.append(COLUMN_RECORD.unpack(raw))
        return records


def list_columns(store_dir):
    columns_dir = os.path.join(store_dir, "columns")
    if not os.path.isdir(columns_dir):
        return []
    return sorted(
        name[:-len(".col")] for name in os.listdir(columns_dir)
        if name.endswith(".col"))


def append_run(store_dir, key, values):
    """Python-side writer (tests, backfills): one manifest row + values.

    ``key`` is a (run_id, git_sha, config_hash) triple; ``values`` maps
    column name -> float or list of floats. Matches the C++ writer
    byte-for-byte.
    """
    os.makedirs(os.path.join(store_dir, "columns"), exist_ok=True)
    manifest = os.path.join(store_dir, "manifest.tsv")
    row = len(read_manifest(store_dir))
    sane = [str(field).replace("\t", "_").replace("\n", "_") for field in key]
    with open(manifest, "a", encoding="utf-8") as fh:
        fh.write("\t".join([str(row)] + sane) + "\n")
    for name, value in values.items():
        path = os.path.join(store_dir, "columns", name + ".col")
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        with open(path, "ab") as fh:
            if fresh:
                fh.write(COLUMN_HEADER.pack(COLUMN_MAGIC, COLUMN_VERSION, 0))
            series = value if isinstance(value, (list, tuple)) else [value]
            for v in series:
                fh.write(COLUMN_RECORD.pack(row, float(v)))
    return row


def direction(column):
    """'down' (lower is better), 'up', or None (untrended)."""
    if any(column.endswith(suffix) or suffix in column.rsplit(".", 1)[-1]
           for suffix in HIGHER_IS_BETTER):
        return "up"
    if any(column.endswith(suffix) for suffix in LOWER_IS_BETTER):
        return "down"
    return None


def per_row_value(records, row_ids):
    """Median per row for rows in ``row_ids`` (a row may hold a series)."""
    grouped = {}
    for row, value in records:
        if row in row_ids:
            grouped.setdefault(row, []).append(value)
    return {row: statistics.median(series) for row, series in grouped.items()}


def trend(store_dir, fresh_run_id, tolerance, min_history):
    """Compares the fresh run against history; returns a list of findings.

    Each finding: dict with column, status ('ok', 'regression',
    'improvement', 'no-history', 'untrended'), fresh, baseline, delta.
    """
    manifest = read_manifest(store_dir)
    fresh_rows = [r for r in manifest if r["run_id"] == fresh_run_id]
    if not fresh_rows:
        raise ValueError(f"run id {fresh_run_id!r} has no manifest rows in {store_dir}")
    config_hashes = {r["config_hash"] for r in fresh_rows}
    fresh_ids = {r["row"] for r in fresh_rows}
    history_ids = {
        r["row"] for r in manifest
        if r["config_hash"] in config_hashes and r["run_id"] != fresh_run_id
    }

    findings = []
    for column in list_columns(store_dir):
        records = read_column(store_dir, column)
        fresh_values = per_row_value(records, fresh_ids)
        if not fresh_values:
            continue  # this run did not produce the column
        fresh = statistics.median(fresh_values.values())
        history = sorted(per_row_value(records, history_ids).values())
        finding = {"column": column, "fresh": fresh, "baseline": None,
                   "delta": None, "status": "ok", "history": len(history)}
        sense = direction(column)
        if len(history) < min_history:
            finding["status"] = "no-history"
            findings.append(finding)
            continue
        baseline = statistics.median(history)
        finding["baseline"] = baseline
        if baseline != 0:
            finding["delta"] = (fresh - baseline) / abs(baseline)
        if sense is None:
            finding["status"] = "untrended"
        elif finding["delta"] is None:
            finding["status"] = "ok"
        elif sense == "down" and finding["delta"] > tolerance:
            finding["status"] = "regression"
        elif sense == "up" and finding["delta"] < -tolerance:
            finding["status"] = "regression"
        elif sense == "down" and finding["delta"] < -tolerance:
            finding["status"] = "improvement"
        elif sense == "up" and finding["delta"] > tolerance:
            finding["status"] = "improvement"
        findings.append(finding)
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runstore", required=True, help="run-store directory")
    parser.add_argument("--bench", help="fresh BENCH_*.json (source of the run id)")
    parser.add_argument("--run-id", help="fresh run id (overrides --bench context)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift (default 0.10)")
    parser.add_argument("--min-history", type=int, default=2,
                        help="history rows required before gating (default 2)")
    parser.add_argument("--mode", choices=("warn", "enforce"), default="warn",
                        help="warn: report only; enforce: exit 1 on regression")
    args = parser.parse_args(argv)

    run_id = args.run_id
    if run_id is None and args.bench:
        with open(args.bench, encoding="utf-8") as fh:
            run_id = json.load(fh).get("context", {}).get("run_id")
    if run_id is None:
        parser.error("need --run-id or a --bench file with context.run_id")

    try:
        findings = trend(args.runstore, run_id, args.tolerance, args.min_history)
    except ValueError as err:
        print(f"bench_trend: {err}", file=sys.stderr)
        return 1 if args.mode == "enforce" else 0

    regressions = [f for f in findings if f["status"] == "regression"]
    width = max((len(f["column"]) for f in findings), default=10)
    print(f"bench_trend: run {run_id} vs stored history "
          f"(tolerance {args.tolerance:.0%}, min history {args.min_history})")
    for f in findings:
        fresh = f"{f['fresh']:.6g}"
        if f["baseline"] is None:
            print(f"  {f['column']:<{width}}  {fresh:>12}  "
                  f"[{f['status']}: {f['history']} stored run(s)]")
        else:
            delta = "n/a" if f["delta"] is None else f"{f['delta']:+.1%}"
            print(f"  {f['column']:<{width}}  {fresh:>12}  vs median "
                  f"{f['baseline']:.6g}  {delta:>8}  [{f['status']}]")
    if regressions:
        print(f"bench_trend: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1 if args.mode == "enforce" else 0
    print("bench_trend: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
