#include "core/metrics.hpp"

#include <algorithm>

namespace cloudfog::core {

void MetricsCollector::record_subcycle(const SubcycleQos& qos, bool warmup) {
  // Roll the migration-storm window at every subcycle boundary; warm-up
  // windows reset the count without competing for the peak.
  const std::uint64_t window_migrations = subcycle_migrations_;
  subcycle_migrations_ = 0;
  if (warmup) return;
  metrics_.migration_storm_peak = std::max(metrics_.migration_storm_peak, window_migrations);
  ++recorded_subcycles_;
  metrics_.cloud_egress_mbps.add(qos.cloud_egress_mbps);
  metrics_.online_sessions.add(static_cast<double>(qos.online_sessions));
  if (qos.online_sessions == 0) return;  // QoS ratios are undefined with nobody online
  metrics_.response_latency_ms.add(qos.avg_response_latency_ms);
  metrics_.server_latency_ms.add(qos.avg_server_latency_ms);
  metrics_.continuity.add(qos.avg_continuity);
  metrics_.satisfied_fraction.add(qos.satisfied_fraction);
  metrics_.mos.add(qos.avg_mos);
  metrics_.fog_served_fraction.add(static_cast<double>(qos.fog_served) /
                                   static_cast<double>(qos.online_sessions));
}

namespace {

obs::StatSummary stat_of(const char* name, const util::RunningStats& s) {
  obs::StatSummary out;
  out.name = name;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  out.has_percentiles = s.count() > 0;
  if (out.has_percentiles) {
    out.p50 = s.p50();
    out.p95 = s.p95();
    out.p99 = s.p99();
  }
  return out;
}

obs::StatSummary stat_of(const char* name, const util::SampleSet& s) {
  obs::StatSummary out;
  out.name = name;
  out.count = s.count();
  out.mean = s.mean();
  out.has_percentiles = !s.empty();
  if (out.has_percentiles) {
    out.min = s.percentile(0.0);
    out.max = s.percentile(1.0);
    out.p50 = s.p50();
    out.p95 = s.p95();
    out.p99 = s.p99();
  }
  return out;
}

obs::StatSummary counter_of(const char* name, std::uint64_t value) {
  obs::StatSummary out;
  out.name = name;
  out.count = value;
  out.mean = static_cast<double>(value);
  return out;
}

}  // namespace

obs::RunSummary summarize_run(const RunMetrics& m, std::string label,
                              std::size_t measured_subcycles) {
  obs::RunSummary run;
  run.label = std::move(label);
  run.measured_subcycles = measured_subcycles;
  run.stats = {
      stat_of("response_latency_ms", m.response_latency_ms),
      stat_of("server_latency_ms", m.server_latency_ms),
      stat_of("continuity", m.continuity),
      stat_of("satisfied_fraction", m.satisfied_fraction),
      stat_of("mos", m.mos),
      stat_of("cloud_egress_mbps", m.cloud_egress_mbps),
      stat_of("fog_served_fraction", m.fog_served_fraction),
      stat_of("online_sessions", m.online_sessions),
      stat_of("player_join_latency_ms", m.player_join_latency_ms),
      stat_of("supernode_join_latency_ms", m.supernode_join_latency_ms),
      stat_of("migration_latency_ms", m.migration_latency_ms),
      stat_of("server_assignment_seconds", m.server_assignment_seconds),
      stat_of("mttr_ms", m.mttr_ms),
      stat_of("fallback_residency", m.fallback_residency),
      counter_of("sessions_interrupted", m.sessions_interrupted),
      counter_of("cloud_fallbacks", m.fallbacks),
      counter_of("fog_returns", m.fog_returns),
      counter_of("migration_storm_peak", m.migration_storm_peak),
  };
  return run;
}

}  // namespace cloudfog::core
