#!/usr/bin/env python3
"""Self-test for tools/lint/cloudfog_lint.py.

Each *_bad fixture must trip exactly its target rule (non-zero exit, the
rule id in the output); the clean fixture must pass; the full src/ + bench/
tree must be clean. Run directly or via ctest (`lint_selftest`).
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "lint", "cloudfog_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout, proc.stderr


class FixtureCase(unittest.TestCase):
    def assert_trips(self, fixture, rule, min_findings=1):
        path = os.path.join(FIXTURES, fixture)
        code, out, _ = run_lint(path)
        self.assertEqual(code, 1, f"{fixture} should fail the lint\n{out}")
        hits = [l for l in out.splitlines() if f"[{rule}]" in l]
        self.assertGreaterEqual(
            len(hits), min_findings,
            f"{fixture} should trip {rule} at least {min_findings}x\n{out}")
        return out

    def test_wallclock_fixture(self):
        out = self.assert_trips("wallclock_bad.cpp", "cloudfog-wallclock",
                                min_findings=5)
        self.assertNotIn("sim_time_ok", out)

    def test_unordered_iter_fixture(self):
        out = self.assert_trips("unordered_iter_bad.cpp",
                                "cloudfog-unordered-iter", min_findings=2)
        # find()-based lookup must not be flagged.
        for line in out.splitlines():
            self.assertNotIn(":30:", line.split(" ")[0])

    def test_pointer_key_fixture(self):
        self.assert_trips("pointer_key_bad.cpp", "cloudfog-pointer-key",
                          min_findings=3)

    def test_uninit_pod_fixture(self):
        out = self.assert_trips(os.path.join("src", "uninit_pod_bad.hpp"),
                                "cloudfog-uninit-pod", min_findings=3)
        self.assertNotIn("StatsOk", out)
        flagged = [l for l in out.splitlines() if "cloudfog-uninit-pod" in l]
        for member in ("mean", "count", "cursor"):
            self.assertTrue(any(f"'{member}'" in l for l in flagged),
                            f"member {member} should be flagged\n{out}")

    def test_metric_once_fixture(self):
        out = self.assert_trips("metric_once_bad.cpp", "cloudfog-metric-once",
                                min_findings=2)
        self.assertIn("fixture.duplicated", out)
        self.assertNotIn("fixture.unique_gauge", out)
        self.assertNotIn("fixture.unique_counter", out)

    def test_parallel_write_fixture(self):
        out = self.assert_trips("parallel_write_bad.cpp",
                                "cloudfog-parallel-shared-write", min_findings=4)
        # Shard-local slots and region locals are the sanctioned writes.
        self.assertNotIn("'acc_'", out)
        self.assertNotIn("'local'", out)
        for base in ("totals_", "counter_", "shared_count", "log_"):
            self.assertIn(f"'{base}'", out)

    def test_parallel_write_clean_fixture(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "parallel_write_ok.cpp"))
        self.assertEqual(code, 0, f"shard-discipline fixture should pass\n{out}{err}")

    def test_raw_rng_fixture(self):
        out = self.assert_trips("raw_rng_bad.cpp", "cloudfog-raw-rng",
                                min_findings=4)
        self.assertIn("mt19937", out)
        self.assertIn("entropy", out)

    def test_raw_rng_clean_fixture(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "raw_rng_ok.cpp"))
        self.assertEqual(code, 0, f"seeded-stream fixture should pass\n{out}{err}")

    def test_float_reduce_fixture(self):
        out = self.assert_trips("float_reduce_bad.cpp", "cloudfog-float-reduce",
                                min_findings=2)
        # Both halves of the rule: the unordered loop and the parallel region.
        self.assertIn("'total'", out)
        self.assertIn("'mean_'", out)

    def test_float_reduce_clean_fixture(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "float_reduce_ok.cpp"))
        self.assertEqual(code, 0, f"ordered-sum fixture should pass\n{out}{err}")

    def test_static_mutable_fixture(self):
        out = self.assert_trips(os.path.join("src", "static_mutable_bad.cpp"),
                                "cloudfog-static-mutable", min_findings=3)
        flagged = [l.split(":")[1] for l in out.splitlines()
                   if "cloudfog-static-mutable" in l]
        self.assertEqual(len(flagged), 3, out)

    def test_static_mutable_clean_fixture(self):
        code, out, err = run_lint(
            os.path.join(FIXTURES, "src", "static_mutable_ok.cpp"))
        self.assertEqual(code, 0, f"const-static fixture should pass\n{out}{err}")

    def test_static_mutable_scoped_to_src(self):
        # The same declarations outside a src/ path are not the rule's
        # business (fixtures, tests and tools keep their statics).
        code, out, _ = run_lint(
            os.path.join(FIXTURES, "src", "static_mutable_bad.cpp"),
            "--rule", "cloudfog-static-mutable")
        self.assertEqual(code, 1, out)
        code, out, _ = run_lint(
            os.path.join(FIXTURES, "clean_ok.cpp"),
            "--rule", "cloudfog-static-mutable")
        self.assertEqual(code, 0, out)

    def test_stats_output(self):
        _, _, err = run_lint(os.path.join(FIXTURES, "raw_rng_bad.cpp"), "--stats")
        stat_lines = [l for l in err.splitlines() if " stat " in l]
        self.assertTrue(any("cloudfog-raw-rng" in l and l.split()[-1] == "4"
                            for l in stat_lines), err)
        # Zero counts are printed too (CI graphs every rule every run).
        self.assertTrue(any("cloudfog-metric-once" in l and l.split()[-1] == "0"
                            for l in stat_lines), err)

    def test_nolint_requires_justification(self):
        out = self.assert_trips("nolint_nojust_bad.cpp", "cloudfog-nolint")
        # The bare NOLINT must not silently suppress the underlying finding
        # report — the justification requirement is the error.
        self.assertIn("justification", out)

    def test_clean_fixture_passes(self):
        code, out, err = run_lint(os.path.join(FIXTURES, "clean_ok.cpp"))
        self.assertEqual(code, 0, f"clean fixture should pass\n{out}{err}")
        self.assertEqual(out.strip(), "")

    def test_rule_filter(self):
        # With the unrelated rule selected, the wallclock fixture is clean.
        code, out, _ = run_lint(
            os.path.join(FIXTURES, "wallclock_bad.cpp"),
            "--rule", "cloudfog-pointer-key")
        self.assertEqual(code, 0, out)

    def test_unknown_rule_is_usage_error(self):
        code, _, err = run_lint("--rule", "cloudfog-no-such-rule")
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_list_rules(self):
        code, out, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("cloudfog-wallclock", "cloudfog-unordered-iter",
                     "cloudfog-pointer-key", "cloudfog-uninit-pod",
                     "cloudfog-metric-once", "cloudfog-nolint",
                     "cloudfog-parallel-shared-write", "cloudfog-raw-rng",
                     "cloudfog-float-reduce", "cloudfog-static-mutable"):
            self.assertIn(rule, out)


class TreeCase(unittest.TestCase):
    def test_full_tree_is_clean(self):
        code, out, err = run_lint("src", "bench", "--jobs", "0")
        self.assertEqual(code, 0,
                         f"src/ + bench/ must stay lint-clean\n{out}{err}")

    def test_parallel_scan_matches_serial(self):
        # The multiprocessing driver must be an implementation detail:
        # identical findings, identical order, at any job count. Scanned
        # over the fixtures (guaranteed findings) and the live tree.
        for target in (FIXTURES, "src"):
            serial_code, serial_out, _ = run_lint(target, "--jobs", "1")
            par_code, par_out, _ = run_lint(target, "--jobs", "4")
            self.assertEqual(serial_code, par_code, target)
            self.assertEqual(serial_out, par_out, target)


if __name__ == "__main__":
    unittest.main(verbosity=2)
