#include "obs/run_store.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/require.hpp"

namespace cloudfog::obs {

namespace {

constexpr char kColumnMagic[4] = {'C', 'F', 'R', 'C'};
constexpr std::size_t kColumnHeaderBytes = 8;
constexpr std::size_t kColumnRecordBytes = 16;

void put_u16(char* out, std::uint16_t v) {
  out[0] = static_cast<char>(v & 0xffu);
  out[1] = static_cast<char>((v >> 8) & 0xffu);
}

std::uint16_t get_u16(const char* in) {
  return static_cast<std::uint16_t>((static_cast<unsigned char>(in[0])) |
                                    (static_cast<unsigned char>(in[1]) << 8));
}

void put_u64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
}

std::uint64_t get_u64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  return v;
}

/// Manifest fields share one line per run; keep them from breaking the
/// row/field structure.
std::string sanitize_field(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

}  // namespace

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {
  CLOUDFOG_REQUIRE(!dir_.empty(), "run-store directory must be non-empty");
  std::filesystem::create_directories(std::filesystem::path(dir_) / "columns");
}

std::uint64_t RunStore::begin_row(const RunKey& key) {
  const std::filesystem::path manifest = std::filesystem::path(dir_) / "manifest.tsv";
  // Next row index = number of existing manifest lines.
  std::uint64_t row = 0;
  {
    std::ifstream in(manifest);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) ++row;
    }
  }
  std::ofstream out(manifest, std::ios::app);
  CLOUDFOG_REQUIRE(out.good(), "cannot open run-store manifest for append");
  out << row << '\t' << sanitize_field(key.run_id) << '\t' << sanitize_field(key.git_sha)
      << '\t' << sanitize_field(key.config_hash) << '\n';
  CLOUDFOG_REQUIRE(out.good(), "run-store manifest append failed");
  return row;
}

std::string RunStore::sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string RunStore::column_path(std::string_view name) const {
  return (std::filesystem::path(dir_) / "columns" / (sanitize(name) + ".col")).string();
}

void RunStore::append(std::uint64_t row, std::string_view column, double value) {
  const std::string path = column_path(column);
  bool fresh = !std::filesystem::exists(path) || std::filesystem::file_size(path) == 0;
  if (!fresh) {
    // A torn tail record (crash mid-append) would misalign every record
    // written after it; truncate back to the last whole record first.
    const std::uintmax_t size = std::filesystem::file_size(path);
    if (size < kColumnHeaderBytes) {
      std::filesystem::resize_file(path, 0);
      fresh = true;
    } else if ((size - kColumnHeaderBytes) % kColumnRecordBytes != 0) {
      const std::uintmax_t whole =
          (size - kColumnHeaderBytes) / kColumnRecordBytes * kColumnRecordBytes;
      std::filesystem::resize_file(path, kColumnHeaderBytes + whole);
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  CLOUDFOG_REQUIRE(out.good(), "cannot open run-store column for append");
  if (fresh) {
    char header[kColumnHeaderBytes];
    header[0] = kColumnMagic[0];
    header[1] = kColumnMagic[1];
    header[2] = kColumnMagic[2];
    header[3] = kColumnMagic[3];
    put_u16(header + 4, kColumnVersion);
    put_u16(header + 6, 0);  // reserved
    out.write(header, static_cast<std::streamsize>(kColumnHeaderBytes));
  }
  char record[kColumnRecordBytes];
  put_u64(record, row);
  put_u64(record + 8, std::bit_cast<std::uint64_t>(value));
  out.write(record, static_cast<std::streamsize>(kColumnRecordBytes));
  CLOUDFOG_REQUIRE(out.good(), "run-store column append failed");
}

std::vector<RunStore::Row> RunStore::rows() const {
  std::vector<Row> out;
  std::ifstream in(std::filesystem::path(dir_) / "manifest.tsv");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Row row;
    std::istringstream fields(line);
    std::string index;
    std::getline(fields, index, '\t');
    std::getline(fields, row.run_id, '\t');
    std::getline(fields, row.git_sha, '\t');
    std::getline(fields, row.config_hash, '\t');
    row.row = std::strtoull(index.c_str(), nullptr, 10);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::string> RunStore::columns() const {
  std::vector<std::string> out;
  const std::filesystem::path columns_dir = std::filesystem::path(dir_) / "columns";
  if (!std::filesystem::exists(columns_dir)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(columns_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path p = entry.path();
    if (p.extension() != ".col") continue;
    out.push_back(p.stem().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::uint64_t, double>> RunStore::column(std::string_view name) const {
  std::vector<std::pair<std::uint64_t, double>> out;
  std::ifstream in(column_path(name), std::ios::binary);
  if (!in.good()) return out;
  char header[kColumnHeaderBytes];
  in.read(header, static_cast<std::streamsize>(kColumnHeaderBytes));
  if (in.gcount() != static_cast<std::streamsize>(kColumnHeaderBytes)) return out;
  CLOUDFOG_REQUIRE(header[0] == kColumnMagic[0] && header[1] == kColumnMagic[1] &&
                       header[2] == kColumnMagic[2] && header[3] == kColumnMagic[3],
                   "bad run-store column magic");
  CLOUDFOG_REQUIRE(get_u16(header + 4) == kColumnVersion,
                   "unsupported run-store column version");
  char record[kColumnRecordBytes];
  while (in.read(record, static_cast<std::streamsize>(kColumnRecordBytes))) {
    out.emplace_back(get_u64(record), std::bit_cast<double>(get_u64(record + 8)));
  }
  // A torn tail record (partial write) is dropped, matching the append-only
  // crash model documented in run_store.hpp.
  return out;
}

}  // namespace cloudfog::obs
