#include "core/testbed.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::core {
namespace {

TEST(Testbed, PeerSimProfileCounts) {
  const Testbed tb(TestbedConfig::peersim(1000), 1);
  EXPECT_EQ(tb.players().size(), 1000u);
  EXPECT_EQ(tb.config().datacenter_count, 5u);
  // ~10 % supernode-capable.
  EXPECT_NEAR(static_cast<double>(tb.supernode_capable().size()), 100.0, 30.0);
}

TEST(Testbed, PlanetLabProfileCounts) {
  const Testbed tb(TestbedConfig::planetlab(), 2);
  EXPECT_EQ(tb.players().size(), 750u);
  EXPECT_EQ(tb.config().datacenter_count, 2u);
  EXPECT_NEAR(static_cast<double>(tb.supernode_capable().size()), 30.0, 15.0);
}

TEST(Testbed, PlayersHaveValidAttributes) {
  const Testbed tb(TestbedConfig::peersim(500), 3);
  for (const auto& p : tb.players()) {
    EXPECT_GT(p.endpoint.access_latency_ms, 0.0);
    EXPECT_GE(p.bandwidth.download_mbps, 1.5);
    EXPECT_NEAR(p.bandwidth.upload_mbps, p.bandwidth.download_mbps / 3.0, 1e-9);
  }
}

TEST(Testbed, DeterministicForSameSeed) {
  const Testbed a(TestbedConfig::peersim(300), 7);
  const Testbed b(TestbedConfig::peersim(300), 7);
  for (std::size_t i = 0; i < a.players().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.players()[i].endpoint.position.x_km,
                     b.players()[i].endpoint.position.x_km);
    EXPECT_EQ(a.players()[i].supernode_capable, b.players()[i].supernode_capable);
  }
  EXPECT_EQ(a.social_graph().edges(), b.social_graph().edges());
}

TEST(Testbed, DifferentSeedsDiffer) {
  const Testbed a(TestbedConfig::peersim(300), 7);
  const Testbed b(TestbedConfig::peersim(300), 8);
  int same = 0;
  for (std::size_t i = 0; i < a.players().size(); ++i) {
    if (a.players()[i].endpoint.position.x_km == b.players()[i].endpoint.position.x_km) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Testbed, FleetIsPrefixStable) {
  const Testbed tb(TestbedConfig::peersim(2000), 4);
  const auto small = tb.make_supernode_fleet(10);
  const auto large = tb.make_supernode_fleet(20);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(small[i].owner_player, large[i].owner_player);
    EXPECT_EQ(small[i].capacity, large[i].capacity);
  }
}

TEST(Testbed, FleetOwnersAreCapablePlayers) {
  const Testbed tb(TestbedConfig::peersim(2000), 5);
  const auto fleet = tb.make_supernode_fleet(tb.supernode_capable().size());
  for (const auto& sn : fleet) {
    EXPECT_TRUE(tb.players()[sn.owner_player].supernode_capable);
    EXPECT_GE(sn.capacity, 4);
    EXPECT_LE(sn.capacity, 40);
    // §3.1.1: uplink carries a full seat complement at the top bitrate.
    EXPECT_GE(sn.upload_mbps, sn.capacity * 1.8 - 1e-9);
    // Superior network connection: low access latency.
    EXPECT_LE(sn.endpoint.access_latency_ms, 4.0);
  }
}

TEST(Testbed, FleetLargerThanCapablePopulationThrows) {
  const Testbed tb(TestbedConfig::peersim(200), 6);
  EXPECT_THROW(tb.make_supernode_fleet(tb.supernode_capable().size() + 1),
               ConfigError);
}

TEST(Testbed, ForcedCapacityApplies) {
  TestbedConfig cfg = TestbedConfig::peersim(500);
  cfg.forced_supernode_capacity = 15;
  const Testbed tb(cfg, 7);
  for (const auto& sn : tb.make_supernode_fleet(5)) {
    EXPECT_EQ(sn.capacity, 15);
  }
}

TEST(Testbed, DatacentersMatchRequestedCount) {
  const Testbed tb(TestbedConfig::peersim(500), 8);
  EXPECT_EQ(tb.make_datacenters().size(), 5u);
  EXPECT_EQ(tb.make_datacenters(12).size(), 12u);
  for (const auto& dc : tb.make_datacenters()) {
    EXPECT_DOUBLE_EQ(dc.endpoint.access_latency_ms, 1.0);
    EXPECT_GT(dc.uplink_mbps, 0.0);
  }
}

TEST(Testbed, CdnServersRespectConfig) {
  const Testbed tb(TestbedConfig::peersim(500), 9);
  const auto cdn = tb.make_cdn_servers(45);
  EXPECT_EQ(cdn.size(), 45u);
  for (const auto& edge : cdn) {
    EXPECT_DOUBLE_EQ(edge.uplink_mbps, tb.config().cdn_uplink_mbps);
    EXPECT_EQ(edge.capacity, tb.config().cdn_capacity_players);
  }
}

TEST(Testbed, CdnSaltChangesPlacement) {
  const Testbed tb(TestbedConfig::peersim(500), 10);
  const auto a = tb.make_cdn_servers(5, 0);
  const auto b = tb.make_cdn_servers(5, 1);
  EXPECT_NE(a[0].endpoint.position.x_km, b[0].endpoint.position.x_km);
}

TEST(SupernodeState, ThrottlingIsSilentToTheSeatTable) {
  SupernodeState sn;
  sn.capacity = 10;
  sn.upload_mbps = 20.0;
  sn.willingness = 0.5;
  // Throttling halves the offered uplink but NOT the advertised seats —
  // the degradation is what the reputation system must detect.
  EXPECT_DOUBLE_EQ(sn.offered_upload_mbps(), 10.0);
  sn.served = 9;
  EXPECT_TRUE(sn.accepting());
  sn.served = 10;
  EXPECT_FALSE(sn.accepting());
  sn.served = 0;
  sn.failed = true;
  EXPECT_FALSE(sn.accepting());
  sn.failed = false;
  sn.deployed = false;
  EXPECT_FALSE(sn.accepting());
}

}  // namespace
}  // namespace cloudfog::core
