// The virtual world: the thing the cloud actually computes.
//
// The paper's cloud "collects action information from all involved
// players and performs the computation of the new game state of the
// virtual world (including the new shape and position of objects and
// states of avatars)" (§3.1). This module implements that substrate: a
// bounded 2-D world of avatars moving under a random-waypoint model, with
// neighbor queries (who is close enough to interact) served by a uniform
// grid index.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace cloudfog::world {

using AvatarId = std::size_t;

/// Position in world units (game metres).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Vec2& a, const Vec2& b);

struct Avatar {
  AvatarId id = 0;
  Vec2 position;
  Vec2 waypoint;       ///< current movement target
  double speed = 0.0;  ///< world units per second
  bool alive = false;  ///< slot freed on despawn
};

struct WorldConfig {
  double width = 10000.0;
  double height = 10000.0;
  /// Two avatars closer than this interact (fight/trade/chat) — the
  /// source of inter-server communication in §3.4.
  double interaction_radius = 50.0;
  double min_speed = 10.0;
  double max_speed = 60.0;
  /// Avatars cluster at points of interest (towns, dungeons): waypoints
  /// are drawn near a hotspot with this probability, else uniformly.
  double hotspot_fraction = 0.7;
  std::size_t hotspot_count = 12;
  double hotspot_sigma = 300.0;
};

class VirtualWorld {
 public:
  VirtualWorld(WorldConfig cfg, util::Rng rng);

  const WorldConfig& config() const { return cfg_; }

  /// Spawns an avatar at a hotspot-biased position; returns its id.
  AvatarId spawn();

  /// Removes an avatar; its id may be reused by later spawns.
  void despawn(AvatarId id);

  std::size_t population() const { return population_; }
  const Avatar& avatar(AvatarId id) const;
  const std::vector<Avatar>& avatars() const { return avatars_; }

  /// Advances every avatar `dt` seconds along its waypoint (re-targeting
  /// on arrival).
  void step(double dt);

  /// All unordered pairs of live avatars within the interaction radius.
  /// Grid-bucketed: O(n + pairs) rather than O(n²).
  std::vector<std::pair<AvatarId, AvatarId>> interaction_pairs() const;

  /// Number of live avatars within `radius` of `where`.
  std::size_t population_near(const Vec2& where, double radius) const;

 private:
  Vec2 sample_point();
  void retarget(Avatar& avatar);

  WorldConfig cfg_;
  util::Rng rng_;
  std::vector<Vec2> hotspots_;
  std::vector<Avatar> avatars_;     // dense slots, alive flag marks use
  std::vector<AvatarId> free_ids_;  // recycled slots
  std::size_t population_ = 0;
};

}  // namespace cloudfog::world
