#!/usr/bin/env bash
# Full verification: tier-1 tests twice (plain and sanitized builds), a
# bench smoke test that exercises the observability exports, and a chaos
# smoke test that replays a seeded fault schedule (under ASan+UBSan unless
# --quick).
#
#   scripts/check.sh            everything
#   scripts/check.sh --quick    plain tests + smoke tests only (no sanitizers)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [ "$QUICK" -eq 0 ]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake -B build-asan -S . -DENABLE_SANITIZERS=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "== bench smoke: observability exports =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./build/bench/bench_fig7_latency --quick \
  --report-json "$SMOKE_DIR/report.json" \
  --trace "$SMOKE_DIR/trace.jsonl" >/dev/null

[ -s "$SMOKE_DIR/report.json" ] || { echo "report.json is empty" >&2; exit 1; }
[ -s "$SMOKE_DIR/trace.jsonl" ] || { echo "trace.jsonl is empty" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/report.json" "$SMOKE_DIR/trace.jsonl" <<'EOF'
import json, sys
report_path, trace_path = sys.argv[1], sys.argv[2]
report = json.load(open(report_path))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in report"
assert len(report["counters"]) >= 5, "expected at least five counters"
assert report["phases"], "no phase profile"
last = float("-inf")
n = 0
with open(trace_path) as f:
    for line in f:
        t = json.loads(line)["t"]
        assert t >= last, f"trace not monotone at line {n}"
        last = t
        n += 1
assert n > 0, "empty trace"
print(f"report OK ({len(report['runs'])} runs, {len(report['counters'])} counters); "
      f"trace OK ({n} events, monotone)")
EOF
else
  echo "python3 not found: skipping JSON schema validation"
fi

echo "== chaos smoke: seeded fault replay =="
# The sanitized binary when available: the fault paths (crash displacement,
# overlapping clears, fallback bookkeeping) are exactly where lifetime bugs
# would hide.
CHAOS_BIN=./build/bench/bench_ext_chaos
[ "$QUICK" -eq 0 ] && CHAOS_BIN=./build-asan/bench/bench_ext_chaos
CLOUDFOG_FAULT_SEED=424242 "$CHAOS_BIN" --quick \
  --report-json "$SMOKE_DIR/chaos_report.json" \
  --trace "$SMOKE_DIR/chaos_a.jsonl" >/dev/null
CLOUDFOG_FAULT_SEED=424242 "$CHAOS_BIN" --quick \
  --trace "$SMOKE_DIR/chaos_b.jsonl" >/dev/null

grep '"kind":"fault_' "$SMOKE_DIR/chaos_a.jsonl" > "$SMOKE_DIR/faults_a.jsonl" || true
grep '"kind":"fault_' "$SMOKE_DIR/chaos_b.jsonl" > "$SMOKE_DIR/faults_b.jsonl" || true
[ -s "$SMOKE_DIR/faults_a.jsonl" ] || { echo "chaos run injected no faults" >&2; exit 1; }
cmp -s "$SMOKE_DIR/faults_a.jsonl" "$SMOKE_DIR/faults_b.jsonl" || {
  echo "seeded chaos replay diverged (fault trace lines differ)" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/chaos_report.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in chaos report"
counters = report["counters"]
joins, leaves = counters["system.player_joins"], counters["system.player_leaves"]
assert joins == leaves, f"session leak: {joins} joins vs {leaves} leaves"
assert counters.get("fault.injected", 0) > 0, "no faults injected"
assert counters.get("fault.cleared", 0) > 0, "no faults cleared"
names = {name for run in report["runs"] for name in run["metrics"]}
for required in ("mttr_ms", "fallback_residency", "sessions_interrupted"):
    assert required in names, f"missing chaos metric {required}"
print(f"chaos report OK ({counters['fault.injected']} faults injected, "
      f"{joins} joins == leaves, replay identical)")
EOF
else
  echo "python3 not found: skipping chaos report validation"
fi

echo "all checks passed"
