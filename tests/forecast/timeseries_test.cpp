#include "forecast/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace cloudfog::forecast {
namespace {

TEST(TimeSeries, PushAndAccess) {
  TimeSeries ts;
  ts.push(1.0);
  ts.push(2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(0), 1.0);
  EXPECT_DOUBLE_EQ(ts.back(), 2.0);
  EXPECT_DOUBLE_EQ(ts.back(1), 1.0);
}

TEST(TimeSeries, HasLag) {
  TimeSeries ts({1.0, 2.0, 3.0});
  EXPECT_TRUE(ts.has_lag(2));
  EXPECT_FALSE(ts.has_lag(3));
}

TEST(TimeSeries, Difference) {
  const TimeSeries ts({1.0, 4.0, 9.0, 16.0});
  EXPECT_EQ(ts.difference(), (std::vector<double>{3.0, 5.0, 7.0}));
}

TEST(TimeSeries, SeasonalDifference) {
  const TimeSeries ts({1.0, 2.0, 3.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(ts.seasonal_difference(3), (std::vector<double>{4.0, 5.0, 6.0}));
}

TEST(TimeSeries, BoundsChecked) {
  const TimeSeries ts({1.0});
  EXPECT_THROW(ts.at(1), cloudfog::ConfigError);
  EXPECT_THROW(ts.back(1), cloudfog::ConfigError);
  EXPECT_THROW(ts.difference(), cloudfog::ConfigError);
  EXPECT_THROW(ts.seasonal_difference(1), cloudfog::ConfigError);
}

TEST(Accuracy, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5));
}

TEST(Accuracy, MapeKnownValue) {
  EXPECT_NEAR(mape({100.0, 200.0}, {110.0, 180.0}), 0.1, 1e-12);
}

TEST(Accuracy, MapeSkipsZeroActuals) {
  EXPECT_NEAR(mape({0.0, 100.0}, {5.0, 90.0}), 0.1, 1e-12);
}

TEST(Accuracy, Validation) {
  EXPECT_THROW(rmse({1.0}, {1.0, 2.0}), cloudfog::ConfigError);
  EXPECT_THROW(rmse({}, {}), cloudfog::ConfigError);
  EXPECT_THROW(mape({0.0}, {1.0}), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::forecast
