file(REMOVE_RECURSE
  "CMakeFiles/test_game.dir/game/activity_model_test.cpp.o"
  "CMakeFiles/test_game.dir/game/activity_model_test.cpp.o.d"
  "CMakeFiles/test_game.dir/game/game_catalog_test.cpp.o"
  "CMakeFiles/test_game.dir/game/game_catalog_test.cpp.o.d"
  "CMakeFiles/test_game.dir/game/quality_ladder_test.cpp.o"
  "CMakeFiles/test_game.dir/game/quality_ladder_test.cpp.o.d"
  "CMakeFiles/test_game.dir/game/workload_test.cpp.o"
  "CMakeFiles/test_game.dir/game/workload_test.cpp.o.d"
  "test_game"
  "test_game.pdb"
  "test_game[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
