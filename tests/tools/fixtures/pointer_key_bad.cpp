// Fixture: must trip cloudfog-pointer-key (address-ordered containers and
// comparators).
#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

std::map<Node*, int> ranks;        // finding: pointer-keyed map
std::set<const Node*> visited;     // finding: pointer-keyed set

void sort_by_address(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a < b; });  // finding: pointer comparator
}

// Ordering by a stable field must NOT trip the rule.
void sort_by_id_ok(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}

}  // namespace fixture
