// Liveness monitoring of a serving supernode (§3.2.2: "normal nodes probe
// their supernodes periodically for connection maintenance").
//
// Every period the monitor sends a LivenessProbe; a reply arriving before
// the next tick resets the miss counter. The timing is a fault::RetryPolicy
// — attempt_timeout_ms is the probe period, max_attempts the miss limit —
// so detection time is the policy's detection_ms() and a miss streak is an
// ordinary retry sequence (optionally backed off) with the shared
// fault.retries / fault.exhaustions accounting. After the policy's
// attempts run out the supernode is declared dead and the failure callback
// fires (once) with the detection timestamp — the first component of the
// paper's ~0.8 s migration latency.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "fault/retry_policy.hpp"
#include "overlay/network.hpp"
#include "sim/simulator.hpp"

namespace cloudfog::overlay {

struct ProbeMonitorConfig {
  /// attempt_timeout_ms = probe period, max_attempts = miss limit.
  fault::RetryPolicy policy = fault::RetryPolicy::liveness();
};

class ProbeMonitor {
 public:
  using FailureCallback = std::function<void(double detected_at_ms)>;

  ProbeMonitor(sim::Simulator& sim, MessageNetwork& network, Address self, Address target,
               ProbeMonitorConfig cfg, FailureCallback on_failure);
  ~ProbeMonitor();

  ProbeMonitor(const ProbeMonitor&) = delete;
  ProbeMonitor& operator=(const ProbeMonitor&) = delete;

  /// Feed a LivenessReply from the target.
  void on_message(const Message& msg);

  void stop();
  bool running() const { return running_; }
  int consecutive_misses() const { return misses_; }
  Address target() const { return target_; }

 private:
  void tick();

  sim::Simulator& sim_;
  MessageNetwork& network_;
  Address self_;
  Address target_;
  ProbeMonitorConfig cfg_;
  FailureCallback on_failure_;
  bool running_ = true;
  bool awaiting_reply_ = false;
  int misses_ = 0;
  /// Live only during a miss streak; tracks the streak against the policy
  /// and emits the shared retry/exhaustion telemetry.
  std::optional<fault::RetryBudget> streak_;
  util::Rng backoff_rng_;  ///< consumed only by jittered backoff policies
  int epoch_ = 0;  // invalidates queued ticks after stop()
  /// Queued simulator callbacks hold a weak reference to this token; if
  /// the monitor is destroyed before they fire, they observe expiry
  /// instead of dereferencing a dangling `this`.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace cloudfog::overlay
