#include "obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace cloudfog::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", static_cast<unsigned>(c));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf.data(), ptr);
}

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted any needed comma
  }
  if (!stack_.empty()) {
    if (stack_.back() == 'e') os_ << ',';
    stack_.back() = 'e';
  }
}

void JsonWriter::begin_object() {
  separator();
  os_ << '{';
  stack_.push_back('f');
}

void JsonWriter::end_object() {
  stack_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  separator();
  os_ << '[';
  stack_.push_back('f');
}

void JsonWriter::end_array() {
  stack_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back() == 'e') os_ << ',';
    stack_.back() = 'e';
  }
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separator();
  os_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(double v) {
  separator();
  os_ << json_number(v);
}

void JsonWriter::value(std::uint64_t v) {
  separator();
  os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  separator();
  os_ << v;
}

void JsonWriter::value(bool b) {
  separator();
  os_ << (b ? "true" : "false");
}

}  // namespace cloudfog::obs
