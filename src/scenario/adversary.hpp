// Adversarial supernode behaviour against the §3.2 reputation scheme.
//
// The paper's security discussion (§3.6) anticipates supernodes that
// "deliberately delay the transmission of game videos". AdversaryModel
// generalises that single fixed-delay attacker into the classic
// reputation-attack repertoire:
//   * kFixedDelay — every member sabotages constantly (the legacy
//     MaliciousConfig behaviour, bit-for-bit);
//   * kOnOff     — members alternate between honest and sabotaging
//     cycles, farming good ratings while off to spend while on;
//   * kWhitewash — members sabotage constantly but periodically shed
//     their identity: every victim's ratings of them are erased, so the
//     reborn identity scores 0 (unknown) instead of its earned bad score;
//   * kCollusion — members are organised into rings that take turns
//     sabotaging; while one ring attacks, the others behave to keep the
//     coalition's average standing high.
//
// Membership is drawn on the owning System's "malicious" fork with one
// Bernoulli trial per fleet slot — exactly the legacy stream — so a
// kFixedDelay adversary replays the historical MaliciousConfig runs
// byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/entities.hpp"
#include "util/rng.hpp"

namespace cloudfog::scenario {

enum class AdversaryKind : std::uint8_t {
  kNone,
  kFixedDelay,
  kOnOff,
  kWhitewash,
  kCollusion,
};

const char* adversary_kind_name(AdversaryKind kind);

/// Parses a kind name ("none", "fixed_delay", "on_off", "whitewash",
/// "collusion"); returns false on an unknown name.
bool adversary_kind_from_name(std::string_view name, AdversaryKind* out);

struct AdversaryConfig {
  AdversaryKind kind = AdversaryKind::kNone;
  /// Share of the fleet recruited (one Bernoulli trial per slot).
  double fraction = 0.0;
  /// Sabotage intensity: per-packet hold-back in milliseconds.
  double delay_ms = 80.0;
  /// kOnOff: members sabotage for `on_cycles` out of every `period_cycles`.
  int period_cycles = 2;
  int on_cycles = 1;
  /// kWhitewash: identities are reborn every `whitewash_period_cycles`.
  int whitewash_period_cycles = 2;
  /// kCollusion: number of rotating rings (one attacks per cycle).
  int ring_count = 3;

  bool active() const { return kind != AdversaryKind::kNone && fraction > 0.0; }
};

/// Drives the recruited members' behaviour cycle by cycle. Constructed by
/// the owning System; `begin_cycle` must run before the cycle's first
/// subcycle so selection and QoS see this cycle's behaviour.
class AdversaryModel {
 public:
  /// Recruits members from `fleet` (one `rng.chance(fraction)` per slot,
  /// the legacy MaliciousConfig stream) and applies the baseline sabotage
  /// of always-on kinds.
  AdversaryModel(const AdversaryConfig& cfg, std::vector<core::SupernodeState>& fleet,
                 util::Rng rng);

  const AdversaryConfig& config() const { return cfg_; }
  bool is_member(std::size_t supernode) const {
    return supernode < member_.size() && member_[supernode] != 0;
  }
  const std::vector<std::size_t>& members() const { return member_ids_; }

  /// Applies this cycle's behaviour: toggles sabotage for kOnOff and
  /// kCollusion, erases ratings of reborn identities for kWhitewash.
  void begin_cycle(int day, std::vector<core::SupernodeState>& fleet,
                   std::vector<core::PlayerState>& players);

 private:
  AdversaryConfig cfg_;
  std::vector<char> member_;              ///< per fleet slot
  std::vector<std::size_t> member_ids_;   ///< recruited slots, ascending
  std::vector<std::size_t> ring_of_;      ///< collusion ring per member
};

}  // namespace cloudfog::scenario
