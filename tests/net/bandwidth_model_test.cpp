#include "net/bandwidth_model.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace cloudfog::net {
namespace {

TEST(BandwidthModel, UploadIsOneThirdOfDownload) {
  const BandwidthModel model;
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const NodeBandwidth bw = model.sample_node_bandwidth(rng);
    EXPECT_NEAR(bw.upload_mbps, bw.download_mbps / 3.0, 1e-9);
  }
}

TEST(BandwidthModel, DownloadsComeFromBroadbandTiers) {
  const BandwidthModel model;
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double down = model.sample_node_bandwidth(rng).download_mbps;
    EXPECT_GE(down, 1.5);
    EXPECT_LE(down, 50.0);
  }
}

TEST(BandwidthModel, MeanDownloadMatchesTierWeights) {
  const BandwidthModel model;
  util::Rng rng(3);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(model.sample_node_bandwidth(rng).download_mbps);
  }
  EXPECT_NEAR(stats.mean(), model.mean_download_mbps(), 0.2);
}

TEST(BandwidthModel, SupernodeCapacityWithinParetoBounds) {
  const BandwidthModel model;
  util::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const int cap = model.sample_supernode_capacity(rng);
    ASSERT_GE(cap, 4);
    ASSERT_LE(cap, 40);
  }
}

TEST(BandwidthModel, SupernodeCapacityIsHeavyTailedDown) {
  const BandwidthModel model;
  util::Rng rng(5);
  int small = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (model.sample_supernode_capacity(rng) <= 8) ++small;
  }
  EXPECT_GT(small, n / 2);  // Pareto α=2 puts most mass near the bottom
}

TEST(BandwidthModel, CustomUploadDivisor) {
  BandwidthModelConfig cfg;
  cfg.upload_divisor = 2.0;
  const BandwidthModel model(cfg);
  util::Rng rng(6);
  const NodeBandwidth bw = model.sample_node_bandwidth(rng);
  EXPECT_NEAR(bw.upload_mbps, bw.download_mbps / 2.0, 1e-9);
}

}  // namespace
}  // namespace cloudfog::net
