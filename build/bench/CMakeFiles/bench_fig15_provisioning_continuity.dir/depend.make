# Empty dependencies file for bench_fig15_provisioning_continuity.
# This may be replaced when dependencies are built.
