// Microbenchmarks of the hot paths (google-benchmark): the quantities the
// paper analyses asymptotically — O(h1·z²) community partitioning,
// O(m·n·N_r) reputation scoring — plus the event queue, the rate adapter
// step and the SARIMA recursion.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/provisioner.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"
#include "obs/obs.hpp"
#include "forecast/sarima.hpp"
#include "overlay/join_session.hpp"
#include "reputation/reputation_store.hpp"
#include "sim/event_queue.hpp"
#include "social/community_partitioner.hpp"
#include "social/social_graph.hpp"
#include "util/rng.hpp"
#include "video/qoe.hpp"
#include "video/rate_adapter.hpp"
#include "world/state_engine.hpp"

namespace {

using namespace cloudfog;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      q.schedule(static_cast<double>((i * 7919) % n), [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop().callback();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_ModularitySwapTrial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  social::SocialGraphConfig gcfg;
  auto graph = social::generate_power_law_graph(n, gcfg, rng);
  social::Partition partition(n);
  for (std::size_t i = 0; i < n; ++i) partition[i] = static_cast<int>(i % 16);
  social::ModularityState ms(graph, partition, 16);
  std::size_t player = 0;
  for (auto _ : state) {
    ms.move(player, static_cast<int>((player + 1) % 16));
    benchmark::DoNotOptimize(ms.modularity());
    ms.move(player, static_cast<int>(player % 16));
    player = (player + 1) % n;
  }
}
BENCHMARK(BM_ModularitySwapTrial)->Arg(1000)->Arg(10000);

void BM_CommunityPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  social::SocialGraphConfig gcfg;
  auto graph = social::generate_power_law_graph(n, gcfg, rng);
  social::PartitionerConfig pcfg;
  pcfg.communities = 50;
  pcfg.max_swap_trials = 200;
  pcfg.max_consecutive_miss = 50;
  const social::CommunityPartitioner partitioner(pcfg);
  for (auto _ : state) {
    util::Rng run_rng(13);
    benchmark::DoNotOptimize(partitioner.partition(graph, run_rng));
  }
}
BENCHMARK(BM_CommunityPartition)->Arg(1000)->Arg(5000);

void BM_ReputationScore(benchmark::State& state) {
  const int ratings = static_cast<int>(state.range(0));
  reputation::ReputationStore store(0.9, static_cast<std::size_t>(ratings));
  for (int i = 0; i < ratings; ++i) {
    store.add_rating(3, 0.8, i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.score(3, ratings + 1));
  }
}
BENCHMARK(BM_ReputationScore)->Arg(16)->Arg(64);

void BM_RateAdapterStep(benchmark::State& state) {
  const auto catalog = game::GameCatalog::paper_default();
  video::RateAdapterConfig cfg;
  video::RateAdapter adapter(catalog, 2, cfg);
  double rate = 900e3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapter.step(2.0, rate));
    rate = rate > 500e3 ? rate - 1e3 : 1200e3;  // oscillate around the ladder
  }
}
BENCHMARK(BM_RateAdapterStep);

void BM_SarimaObserveForecast(benchmark::State& state) {
  forecast::SeasonalArima model(forecast::SarimaConfig{42, 0.3, 0.3});
  double v = 1000.0;
  for (auto _ : state) {
    model.observe(v);
    benchmark::DoNotOptimize(model.forecast_next());
    v = v < 5000 ? v * 1.01 : 1000.0;
  }
}
// Bounded iterations: the model keeps its observation history, so an
// unbounded run would grow memory linearly.
BENCHMARK(BM_SarimaObserveForecast)->Iterations(100000);

void BM_WorldTick(benchmark::State& state) {
  world::WorldConfig wcfg;
  world::VirtualWorld vw(wcfg, util::Rng(31));
  for (std::int64_t i = 0; i < state.range(0); ++i) vw.spawn();
  world::GameStateEngine engine(vw, world::StateEngineConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.tick(0.1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorldTick)->Arg(1000)->Arg(5000);

void BM_KdTreeBuild(benchmark::State& state) {
  world::WorldConfig wcfg;
  world::VirtualWorld vw(wcfg, util::Rng(32));
  for (std::int64_t i = 0; i < state.range(0); ++i) vw.spawn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world::build_kdtree_partition(vw, 64, 8));
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000);

void BM_OverlayJoin(benchmark::State& state) {
  // One full §3.2.1 join conversation through the event-driven overlay.
  const net::LatencyModel latency{net::LatencyModelConfig{}};
  for (auto _ : state) {
    sim::Simulator sim;
    overlay::MessageNetwork network(sim, latency);
    overlay::CloudDirectoryAgent directory(
        network, net::make_infrastructure_endpoint({2000.0, 0.0}));
    std::vector<std::unique_ptr<overlay::SupernodeAgent>> sns;
    for (int i = 0; i < 8; ++i) {
      sns.push_back(std::make_unique<overlay::SupernodeAgent>(
          network, net::Endpoint{{10.0 * (i + 1), 0.0}, 2.0}, 5));
      directory.admit(sns.back()->address(), net::GeoPoint{10.0 * (i + 1), 0.0});
    }
    overlay::PlayerAgent player(sim, network, net::Endpoint{{0.0, 0.0}, 5.0});
    bool connected = false;
    player.join(directory.address(), overlay::JoinConfig{}, nullptr,
                [&connected](const overlay::JoinResult& r) { connected = r.fog_connected; },
                util::Rng(7));
    sim.run();
    benchmark::DoNotOptimize(connected);
  }
}
BENCHMARK(BM_OverlayJoin);

void BM_QoeMos(benchmark::State& state) {
  const video::QoeModel model;
  double lat = 40.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.mos(lat, 0.93, 1200.0));
    lat = lat < 200.0 ? lat + 0.1 : 40.0;
  }
}
BENCHMARK(BM_QoeMos);

// §3.2 step 1 at fleet scale: the geo-grid index against the linear
// reference scan, over every player endpoint in the testbed.
void BM_CandidateDiscovery(benchmark::State& state) {
  const auto fleet_size = static_cast<std::size_t>(state.range(0));
  const auto mode =
      state.range(1) != 0 ? core::CandidateMode::kGrid : core::CandidateMode::kLinear;
  auto cfg = core::TestbedConfig::peersim(std::max<std::size_t>(fleet_size, 2000));
  cfg.supernode_capable_fraction = 1.0;  // allow fleets beyond the 10 % pool
  const core::Testbed testbed(cfg, 42);
  core::Cloud cloud(testbed.make_datacenters(), testbed.latency(), net::IpLocator{});
  cloud.set_candidate_mode(mode);
  auto fleet = testbed.make_supernode_fleet(fleet_size);
  util::Rng reg_rng(7);
  for (auto& sn : fleet) {
    cloud.register_supernode(sn, reg_rng);
    sn.deployed = true;
  }
  constexpr std::size_t kQueries = 1000;
  std::vector<std::size_t> out;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kQueries; ++i) {
      cloud.candidate_supernodes_into(testbed.players()[i].endpoint, fleet, 8, out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kQueries));
}
BENCHMARK(BM_CandidateDiscovery)
    ->ArgNames({"fleet", "grid"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

// One end-to-end System subcycle (population churn + demand tallies + QoS
// pass) on the CloudFog arm: the reference engine (memoize off, serial)
// against the memoized engine at 1 and 4 worker threads.
void BM_QosSubcycle(benchmark::State& state) {
  const auto players = static_cast<std::size_t>(state.range(0));
  const core::Testbed testbed(core::TestbedConfig::peersim(players), 42);
  core::SystemConfig cfg;
  cfg.supernode_count = players / 10;  // the profile's capable pool
  cfg.qos.memoize = state.range(1) != 0;
  cfg.qos.threads = static_cast<int>(state.range(2));
  core::System system(testbed, cfg, 42);
  const int per_day = testbed.activity().config().subcycles_per_day;
  system.begin_cycle(0);
  for (int s = 1; s <= per_day; ++s) system.run_subcycle(0, s, true, false);  // warm up
  int sub = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run_subcycle(0, sub, false, false));
    sub = sub % per_day + 1;  // subcycles are 1-based on a daily clock
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(players));
}
BENCHMARK(BM_QosSubcycle)
    ->ArgNames({"players", "memo", "threads"})
    ->Args({2000, 0, 1})
    ->Args({2000, 1, 1})
    ->Args({2000, 1, 4})
    ->Unit(benchmark::kMillisecond);

// Observability hot paths: the disabled gate must be near-free; the
// enabled increments bound what instrumented code pays per event.
void BM_ObsDisabledGate(benchmark::State& state) {
  auto& rec = obs::Recorder::global();
  const bool was = rec.enabled();
  rec.set_enabled(false);
  const auto id = rec.registry().counter("bench.obs.gate");
  for (auto _ : state) {
    if (rec.enabled()) rec.registry().add(id);
    benchmark::DoNotOptimize(&rec);
  }
  rec.set_enabled(was);
}
BENCHMARK(BM_ObsDisabledGate);

void BM_ObsCounterAdd(benchmark::State& state) {
  auto& rec = obs::Recorder::global();
  const bool was = rec.enabled();
  rec.set_enabled(true);
  const auto id = rec.registry().counter("bench.obs.counter");
  for (auto _ : state) {
    if (rec.enabled()) rec.registry().add(id);
  }
  rec.set_enabled(was);
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  auto& rec = obs::Recorder::global();
  const bool was = rec.enabled();
  rec.set_enabled(true);
  const auto id = rec.registry().histogram("bench.obs.hist", 0.0, 1000.0, 40);
  double v = 0.0;
  for (auto _ : state) {
    rec.registry().observe(id, v);
    v = v < 1000.0 ? v + 0.7 : 0.0;
  }
  rec.set_enabled(was);
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsTracePush(benchmark::State& state) {
  auto& rec = obs::Recorder::global();
  const bool was = rec.enabled();
  rec.set_enabled(true);
  double t = 0.0;
  for (auto _ : state) {
    rec.trace_at(t, obs::EventKind::kProbeSent, 1, 2, 3.0);
    t += 1.0;
  }
  rec.trace_buffer().clear();
  rec.set_enabled(was);
}
BENCHMARK(BM_ObsTracePush);

void BM_ObsScopedTimer(benchmark::State& state) {
  auto& rec = obs::Recorder::global();
  const bool was = rec.enabled();
  rec.set_enabled(true);
  for (auto _ : state) {
    CLOUDFOG_TIMED_SCOPE("bench.obs.scope");
    benchmark::DoNotOptimize(&rec);
  }
  rec.set_enabled(was);
}
BENCHMARK(BM_ObsScopedTimer);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): accept the repo-wide --obs-off
// flag (the recorder is off in microbenchmarks either way — the *Obs*
// benchmarks above opt in locally) before google-benchmark rejects it as
// unrecognized.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-off") == 0) continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  cloudfog::obs::Recorder::global().set_enabled(false);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
