// Runtime entities of a gaming system: players, supernodes, datacenters
// and CDN servers, plus the serving relationship between them. These are
// plain state holders; behaviour lives in Cloud / FogManager / QosEngine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "game/activity_model.hpp"
#include "game/game_catalog.hpp"
#include "net/bandwidth_model.hpp"
#include "net/ip_locator.hpp"
#include "net/latency_model.hpp"
#include "reputation/reputation_store.hpp"
#include "video/stream_session.hpp"

namespace cloudfog::core {

using NodeId = std::size_t;

/// Which kind of entity streams a player's game video.
enum class ServingKind { kNone, kCloud, kSupernode, kCdn };

struct ServingRef {
  ServingKind kind = ServingKind::kNone;
  std::size_t index = 0;  ///< datacenter / supernode / CDN-server index

  bool attached() const { return kind != ServingKind::kNone; }
  friend bool operator==(const ServingRef&, const ServingRef&) = default;
};

/// Immutable facts about a player, fixed at testbed construction.
struct PlayerInfo {
  NodeId id = 0;
  net::Endpoint endpoint;
  net::NodeBandwidth bandwidth;
  game::DurationClass duration_class = game::DurationClass::kCasual;
  bool supernode_capable = false;
  net::IpAddress ip = 0;
};

/// Mutable per-player simulation state.
struct PlayerState {
  PlayerInfo info;
  game::DailySession today;          ///< rolled at the start of each cycle
  game::GameId game = 0;             ///< game chosen for today
  bool online = false;
  ServingRef serving;
  std::size_t state_dc = 0;          ///< datacenter holding this player's game state
  std::size_t server_index = 0;      ///< game server inside the datacenter
  /// Expected extra response latency from inter-server communication this
  /// subcycle (computed by the system from interaction patterns, §3.4).
  double cross_server_ms = 0.0;
  std::optional<video::StreamSession> session;
  reputation::ReputationStore reputation;  ///< this player's private ratings
  std::vector<std::size_t> candidate_supernodes;  ///< cached cloud answer
  /// Memoized Cloud::nearest_datacenter answer for this player's endpoint
  /// (immutable after testbed construction); -1 until first computed.
  std::int64_t nearest_dc_cache = -1;
  /// Continuity experienced this cycle toward the supernode that served
  /// it, for end-of-cycle rating (§4.1).
  double cycle_continuity_sum = 0.0;
  double cycle_continuity_samples = 0.0;
  /// Supernode to rate at the end of the cycle (last one that served us).
  std::optional<std::size_t> rated_supernode_this_cycle;
};

/// A deployed supernode (fog member).
struct SupernodeState {
  std::size_t id = 0;
  NodeId owner_player = 0;  ///< the contributing machine's player index
  net::Endpoint endpoint;
  net::IpAddress ip = 0;
  double upload_mbps = 0.0;
  int capacity = 0;  ///< max simultaneous players (hardware/rendering bound)
  /// Fraction of the uplink the owner actually offers this cycle
  /// (§4.1's throttling supernodes set 0.8 / 0.5). Throttling is
  /// *silent*: the cloud's capacity table still advertises the full seat
  /// count — detecting the resulting poor service is exactly the
  /// reputation system's job (§3.2.1, factor three).
  double willingness = 1.0;
  /// §3.6 extension: a malicious supernode "deliberately delays the
  /// transmission of game videos in order to destroy user satisfaction".
  /// Added to every packet's delivery latency; invisible to the cloud's
  /// tables — only experienced QoS (reputation) can reveal it.
  double sabotage_delay_ms = 0.0;
  bool deployed = true;  ///< provisioning may park a candidate
  bool failed = false;   ///< injected failure (migration experiments)
  int served = 0;
  /// Players supported in the previous provisioning window — N_i of
  /// Eq. 16's rank ordering.
  int supported_last_window = 0;
  /// Per-substep tally of demanded video bitrate (kbps), rebuilt by the
  /// QoS engine.
  double demanded_kbps = 0.0;

  double offered_upload_mbps() const { return upload_mbps * willingness; }
  bool accepting() const { return deployed && !failed && served < capacity; }
};

/// A cloud datacenter: computes game state and (for players out of fog
/// reach) streams video directly.
struct DatacenterState {
  std::size_t id = 0;
  net::Endpoint endpoint;
  int server_count = 50;      ///< game-state servers inside the datacenter
  double uplink_mbps = 1500;  ///< video-streaming egress capacity
  int direct_players = 0;
  double demanded_kbps = 0.0;
};

/// An EdgeCloud-style CDN server: computes state *and* streams for its
/// players (the paper's CDN baseline [21]).
struct CdnServerState {
  std::size_t id = 0;
  net::Endpoint endpoint;
  double uplink_mbps = 150.0;
  int capacity = 100;
  int served = 0;
  double demanded_kbps = 0.0;

  bool accepting() const { return served < capacity; }
};

}  // namespace cloudfog::core
