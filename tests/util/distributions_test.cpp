#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace cloudfog::util {
namespace {

TEST(Pareto, SamplesAboveScale) {
  Rng rng(1);
  const ParetoDistribution d(5.0, 2.0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(d.sample(rng), 5.0);
  }
}

TEST(Pareto, MeanMatchesTheory) {
  // mean = alpha * x_m / (alpha - 1) = 2*5/1 = 10 for alpha=2, x_m=5.
  Rng rng(2);
  const ParetoDistribution d(5.0, 2.0);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), 10.0, 0.5);
}

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(ParetoDistribution(0.0, 1.0), ConfigError);
  EXPECT_THROW(ParetoDistribution(1.0, 0.0), ConfigError);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  Rng rng(3);
  const BoundedParetoDistribution d(4.0, 40.0, 2.0);
  for (int i = 0; i < 10000; ++i) {
    const double v = d.sample(rng);
    ASSERT_GE(v, 4.0);
    ASSERT_LE(v, 40.0);
  }
}

TEST(BoundedPareto, SkewsTowardLowerBound) {
  Rng rng(4);
  const BoundedParetoDistribution d(4.0, 40.0, 2.0);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) < 8.0) ++low;
  }
  // For the truncated Pareto most of the mass sits near the lower bound.
  EXPECT_GT(low, n / 2);
}

TEST(BoundedPareto, RejectsBadBounds) {
  EXPECT_THROW(BoundedParetoDistribution(0.0, 10.0, 1.0), ConfigError);
  EXPECT_THROW(BoundedParetoDistribution(5.0, 5.0, 1.0), ConfigError);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfDistribution d(100, 1.0);
  double acc = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) acc += d.pmf(k);
  EXPECT_NEAR(acc, 1.0, 1e-12);
}

TEST(Zipf, RankOneIsMostLikely) {
  const ZipfDistribution d(10, 1.0);
  for (std::size_t k = 2; k <= 10; ++k) {
    EXPECT_GT(d.pmf(1), d.pmf(k));
  }
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  Rng rng(5);
  const ZipfDistribution d(5, 1.0);
  std::vector<int> counts(6, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, d.pmf(k), 0.01);
  }
}

TEST(Zipf, HarmonicWeightsMatchPaperEq16) {
  // P_j = (1/j) / sum(1/n) for s = 1 — exactly Eq. 16.
  const ZipfDistribution d(4, 1.0);
  const double h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  EXPECT_NEAR(d.pmf(1), 1.0 / h, 1e-12);
  EXPECT_NEAR(d.pmf(3), (1.0 / 3.0) / h, 1e-12);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfDistribution(0, 1.0), ConfigError); }

TEST(Poisson, ZeroMeanGivesZero) {
  Rng rng(6);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0);
}

TEST(Poisson, SmallMeanMatches) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(sample_poisson(rng, 3.5));
  EXPECT_NEAR(stats.mean(), 3.5, 0.1);
  EXPECT_NEAR(stats.variance(), 3.5, 0.2);
}

TEST(Poisson, LargeMeanUsesNormalApproximation) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_poisson(rng, 300.0));
  EXPECT_NEAR(stats.mean(), 300.0, 2.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(300.0), 1.0);
}

TEST(Poisson, RejectsNegativeMean) {
  Rng rng(9);
  EXPECT_THROW(sample_poisson(rng, -1.0), ConfigError);
}

TEST(Exponential, MeanIsInverseRate) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(sample_exponential(rng, 4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Exponential, AlwaysPositive) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(sample_exponential(rng, 1.0), 0.0);
  }
}

TEST(Exponential, RejectsNonPositiveRate) {
  Rng rng(12);
  EXPECT_THROW(sample_exponential(rng, 0.0), ConfigError);
}

TEST(StandardNormal, MomentsMatch) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(sample_standard_normal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Lognormal, MedianIsExpMu) {
  Rng rng(14);
  SampleSet samples;
  for (int i = 0; i < 50000; ++i) samples.add(sample_lognormal(rng, 2.0, 0.5));
  EXPECT_NEAR(samples.median(), std::exp(2.0), 0.2);
}

TEST(LognormalMixture, SamplesFromAllComponents) {
  Rng rng(15);
  // Two well-separated components: medians ~e^0=1 and ~e^5≈148.
  const LognormalMixture mix({{0.5, 0.0, 0.1}, {0.5, 5.0, 0.1}});
  int low = 0;
  int high = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = mix.sample(rng);
    if (v < 10.0) ++low;
    if (v > 50.0) ++high;
  }
  EXPECT_NEAR(low, 5000, 300);
  EXPECT_NEAR(high, 5000, 300);
}

TEST(LognormalMixture, RejectsEmptyAndBadWeights) {
  EXPECT_THROW(LognormalMixture({}), ConfigError);
  EXPECT_THROW(LognormalMixture({{0.0, 1.0, 1.0}}), ConfigError);
}

TEST(Empirical, OnlyProducesListedValues) {
  Rng rng(16);
  const EmpiricalDistribution d({{1.5, 1.0}, {3.0, 2.0}, {6.0, 1.0}});
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    ASSERT_TRUE(v == 1.5 || v == 3.0 || v == 6.0);
  }
}

TEST(Empirical, FrequenciesFollowWeights) {
  Rng rng(17);
  const EmpiricalDistribution d({{1.0, 1.0}, {2.0, 3.0}});
  int twos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) == 2.0) ++twos;
  }
  EXPECT_NEAR(static_cast<double>(twos) / n, 0.75, 0.01);
}

TEST(Empirical, MeanIsWeighted) {
  const EmpiricalDistribution d({{1.0, 1.0}, {3.0, 1.0}});
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(PowerLawDegrees, WithinBoundsAndSkewed) {
  Rng rng(18);
  const auto degrees = sample_power_law_degrees(rng, 10000, 1.5, 1, 100);
  int low = 0;
  for (int d : degrees) {
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 100);
    if (d <= 3) ++low;
  }
  // Power law with skew 1.5: the bulk of nodes have few friends.
  EXPECT_GT(low, 6000);
}

TEST(PowerLawDegrees, DegenerateRange) {
  Rng rng(19);
  const auto degrees = sample_power_law_degrees(rng, 10, 1.5, 4, 4);
  for (int d : degrees) EXPECT_EQ(d, 4);
}

}  // namespace
}  // namespace cloudfog::util
