#include "game/quality_ladder.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::game {

QualityLadder QualityLadder::paper_default() {
  return QualityLadder({
      QualityLevel{1, 288, 260, 300.0, 30.0, 0.6},
      QualityLevel{2, 384, 260, 500.0, 50.0, 0.7},
      QualityLevel{3, 640, 480, 800.0, 70.0, 0.8},
      QualityLevel{4, 720, 486, 1200.0, 90.0, 0.9},
      QualityLevel{5, 1280, 720, 1800.0, 110.0, 1.0},
  });
}

QualityLadder::QualityLadder(std::vector<QualityLevel> levels) : levels_(std::move(levels)) {
  CLOUDFOG_REQUIRE(!levels_.empty(), "ladder must have at least one level");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    CLOUDFOG_REQUIRE(levels_[i].bitrate_kbps > 0.0, "bitrate must be positive");
    CLOUDFOG_REQUIRE(levels_[i].latency_tolerance > 0.0 && levels_[i].latency_tolerance <= 1.0,
                     "tolerance must be in (0,1]");
    if (i > 0) {
      CLOUDFOG_REQUIRE(levels_[i].level > levels_[i - 1].level, "levels must ascend");
      CLOUDFOG_REQUIRE(levels_[i].bitrate_kbps > levels_[i - 1].bitrate_kbps,
                       "bitrate must ascend with level");
    }
  }
}

const QualityLevel& QualityLadder::at_level(int level) const {
  const auto it = std::find_if(levels_.begin(), levels_.end(),
                               [level](const QualityLevel& q) { return q.level == level; });
  CLOUDFOG_REQUIRE(it != levels_.end(), "no such quality level");
  return *it;
}

const QualityLevel& QualityLadder::level_for_latency(double latency_ms) const {
  const QualityLevel* best = nullptr;
  for (const auto& q : levels_) {
    if (q.latency_requirement_ms <= latency_ms) best = &q;
  }
  return best != nullptr ? *best : levels_.front();
}

const QualityLevel& QualityLadder::step_up(int level) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].level == level) {
      return i + 1 < levels_.size() ? levels_[i + 1] : levels_[i];
    }
  }
  CLOUDFOG_REQUIRE(false, "no such quality level");
  return levels_.front();  // unreachable
}

const QualityLevel& QualityLadder::step_down(int level) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].level == level) {
      return i > 0 ? levels_[i - 1] : levels_[i];
    }
  }
  CLOUDFOG_REQUIRE(false, "no such quality level");
  return levels_.front();  // unreachable
}

double QualityLadder::adjust_up_factor() const {
  double beta = 0.0;
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    beta = std::max(beta, (levels_[i + 1].bitrate_kbps - levels_[i].bitrate_kbps) /
                              levels_[i].bitrate_kbps);
  }
  return beta;
}

double frame_bits(double bitrate_kbps) { return bitrate_kbps * 1000.0 / kFramesPerSecond; }

}  // namespace cloudfog::game
