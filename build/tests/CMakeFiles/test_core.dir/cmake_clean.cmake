file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/cloud_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cloud_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/fog_manager_test.cpp.o"
  "CMakeFiles/test_core.dir/core/fog_manager_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/provisioner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/provisioner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/qos_engine_test.cpp.o"
  "CMakeFiles/test_core.dir/core/qos_engine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/system_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/system_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/system_test.cpp.o"
  "CMakeFiles/test_core.dir/core/system_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/testbed_test.cpp.o"
  "CMakeFiles/test_core.dir/core/testbed_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
