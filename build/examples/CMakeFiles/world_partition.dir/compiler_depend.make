# Empty compiler generated dependencies file for world_partition.
# This may be replaced when dependencies are built.
