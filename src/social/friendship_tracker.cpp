#include "social/friendship_tracker.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::social {

FriendshipTracker::FriendshipTracker(std::size_t player_count, int coplay_threshold,
                                     int window_days)
    : player_count_(player_count),
      coplay_threshold_(coplay_threshold),
      window_days_(window_days) {
  CLOUDFOG_REQUIRE(coplay_threshold >= 0, "co-play threshold must be non-negative");
  CLOUDFOG_REQUIRE(window_days > 0, "window must be at least one day");
}

std::uint64_t FriendshipTracker::pair_key(PlayerId a, PlayerId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (lo << 32) | hi;
}

void FriendshipTracker::record_coplay(PlayerId a, PlayerId b, int day) {
  CLOUDFOG_REQUIRE(a < player_count_ && b < player_count_, "player id out of range");
  CLOUDFOG_REQUIRE(day >= 1, "days are 1-based");
  if (a == b) return;
  ++counts_[pair_key(a, b)][day];
}

void FriendshipTracker::expire(int current_day) {
  const int oldest_kept = current_day - window_days_ + 1;
  // NOLINTNEXTLINE(cloudfog-unordered-iter): erase-only pass, order-insensitive
  for (auto it = counts_.begin(); it != counts_.end();) {
    auto& days = it->second;
    for (auto dit = days.begin(); dit != days.end();) {
      if (dit->first < oldest_kept) {
        dit = days.erase(dit);
      } else {
        ++dit;
      }
    }
    if (days.empty()) {
      it = counts_.erase(it);
    } else {
      ++it;
    }
  }
}

int FriendshipTracker::coplay_count(PlayerId a, PlayerId b) const {
  const auto it = counts_.find(pair_key(a, b));
  if (it == counts_.end()) return 0;
  int total = 0;
  for (const auto& [day, count] : it->second) total += count;
  return total;
}

bool FriendshipTracker::implicit_friends(PlayerId a, PlayerId b) const {
  return coplay_count(a, b) > coplay_threshold_;
}

std::vector<std::pair<PlayerId, PlayerId>> FriendshipTracker::implicit_friend_pairs() const {
  std::vector<std::pair<PlayerId, PlayerId>> out;
  // NOLINTNEXTLINE(cloudfog-unordered-iter): per-key int totals; result sorted below
  for (const auto& [key, days] : counts_) {
    int total = 0;
    for (const auto& [day, count] : days) total += count;
    if (total > coplay_threshold_) {
      out.emplace_back(static_cast<PlayerId>(key >> 32),
                       static_cast<PlayerId>(key & 0xffffffffULL));
    }
  }
  // Bucket order is implementation-defined; callers must see a stable order.
  std::sort(out.begin(), out.end());
  return out;
}

SocialGraph FriendshipTracker::merged_with(const SocialGraph& base) const {
  CLOUDFOG_REQUIRE(base.player_count() == player_count_, "graph size mismatch");
  SocialGraph merged(player_count_);
  for (const auto& [a, b] : base.edges()) merged.add_friendship(a, b);
  for (const auto& [a, b] : implicit_friend_pairs()) merged.add_friendship(a, b);
  return merged;
}

}  // namespace cloudfog::social
