// Live view of the currently-active faults.
//
// The injector owns the schedule; this struct is the cheap, queryable
// projection the data path reads: "how slow is node i right now", "are
// regions a and b partitioned", "what impairments does the update channel
// carry". Crash faults are NOT mirrored here — a crash flips the
// simulation's own SupernodeState::failed flag through the apply hook, so
// there is exactly one source of truth for liveness.
//
// The injector rebuilds this projection from its active-fault list on
// every apply/clear, so overlapping faults of the same kind compose
// correctly (two slow faults add; clearing one leaves the other).
#pragma once

#include <cstddef>
#include <vector>

namespace cloudfog::fault {

/// Aggregate impairment of the cloud→supernode update channel.
struct ChannelImpairments {
  double update_loss = 0.0;      ///< fraction of update packets dropped
  double update_delay_ms = 0.0;  ///< extra one-way delay on updates
};

class FaultState {
 public:
  void resize(std::size_t supernodes, std::size_t regions) {
    slow_ms_.assign(supernodes, 0.0);
    blackhole_.assign(supernodes, 0);
    supernode_region_.assign(supernodes, 0);
    partitioned_.assign(regions * regions, 0);
    regions_ = regions;
    channel_ = {};
    any_active_ = false;
  }

  void clear_faults() {
    std::fill(slow_ms_.begin(), slow_ms_.end(), 0.0);
    std::fill(blackhole_.begin(), blackhole_.end(), 0);
    std::fill(partitioned_.begin(), partitioned_.end(), 0);
    channel_ = {};
    any_active_ = false;
  }

  /// Fast-path gate: false means every query below is trivially zero.
  bool any_active() const { return any_active_; }
  void set_any_active(bool on) { any_active_ = on; }

  // -- supernode-local faults -------------------------------------------
  double slow_ms(std::size_t supernode) const {
    return supernode < slow_ms_.size() ? slow_ms_[supernode] : 0.0;
  }
  void add_slow_ms(std::size_t supernode, double ms) {
    if (supernode < slow_ms_.size()) slow_ms_[supernode] += ms;
  }

  bool blackholed(std::size_t supernode) const {
    return supernode < blackhole_.size() && blackhole_[supernode] != 0;
  }
  void add_blackhole(std::size_t supernode) {
    if (supernode < blackhole_.size()) ++blackhole_[supernode];
  }

  // -- region topology and partitions -----------------------------------
  std::size_t region_count() const { return regions_; }
  void set_supernode_region(std::size_t supernode, std::size_t region) {
    if (supernode < supernode_region_.size()) supernode_region_[supernode] = region;
  }
  std::size_t supernode_region(std::size_t supernode) const {
    return supernode < supernode_region_.size() ? supernode_region_[supernode] : 0;
  }

  void add_partition(std::size_t region_a, std::size_t region_b) {
    if (region_a < regions_ && region_b < regions_ && region_a != region_b) {
      ++partitioned_[region_a * regions_ + region_b];
      ++partitioned_[region_b * regions_ + region_a];
    }
  }
  bool regions_partitioned(std::size_t region_a, std::size_t region_b) const {
    if (region_a >= regions_ || region_b >= regions_) return false;
    return partitioned_[region_a * regions_ + region_b] != 0;
  }
  /// Partition check between a player's region and a supernode's region.
  bool partitioned_from_supernode(std::size_t player_region,
                                  std::size_t supernode) const {
    return regions_partitioned(player_region, supernode_region(supernode));
  }

  // -- update channel ----------------------------------------------------
  const ChannelImpairments& channel() const { return channel_; }
  void add_channel_loss(double fraction) {
    channel_.update_loss = 1.0 - (1.0 - channel_.update_loss) * (1.0 - fraction);
  }
  void add_channel_delay(double ms) { channel_.update_delay_ms += ms; }

 private:
  std::vector<double> slow_ms_;
  std::vector<int> blackhole_;
  std::vector<std::size_t> supernode_region_;
  std::vector<int> partitioned_;  ///< regions_ × regions_ overlap counts
  std::size_t regions_ = 0;
  ChannelImpairments channel_;
  bool any_active_ = false;
};

}  // namespace cloudfog::fault
