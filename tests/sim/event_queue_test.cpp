#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace cloudfog::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PopReportsTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  const auto ev = q.pop();
  EXPECT_DOUBLE_EQ(ev.time, 4.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, CancelledEntriesSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  const EventId dead = q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.cancel(dead);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RejectsNegativeTimeAndNullCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), cloudfog::ConfigError);
  EXPECT_THROW(q.schedule(1.0, EventQueue::Callback{}), cloudfog::ConfigError);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), cloudfog::ConfigError);
  EXPECT_THROW(q.next_time(), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::sim
