// Reproduces Fig. 16 and the §4.4 analysis: supernode contributor
// economics (rewards / electricity costs / profits) and provider savings
// versus renting Amazon EC2 GPU instances.
#include <iostream>

#include "bench_common.hpp"
#include "economics/cost_model.hpp"
#include "economics/incentives.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  bench::scale_from_args(argc, argv);  // honours --csv

  bench::print(core::supernode_economics({4, 8, 12, 16, 20, 24}));
  bench::print(core::provider_savings({100, 200, 300, 400, 500, 600, 700, 800}));

  // §4.4 headline numbers.
  const economics::CostModel model;
  util::Table summary("§4.4 — headline economics");
  summary.set_header({"quantity", "value"});
  summary.add_row({"hourly electricity cost of one supernode (USD)",
                   util::format_double(model.running_cost_usd(1.0), 4)});
  summary.add_row({"annual reward bill, 300 supernodes @ 24 h (USD)",
                   util::format_double(model.annual_fleet_reward_usd(300, 24.0), 0)});
  summary.add_row({"medium datacenter build cost (USD)",
                   util::format_double(model.config().datacenter_build_usd, 0)});
  bench::print(summary);
  return 0;
}
