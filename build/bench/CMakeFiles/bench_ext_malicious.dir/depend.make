# Empty dependencies file for bench_ext_malicious.
# This may be replaced when dependencies are built.
