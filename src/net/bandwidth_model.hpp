// Access-bandwidth model.
//
// §4.1: download bandwidth follows the measurement statistics of [42,43]
// (residential broadband tiers); "a node's upload bandwidth capacity was
// set to 1/3 of its download bandwidth" [44,45]; supernode capacities
// (max players a supernode can support) follow a Pareto distribution with
// shape α = 2 [46,47].
#pragma once

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace cloudfog::net {

struct NodeBandwidth {
  double download_mbps = 0.0;
  double upload_mbps = 0.0;
};

struct BandwidthModelConfig {
  /// Upload = download / upload_divisor (asymmetric residential links).
  double upload_divisor = 3.0;
  /// Supernode capacity in simultaneously supported players: bounded
  /// Pareto [min, max] with shape alpha.
  double supernode_capacity_min = 4.0;
  double supernode_capacity_max = 40.0;
  double supernode_capacity_alpha = 2.0;
};

class BandwidthModel {
 public:
  explicit BandwidthModel(BandwidthModelConfig cfg = {});

  const BandwidthModelConfig& config() const { return cfg_; }

  /// Draws one node's (download, upload) pair from the broadband tiers.
  NodeBandwidth sample_node_bandwidth(util::Rng& rng) const;

  /// Draws a supernode's capacity: maximum simultaneous players.
  int sample_supernode_capacity(util::Rng& rng) const;

  /// Mean node download bandwidth under the tier distribution (Mbps).
  double mean_download_mbps() const;

 private:
  BandwidthModelConfig cfg_;
  util::EmpiricalDistribution download_tiers_;
  util::BoundedParetoDistribution capacity_dist_;
};

}  // namespace cloudfog::net
