// Regression for the fallback-hysteresis contract under combined stress
// (scenario satellite): a flash crowd is mid-plateau when a regional outage
// takes down most of the local fleet. Displaced and newly arriving sessions
// degrade to cloud fallback; once the outage lifts, the hourly §3.2.2 retry
// wants them back on fog. The FallbackGovernor must hold every return until
// (a) the session has sat in fallback for the minimum residency and (b) the
// fleet has been stable for the stability window — otherwise sessions flap
// fog↔cloud, paying a migration interruption each bounce.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"
#include "sim/cycle_driver.hpp"

namespace cloudfog::core {
namespace {

TEST(FallbackOscillation, GovernorHoldsReturnsThroughTheStabilityWindow) {
  const Testbed testbed(TestbedConfig::peersim(2000), 42);

  SystemConfig cfg;
  cfg.architecture = Architecture::kCloudFog;
  cfg.strategies.reputation = true;
  cfg.strategies.rate_adaptation = true;
  cfg.supernode_count = std::min<std::size_t>(150, testbed.supernode_capable().size());
  cfg.workload = WorkloadMode::kArrivalRates;
  cfg.arrivals = ArrivalWorkload{12.0, 12.0};
  cfg.fog.selection.deadline_budget_ms = 700.0;
  cfg.fallback.min_residency_s = 3600.0;
  cfg.fallback.stability_window_s = 7200.0;

  // Regional outage: 70 % of the supernodes in the box crash at hour 30
  // for 4 hours. The governor sees the crashes and the recoveries as fleet
  // changes, so the stability window restarts when the outage lifts.
  const int cycles = 3;
  const int outage_start_hour = 30;
  const int outage_hours = 4;
  const double at_s = outage_start_hour * 3600.0 + 1.0;
  const double outage_end_s = at_s + outage_hours * 3600.0;

  const auto fleet = testbed.make_supernode_fleet(cfg.supernode_count);
  std::vector<fault::NodePosition> positions;
  for (const auto& sn : fleet) {
    positions.push_back(
        fault::NodePosition{sn.endpoint.position.x_km, sn.endpoint.position.y_km});
  }
  const fault::GeoBox box{0.0, 0.0, 2000.0, 1400.0};
  cfg.faults.enabled = true;
  cfg.faults.horizon_s = cycles * 24.0 * 3600.0;
  cfg.faults.extra_specs = fault::regional_outage_specs(
      positions, box, at_s, outage_hours * 3600.0, 0.7, 0.25, 120.0, 42);
  ASSERT_FALSE(cfg.faults.extra_specs.empty());

  System sys(testbed, cfg, 42);

  // Flash crowd: triple the arrival rate through the outage window, so the
  // fleet is contended exactly when it shrinks.
  const int crowd_start = 28;
  const int crowd_end = 38;

  const sim::CycleConfig cadence;
  std::uint64_t prev_fallbacks = 0;
  std::uint64_t prev_returns = 0;
  double first_fallback_end_s = -1.0;
  double first_return_end_s = -1.0;

  // The governor blocks returns until every fleet change is a full
  // stability window in the past. This run's fleet changes are the crash
  // burst at the outage start and the recoveries when it lifts, so any
  // subcycle lying entirely inside one of these windows must record zero
  // fog returns — a return there would be a fog↔cloud flap faster than
  // the hysteresis allows.
  const auto inside_blocked_window = [&](double start_s, double end_s) {
    const double w = cfg.fallback.stability_window_s;
    return (start_s >= at_s && end_s <= at_s + w) ||
           (start_s >= outage_end_s && end_s <= outage_end_s + w);
  };

  for (int day = 1; day <= cycles; ++day) {
    sys.begin_cycle(day);
    for (int sub = 1; sub <= cadence.subcycles_per_cycle; ++sub) {
      const int hour = (day - 1) * cadence.subcycles_per_cycle + (sub - 1);
      sys.set_arrival_rate_override(hour >= crowd_start && hour < crowd_end
                                        ? std::optional<double>(36.0)
                                        : std::nullopt);
      const bool peak =
          sub >= cadence.peak_start_subcycle && sub <= cadence.peak_end_subcycle;
      sys.run_subcycle(day, sub, /*warmup=*/false, peak);

      const RunMetrics& m = sys.metrics();
      const double start_s = hour * 3600.0;
      const double end_s = (hour + 1) * 3600.0;
      if (first_fallback_end_s < 0.0 && m.fallbacks > prev_fallbacks) {
        first_fallback_end_s = end_s;
      }
      if (first_return_end_s < 0.0 && m.fog_returns > prev_returns) {
        first_return_end_s = end_s;
      }
      if (inside_blocked_window(start_s, end_s)) {
        EXPECT_EQ(m.fog_returns, prev_returns)
            << "return inside a stability window, hour " << hour;
      }
      prev_fallbacks = m.fallbacks;
      prev_returns = m.fog_returns;
    }
    sys.end_cycle(day);
  }
  sys.drain_sessions();

  const RunMetrics& m = sys.metrics();
  // The outage actually displaced sessions into cloud fallback...
  EXPECT_GT(m.fallbacks, 0u);
  EXPECT_GT(m.sessions_interrupted, 0u);
  ASSERT_GT(first_fallback_end_s, 0.0);
  // ...and the hourly retry did recover them onto fog eventually.
  EXPECT_GT(m.fog_returns, 0u);
  ASSERT_GT(first_return_end_s, 0.0);

  // Aggregate residency bound: fallbacks start no earlier than the crash
  // burst and returns no earlier than crash + stability, so the observed
  // end-stamp gap can never undercut the minimum residency.
  EXPECT_GE(first_return_end_s - first_fallback_end_s, cfg.fallback.min_residency_s);

  // Flap bound: a session cannot return more often than it fell back.
  EXPECT_LE(m.fog_returns, m.fallbacks);
}

TEST(FallbackOscillation, NoFaultsMeansNoFallbackTraffic) {
  // Control: the same crowd without the outage never touches the fallback
  // path, so any flapping in the test above is fault-driven by construction.
  const Testbed testbed(TestbedConfig::peersim(2000), 42);
  SystemConfig cfg;
  cfg.architecture = Architecture::kCloudFog;
  cfg.strategies.reputation = true;
  cfg.strategies.rate_adaptation = true;
  cfg.supernode_count = std::min<std::size_t>(150, testbed.supernode_capable().size());
  cfg.workload = WorkloadMode::kArrivalRates;
  cfg.arrivals = ArrivalWorkload{12.0, 12.0};

  System sys(testbed, cfg, 42);
  const sim::CycleConfig cadence;
  for (int day = 1; day <= 2; ++day) {
    sys.begin_cycle(day);
    for (int sub = 1; sub <= cadence.subcycles_per_cycle; ++sub) {
      const bool peak =
          sub >= cadence.peak_start_subcycle && sub <= cadence.peak_end_subcycle;
      sys.run_subcycle(day, sub, /*warmup=*/false, peak);
    }
    sys.end_cycle(day);
  }
  sys.drain_sessions();
  EXPECT_EQ(sys.metrics().fallbacks, 0u);
  EXPECT_EQ(sys.metrics().fog_returns, 0u);
  EXPECT_EQ(sys.fallback_governor().entries(), 0u);
}

}  // namespace
}  // namespace cloudfog::core
