// Receiver-driven encoding-rate adaptation (paper §3.3, Eqs. 8–12).
//
// The receiver tracks its buffer occupancy in segments,
//   r = s(t_k) / τ                                   (Eq. 9)
// and asks the sender to change the encoding bitrate when
//   r > (1 + β) / ρ   → one quality level up          (Eq. 10, ρ-scaled)
//   r < θ / ρ         → one quality level down        (Eq. 12, ρ-scaled)
// where β = max_i (b_{i+1} − b_i)/b_i (Eq. 11), θ is the adjust-down
// threshold, and ρ ∈ (0,1] is the game's latency-tolerance degree:
// latency-sensitive games (small ρ) get higher thresholds, i.e. both a
// bigger safety buffer before stepping up and an earlier step down.
// To suppress oscillation, an adjustment fires only after the condition
// holds for `consecutive_required` successive estimates.
#pragma once

#include "game/game_catalog.hpp"
#include "util/rng.hpp"
#include "video/playback_buffer.hpp"
#include "video/segment.hpp"

namespace cloudfog::video {

struct RateAdapterConfig {
  double theta = 0.5;            ///< θ — adjust-down threshold (θ ≤ 1)
  int consecutive_required = 3;  ///< estimates that must agree before acting
  /// Up-switches use a longer confirmation window than down-switches:
  /// §3.3's anti-fluctuation rule, asymmetric because a premature step up
  /// on a shared bottleneck re-congests it for every session at once.
  int consecutive_up_required = 8;
  /// When the up condition is confirmed, the switch fires only with this
  /// probability (the streak resets otherwise). Receivers sharing one
  /// bottleneck all see surplus at the same moment; probabilistic
  /// up-stepping staggers them so one probes the headroom at a time
  /// instead of the whole group re-congesting the link in lockstep.
  double up_probability = 0.25;
  /// A delivery rate below this fraction of the playback rate counts as a
  /// congestion (adjust-down) signal even while the buffer is still above
  /// θ — Eq. 12's proactive response to elongated transmission times.
  double deficit_fraction = 0.98;
  double segment_duration_s = 1.0;
  double buffer_capacity_segments = 8.0;
  bool enabled = true;  ///< players may disable adaptation (§3.3)
};

enum class RateDecision { kHold, kUp, kDown };

/// Interns the rate-switch metric handles on the calling thread. The QoS
/// engine calls this before spawning parallel shards so no worker is the
/// first to touch the registry (registration mutates shared state; counting
/// through a capture does not).
void warm_rate_adapter_obs();

class RateAdapter {
 public:
  /// Streams `game` starting at its default quality level; the adapter
  /// never exceeds that level (it is the game's latency budget). `rng`
  /// drives the probabilistic up-stepping; pass per-session streams for
  /// desynchronization.
  RateAdapter(const game::GameCatalog& catalog, game::GameId game, RateAdapterConfig cfg,
              util::Rng rng = util::Rng(0x5eed));

  const game::QualityLevel& current_level() const { return *level_; }
  double current_bitrate_kbps() const { return level_->bitrate_kbps; }
  double buffered_segments() const;
  const RateAdapterConfig& config() const { return cfg_; }

  /// Up/down trigger thresholds after ρ scaling.
  double up_threshold() const;
  double down_threshold() const;

  struct StepOutcome {
    RateDecision decision = RateDecision::kHold;
    double buffered_segments = 0.0;
    double starved_bits = 0.0;
  };

  /// Advances one estimation interval of `dt` seconds during which the
  /// path delivered `download_bps`. Playback consumes at the current
  /// encoding bitrate. May change the current level.
  StepOutcome step(double dt, double download_bps);

 private:
  void switch_level(const game::QualityLevel& next);

  const game::GameCatalog& catalog_;
  game::GameId game_;
  RateAdapterConfig cfg_;
  const game::QualityLevel* level_;  // points into the catalog's ladder
  int max_level_;                    // the game's default level
  double rho_;
  double beta_;
  PlaybackBuffer buffer_;
  util::Rng rng_;
  int up_streak_ = 0;
  int down_streak_ = 0;
};

}  // namespace cloudfog::video
