#include "video/segment.hpp"

#include "util/require.hpp"

namespace cloudfog::video {

double segment_bits(const SegmentSpec& spec) {
  CLOUDFOG_REQUIRE(spec.duration_s > 0.0, "segment duration must be positive");
  CLOUDFOG_REQUIRE(spec.bitrate_kbps > 0.0, "bitrate must be positive");
  return spec.bitrate_kbps * 1000.0 * spec.duration_s;
}

double segments_from_bits(double bits, const SegmentSpec& spec) {
  CLOUDFOG_REQUIRE(bits >= 0.0, "negative buffered bits");
  return bits / segment_bits(spec);
}

}  // namespace cloudfog::video
