file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_malicious.dir/ext_malicious.cpp.o"
  "CMakeFiles/bench_ext_malicious.dir/ext_malicious.cpp.o.d"
  "bench_ext_malicious"
  "bench_ext_malicious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_malicious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
