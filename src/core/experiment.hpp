// Figure-level experiment runners. Each function regenerates one family
// of the paper's evaluation figures as a printable table: the x-axis
// sweep as rows, the experimental arms/series as columns. The bench/
// binaries are thin wrappers around these.
#pragma once

#include <cstdint>
#include <vector>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"
#include "util/table.hpp"

namespace cloudfog::core {

/// How long the dynamic experiments run. The paper uses 28 cycles with 21
/// warm-up; the default here is proportionally shorter so the full bench
/// suite completes in minutes — pass paper() to match the paper exactly.
struct ExperimentScale {
  int cycles = 6;
  int warmup = 3;
  std::uint64_t seed = 42;

  static ExperimentScale quick() { return {3, 1, 42}; }
  static ExperimentScale paper() { return {28, 21, 42}; }
  /// Long enough for the SARIMA season (one week of 4-hour windows) to be
  /// active in the measured cycles — used by the provisioning figures.
  static ExperimentScale provisioning() { return {10, 8, 42}; }
};

sim::CycleConfig to_cycle_config(const ExperimentScale& scale);

/// Fraction of `testbed` players within `req_rtt_ms` of any point.
double coverage_of(const Testbed& testbed, const std::vector<net::Endpoint>& points,
                   double req_rtt_ms);

// ---- Fig. 4(a) / 5(a): user coverage vs number of datacenters ----------
util::Table coverage_vs_datacenters(TestbedProfile profile,
                                    const std::vector<std::size_t>& dc_counts,
                                    const std::vector<double>& latency_reqs_ms,
                                    std::uint64_t seed);

// ---- Fig. 4(b) / 5(b): user coverage vs number of supernodes -----------
util::Table coverage_vs_supernodes(TestbedProfile profile,
                                   const std::vector<std::size_t>& sn_counts,
                                   const std::vector<double>& latency_reqs_ms,
                                   std::uint64_t seed);

// ---- Figs. 6/7/8: population sweep over all arms ------------------------
struct PopulationSweepResult {
  util::Table bandwidth;   ///< Fig. 6 — cloud egress (Mbps)
  util::Table latency;     ///< Fig. 7 — avg response latency (ms)
  util::Table continuity;  ///< Fig. 8 — avg playback continuity
};
PopulationSweepResult population_sweep(TestbedProfile profile,
                                       const std::vector<std::size_t>& player_counts,
                                       const ExperimentScale& scale);

// ---- Fig. 9: setup/churn latencies --------------------------------------
/// (a) sweeps player counts (supernodes = 6 % of players, 100 failures);
/// (b) sweeps supernode counts at a fixed population (10 failures).
util::Table setup_latency_vs_players(TestbedProfile profile,
                                     const std::vector<std::size_t>& player_counts,
                                     const ExperimentScale& scale);
util::Table setup_latency_vs_supernodes(TestbedProfile profile,
                                        const std::vector<std::size_t>& sn_counts,
                                        const ExperimentScale& scale);

// ---- Fig. 10/11: strategy on/off vs supernode capacity ------------------
enum class SatisfactionStrategy { kReputation, kRateAdaptation };
util::Table satisfaction_sweep(TestbedProfile profile, SatisfactionStrategy strategy,
                               const std::vector<int>& supernode_capacities,
                               const ExperimentScale& scale);

// ---- Fig. 12: social server assignment vs servers per datacenter --------
util::Table server_assignment_sweep(TestbedProfile profile,
                                    const std::vector<int>& servers_per_dc,
                                    const ExperimentScale& scale);

// ---- Figs. 13/14/15: provisioning vs peak arrival rate ------------------
struct ProvisioningSweepResult {
  util::Table bandwidth;   ///< Fig. 13 — cloud egress (Mbps)
  util::Table latency;     ///< Fig. 14 — avg response latency (ms)
  util::Table continuity;  ///< Fig. 15 — avg continuity
};
ProvisioningSweepResult provisioning_sweep(TestbedProfile profile,
                                           const std::vector<double>& peak_rates_per_min,
                                           const ExperimentScale& scale);

// ---- Fig. 16: economics --------------------------------------------------
util::Table supernode_economics(const std::vector<double>& hours_per_day);
util::Table provider_savings(const std::vector<double>& renting_hours);

// ---- Ablation: Eq. 15's over-provisioning factor ε ------------------------
/// Eq. 15 sizes the fleet by raw seat count, but seats only help where
/// players are; ε absorbs that geographic imbalance. This sweep runs the
/// provisioning experiment at several ε values and reports QoS + deployed
/// fleet, exposing the under-provisioning cliff at small ε.
util::Table epsilon_ablation(TestbedProfile profile, const std::vector<double>& epsilons,
                             double peak_rate_per_min, const ExperimentScale& scale);

// ---- Resilience: supernode failure-rate sweep -----------------------------
/// Fails a fraction of the serving fleet every cycle (owners switching
/// machines off without notice — what the §3.1.1 contract is supposed to
/// prevent) and reports QoS plus migration statistics.
util::Table failure_rate_sweep(TestbedProfile profile,
                               const std::vector<double>& failure_fractions,
                               const ExperimentScale& scale);

// The mixed-fault chaos sweep moved to scenario::chaos_sweep_table
// (src/scenario/scenario_engine.hpp) — it is one scenario-engine run per
// intensity now.

// ---- Ablation: candidate-list size k --------------------------------------
/// §3.2.1's cloud returns "a number of supernodes"; this sweeps that
/// number. Too few candidates strand players on the cloud when local
/// seats are contended; more candidates cost probe traffic and join time.
util::Table candidate_count_ablation(TestbedProfile profile,
                                     const std::vector<std::size_t>& candidate_counts,
                                     const ExperimentScale& scale);

// ---- Extension (§3.6 future work): malicious supernodes ------------------
/// Sweeps the fraction of supernodes that deliberately delay video
/// packets, with and without reputation-based selection — the defence the
/// paper's security discussion anticipates.
util::Table malicious_supernode_sweep(TestbedProfile profile,
                                      const std::vector<double>& malicious_fractions,
                                      const ExperimentScale& scale);

}  // namespace cloudfog::core
