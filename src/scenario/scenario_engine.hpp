// ScenarioEngine: compiles a ScenarioSpec into one coordinated run.
//
// The engine owns the whole arc of a stress experiment: it builds the
// testbed (or borrows a shared one), translates the spec's phases into an
// hour-by-hour load timeline, compiles the outage phase into correlated
// FaultSpecs over the geo-selected supernode set, drives the System
// manually subcycle by subcycle, and finally evaluates the spec's
// AcceptanceEnvelope against the aggregated metrics. Everything is seeded
// from the spec, so the same spec + seed replays byte-identically — the
// determinism gate runs one bundled scenario twice and diffs the traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/testbed.hpp"
#include "scenario/envelope.hpp"
#include "scenario/scenario_spec.hpp"
#include "util/table.hpp"

namespace cloudfog::scenario {

struct ScenarioRunOptions {
  /// CI smoke mode: clamp the population and cycle count so the whole
  /// bundled suite finishes in seconds (warm-up shrinks to keep at least
  /// one measured cycle).
  bool smoke = false;
  std::size_t smoke_max_players = 4000;
  int smoke_max_cycles = 4;
  /// Forces the reputation strategy on/off regardless of the spec — the
  /// "does the defence actually carry the envelope?" ablation.
  std::optional<bool> reputation_override;
  std::optional<std::uint64_t> seed_override;
};

struct ScenarioOutcome {
  std::string name;
  std::string label;  ///< run-report label, "scenario.<name>"
  std::vector<ScenarioMetric> metrics;
  EnvelopeReport envelope;
  bool passed = false;  ///< envelope held (vacuously true when empty)

  double metric(std::string_view metric_name) const;  ///< 0 when absent
};

class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioSpec spec, ScenarioRunOptions opts = {});

  /// The spec actually run (after smoke clamping / overrides).
  const ScenarioSpec& spec() const { return spec_; }

  /// Runs the scenario. `shared_testbed` skips world construction when the
  /// caller sweeps several scenarios over one world; it must match the
  /// spec's player count.
  ScenarioOutcome run(const core::Testbed* shared_testbed = nullptr);

 private:
  ScenarioSpec spec_;
};

/// One row per bounded metric: value, bound, signed margin, verdict.
util::Table envelope_table(const ScenarioOutcome& outcome);

/// The legacy chaos sweep (bench/ext_chaos), rebuilt on the engine: one
/// chaos_scenario per rate over a shared testbed, same columns as the old
/// core::chaos_sweep table.
util::Table chaos_sweep_table(core::TestbedProfile profile,
                              const std::vector<double>& faults_per_hour,
                              const core::ExperimentScale& scale);

}  // namespace cloudfog::scenario
