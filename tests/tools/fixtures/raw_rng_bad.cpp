// Lint fixture: raw RNG engines and entropy sources outside src/util/rng.
// Exercised by tests/tools/lint_test.py; never compiled.
#include <cstdlib>
#include <random>

namespace fixture {

int draw_entropy() {
  std::random_device rd;                // BAD: real entropy
  std::mt19937 gen(rd());               // BAD: stdlib engine
  std::uniform_int_distribution<int> dist(0, 9);
  int x = dist(gen);
  x += std::rand();                     // BAD: libc global RNG
  std::default_random_engine fallback;  // BAD: stdlib engine
  (void)fallback;
  return x;
}

}  // namespace fixture
