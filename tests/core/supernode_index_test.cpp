// Grid-vs-linear candidate discovery equality (DESIGN.md §10): the
// geo-grid index must return element-for-element what the reference
// linear scan returns — same indices, same order — across randomized
// fleets, capacity/deployment churn and fleet swaps, because the two
// paths are interchangeable behind Cloud::candidate_supernodes and the
// determinism gate compares runs that may differ only in mode.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/cloud.hpp"
#include "core/testbed.hpp"
#include "net/ip_locator.hpp"
#include "util/rng.hpp"

namespace {

using namespace cloudfog;

class SupernodeIndexProperty : public ::testing::Test {
 protected:
  SupernodeIndexProperty() : testbed_(make_config(), 4242) {}

  static core::TestbedConfig make_config() {
    auto cfg = core::TestbedConfig::peersim(2000);
    cfg.supernode_capable_fraction = 1.0;  // allow fleets up to 2000
    return cfg;
  }

  core::Cloud make_cloud() const {
    return core::Cloud(testbed_.make_datacenters(), testbed_.latency(), net::IpLocator{});
  }

  /// Registers `fleet` and applies one round of random churn.
  void register_and_churn(core::Cloud& cloud, std::vector<core::SupernodeState>& fleet,
                          util::Rng& rng) const {
    for (auto& sn : fleet) cloud.register_supernode(sn, rng);
    churn(fleet, rng);
  }

  static void churn(std::vector<core::SupernodeState>& fleet, util::Rng& rng) {
    for (auto& sn : fleet) {
      sn.deployed = rng.chance(0.7);
      sn.failed = rng.chance(0.1);
      sn.served = static_cast<int>(rng.uniform_int(0, sn.capacity));
    }
  }

  /// Both modes over the same query; EXPECT element-for-element equality.
  void expect_modes_agree(core::Cloud& cloud, const std::vector<core::SupernodeState>& fleet,
                          const net::Endpoint& player, std::size_t count) {
    cloud.set_candidate_mode(core::CandidateMode::kGrid);
    cloud.candidate_supernodes_into(player, fleet, count, grid_);
    cloud.set_candidate_mode(core::CandidateMode::kLinear);
    cloud.candidate_supernodes_into(player, fleet, count, linear_);
    EXPECT_EQ(grid_, linear_);
  }

  core::Testbed testbed_;
  std::vector<std::size_t> grid_;
  std::vector<std::size_t> linear_;
};

TEST_F(SupernodeIndexProperty, MatchesLinearAcrossRandomFleetsAndChurn) {
  util::Rng rng(99);
  const std::size_t fleet_sizes[] = {1, 7, 60, 600, 2000};
  for (const std::size_t size : fleet_sizes) {
    core::Cloud cloud = make_cloud();
    auto fleet = testbed_.make_supernode_fleet(size);
    util::Rng reg_rng(rng.next_u64());
    register_and_churn(cloud, fleet, reg_rng);
    for (int round = 0; round < 4; ++round) {
      for (int q = 0; q < 32; ++q) {
        const auto& player = testbed_.players()[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(testbed_.players().size()) - 1))];
        const std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 13));
        expect_modes_agree(cloud, fleet, player.endpoint, count);
      }
      // Capacity / deployment / failure churn needs no index rebuild:
      // accepting() is read at query time.
      churn(fleet, rng);
    }
  }
}

TEST_F(SupernodeIndexProperty, EmptyFleetReturnsNothing) {
  core::Cloud cloud = make_cloud();
  std::vector<core::SupernodeState> fleet;
  expect_modes_agree(cloud, fleet, testbed_.players()[0].endpoint, 8);
  EXPECT_TRUE(grid_.empty());
}

TEST_F(SupernodeIndexProperty, FullySaturatedFleetReturnsNothing) {
  core::Cloud cloud = make_cloud();
  auto fleet = testbed_.make_supernode_fleet(300);
  util::Rng rng(5);
  for (auto& sn : fleet) cloud.register_supernode(sn, rng);
  for (auto& sn : fleet) {
    sn.deployed = true;
    sn.served = sn.capacity;  // no spare seats anywhere
  }
  expect_modes_agree(cloud, fleet, testbed_.players()[1].endpoint, 8);
  EXPECT_TRUE(grid_.empty());
}

TEST_F(SupernodeIndexProperty, CountBeyondAcceptingReturnsAllAccepting) {
  core::Cloud cloud = make_cloud();
  auto fleet = testbed_.make_supernode_fleet(50);
  util::Rng rng(6);
  for (auto& sn : fleet) cloud.register_supernode(sn, rng);
  std::size_t accepting = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].deployed = (i % 2) == 0;  // half the fleet accepts
    if (fleet[i].accepting()) ++accepting;
  }
  expect_modes_agree(cloud, fleet, testbed_.players()[2].endpoint, fleet.size() * 3);
  EXPECT_EQ(grid_.size(), accepting);
}

TEST_F(SupernodeIndexProperty, RebuildsWhenFleetIdentityChanges) {
  core::Cloud cloud = make_cloud();
  util::Rng rng(12);
  // Alternate between two different fleets behind the same cloud — the
  // index must track whichever vector was queried last.
  auto fleet_a = testbed_.make_supernode_fleet(200);
  register_and_churn(cloud, fleet_a, rng);
  auto fleet_b = testbed_.make_supernode_fleet(120);
  register_and_churn(cloud, fleet_b, rng);
  for (int round = 0; round < 3; ++round) {
    expect_modes_agree(cloud, fleet_a, testbed_.players()[round].endpoint, 8);
    expect_modes_agree(cloud, fleet_b, testbed_.players()[round + 8].endpoint, 8);
  }
  // Unregistering bumps the registry epoch; queries must still agree.
  cloud.unregister_supernode(fleet_b.back());
  fleet_b.pop_back();
  expect_modes_agree(cloud, fleet_b, testbed_.players()[30].endpoint, 8);
}

}  // namespace
