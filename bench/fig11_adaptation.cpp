// Reproduces Fig. 11: percentage of satisfied players with and without
// receiver-driven encoding-rate adaptation, as supernode capacity varies.
// Also prints the Table 2 quality ladder the adapter walks.
#include <iostream>

#include "bench_common.hpp"
#include "game/quality_ladder.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;

  // Table 2 — the parameter ladder itself.
  util::Table ladder_table("Table 2 — video parameters for different quality levels");
  ladder_table.set_header(
      {"quality level", "resolution", "bitrate (kbps)", "latency req (ms)", "tolerance"});
  const auto ladder = game::QualityLadder::paper_default();
  for (int level = ladder.max_level(); level >= ladder.min_level(); --level) {
    const auto& q = ladder.at_level(level);
    ladder_table.add_row({std::to_string(q.level),
                          std::to_string(q.width) + "x" + std::to_string(q.height),
                          util::format_double(q.bitrate_kbps, 0),
                          util::format_double(q.latency_requirement_ms, 0),
                          util::format_double(q.latency_tolerance, 1)});
  }
  bench::print(ladder_table);

  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::satisfaction_sweep(core::TestbedProfile::kPeerSim,
                                        core::SatisfactionStrategy::kRateAdaptation,
                                        {5, 10, 15, 20, 25}, scale));
  bench::print(core::satisfaction_sweep(core::TestbedProfile::kPlanetLab,
                                        core::SatisfactionStrategy::kRateAdaptation,
                                        {5, 10, 15, 20, 25}, scale));
  return 0;
}
