// bench_scenarios: runs declarative stress scenarios (data/scenarios/*.scn)
// through the scenario engine and enforces their acceptance envelopes.
//
//   bench_scenarios --all --smoke                   # CI suite, fast clamp
//   bench_scenarios --scenario flash-crowd          # one scenario, full size
//   bench_scenarios --all --smoke --no-reputation --expect-fail
//
// Exit status is the contract: 0 when every envelope held, 1 otherwise.
// --expect-fail inverts it (0 iff at least one envelope failed) — CI uses
// that to prove the adversary scenarios actually bite when the reputation
// defence is switched off. Observability flags (--trace, --report-json,
// --runstore, --threads…) work like every other bench binary; each
// scenario contributes one "scenario.<name>" run summary with
// envelope.pass / envelope.margin.* stats for trend tracking.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scenario/scenario_engine.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  (void)bench::scale_from_args(argc, argv);  // obs/threads flags; specs carry their own scale

  std::string dir = "data/scenarios";
  std::vector<std::string> picked;
  bool all = false;
  bool list = false;
  bool expect_fail = false;
  scenario::ScenarioRunOptions run_opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      picked.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      run_opts.smoke = true;
    } else if (std::strcmp(argv[i], "--no-reputation") == 0) {
      run_opts.reputation_override = false;
    } else if (std::strcmp(argv[i], "--expect-fail") == 0) {
      expect_fail = true;
    }
  }

  // Resolve the scenario files, sorted by name (directory iteration order
  // is filesystem-dependent; the report must not be).
  std::vector<std::filesystem::path> files;
  if (!picked.empty()) {
    for (const std::string& name : picked) {
      files.emplace_back(std::filesystem::path(dir) / (name + ".scn"));
    }
  } else {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".scn") files.push_back(entry.path());
    }
    if (ec) {
      std::cerr << "error: cannot list scenario directory " << dir << '\n';
      return 2;
    }
    std::sort(files.begin(), files.end());
    (void)all;  // running everything is also the default
  }
  if (files.empty()) {
    std::cerr << "error: no scenarios found in " << dir << '\n';
    return 2;
  }

  std::vector<scenario::ScenarioSpec> specs;
  for (const auto& file : files) {
    scenario::ScenarioSpec spec;
    std::string error;
    if (!scenario::load_scenario_file(file.string(), &spec, &error)) {
      std::cerr << "error: " << error << '\n';
      return 2;
    }
    specs.push_back(std::move(spec));
  }
  if (list) {
    for (const auto& spec : specs) {
      std::cout << spec.name << " — " << spec.description << '\n';
    }
    return 0;
  }

  util::Table summary("Scenario suite — acceptance envelopes");
  summary.set_header({"scenario", "verdict", "min margin", "continuity", "satisfied (%)",
                      "fallback (%)", "storm", "adversary served (%)"});
  int failed = 0;
  for (const auto& spec : specs) {
    scenario::ScenarioEngine engine(spec, run_opts);
    const scenario::ScenarioOutcome out = engine.run();
    if (!out.passed) ++failed;
    bench::print(scenario::envelope_table(out));
    summary.add_row({out.name, out.passed ? "pass" : "FAIL",
                     util::format_double(out.envelope.checks.empty() ? 0.0
                                                                     : out.envelope.min_margin,
                                         3),
                     util::format_double(out.metric("continuity"), 3),
                     util::format_double(out.metric("satisfied_pct"), 1),
                     util::format_double(out.metric("cloud_fallback_pct"), 2),
                     util::format_double(out.metric("migration_storm"), 0),
                     util::format_double(out.metric("adversary_served_pct"), 1)});
  }
  bench::print(summary);

  if (expect_fail) {
    if (failed == 0) {
      std::cerr << "error: expected at least one envelope failure, every scenario passed\n";
      return 1;
    }
    std::cout << failed << " scenario(s) failed as expected\n";
    return 0;
  }
  return failed == 0 ? 0 : 1;
}
