file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_overlay.dir/overlay/agents.cpp.o"
  "CMakeFiles/cloudfog_overlay.dir/overlay/agents.cpp.o.d"
  "CMakeFiles/cloudfog_overlay.dir/overlay/join_session.cpp.o"
  "CMakeFiles/cloudfog_overlay.dir/overlay/join_session.cpp.o.d"
  "CMakeFiles/cloudfog_overlay.dir/overlay/message.cpp.o"
  "CMakeFiles/cloudfog_overlay.dir/overlay/message.cpp.o.d"
  "CMakeFiles/cloudfog_overlay.dir/overlay/network.cpp.o"
  "CMakeFiles/cloudfog_overlay.dir/overlay/network.cpp.o.d"
  "CMakeFiles/cloudfog_overlay.dir/overlay/probe_monitor.cpp.o"
  "CMakeFiles/cloudfog_overlay.dir/overlay/probe_monitor.cpp.o.d"
  "CMakeFiles/cloudfog_overlay.dir/overlay/stream_channel.cpp.o"
  "CMakeFiles/cloudfog_overlay.dir/overlay/stream_channel.cpp.o.d"
  "libcloudfog_overlay.a"
  "libcloudfog_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
