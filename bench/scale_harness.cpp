// Tracked scale benchmark (DESIGN.md §10, scripts/bench.sh).
//
// Measures the two hot paths this repo optimises for scale-out, each
// against its in-binary reference implementation so the baseline and the
// optimised numbers come from the same build:
//
//   * candidate discovery — the §3.2 step-1 lookup, linear reference scan
//     (CandidateMode::kLinear) vs the geo-grid index (kGrid), swept over
//     fleet size;
//   * end-to-end System subcycle — population churn + demand tallies +
//     QoS pass on the CloudFog arm, reference engine (linear discovery,
//     memoization off, serial) vs the optimised engine (grid + memo) at
//     1 and N worker threads, at a fig7-style point and at the
//     10k-supernode scale-out point.
//
// Both modes produce byte-identical simulation results (the determinism
// gate enforces it); this binary only tracks their cost. Output is a JSON
// document (schema cloudfog.bench_scale/1) merged into BENCH_PR5.json by
// scripts/bench.sh.
//
// A third section measures trace-sink encoding cost (JSONL vs the binary
// format) per event and per byte, against a counting null stream, so the
// "binary tracing is >=3x cheaper" claim is tracked like every other
// headline number.
//
// Usage: bench_scale [--quick] [--threads <n>] [--json <path>]
//                    [--runstore <dir> --run-id <s> --git-sha <s>
//                     --config-hash <s>]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/testbed.hpp"
#include "obs/binary_trace.hpp"
#include "obs/obs.hpp"
#include "obs/run_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace cloudfog;

// Wall-clock timing only — this binary never feeds simulation state, so
// the determinism contract does not apply to it.
double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

struct DiscoveryPoint {
  std::size_t fleet = 0;
  double linear_us = 0.0;  ///< per query
  double grid_us = 0.0;
  double speedup = 0.0;
};

DiscoveryPoint bench_discovery(std::size_t fleet_size, int repeats) {
  auto cfg = core::TestbedConfig::peersim(std::max<std::size_t>(fleet_size, 2000));
  cfg.supernode_capable_fraction = 1.0;  // allow fleets beyond the 10 % pool
  const core::Testbed testbed(cfg, 42);
  core::Cloud cloud(testbed.make_datacenters(), testbed.latency(), net::IpLocator{});
  auto fleet = testbed.make_supernode_fleet(fleet_size);
  util::Rng reg_rng(7);
  for (auto& sn : fleet) {
    cloud.register_supernode(sn, reg_rng);
    sn.deployed = true;
  }
  const std::size_t queries = 1000;
  std::vector<std::size_t> out;
  DiscoveryPoint point;
  point.fleet = fleet_size;
  for (const bool grid : {false, true}) {
    cloud.set_candidate_mode(grid ? core::CandidateMode::kGrid
                                  : core::CandidateMode::kLinear);
    // Warm once (index build, scratch allocation) outside the timed loop.
    cloud.candidate_supernodes_into(testbed.players()[0].endpoint, fleet, 8, out);
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < queries; ++i) {
        cloud.candidate_supernodes_into(testbed.players()[i].endpoint, fleet, 8, out);
      }
    }
    const double us =
        elapsed_ms(t0) * 1000.0 / (static_cast<double>(repeats) * static_cast<double>(queries));
    (grid ? point.grid_us : point.linear_us) = us;
  }
  point.speedup = point.linear_us / std::max(1e-9, point.grid_us);
  return point;
}

struct SubcyclePoint {
  std::size_t players = 0;
  std::size_t fleet = 0;
  double baseline_ms = 0.0;      ///< linear discovery, memo off, serial
  double optimized_1t_ms = 0.0;  ///< grid + memo, 1 thread
  double optimized_nt_ms = 0.0;  ///< grid + memo, N threads
  double speedup_1t = 0.0;
  double speedup_nt = 0.0;
};

double bench_subcycle_arm(const core::Testbed& testbed, std::size_t fleet_size,
                          core::CandidateMode mode, bool memoize, int threads,
                          int measured_days) {
  core::SystemConfig cfg;
  cfg.supernode_count = fleet_size;
  cfg.discovery = mode;
  cfg.qos.memoize = memoize;
  cfg.qos.threads = threads;
  core::System system(testbed, cfg, 42);
  const int per_day = testbed.activity().config().subcycles_per_day;
  // One warm-up day (days are 1-based) attaches the steady-state session
  // population.
  system.begin_cycle(1);
  for (int s = 1; s <= per_day; ++s) system.run_subcycle(1, s, true, false);
  system.end_cycle(1);
  const auto t0 = std::chrono::steady_clock::now();
  for (int day = 2; day <= 1 + measured_days; ++day) {
    system.begin_cycle(day);
    for (int s = 1; s <= per_day; ++s) system.run_subcycle(day, s, false, false);
    system.end_cycle(day);
  }
  return elapsed_ms(t0) / static_cast<double>(measured_days * per_day);
}

SubcyclePoint bench_subcycle(std::size_t players, std::size_t fleet_size, int threads,
                             int measured_days) {
  fleet_size = std::min(fleet_size, players);  // capable pool bound (quick mode)
  auto tcfg = core::TestbedConfig::peersim(players);
  if (fleet_size > players / 10) tcfg.supernode_capable_fraction = 1.0;
  const core::Testbed testbed(tcfg, 42);
  SubcyclePoint point;
  point.players = players;
  point.fleet = fleet_size;
  point.baseline_ms = bench_subcycle_arm(testbed, fleet_size, core::CandidateMode::kLinear,
                                         /*memoize=*/false, /*threads=*/1, measured_days);
  point.optimized_1t_ms = bench_subcycle_arm(testbed, fleet_size, core::CandidateMode::kGrid,
                                             /*memoize=*/true, /*threads=*/1, measured_days);
  point.optimized_nt_ms = bench_subcycle_arm(testbed, fleet_size, core::CandidateMode::kGrid,
                                             /*memoize=*/true, threads, measured_days);
  point.speedup_1t = point.baseline_ms / std::max(1e-9, point.optimized_1t_ms);
  point.speedup_nt = point.baseline_ms / std::max(1e-9, point.optimized_nt_ms);
  return point;
}

/// Discards everything, counting bytes — isolates encoding cost from I/O.
class CountingBuf final : public std::streambuf {
 public:
  std::uint64_t bytes = 0;

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) ++bytes;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    bytes += static_cast<std::uint64_t>(n);
    return n;
  }
};

struct TraceOverheadPoint {
  std::uint64_t events = 0;
  double jsonl_ns_per_event = 0.0;
  double binary_ns_per_event = 0.0;
  double jsonl_bytes_per_event = 0.0;
  double binary_bytes_per_event = 0.0;
  double time_ratio = 0.0;   ///< jsonl / binary (higher = binary cheaper)
  double bytes_ratio = 0.0;
};

/// A representative event stream: the non-structural kinds that dominate a
/// run, interned notes (some with integer arguments), a kSubcycle boundary
/// every 200 events, RNG-jittered payloads so double formatting sees
/// realistic digit counts.
std::vector<obs::TraceEvent> make_trace_workload(std::uint64_t count) {
  const obs::NoteId notes[] = {
      obs::intern_note("within_lmax"), obs::intern_note("over_lmax"),
      obs::intern_note("granted"),     obs::intern_note("fog"),
      obs::intern_note("wanted="),     obs::NoteId{}};
  const obs::EventKind kinds[] = {
      obs::EventKind::kProbeSent,   obs::EventKind::kProbeAnswered,
      obs::EventKind::kPlayerJoin,  obs::EventKind::kCapacityClaim,
      obs::EventKind::kMigration,   obs::EventKind::kRateSwitch};
  util::Rng rng(42);
  std::vector<obs::TraceEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::TraceEvent e;
    e.t = static_cast<double>(i) * 0.000183 + rng.uniform(0.0, 1e-6);
    if (i % 200 == 199) {
      e.kind = obs::EventKind::kSubcycle;
      e.subject = static_cast<std::int64_t>(i / 9600);
      e.object = static_cast<std::int64_t>((i / 200) % 48);
      e.value = static_cast<double>(1000 + i % 64);
    } else {
      e.kind = kinds[i % std::size(kinds)];
      e.subject = rng.uniform_int(0, 99999);
      e.object = rng.uniform_int(0, 9999);
      e.value = rng.uniform(0.0, 250.0);
      const obs::NoteId note = notes[i % std::size(notes)];
      if (note.index == notes[4].index) {
        e.note = obs::Note{note, rng.uniform_int(0, 63)};
      } else {
        e.note = note;
      }
    }
    events.push_back(e);
  }
  return events;
}

TraceOverheadPoint bench_trace_overhead(std::uint64_t count, int repeats) {
  const auto events = make_trace_workload(count);
  TraceOverheadPoint point;
  point.events = count;
  for (const bool binary : {false, true}) {
    double best_ms = 0.0;
    std::uint64_t bytes = 0;
    for (int r = 0; r < repeats; ++r) {
      CountingBuf counter;
      std::ostream os(&counter);
      const auto t0 = std::chrono::steady_clock::now();
      if (binary) {
        obs::BinaryTraceSink sink(os);
        for (const auto& e : events) sink.write(e);
        sink.flush();
      } else {
        obs::JsonlTraceSink sink(os);
        for (const auto& e : events) sink.write(e);
        sink.flush();
      }
      const double ms = elapsed_ms(t0);
      if (r == 0 || ms < best_ms) best_ms = ms;
      bytes = counter.bytes;
    }
    const double per_event_ns = best_ms * 1e6 / static_cast<double>(count);
    const double per_event_bytes =
        static_cast<double>(bytes) / static_cast<double>(count);
    if (binary) {
      point.binary_ns_per_event = per_event_ns;
      point.binary_bytes_per_event = per_event_bytes;
    } else {
      point.jsonl_ns_per_event = per_event_ns;
      point.jsonl_bytes_per_event = per_event_bytes;
    }
  }
  point.time_ratio = point.jsonl_ns_per_event / std::max(1e-9, point.binary_ns_per_event);
  point.bytes_ratio =
      point.jsonl_bytes_per_event / std::max(1e-9, point.binary_bytes_per_event);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int threads = 4;
  std::string json_path;
  std::string runstore_dir;
  obs::RunKey run_key{"local", "unknown", "unknown"};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--runstore") == 0 && i + 1 < argc) {
      runstore_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--run-id") == 0 && i + 1 < argc) {
      run_key.run_id = argv[++i];
    } else if (std::strcmp(argv[i], "--git-sha") == 0 && i + 1 < argc) {
      run_key.git_sha = argv[++i];
    } else if (std::strcmp(argv[i], "--config-hash") == 0 && i + 1 < argc) {
      run_key.config_hash = argv[++i];
    }
  }
  // Timing only: the recorder would charge every trace append to the
  // measured loops.
  obs::Recorder::global().set_enabled(false);

  const int repeats = quick ? 2 : 10;
  std::vector<DiscoveryPoint> discovery;
  for (const std::size_t fleet : {std::size_t{1000}, std::size_t{10000}}) {
    discovery.push_back(bench_discovery(fleet, repeats));
    std::cerr << "discovery fleet=" << discovery.back().fleet
              << " linear_us=" << discovery.back().linear_us
              << " grid_us=" << discovery.back().grid_us
              << " speedup=" << discovery.back().speedup << '\n';
  }

  const int days = quick ? 1 : 2;
  std::vector<SubcyclePoint> subcycle;
  // fig7-style point (default 600-supernode fleet) and the 10k-supernode
  // scale-out point the index/memo layers target.
  subcycle.push_back(bench_subcycle(quick ? 2000 : 10000, 600, threads, days));
  subcycle.push_back(bench_subcycle(quick ? 2000 : 10000, 10000, threads, days));
  for (const auto& p : subcycle) {
    std::cerr << "subcycle players=" << p.players << " fleet=" << p.fleet
              << " baseline_ms=" << p.baseline_ms << " opt1t_ms=" << p.optimized_1t_ms
              << " opt" << threads << "t_ms=" << p.optimized_nt_ms
              << " speedup_1t=" << p.speedup_1t << " speedup_nt=" << p.speedup_nt << '\n';
  }

  const TraceOverheadPoint trace_overhead =
      bench_trace_overhead(quick ? 50000 : 500000, quick ? 2 : 5);
  std::cerr << "trace_overhead events=" << trace_overhead.events
            << " jsonl_ns=" << trace_overhead.jsonl_ns_per_event
            << " binary_ns=" << trace_overhead.binary_ns_per_event
            << " jsonl_bytes=" << trace_overhead.jsonl_bytes_per_event
            << " binary_bytes=" << trace_overhead.binary_bytes_per_event
            << " time_ratio=" << trace_overhead.time_ratio
            << " bytes_ratio=" << trace_overhead.bytes_ratio << '\n';

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (!json_path.empty()) {
    file.open(json_path);
    if (!file) {
      std::cerr << "error: cannot open " << json_path << '\n';
      return 1;
    }
    os = &file;
  }
  *os << "{\n  \"schema\": \"cloudfog.bench_scale/1\",\n";
  *os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  *os << "  \"threads\": " << threads << ",\n";
  *os << "  \"candidate_discovery\": [\n";
  for (std::size_t i = 0; i < discovery.size(); ++i) {
    const auto& p = discovery[i];
    *os << "    {\"fleet\": " << p.fleet << ", \"linear_us_per_query\": " << p.linear_us
        << ", \"grid_us_per_query\": " << p.grid_us << ", \"speedup\": " << p.speedup << "}"
        << (i + 1 < discovery.size() ? "," : "") << '\n';
  }
  *os << "  ],\n  \"subcycle\": [\n";
  for (std::size_t i = 0; i < subcycle.size(); ++i) {
    const auto& p = subcycle[i];
    *os << "    {\"players\": " << p.players << ", \"fleet\": " << p.fleet
        << ", \"baseline_ms\": " << p.baseline_ms
        << ", \"optimized_1t_ms\": " << p.optimized_1t_ms
        << ", \"optimized_nt_ms\": " << p.optimized_nt_ms
        << ", \"speedup_1t\": " << p.speedup_1t << ", \"speedup_nt\": " << p.speedup_nt << "}"
        << (i + 1 < subcycle.size() ? "," : "") << '\n';
  }
  *os << "  ],\n  \"trace_overhead\": {\n";
  *os << "    \"events\": " << trace_overhead.events << ",\n";
  *os << "    \"jsonl_ns_per_event\": " << trace_overhead.jsonl_ns_per_event << ",\n";
  *os << "    \"binary_ns_per_event\": " << trace_overhead.binary_ns_per_event << ",\n";
  *os << "    \"jsonl_bytes_per_event\": " << trace_overhead.jsonl_bytes_per_event << ",\n";
  *os << "    \"binary_bytes_per_event\": " << trace_overhead.binary_bytes_per_event << ",\n";
  *os << "    \"time_ratio\": " << trace_overhead.time_ratio << ",\n";
  *os << "    \"bytes_ratio\": " << trace_overhead.bytes_ratio << "\n";
  *os << "  }\n}\n";

  if (!runstore_dir.empty()) {
    obs::RunStore store(runstore_dir);
    const std::uint64_t row = store.begin_row(run_key);
    for (const auto& p : discovery) {
      const std::string prefix = "scale.discovery.fleet" + std::to_string(p.fleet);
      store.append(row, prefix + ".linear_us", p.linear_us);
      store.append(row, prefix + ".grid_us", p.grid_us);
      store.append(row, prefix + ".speedup", p.speedup);
    }
    for (const auto& p : subcycle) {
      const std::string prefix = "scale.subcycle.fleet" + std::to_string(p.fleet);
      store.append(row, prefix + ".baseline_ms", p.baseline_ms);
      store.append(row, prefix + ".optimized_1t_ms", p.optimized_1t_ms);
      store.append(row, prefix + ".optimized_nt_ms", p.optimized_nt_ms);
      store.append(row, prefix + ".speedup_nt", p.speedup_nt);
    }
    store.append(row, "scale.trace.jsonl_ns_per_event", trace_overhead.jsonl_ns_per_event);
    store.append(row, "scale.trace.binary_ns_per_event", trace_overhead.binary_ns_per_event);
    store.append(row, "scale.trace.time_ratio", trace_overhead.time_ratio);
    store.append(row, "scale.trace.bytes_ratio", trace_overhead.bytes_ratio);
    std::cerr << "runstore: appended row " << row << " to " << runstore_dir << '\n';
  }
  return 0;
}
