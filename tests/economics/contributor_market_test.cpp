#include "economics/contributor_market.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::economics {
namespace {

std::vector<Contributor> uniform_candidates(std::size_t n, double capacity = 10.0,
                                            double cost = 0.3, double threshold = 0.5) {
  return std::vector<Contributor>(n, Contributor{capacity, cost, threshold, false});
}

ContributorMarketConfig market_cfg(double reward) {
  ContributorMarketConfig cfg;
  cfg.reward_per_unit = reward;
  cfg.join_probability = 1.0;  // deterministic for unit tests
  return cfg;
}

TEST(ContributorMarket, NobodyJoinsWithoutReward) {
  ContributorMarket market(uniform_candidates(50), market_cfg(0.0), util::Rng(1));
  const auto round = market.run_to_equilibrium(100.0);
  EXPECT_EQ(round.active, 0u);
  EXPECT_DOUBLE_EQ(round.served_demand, 0.0);
}

TEST(ContributorMarket, GenerousRewardFillsTheFleet) {
  ContributorMarket market(uniform_candidates(50), market_cfg(5.0), util::Rng(2));
  const auto round = market.run_to_equilibrium(1000.0);
  // At c_s = 5, even fully diluted utilization clears every threshold.
  EXPECT_EQ(round.active, 50u);
}

TEST(ContributorMarket, FleetSizeGrowsWithReward) {
  util::Rng pop_rng(3);
  const auto population = sample_contributor_population(300, pop_rng);
  std::size_t prev = 0;
  for (double reward : {0.1, 0.3, 0.8, 2.0}) {
    ContributorMarketConfig cfg = market_cfg(reward);
    cfg.join_probability = 0.5;
    ContributorMarket market(population, cfg, util::Rng(4));
    const auto round = market.run_to_equilibrium(2000.0);
    EXPECT_GE(round.active + 5, prev);  // monotone up to small noise
    prev = round.active;
  }
  EXPECT_GT(prev, 50u);
}

TEST(ContributorMarket, DilutionStopsUnboundedGrowth) {
  // With fixed demand, every join lowers everyone's utilization, so the
  // fleet settles where the marginal contributor is indifferent — it must
  // NOT absorb the whole candidate pool under a modest reward.
  ContributorMarket market(uniform_candidates(200, 10.0, 0.3, 0.9),
                           market_cfg(0.5), util::Rng(5));
  const auto round = market.run_to_equilibrium(300.0);
  EXPECT_GT(round.active, 5u);
  EXPECT_LT(round.active, 200u);
  // Served demand is covered (the fleet is at least demand-sized) or the
  // fleet is profit-limited below it; either way utilization is high.
  EXPECT_GT(round.mean_utilization, 0.2);
}

TEST(ContributorMarket, RewardCutTriggersExodus) {
  ContributorMarket market(uniform_candidates(100), market_cfg(2.0), util::Rng(6));
  const auto before = market.run_to_equilibrium(500.0);
  ASSERT_GT(before.active, 20u);
  market.set_reward(0.02);  // far below running costs at any utilization
  const auto after = market.run_to_equilibrium(500.0);
  EXPECT_EQ(after.active, 0u);
}

TEST(ContributorMarket, EquilibriumIsStable) {
  ContributorMarket market(uniform_candidates(100, 10.0, 0.3, 0.8),
                           market_cfg(0.6), util::Rng(7));
  market.run_to_equilibrium(400.0);
  const std::size_t settled = market.active_count();
  for (int i = 0; i < 10; ++i) {
    const auto round = market.step(400.0);
    EXPECT_EQ(round.joined, 0u);
    EXPECT_EQ(round.left, 0u);
  }
  EXPECT_EQ(market.active_count(), settled);
}

TEST(ContributorMarket, ServedDemandTracksFleet) {
  ContributorMarket market(uniform_candidates(20, 10.0), market_cfg(3.0), util::Rng(8));
  const auto round = market.run_to_equilibrium(1000.0);
  EXPECT_DOUBLE_EQ(round.served_demand, round.fleet_capacity);  // under-provisioned
  const auto light = market.run_to_equilibrium(50.0);
  EXPECT_LE(light.served_demand, 50.0 + 1e-9);
}

TEST(ContributorMarket, PopulationSamplerProducesSaneCandidates) {
  util::Rng rng(9);
  const auto population = sample_contributor_population(500, rng);
  ASSERT_EQ(population.size(), 500u);
  for (const auto& c : population) {
    EXPECT_GE(c.upload_capacity, 5.0);
    EXPECT_LE(c.upload_capacity, 60.0);
    EXPECT_GT(c.profit_threshold, 0.0);
    EXPECT_FALSE(c.active);
  }
}

TEST(ContributorMarket, Validation) {
  EXPECT_THROW(ContributorMarket({}, market_cfg(1.0), util::Rng(1)),
               cloudfog::ConfigError);
  ContributorMarket market(uniform_candidates(5), market_cfg(1.0), util::Rng(1));
  EXPECT_THROW(market.step(-1.0), cloudfog::ConfigError);
  EXPECT_THROW(market.set_reward(-1.0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::economics
