#include "core/supernode_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/entities.hpp"
#include "util/require.hpp"

namespace cloudfog::core {

namespace {

// (distance, index) — the total order both the grid and the linear
// reference scan sort by.
bool closer(const std::pair<double, std::size_t>& a, const std::pair<double, std::size_t>& b) {
  if (a.first != b.first) return a.first < b.first;
  return a.second < b.second;
}

}  // namespace

SupernodeIndex::SupernodeIndex(double cell_km) : cell_km_(cell_km) {
  CLOUDFOG_REQUIRE(cell_km > 0.0, "grid cell size must be positive");
}

std::int64_t SupernodeIndex::cell_of(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_km_));
}

void SupernodeIndex::rebuild(const std::vector<net::GeoPoint>& positions) {
  positions_ = positions;
  cell_start_.clear();
  cell_nodes_.clear();
  min_cx_ = min_cy_ = 0;
  max_cx_ = max_cy_ = -1;
  width_ = 0;
  if (positions_.empty()) return;

  min_cx_ = min_cy_ = std::numeric_limits<std::int64_t>::max();
  max_cx_ = max_cy_ = std::numeric_limits<std::int64_t>::min();
  for (const net::GeoPoint& p : positions_) {
    const std::int64_t cx = cell_of(p.x_km);
    const std::int64_t cy = cell_of(p.y_km);
    min_cx_ = std::min(min_cx_, cx);
    max_cx_ = std::max(max_cx_, cx);
    min_cy_ = std::min(min_cy_, cy);
    max_cy_ = std::max(max_cy_, cy);
  }
  width_ = max_cx_ - min_cx_ + 1;
  const std::int64_t height = max_cy_ - min_cy_ + 1;
  const std::int64_t cells = width_ * height;
  // Positions come from the bounded geo plane; a runaway extent would turn
  // the dense layout into a memory bomb — fail loudly instead.
  CLOUDFOG_REQUIRE(cells <= (std::int64_t{1} << 24), "grid extent too large for dense cells");

  // CSR build: count per cell, exclusive prefix, then fill.
  cell_start_.assign(static_cast<std::size_t>(cells) + 1, 0);
  for (const net::GeoPoint& p : positions_) {
    const std::size_t c = static_cast<std::size_t>(
        (cell_of(p.y_km) - min_cy_) * width_ + (cell_of(p.x_km) - min_cx_));
    ++cell_start_[c + 1];
  }
  for (std::size_t c = 1; c < cell_start_.size(); ++c) cell_start_[c] += cell_start_[c - 1];
  cell_nodes_.resize(positions_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(
        (cell_of(positions_[i].y_km) - min_cy_) * width_ +
        (cell_of(positions_[i].x_km) - min_cx_));
    cell_nodes_[cursor[c]++] = static_cast<std::uint32_t>(i);
  }
}

void SupernodeIndex::scan_cell(std::int64_t cx, std::int64_t cy, const net::GeoPoint& from,
                               const std::vector<SupernodeState>& fleet) const {
  const std::size_t c =
      static_cast<std::size_t>((cy - min_cy_) * width_ + (cx - min_cx_));
  const std::uint32_t end = cell_start_[c + 1];
  for (std::uint32_t k = cell_start_[c]; k < end; ++k) {
    const std::uint32_t idx = cell_nodes_[k];
    if (!fleet[idx].accepting()) continue;
    scratch_.emplace_back(net::distance_km(from, positions_[idx]), static_cast<std::size_t>(idx));
  }
}

void SupernodeIndex::nearest_accepting(const net::GeoPoint& from,
                                       const std::vector<SupernodeState>& fleet,
                                       std::size_t count, std::vector<std::size_t>& out) const {
  out.clear();
  if (count == 0 || positions_.empty()) return;
  CLOUDFOG_REQUIRE(fleet.size() == positions_.size(), "index stale: fleet size changed");

  scratch_.clear();
  const std::int64_t cx = cell_of(from.x_km);
  const std::int64_t cy = cell_of(from.y_km);
  // Ring at which the entire populated bounding box has been visited.
  const std::int64_t last_ring =
      std::max(std::max(std::abs(min_cx_ - cx), std::abs(max_cx_ - cx)),
               std::max(std::abs(min_cy_ - cy), std::abs(max_cy_ - cy)));
  double kth = std::numeric_limits<double>::infinity();
  for (std::int64_t r = 0; r <= last_ring; ++r) {
    // A node in ring r is at least (r-1)·cell away (the query point may sit
    // anywhere inside its own cell). Once that lower bound strictly exceeds
    // the current k-th best distance, no farther ring can improve or even
    // tie-break the result set.
    if (scratch_.size() >= count && static_cast<double>(r - 1) * cell_km_ > kth) break;
    const std::size_t before = scratch_.size();
    if (r == 0) {
      if (cx >= min_cx_ && cx <= max_cx_ && cy >= min_cy_ && cy <= max_cy_) {
        scan_cell(cx, cy, from, fleet);
      }
    } else {
      // Ring perimeter clamped to the populated bounding box: rows outside
      // [min_cy_, max_cy_] and columns outside [min_cx_, max_cx_] hold no
      // cells, so they cost nothing.
      const std::int64_t x0 = std::max(cx - r, min_cx_);
      const std::int64_t x1 = std::min(cx + r, max_cx_);
      if (cy - r >= min_cy_ && cy - r <= max_cy_) {
        for (std::int64_t x = x0; x <= x1; ++x) scan_cell(x, cy - r, from, fleet);
      }
      if (cy + r >= min_cy_ && cy + r <= max_cy_) {
        for (std::int64_t x = x0; x <= x1; ++x) scan_cell(x, cy + r, from, fleet);
      }
      const std::int64_t y0 = std::max(cy - r + 1, min_cy_);
      const std::int64_t y1 = std::min(cy + r - 1, max_cy_);
      if (cx - r >= min_cx_ && cx - r <= max_cx_) {
        for (std::int64_t y = y0; y <= y1; ++y) scan_cell(cx - r, y, from, fleet);
      }
      if (cx + r >= min_cx_ && cx + r <= max_cx_) {
        for (std::int64_t y = y0; y <= y1; ++y) scan_cell(cx + r, y, from, fleet);
      }
    }
    // Re-derive the k-th best only when this ring contributed candidates —
    // in the saturated regime rings are many and mostly empty, and an
    // O(|scratch|) selection per ring would swamp the scan itself.
    if (scratch_.size() >= count && scratch_.size() != before) {
      const auto kth_it = scratch_.begin() + static_cast<std::ptrdiff_t>(count) - 1;
      std::nth_element(scratch_.begin(), kth_it, scratch_.end(), closer);
      kth = kth_it->first;
    }
  }

  const std::size_t take = std::min(count, scratch_.size());
  std::partial_sort(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(take),
                    scratch_.end(), closer);
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scratch_[i].second);
}

}  // namespace cloudfog::core
