#include "overlay/join_session.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::overlay {

namespace {

/// Interned metric handles for the message-level join protocol.
struct JoinObs {
  obs::CounterId probes_sent;
  obs::CounterId probes_answered;
  obs::CounterId claims;
  obs::CounterId joins_fog;
  obs::CounterId joins_failed;
  JoinObs() {
    auto& reg = obs::Recorder::global().registry();
    probes_sent = reg.counter("overlay.probes_sent");
    probes_answered = reg.counter("overlay.probes_answered");
    claims = reg.counter("overlay.capacity_claims");
    joins_fog = reg.counter("overlay.joins_fog");
    joins_failed = reg.counter("overlay.joins_failed");
  }
};

const JoinObs& join_obs() {
  static const JoinObs handles;
  return handles;
}

}  // namespace

JoinSession::JoinSession(sim::Simulator& sim, MessageNetwork& network, Address self,
                         Address directory, JoinConfig cfg, Ranker ranker,
                         DoneCallback done, std::uint64_t session_id, util::Rng rng)
    : sim_(sim),
      network_(network),
      self_(self),
      directory_(directory),
      cfg_(cfg),
      ranker_(std::move(ranker)),
      done_(std::move(done)),
      session_id_(session_id),
      rng_(rng) {
  CLOUDFOG_REQUIRE(cfg.lmax_ms > 0.0, "L_max must be positive");
  cfg_.stage.validate();
  CLOUDFOG_REQUIRE(static_cast<bool>(done_), "null completion callback");
}

void JoinSession::arm_timeout() {
  const int epoch = stage_epoch_;
  const std::weak_ptr<int> alive = alive_;
  sim_.schedule_in(cfg_.stage.attempt_timeout_ms / 1000.0, [this, epoch, alive] {
    if (alive.expired()) return;                     // session destroyed
    if (finished_ || epoch != stage_epoch_) return;  // the stage moved on
    switch (stage_) {
      case Stage::kCandidates: {
        double backoff_ms = 0.0;
        if (candidates_budget_ &&
            candidates_budget_->next_attempt(rng_, &backoff_ms)) {
          // The directory stayed silent: re-ask it (after any backoff)
          // rather than settling for whatever trickled in.
          if (backoff_ms > 0.0) {
            const int resend_epoch = stage_epoch_;
            const std::weak_ptr<int> still = alive_;
            sim_.schedule_in(backoff_ms / 1000.0, [this, resend_epoch, still] {
              if (still.expired() || finished_ || resend_epoch != stage_epoch_) return;
              send_candidate_request();
            });
          } else {
            send_candidate_request();
          }
        } else {
          finish_candidates();
        }
        break;
      }
      case Stage::kProbing:
        finish_probing();
        break;
      case Stage::kClaiming:
        // The asked supernode never answered: treat as a deny.
        ++claim_index_;
        next_claim();
        break;
      case Stage::kIdle:
      case Stage::kDone:
        break;
    }
  });
}

void JoinSession::start() {
  CLOUDFOG_REQUIRE(stage_ == Stage::kIdle, "join already started");
  started_at_ms_ = sim_.now() * 1000.0;
  stage_ = Stage::kCandidates;
  ++stage_epoch_;
  candidates_budget_.emplace(cfg_.stage, "join.candidates");
  candidates_budget_->next_attempt(rng_);
  send_candidate_request();
}

void JoinSession::send_candidate_request() {
  Message req;
  req.src = self_;
  req.dst = directory_;
  req.kind = MessageKind::kCandidateRequest;
  req.session = session_id_;
  network_.send(req);
  arm_timeout();
}

void JoinSession::on_message(const Message& msg) {
  if (finished_ || msg.session != session_id_) return;
  switch (msg.kind) {
    case MessageKind::kCandidateReply: {
      if (stage_ != Stage::kCandidates) return;
      if (msg.payload < 0) {
        finish_candidates();
      } else {
        candidates_.push_back(static_cast<Address>(msg.payload));
        ++result_.candidates_received;
      }
      break;
    }
    case MessageKind::kProbeReply: {
      if (stage_ != Stage::kProbing) return;
      const auto it = probe_sent_ms_.find(msg.src);
      if (it == probe_sent_ms_.end()) return;
      const double rtt = sim_.now() * 1000.0 - it->second;
      probe_sent_ms_.erase(it);
      const bool within_lmax = rtt / 2.0 <= cfg_.lmax_ms;
      if (within_lmax) probed_rtt_ms_.emplace_back(msg.src, rtt);
      auto& rec = obs::Recorder::global();
      if (rec.enabled()) {
        rec.registry().add(join_obs().probes_answered);
        static const obs::NoteId kWithinLmax = obs::intern_note("within_lmax");
        static const obs::NoteId kOverLmax = obs::intern_note("over_lmax");
        rec.trace_at(sim_.now(), obs::EventKind::kProbeAnswered,
                     static_cast<std::int64_t>(self_), static_cast<std::int64_t>(msg.src),
                     rtt, within_lmax ? kWithinLmax : kOverLmax);
      }
      if (probe_sent_ms_.empty()) finish_probing();
      break;
    }
    case MessageKind::kCapacityGrant: {
      if (stage_ != Stage::kClaiming) return;
      // The seat is ours — complete the handshake.
      Message connect;
      connect.src = self_;
      connect.dst = msg.src;
      connect.kind = MessageKind::kConnect;
      connect.session = session_id_;
      network_.send(connect);
      break;
    }
    case MessageKind::kCapacityDeny: {
      if (stage_ != Stage::kClaiming) return;
      ++claim_index_;
      next_claim();
      break;
    }
    case MessageKind::kConnectAck: {
      finish(true, msg.src);
      break;
    }
    default:
      break;
  }
}

void JoinSession::finish_candidates() {
  if (stage_ != Stage::kCandidates) return;
  stage_ = Stage::kProbing;
  ++stage_epoch_;
  if (candidates_.empty()) {
    finish(false, kNoAddress);
    return;
  }
  auto& rec = obs::Recorder::global();
  for (Address candidate : candidates_) {
    probe_sent_ms_[candidate] = sim_.now() * 1000.0;
    Message probe;
    probe.src = self_;
    probe.dst = candidate;
    probe.kind = MessageKind::kProbe;
    probe.session = session_id_;
    network_.send(probe);
    ++result_.probes;
    if (rec.enabled()) {
      rec.registry().add(join_obs().probes_sent);
      rec.trace_at(sim_.now(), obs::EventKind::kProbeSent,
                   static_cast<std::int64_t>(self_), static_cast<std::int64_t>(candidate));
    }
  }
  arm_timeout();
}

void JoinSession::finish_probing() {
  if (stage_ != Stage::kProbing) return;
  stage_ = Stage::kClaiming;
  ++stage_epoch_;
  claim_order_.clear();
  claim_order_.reserve(probed_rtt_ms_.size());
  for (const auto& [addr, rtt] : probed_rtt_ms_) claim_order_.push_back(addr);
  if (ranker_) {
    std::stable_sort(claim_order_.begin(), claim_order_.end(),
                     [this](Address a, Address b) { return ranker_(a) > ranker_(b); });
  } else {
    std::shuffle(claim_order_.begin(), claim_order_.end(), rng_);
  }
  claim_index_ = 0;
  next_claim();
}

void JoinSession::next_claim() {
  if (finished_) return;
  ++stage_epoch_;  // cancel the previous claim's timeout
  if (claim_index_ >= claim_order_.size()) {
    finish(false, kNoAddress);
    return;
  }
  Message ask;
  ask.src = self_;
  ask.dst = claim_order_[claim_index_];
  ask.kind = MessageKind::kCapacityAsk;
  ask.session = session_id_;
  network_.send(ask);
  ++result_.capacity_asks;
  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.registry().add(join_obs().claims);
    rec.trace_at(sim_.now(), obs::EventKind::kCapacityClaim,
                 static_cast<std::int64_t>(self_),
                 static_cast<std::int64_t>(claim_order_[claim_index_]));
  }
  arm_timeout();
}

void JoinSession::finish(bool fog_connected, Address supernode) {
  if (finished_) return;
  finished_ = true;
  stage_ = Stage::kDone;
  ++stage_epoch_;
  result_.fog_connected = fog_connected;
  result_.supernode = supernode;
  result_.join_latency_ms = sim_.now() * 1000.0 - started_at_ms_;
  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.registry().add(fog_connected ? join_obs().joins_fog : join_obs().joins_failed);
    static const obs::NoteId kFog = obs::intern_note("fog");
    static const obs::NoteId kNoSupernode = obs::intern_note("no_supernode");
    rec.trace_at(sim_.now(), obs::EventKind::kPlayerJoin,
                 static_cast<std::int64_t>(self_),
                 fog_connected ? static_cast<std::int64_t>(supernode) : -1,
                 result_.join_latency_ms, fog_connected ? kFog : kNoSupernode);
  }
  done_(result_);
}

PlayerAgent::PlayerAgent(sim::Simulator& sim, MessageNetwork& network,
                         const net::Endpoint& where)
    : sim_(sim), network_(network) {
  address_ = network_.register_endpoint(where, [this](const Message& m) { handle(m); });
}

void PlayerAgent::handle(const Message& msg) {
  if (monitor_ && msg.kind == MessageKind::kLivenessReply) monitor_->on_message(msg);
  if (session_) session_->on_message(msg);
}

void PlayerAgent::join(Address directory, JoinConfig cfg, JoinSession::Ranker ranker,
                       JoinSession::DoneCallback done, util::Rng rng) {
  CLOUDFOG_REQUIRE(!join_in_progress(), "join already in progress");
  session_ = std::make_unique<JoinSession>(sim_, network_, address_, directory, cfg,
                                           std::move(ranker), std::move(done),
                                           next_session_++, rng);
  session_->start();
}

void PlayerAgent::watch(Address supernode, ProbeMonitorConfig cfg,
                        std::function<void(double)> on_failure) {
  monitor_ = std::make_unique<ProbeMonitor>(sim_, network_, address_, supernode, cfg,
                                            std::move(on_failure));
}

void PlayerAgent::stop_watching() {
  if (monitor_) monitor_->stop();
  monitor_.reset();
}

}  // namespace cloudfog::overlay
