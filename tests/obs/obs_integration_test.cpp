// End-to-end observability: a small core::System run must leave behind a
// coherent trace (expected event kinds, sim-time ordered), populated
// counters, phase timings and a run summary.
#include <gtest/gtest.h>

#include <set>

#include "core/baselines.hpp"
#include "core/system.hpp"
#include "obs/obs.hpp"

namespace cloudfog::core {
namespace {

const Testbed& small_testbed() {
  static const Testbed tb(TestbedConfig::peersim(300), 17);
  return tb;
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Recorder::global().reset();
    obs::Recorder::global().set_enabled(true);
  }
  void TearDown() override {
    obs::Recorder::global().reset();
    obs::Recorder::global().set_enabled(false);
  }
};

TEST_F(ObsIntegrationTest, CloudFogRunEmitsOrderedJoinProbeEvents) {
  auto& rec = obs::Recorder::global();
  System sys = make_cloudfog_basic(small_testbed(), 7);
  sim::CycleConfig cycles;
  cycles.total_cycles = 2;
  cycles.warmup_cycles = 1;
  sys.run(cycles);

  // Counters from several layers moved.
  const auto& reg = rec.registry();
  EXPECT_GT(reg.counter_value("system.player_joins"), 0u);
  EXPECT_GT(reg.counter_value("system.player_leaves"), 0u);
  EXPECT_GT(reg.counter_value("fog.probes_sent"), 0u);
  EXPECT_GT(reg.counter_value("fog.capacity_asks"), 0u);
  EXPECT_GT(reg.counter_value("fog.claims_granted"), 0u);
  EXPECT_GT(reg.counter_value("reputation.ratings"), 0u);

  // Phase profile covers the instrumented subsystems.
  for (const char* phase : {"population", "qos.subcycle", "fog.discovery", "fog.probe"}) {
    const auto* stats = rec.profiler().find(phase);
    ASSERT_NE(stats, nullptr) << phase;
    EXPECT_GT(stats->count, 0u) << phase;
  }

  // The trace holds the protocol's event kinds, in sim-time order.
  const auto events = rec.trace_buffer().events();
  ASSERT_FALSE(events.empty());
  std::set<obs::EventKind> kinds;
  double last = events.front().t;
  for (const auto& e : events) {
    ASSERT_GE(e.t, last);
    last = e.t;
    kinds.insert(e.kind);
  }
  for (const obs::EventKind expected :
       {obs::EventKind::kSubcycle, obs::EventKind::kPlayerJoin, obs::EventKind::kPlayerLeave,
        obs::EventKind::kProbeSent, obs::EventKind::kProbeAnswered,
        obs::EventKind::kCapacityClaim, obs::EventKind::kRating}) {
    EXPECT_TRUE(kinds.count(expected)) << obs::event_kind_name(expected);
  }

  // Join events carry the player's join latency; subcycle events the
  // online population.
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::kPlayerJoin) {
      EXPECT_GT(e.value, 0.0);
    }
  }

  // The run summary was captured with percentile-bearing stats.
  ASSERT_EQ(rec.runs().size(), 1u);
  EXPECT_EQ(rec.runs()[0].label, "cloudfog/B");
  bool found_latency = false;
  for (const auto& stat : rec.runs()[0].stats) {
    if (stat.name == "response_latency_ms") {
      found_latency = true;
      EXPECT_TRUE(stat.has_percentiles);
      EXPECT_GT(stat.count, 0u);
      EXPECT_LE(stat.p50, stat.p99);
    }
  }
  EXPECT_TRUE(found_latency);
}

TEST_F(ObsIntegrationTest, FailureInjectionEmitsChurnAndMigration) {
  auto& rec = obs::Recorder::global();
  System sys = make_cloudfog_basic(small_testbed(), 9);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 21; ++sub) sys.run_subcycle(1, sub, false, sub >= 20);
  const auto latencies = sys.inject_supernode_failures(3, 1);
  EXPECT_EQ(rec.registry().counter_value("system.supernode_failures"), 3u);
  EXPECT_EQ(rec.registry().counter_value("system.migrations"), latencies.size());
  std::size_t churn = 0;
  std::size_t migrations = 0;
  for (const auto& e : rec.trace_buffer().events()) {
    if (e.kind == obs::EventKind::kSupernodeChurn) ++churn;
    if (e.kind == obs::EventKind::kMigration) ++migrations;
  }
  EXPECT_EQ(churn, 3u);
  EXPECT_EQ(migrations, latencies.size());
}

TEST_F(ObsIntegrationTest, DisabledRecorderLeavesNoTrace) {
  obs::Recorder::global().set_enabled(false);
  System sys = make_cloudfog_basic(small_testbed(), 11);
  sim::CycleConfig cycles;
  cycles.total_cycles = 1;
  cycles.warmup_cycles = 0;
  sys.run(cycles);
  auto& rec = obs::Recorder::global();
  EXPECT_EQ(rec.trace_buffer().total_pushed(), 0u);
  EXPECT_EQ(rec.registry().counter_value("system.player_joins"), 0u);
  EXPECT_TRUE(rec.runs().empty());
}

}  // namespace
}  // namespace cloudfog::core
