// Social-network-based server assignment (paper §3.4, steps 1–6).
//
// Given z servers, partition the (explicit ∪ implicit) friend graph into z
// communities so that friends who play together land on the same server:
//   1. start with everyone unassigned (community g1);
//   2. pick a random player, pull it and its friends into a new community;
//   3. repeatedly pick a random member of the new community and pull in
//      its friends, until the community holds ≥ |V|/z players;
//   4. repeat until z communities exist (the last takes the remainder);
//   5. hill-climb: pick random players n_i, n_j from two random distinct
//      communities, swap n_i+F(i) with n_j+F(j); keep the swap iff the
//      modularity Γ improves, otherwise roll back (a "Miss");
//   6. stop after h1 swap trials or h2 consecutive Misses.
//
// Complexity: each trial moves O(deg) nodes and evaluates Γ in O(z²),
// giving the paper's O(h1·z²) bound (assuming z² > E per §3.4).
#pragma once

#include "social/modularity.hpp"
#include "social/social_graph.hpp"
#include "util/rng.hpp"

namespace cloudfog::social {

struct PartitionerConfig {
  int communities = 8;            ///< z — number of servers
  int max_swap_trials = 1000;     ///< h1
  int max_consecutive_miss = 100; ///< h2 (must be < h1)
};

struct PartitionerResult {
  Partition partition;          ///< player -> community (= server index)
  double initial_modularity = 0.0;
  double final_modularity = 0.0;
  int swap_trials = 0;
  int accepted_swaps = 0;
  bool stopped_by_miss_streak = false;
};

class CommunityPartitioner {
 public:
  explicit CommunityPartitioner(PartitionerConfig cfg);

  /// Runs the full greedy-growth + swap optimization.
  PartitionerResult partition(const SocialGraph& graph, util::Rng& rng) const;

  /// Step 1–4 only: the greedy friend-closure seeding.
  Partition greedy_seed(const SocialGraph& graph, util::Rng& rng) const;

  const PartitionerConfig& config() const { return cfg_; }

 private:
  PartitionerConfig cfg_;
};

/// Incremental assignment for a player joining mid-week (§3.4): placed in
/// the community holding the plurality of its friends, or a random one if
/// it has none assigned.
CommunityId assign_new_player(const SocialGraph& graph, const Partition& partition,
                              int community_count, PlayerId joiner, util::Rng& rng);

}  // namespace cloudfog::social
