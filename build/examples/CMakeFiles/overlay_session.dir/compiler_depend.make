# Empty compiler generated dependencies file for overlay_session.
# This may be replaced when dependencies are built.
