// Reproduces Fig. 12: response latency decomposed into inter-server
// communication latency and everything else, with and without the social
// server-assignment strategy, as the number of servers per datacenter
// varies.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::server_assignment_sweep(core::TestbedProfile::kPeerSim,
                                             {5, 10, 15, 20, 25}, scale));
  bench::print(core::server_assignment_sweep(core::TestbedProfile::kPlanetLab,
                                             {5, 10, 15, 20, 25}, scale));
  return 0;
}
