// Random distributions used throughout the CloudFog evaluation:
//  * Pareto / bounded Pareto    — supernode capacities (§4.1, [46,47,51–53])
//  * Zipf / power-law degrees   — friend counts (skew 1.5, [49]) and the
//                                 rank-harmonic supernode pick (Eq. 16)
//  * Poisson                    — player arrivals (5 players/s, [50])
//  * Lognormal mixture          — synthetic ping-latency trace (§ net)
//  * Empirical CDF              — download-bandwidth tiers ([42,43])
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace cloudfog::util {

/// Unbounded Pareto with scale x_m > 0 and shape alpha > 0.
/// mean = alpha*x_m/(alpha-1) for alpha > 1.
class ParetoDistribution {
 public:
  ParetoDistribution(double scale, double shape);
  double sample(Rng& rng) const;
  double scale() const { return scale_; }
  double shape() const { return shape_; }

 private:
  double scale_;
  double shape_;
};

/// Pareto truncated to [lo, hi] by inverse-CDF of the truncated law
/// (not rejection, so sampling cost is constant).
class BoundedParetoDistribution {
 public:
  BoundedParetoDistribution(double lo, double hi, double shape);
  double sample(Rng& rng) const;

 private:
  double lo_;
  double hi_;
  double shape_;
};

/// Zipf over ranks {1..n}: P(k) ∝ 1/k^s. With s = 1 this is exactly the
/// paper's supernode preference rule (Eq. 16).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double skew);
  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;
  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
  double norm_;
  double skew_;
};

/// Poisson with mean `lambda`; uses Knuth for small means and a
/// normal approximation above 64 (sufficient for arrival counts).
int sample_poisson(Rng& rng, double lambda);

/// Exponential inter-arrival time with rate `rate` (events per unit time).
double sample_exponential(Rng& rng, double rate);

/// Standard normal via Box–Muller (one value per call; deterministic).
double sample_standard_normal(Rng& rng);

/// Lognormal with parameters of the underlying normal.
double sample_lognormal(Rng& rng, double mu, double sigma);

/// Weighted mixture of lognormals; weights need not be normalized.
class LognormalMixture {
 public:
  struct Component {
    double weight = 0.0;
    double mu = 0.0;
    double sigma = 0.0;
  };
  explicit LognormalMixture(std::vector<Component> components);
  double sample(Rng& rng) const;

 private:
  std::vector<Component> components_;
  double total_weight_;
};

/// Discrete empirical distribution: value v_i with weight w_i.
class EmpiricalDistribution {
 public:
  struct Bin {
    double value = 0.0;
    double weight = 0.0;
  };
  explicit EmpiricalDistribution(std::vector<Bin> bins);
  double sample(Rng& rng) const;
  /// Expected value under the (normalized) weights.
  double mean() const;

 private:
  std::vector<Bin> bins_;
  double total_weight_;
};

/// Power-law degree sequence generator for the friend graph:
/// P(degree = d) ∝ d^-skew over d ∈ [min_degree, max_degree].
std::vector<int> sample_power_law_degrees(Rng& rng, std::size_t n, double skew,
                                          int min_degree, int max_degree);

}  // namespace cloudfog::util
