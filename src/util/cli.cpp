#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/require.hpp"

namespace cloudfog::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  CLOUDFOG_REQUIRE(argc >= 1, "argv must at least hold the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    CLOUDFOG_REQUIRE(arg.size() > 2, "bare '--' is not a valid option");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      CLOUDFOG_REQUIRE(!key.empty(), "option with empty name");
      keys_.push_back(key);
      options_.emplace_back(key, body.substr(eq + 1));
      continue;
    }
    // `--key value` when the next token is not itself an option;
    // otherwise a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      keys_.push_back(body);
      options_.emplace_back(body, std::string(argv[++i]));
    } else {
      keys_.push_back(body);
      options_.emplace_back(body, std::nullopt);
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return std::any_of(options_.begin(), options_.end(),
                     [&key](const auto& kv) { return kv.first == key; });
}

std::optional<std::string> CliArgs::value(const std::string& key) const {
  // Last occurrence wins, so `--seed 1 --seed 2` behaves predictably.
  std::optional<std::string> found;
  for (const auto& [k, v] : options_) {
    if (k == key) found = v;
  }
  return found;
}

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) const {
  const auto v = value(key);
  return v.has_value() ? *v : fallback;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = value(key);
  if (!v.has_value()) return fallback;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(v->c_str(), &end, 10);
  CLOUDFOG_REQUIRE(end != nullptr && *end == '\0' && !v->empty(),
                   "option --" + key + " expects an integer, got '" + *v + "'");
  return parsed;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto v = value(key);
  if (!v.has_value()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  CLOUDFOG_REQUIRE(end != nullptr && *end == '\0' && !v->empty(),
                   "option --" + key + " expects a number, got '" + *v + "'");
  return parsed;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const auto v = value(key);
  if (!v.has_value()) return true;  // bare flag
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  CLOUDFOG_REQUIRE(false, "option --" + key + " expects a boolean, got '" + *v + "'");
  return fallback;  // unreachable
}

void CliArgs::require_known(const std::vector<std::string>& allowed) const {
  for (const auto& key : keys_) {
    CLOUDFOG_REQUIRE(std::find(allowed.begin(), allowed.end(), key) != allowed.end(),
                     "unknown option --" + key);
  }
}

}  // namespace cloudfog::util
