// Packet-level video delivery.
//
// The QoS engine uses a closed-form continuity (on-time probability ×
// delivery ratio, src/video/continuity.hpp). This module is the
// first-principles version it abstracts: an encoder emitting a GOP
// structure of I/P frames, packetization at the network MTU, and
// packet-by-packet delivery over a bottlenecked, jittery path. The two
// models are checked against each other in tests/video — if the analytic
// shortcut drifts from the packet-level truth, the tests catch it.
#pragma once

#include <cstddef>

#include "util/rng.hpp"

namespace cloudfog::video {

struct EncodedFrame {
  std::size_t index = 0;
  double bits = 0.0;
  bool keyframe = false;
};

struct FrameEncoderConfig {
  double bitrate_kbps = 800.0;
  double fps = 30.0;
  int gop_length = 30;        ///< one keyframe per GOP
  double i_frame_ratio = 4.0; ///< keyframe size relative to a P frame
  double size_jitter = 0.2;   ///< ± relative frame-size noise
};

/// Emits frames whose long-run rate matches the configured bitrate while
/// individual frames vary (I vs P, content-dependent noise).
class FrameEncoder {
 public:
  FrameEncoder(FrameEncoderConfig cfg, util::Rng rng);

  const FrameEncoderConfig& config() const { return cfg_; }

  EncodedFrame next();

  /// Expected bits of the k-th frame in a GOP (no noise) — exposed so the
  /// tests can verify rate conservation.
  double nominal_bits(bool keyframe) const;

 private:
  FrameEncoderConfig cfg_;
  util::Rng rng_;
  std::size_t next_index_ = 0;
};

struct DeliveryPath {
  double base_latency_ms = 20.0;    ///< propagation to the player
  double jitter_mean_ms = 8.0;      ///< exponential per-packet jitter
  double bottleneck_kbps = 2000.0;  ///< serialization rate of the path
  double mtu_bits = 12000.0;        ///< 1500-byte packets
};

struct DeliveryResult {
  std::size_t packets = 0;
  std::size_t on_time = 0;

  double continuity() const {
    return packets == 0 ? 1.0
                        : static_cast<double>(on_time) / static_cast<double>(packets);
  }
};

/// Streams `duration_s` of video from `encoder` over `path` and counts
/// the packets delivered within `requirement_ms`. Packets serialize FIFO
/// through the bottleneck (a queue carries over between frames), then
/// experience propagation plus exponential jitter.
DeliveryResult simulate_delivery(FrameEncoder& encoder, double duration_s,
                                 const DeliveryPath& path, double requirement_ms,
                                 util::Rng& rng);

}  // namespace cloudfog::video
