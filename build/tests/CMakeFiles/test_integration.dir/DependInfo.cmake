
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/experiment_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/experiment_test.cpp.o.d"
  "/root/repo/tests/integration/overlay_crossvalidation_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/overlay_crossvalidation_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/overlay_crossvalidation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
