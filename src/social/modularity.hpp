// Newman–Girvan modularity (paper Eq. 13).
//
// For a partition of the friend graph into z communities, build the z×z
// matrix Q whose entry q_ab is the fraction of edges joining communities a
// and b; then Γ = Tr(Q) − ‖Q²‖ = Σ_a (q_aa − p_a²) with p_a = Σ_b q_ab.
// High Γ means friends are concentrated inside communities — exactly what
// the server-assignment strategy optimizes.
//
// ModularityState supports O(deg) incremental moves so the partitioner's
// swap loop does not pay O(E) per trial; full recomputation is provided
// for cross-checking.
#pragma once

#include <vector>

#include "social/social_graph.hpp"

namespace cloudfog::social {

using CommunityId = int;
using Partition = std::vector<CommunityId>;  // player -> community

/// Full O(E + z²) modularity computation from scratch.
double modularity(const SocialGraph& graph, const Partition& partition,
                  int community_count);

/// Maintains the inter-community edge tallies for a partition and updates
/// them incrementally as nodes move. Γ itself is maintained as running
/// aggregates, so move() is O(deg(p)) and modularity() is O(1) — the swap
/// loop of the partitioner never pays the O(z²) full evaluation.
class ModularityState {
 public:
  ModularityState(const SocialGraph& graph, Partition partition, int community_count);

  const Partition& partition() const { return partition_; }
  int community_count() const { return community_count_; }
  CommunityId community_of(PlayerId p) const { return partition_[p]; }

  /// Current modularity Γ. O(1) (cached aggregates).
  double modularity() const;

  /// Moves one player to `target`, updating tallies in O(deg(p)).
  void move(PlayerId p, CommunityId target);

  /// Number of players in a community.
  std::size_t community_size(CommunityId c) const;

 private:
  /// Removes/adds community `a`'s contribution to the Γ aggregates.
  void retract(CommunityId a);
  void restore(CommunityId a);

  const SocialGraph& graph_;
  Partition partition_;
  int community_count_;
  std::vector<double> intra_;     ///< edges inside community a
  std::vector<double> incident_;  ///< cross edges touching community a
  std::vector<std::size_t> sizes_;
  double total_edges_;
  double sum_intra_ = 0.0;  ///< Σ_a intra_a
  double sum_p2_ = 0.0;     ///< Σ_a ((intra_a + incident_a/2)/m)²
};

}  // namespace cloudfog::social
