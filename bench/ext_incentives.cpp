// Extension experiment: the §3.1.1 incentive loop in motion.
//
// The paper argues that a per-unit bandwidth reward c_s recruits idle
// desktops into the fog. This sweep simulates the contributor market —
// heterogeneous machines with private profit thresholds joining and
// leaving by Eq. 1 — and reports the equilibrium fleet and covered demand
// at each reward rate, plus the provider's net saving (Eq. 3) so the
// sweet spot is visible: too little reward recruits nobody; too much
// erodes the saving.
#include "bench_common.hpp"

#include "economics/contributor_market.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);

  util::Rng rng(scale.seed);
  const auto population = economics::sample_contributor_population(500, rng);
  const double demand = 3000.0;  // fog bandwidth demand (units)

  util::Table table("Extension — contributor market equilibrium vs reward rate");
  table.set_header({"reward c_s", "active fleet", "fleet capacity", "covered demand (%)",
                    "provider saving C_g"});
  for (double reward : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}) {
    economics::ContributorMarketConfig cfg;
    cfg.reward_per_unit = reward;
    economics::ContributorMarket market(population, cfg, util::Rng(scale.seed + 1));
    const auto eq = market.run_to_equilibrium(demand);

    economics::ProviderEconomics econ;
    econ.reward_per_unit = reward;
    econ.streaming_rate = 1.0;  // demand already in bandwidth units
    std::vector<economics::SupernodeContribution> fleet;
    for (const auto& c : market.candidates()) {
      if (c.active) fleet.push_back({c.upload_capacity, eq.mean_utilization, c.running_cost});
    }
    const double saving = economics::provider_saving(
        econ, static_cast<std::size_t>(eq.served_demand), eq.active, fleet);

    table.add_row({util::format_double(reward, 2), std::to_string(eq.active),
                   util::format_double(eq.fleet_capacity, 0),
                   util::format_double(eq.served_demand / demand * 100.0, 1),
                   util::format_double(saving, 0)});
  }
  bench::print(table);
  return 0;
}
