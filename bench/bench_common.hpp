// Shared helpers for the figure-regeneration binaries.
//
// Every binary accepts optional arguments:
//   --paper              run at the paper's full scale (28 cycles, 21
//                        warm-up) — slower, but the exact §4.1 schedule;
//   --quick              minimal scale for smoke-testing;
//   --csv                emit CSV instead of aligned tables (for plotting);
//   --seed <n>           override the experiment seed;
//   --trace <file>       stream the structured event trace;
//   --trace-format <f>   trace encoding: jsonl (default) or binary (the
//                        fixed-width format tools/trace/tracecat decodes);
//   --trace-sample <n>   sampled retention: keep every nth non-structural
//                        event (decided by a deterministic counter, so the
//                        sampled trace is identical at any thread count);
//   --trace-agg          aggregated retention: per-subcycle, per-kind
//                        {count, value-sum} summary events only;
//   --report-json <file> write the run report (metrics + counters +
//                        phase profile) on exit;
//   --runstore <dir>     append this run's metric summaries to the
//                        columnar run-store (obs::RunStore) on exit;
//   --run-id <s>         run-store manifest fields (defaults: "local",
//   --git-sha <s>        "unknown", "unknown");
//   --config-hash <s>
//   --obs-off            disable the observability recorder entirely;
//   --threads <n>        QoS worker threads (sets CLOUDFOG_THREADS before
//                        any System is built; results are byte-identical
//                        at every thread count).
// Flags taking a value accept both "--flag value" and "--flag=value".
// Default is a reduced-but-faithful scale (6 cycles, 3 warm-up).
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "obs/binary_trace.hpp"
#include "obs/obs.hpp"
#include "obs/run_store.hpp"

namespace cloudfog::bench {

inline bool& csv_mode() {
  static bool mode = false;
  return mode;
}

/// Everything scale_from_args parses beyond the experiment scale itself.
struct ObsOptions {
  std::string trace_path;
  std::string trace_format = "jsonl";  ///< "jsonl" or "binary"
  std::uint64_t trace_sample = 0;      ///< >0 selects sampled retention
  bool trace_agg = false;              ///< aggregated retention
  std::string report_path;
  std::string runstore_dir;
  obs::RunKey run_key{"local", "unknown", "unknown"};
};

/// Owns the trace sink and writes the run report (and run-store row) when
/// the process exits. Instantiated only after Recorder::global() (a
/// Meyer's singleton), so its destructor runs before the recorder is torn
/// down.
class ObsSession {
 public:
  static ObsSession& instance() {
    static ObsSession session;
    return session;
  }

  void configure(ObsOptions opts) {
    opts_ = std::move(opts);
    auto& buf = obs::Recorder::global().trace_buffer();
    if (opts_.trace_sample > 0) {
      buf.set_retention(obs::TraceRetention::kSampled, opts_.trace_sample);
    } else if (opts_.trace_agg) {
      buf.set_retention(obs::TraceRetention::kAggregated);
    }
    if (!opts_.trace_path.empty()) {
      const bool binary = opts_.trace_format == "binary";
      trace_out_.open(opts_.trace_path,
                      binary ? std::ios::binary | std::ios::out : std::ios::out);
      if (trace_out_) {
        if (binary) {
          binary_sink_ = std::make_unique<obs::BinaryTraceSink>(trace_out_);
          buf.set_event_sink(binary_sink_.get());
        } else {
          buf.set_sink(&trace_out_);
        }
      } else {
        std::cerr << "warning: cannot open trace file " << opts_.trace_path << '\n';
        opts_.trace_path.clear();
      }
    }
  }

  ~ObsSession() { finalize(); }

  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    auto& rec = obs::Recorder::global();
    auto& buf = rec.trace_buffer();
    if (!opts_.trace_path.empty()) {
      buf.close_aggregation_window();
      buf.flush();
      buf.set_event_sink(nullptr);
      buf.set_sink(nullptr);
      binary_sink_.reset();
      trace_out_.close();
    }
    if (!opts_.report_path.empty()) {
      std::ofstream os(opts_.report_path);
      if (os) {
        obs::write_report_json(os, rec);
      } else {
        std::cerr << "warning: cannot open report file " << opts_.report_path << '\n';
      }
    }
    if (!opts_.runstore_dir.empty()) append_runstore(rec);
  }

 private:
  ObsSession() = default;

  /// One run-store row per process: per-run metric means (plus p95 where
  /// recorded) and the trace accounting, one column per metric so
  /// scripts/bench_trend.py can trend each independently.
  void append_runstore(const obs::Recorder& rec) {
    obs::RunStore store(opts_.runstore_dir);
    const std::uint64_t row = store.begin_row(opts_.run_key);
    for (const obs::RunSummary& run : rec.runs()) {
      for (const obs::StatSummary& s : run.stats) {
        store.append(row, run.label + "." + s.name + ".mean", s.mean);
        if (s.has_percentiles) {
          store.append(row, run.label + "." + s.name + ".p95", s.p95);
        }
      }
    }
    const auto& buf = rec.trace_buffer();
    store.append(row, "trace.pushed", static_cast<double>(buf.total_pushed()));
    store.append(row, "trace.dropped", static_cast<double>(buf.dropped()));
  }

  ObsOptions opts_;
  std::ofstream trace_out_;
  std::unique_ptr<obs::BinaryTraceSink> binary_sink_;
  bool finalized_ = false;
};

/// Matches "--flag value" and "--flag=value"; on a match, `*value` points
/// at the value and `*i` is advanced past any consumed extra argv slot.
inline bool flag_value(int argc, char** argv, int* i, const char* flag,
                       const char** value) {
  const char* arg = argv[*i];
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    *value = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] == '\0' && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

inline core::ExperimentScale scale_from_args(int argc, char** argv,
                                             core::ExperimentScale fallback = {}) {
  core::ExperimentScale scale = fallback;
  bool obs_off = false;
  ObsOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--paper") == 0) {
      const auto seed = scale.seed;
      scale = core::ExperimentScale::paper();
      scale.seed = seed;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      const auto seed = scale.seed;
      scale = core::ExperimentScale::quick();
      scale.seed = seed;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_mode() = true;
    } else if (flag_value(argc, argv, &i, "--seed", &value)) {
      scale.seed = std::strtoull(value, nullptr, 10);
    } else if (flag_value(argc, argv, &i, "--trace-format", &value)) {
      opts.trace_format = value;
      if (opts.trace_format != "jsonl" && opts.trace_format != "binary") {
        std::cerr << "error: --trace-format must be jsonl or binary\n";
        std::exit(2);
      }
    } else if (flag_value(argc, argv, &i, "--trace-sample", &value)) {
      opts.trace_sample = std::strtoull(value, nullptr, 10);
      if (opts.trace_sample == 0) {
        std::cerr << "error: --trace-sample needs a positive interval\n";
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--trace-agg") == 0) {
      opts.trace_agg = true;
    } else if (flag_value(argc, argv, &i, "--trace", &value)) {
      opts.trace_path = value;
    } else if (flag_value(argc, argv, &i, "--report-json", &value)) {
      opts.report_path = value;
    } else if (flag_value(argc, argv, &i, "--runstore", &value)) {
      opts.runstore_dir = value;
    } else if (flag_value(argc, argv, &i, "--run-id", &value)) {
      opts.run_key.run_id = value;
    } else if (flag_value(argc, argv, &i, "--git-sha", &value)) {
      opts.run_key.git_sha = value;
    } else if (flag_value(argc, argv, &i, "--config-hash", &value)) {
      opts.run_key.config_hash = value;
    } else if (std::strcmp(argv[i], "--obs-off") == 0) {
      obs_off = true;
    } else if (flag_value(argc, argv, &i, "--threads", &value)) {
      // The engine reads the variable at construction; every System in
      // this process picks it up.
      setenv("CLOUDFOG_THREADS", value, 1);
    }
  }
  if (opts.trace_sample > 0 && opts.trace_agg) {
    std::cerr << "error: --trace-sample and --trace-agg are mutually exclusive\n";
    std::exit(2);
  }
  // Touch the recorder singleton before the session singleton so the
  // session's destructor (flush + report + run-store) runs first at exit.
  obs::Recorder::global().set_enabled(!obs_off);
  ObsSession::instance().configure(obs_off ? ObsOptions{} : opts);
  return scale;
}

inline void print(const util::Table& table) {
  if (csv_mode()) {
    table.print_csv(std::cout);
    std::cout << '\n';
  } else {
    table.print(std::cout);
  }
}

}  // namespace cloudfog::bench
