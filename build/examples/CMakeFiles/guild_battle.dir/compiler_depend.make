# Empty compiler generated dependencies file for guild_battle.
# This may be replaced when dependencies are built.
