file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_social.dir/social/community_partitioner.cpp.o"
  "CMakeFiles/cloudfog_social.dir/social/community_partitioner.cpp.o.d"
  "CMakeFiles/cloudfog_social.dir/social/friendship_tracker.cpp.o"
  "CMakeFiles/cloudfog_social.dir/social/friendship_tracker.cpp.o.d"
  "CMakeFiles/cloudfog_social.dir/social/modularity.cpp.o"
  "CMakeFiles/cloudfog_social.dir/social/modularity.cpp.o.d"
  "CMakeFiles/cloudfog_social.dir/social/social_graph.cpp.o"
  "CMakeFiles/cloudfog_social.dir/social/social_graph.cpp.o.d"
  "libcloudfog_social.a"
  "libcloudfog_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
