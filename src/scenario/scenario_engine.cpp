#include "scenario/scenario_engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace cloudfog::scenario {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// One hour of compiled load shaping.
struct LoadPoint {
  double rate_per_minute = 0.0;
  double departure_fraction = 0.0;  ///< burst applied at the hour's start
};

/// Flattens the spec's load phases into an hour-indexed timeline. Empty
/// for the daily-sessions workload (phases don't apply there).
std::vector<LoadPoint> compile_timeline(const ScenarioSpec& spec) {
  if (spec.daily_sessions) return {};
  const int hours = spec.cycles * 24;
  std::vector<LoadPoint> timeline(static_cast<std::size_t>(hours));
  for (int h = 0; h < hours; ++h) {
    double rate = spec.base_arrival_per_minute;
    if (spec.flash_crowd) {
      const FlashCrowdPhase& fc = *spec.flash_crowd;
      const int t = h - fc.start_hour;
      double shape = 0.0;
      if (t >= 0 && t < fc.ramp_hours) {
        shape = static_cast<double>(t + 1) / static_cast<double>(std::max(1, fc.ramp_hours));
      } else if (t >= fc.ramp_hours && t < fc.ramp_hours + fc.plateau_hours) {
        shape = 1.0;
      } else if (t >= fc.ramp_hours + fc.plateau_hours &&
                 t < fc.ramp_hours + fc.plateau_hours + fc.decay_hours) {
        const int t2 = t - fc.ramp_hours - fc.plateau_hours;
        shape = 1.0 - static_cast<double>(t2 + 1) / static_cast<double>(fc.decay_hours + 1);
      }
      rate += fc.peak_per_minute * shape;
    }
    if (spec.diurnal) {
      const DiurnalPhase& d = *spec.diurnal;
      for (int r = 0; r < d.regions; ++r) {
        // Each region's evening wave peaks at its local hour 12 past the
        // 06:00 trough; regions lag each other by the timezone stagger.
        double local = std::fmod(static_cast<double>(h) - static_cast<double>(r) * d.stagger_hours, 24.0);
        if (local < 0.0) local += 24.0;
        const double wave = std::sin(2.0 * kPi * (local - 6.0) / 24.0);
        if (wave > 0.0) rate += d.amplitude_per_minute * wave;
      }
    }
    timeline[static_cast<std::size_t>(h)].rate_per_minute = rate;
  }
  if (spec.churn_storm) {
    const ChurnStormPhase& cs = *spec.churn_storm;
    if (cs.start_hour >= 0 && cs.start_hour < hours) {
      timeline[static_cast<std::size_t>(cs.start_hour)].departure_fraction =
          cs.departure_fraction;
      if (cs.pause_arrivals) {
        const int end = std::min(hours, cs.start_hour + cs.duration_hours);
        for (int h = cs.start_hour; h < end; ++h) {
          timeline[static_cast<std::size_t>(h)].rate_per_minute = 0.0;
        }
      }
    }
  }
  return timeline;
}

core::TestbedConfig testbed_config(const ScenarioSpec& spec) {
  return spec.profile == core::TestbedProfile::kPeerSim
             ? core::TestbedConfig::peersim(spec.players)
             : core::TestbedConfig::planetlab(spec.players);
}

/// Translates the spec into the SystemConfig of the arm under test.
core::SystemConfig system_config(const ScenarioSpec& spec, const core::Testbed& testbed) {
  core::SystemConfig cfg;
  cfg.architecture = core::Architecture::kCloudFog;
  cfg.strategies.reputation = spec.reputation;
  cfg.strategies.rate_adaptation = spec.rate_adaptation;
  cfg.strategies.social_assignment = spec.social_assignment;
  cfg.strategies.provisioning = spec.provisioning;
  cfg.supernode_count = std::min(spec.supernodes, testbed.supernode_capable().size());
  if (!spec.daily_sessions) {
    cfg.workload = core::WorkloadMode::kArrivalRates;
    cfg.arrivals =
        core::ArrivalWorkload{spec.base_arrival_per_minute, spec.base_arrival_per_minute};
  }
  if (spec.selection_deadline_ms > 0.0) {
    cfg.fog.selection.deadline_budget_ms = spec.selection_deadline_ms;
  }
  cfg.adversary = spec.adversary;

  if (spec.faults_per_hour > 0.0 || spec.outage) {
    cfg.faults.enabled = true;
    cfg.faults.faults_per_hour = spec.faults_per_hour;
    cfg.faults.horizon_s = static_cast<double>(spec.cycles) * 24.0 * 3600.0;
  }
  if (spec.outage) {
    const OutagePhase& out = *spec.outage;
    // Geo-select the victims: the fleet the System will instantiate, in
    // fleet order, so spec indices line up with supernode ids.
    const auto fleet = testbed.make_supernode_fleet(cfg.supernode_count);
    std::vector<fault::NodePosition> positions;
    positions.reserve(fleet.size());
    for (const auto& sn : fleet) {
      positions.push_back(
          fault::NodePosition{sn.endpoint.position.x_km, sn.endpoint.position.y_km});
    }
    // Background chaos during a regional-outage scenario is regional too.
    cfg.faults.positions = positions;
    cfg.faults.target_box = out.box;

    const double at_s = static_cast<double>(out.start_hour) * 3600.0 + 1.0;
    const double duration_s = static_cast<double>(out.duration_hours) * 3600.0;
    for (fault::FaultSpec spec_out : fault::regional_outage_specs(
             positions, out.box, at_s, duration_s, out.crash_fraction, out.loss_fraction,
             out.delay_ms, spec.seed)) {
      cfg.faults.extra_specs.push_back(spec_out);
    }
    if (out.partition) {
      // Partition the datacenter region closest to the dark box from the
      // one farthest away — the ISP's backbone link went with it.
      const auto dcs = testbed.make_datacenters();
      if (dcs.size() >= 2) {
        const double cx = out.box.center_x_km();
        const double cy = out.box.center_y_km();
        std::size_t nearest = 0;
        std::size_t farthest = 0;
        double best = 0.0;
        double worst = 0.0;
        for (std::size_t i = 0; i < dcs.size(); ++i) {
          const double dx = dcs[i].endpoint.position.x_km - cx;
          const double dy = dcs[i].endpoint.position.y_km - cy;
          const double d2 = dx * dx + dy * dy;
          if (i == 0 || d2 < best) {
            best = d2;
            nearest = i;
          }
          if (i == 0 || d2 > worst) {
            worst = d2;
            farthest = i;
          }
        }
        if (nearest != farthest) {
          fault::FaultSpec part;
          part.kind = fault::FaultKind::kNetworkPartition;
          part.at_s = at_s;
          part.duration_s = duration_s;
          part.target = nearest;
          part.target_b = farthest;
          cfg.faults.extra_specs.push_back(part);
        }
      }
    }
  }
  return cfg;
}

double clamp_finite(double v) {
  if (std::isnan(v)) return 0.0;
  return std::clamp(v, -1e12, 1e12);
}

}  // namespace

double ScenarioOutcome::metric(std::string_view metric_name) const {
  for (const ScenarioMetric& m : metrics) {
    if (m.name == metric_name) return m.value;
  }
  return 0.0;
}

ScenarioEngine::ScenarioEngine(ScenarioSpec spec, ScenarioRunOptions opts)
    : spec_(std::move(spec)) {
  if (opts.smoke) {
    spec_.players = std::min(spec_.players, opts.smoke_max_players);
    if (spec_.cycles > opts.smoke_max_cycles) {
      // Clamp proportionally: phases anchored past the new horizon would
      // silently never fire, so refuse those specs instead of mis-running.
      spec_.cycles = opts.smoke_max_cycles;
    }
    spec_.warmup = std::min(spec_.warmup, spec_.cycles - 1);
    const int horizon_hours = spec_.cycles * 24;
    CLOUDFOG_REQUIRE(!spec_.outage || spec_.outage->start_hour < horizon_hours,
                     "smoke clamp pushed the outage outside the horizon");
    CLOUDFOG_REQUIRE(!spec_.churn_storm || spec_.churn_storm->start_hour < horizon_hours,
                     "smoke clamp pushed the churn storm outside the horizon");
  }
  if (opts.reputation_override) spec_.reputation = *opts.reputation_override;
  if (opts.seed_override) {
    spec_.seed = *opts.seed_override;
    spec_.system_seed = 0;
  }
}

ScenarioOutcome ScenarioEngine::run(const core::Testbed* shared_testbed) {
  std::optional<core::Testbed> local;
  if (shared_testbed == nullptr) {
    local.emplace(testbed_config(spec_), spec_.seed);
  } else {
    CLOUDFOG_REQUIRE(shared_testbed->players().size() == spec_.players,
                     "shared testbed population does not match the scenario");
  }
  const core::Testbed& testbed = shared_testbed != nullptr ? *shared_testbed : *local;

  const std::uint64_t sys_seed = spec_.system_seed != 0 ? spec_.system_seed : spec_.seed;
  core::System sys(testbed, system_config(spec_, testbed), sys_seed);
  if (!spec_.game_mix.empty()) sys.set_game_mix(spec_.game_mix);

  const std::vector<LoadPoint> timeline = compile_timeline(spec_);

  auto& rec = obs::Recorder::global();
  const std::string label = "scenario." + spec_.name;
  if (rec.enabled()) rec.begin_run(label);

  const sim::CycleConfig cadence;  // subcycle + peak-window defaults
  const int per_day = cadence.subcycles_per_cycle;

  // Per-subcycle samples of the adversary's share of fog-served sessions
  // (the session-weighted view a victim population actually experiences).
  std::uint64_t fog_samples = 0;
  std::uint64_t adversary_samples = 0;

  for (int day = 1; day <= spec_.cycles; ++day) {
    const bool warmup = day <= spec_.warmup;
    sys.begin_cycle(day);
    for (int sub = 1; sub <= per_day; ++sub) {
      const std::size_t hour = static_cast<std::size_t>((day - 1) * per_day + (sub - 1));
      if (!timeline.empty()) {
        const LoadPoint& lp = timeline[hour];
        sys.set_arrival_rate_override(lp.rate_per_minute);
        if (lp.departure_fraction > 0.0) sys.force_departures(lp.departure_fraction);
      }
      const bool peak =
          sub >= cadence.peak_start_subcycle && sub <= cadence.peak_end_subcycle;
      sys.run_subcycle(day, sub, warmup, peak);
      if (!warmup && sys.adversary() != nullptr) {
        for (const core::PlayerState& p : sys.players()) {
          if (!p.online || p.serving.kind != core::ServingKind::kSupernode) continue;
          ++fog_samples;
          if (sys.adversary()->is_member(p.serving.index)) ++adversary_samples;
        }
      }
    }
    sys.end_cycle(day);
  }
  if (!timeline.empty()) sys.drain_sessions();  // arrival accounting: joins == leaves

  const core::RunMetrics& m = sys.metrics();

  // Reputation false positives: honest supernodes the (post-run) ratings
  // condemn — a mean private score below 0.5 across every player that
  // rated them, despite never sabotaging anybody.
  double reputation_fp_pct = 0.0;
  {
    std::vector<double> score_sum(sys.fleet().size(), 0.0);
    std::vector<std::uint64_t> score_count(sys.fleet().size(), 0);
    for (const core::PlayerState& p : sys.players()) {
      for (reputation::SupernodeId sn : p.reputation.rated_supernodes()) {
        if (sn >= score_sum.size()) continue;
        score_sum[sn] += p.reputation.score(sn, spec_.cycles);
        ++score_count[sn];
      }
    }
    std::uint64_t honest_rated = 0;
    std::uint64_t false_positives = 0;
    for (std::size_t i = 0; i < sys.fleet().size(); ++i) {
      if (sys.adversary() != nullptr && sys.adversary()->is_member(i)) continue;
      if (score_count[i] == 0) continue;
      ++honest_rated;
      if (score_sum[i] / static_cast<double>(score_count[i]) < 0.5) ++false_positives;
    }
    if (honest_rated > 0) {
      reputation_fp_pct =
          100.0 * static_cast<double>(false_positives) / static_cast<double>(honest_rated);
    }
  }

  ScenarioOutcome outcome;
  outcome.name = spec_.name;
  outcome.label = label;
  outcome.metrics = {
      {"continuity", m.continuity.mean()},
      {"latency_ms", m.response_latency_ms.mean()},
      {"satisfied_pct", m.satisfied_fraction.mean() * 100.0},
      {"mos", m.mos.mean()},
      {"cloud_egress_mbps", m.cloud_egress_mbps.mean()},
      {"fog_served_pct", m.fog_served_fraction.mean() * 100.0},
      {"online_mean", m.online_sessions.mean()},
      {"cloud_fallback_pct", m.fallback_residency.mean() * 100.0},
      {"fallbacks", static_cast<double>(m.fallbacks)},
      {"fog_returns", static_cast<double>(m.fog_returns)},
      {"migrations", static_cast<double>(m.migration_latency_ms.count())},
      {"migration_storm", static_cast<double>(m.migration_storm_peak)},
      {"mttr_s", m.mttr_ms.empty() ? 0.0 : m.mttr_ms.mean() / 1000.0},
      {"interrupted", static_cast<double>(m.sessions_interrupted)},
      {"joins", static_cast<double>(m.player_join_latency_ms.count())},
      {"adversary_served_pct",
       fog_samples == 0 ? 0.0
                        : 100.0 * static_cast<double>(adversary_samples) /
                              static_cast<double>(fog_samples)},
      {"reputation_fp_pct", reputation_fp_pct},
  };
  outcome.envelope = spec_.envelope.check(outcome.metrics);
  outcome.passed = outcome.envelope.passed;

  if (rec.enabled()) {
    obs::RunSummary summary =
        core::summarize_run(m, label, sys.collector().recorded_subcycles());
    auto push_stat = [&summary](std::string name, double value) {
      obs::StatSummary st;
      st.name = std::move(name);
      st.count = 1;
      st.mean = clamp_finite(value);
      summary.stats.push_back(std::move(st));
    };
    // Envelope verdict + per-bound headroom, so the run store trends how
    // close each scenario sails to its envelope over time.
    push_stat("envelope.pass", outcome.passed ? 1.0 : 0.0);
    push_stat("envelope.min_margin", outcome.envelope.min_margin);
    for (const BoundCheck& check : outcome.envelope.checks) {
      push_stat("envelope.margin." + check.bound.metric, check.margin);
    }
    push_stat("scenario.adversary_served_pct", outcome.metric("adversary_served_pct"));
    push_stat("scenario.reputation_fp_pct", reputation_fp_pct);
    rec.add_run_summary(std::move(summary));
  }
  return outcome;
}

util::Table envelope_table(const ScenarioOutcome& outcome) {
  util::Table table("Scenario " + outcome.name + " — acceptance envelope");
  table.set_header({"metric", "value", "min", "max", "margin", "verdict"});
  for (const BoundCheck& check : outcome.envelope.checks) {
    table.add_row({check.bound.metric, util::format_double(check.value, 3),
                   check.bound.min ? util::format_double(*check.bound.min, 3) : "-",
                   check.bound.max ? util::format_double(*check.bound.max, 3) : "-",
                   util::format_double(clamp_finite(check.margin), 3),
                   check.passed ? "pass" : "FAIL"});
  }
  return table;
}

util::Table chaos_sweep_table(core::TestbedProfile profile,
                              const std::vector<double>& faults_per_hour,
                              const core::ExperimentScale& scale) {
  util::Table table("Chaos — QoS and recovery under a mixed fault schedule");
  table.set_header({"faults/hour", "continuity", "latency (ms)", "satisfied (%)",
                    "migrations", "mttr (s)", "fallback res (%)", "interrupted"});
  const core::TestbedConfig tb_cfg = profile == core::TestbedProfile::kPeerSim
                                         ? core::TestbedConfig::peersim()
                                         : core::TestbedConfig::planetlab();
  const core::Testbed testbed(tb_cfg, scale.seed);
  for (double rate : faults_per_hour) {
    ScenarioEngine engine(chaos_scenario(profile, rate, scale));
    const ScenarioOutcome out = engine.run(&testbed);
    table.add_row({util::format_double(rate, 2),
                   util::format_double(out.metric("continuity"), 3),
                   util::format_double(out.metric("latency_ms"), 1),
                   util::format_double(out.metric("satisfied_pct"), 1),
                   util::format_double(out.metric("migrations"), 0),
                   util::format_double(out.metric("mttr_s"), 3),
                   util::format_double(out.metric("cloud_fallback_pct"), 2),
                   util::format_double(out.metric("interrupted"), 0)});
  }
  return table;
}

}  // namespace cloudfog::scenario
