// Reproduces Fig. 4 (PeerSim) and Fig. 5 (PlanetLab): user coverage as a
// function of the number of datacenters / supernodes, for game network
// latency requirements of 30–110 ms.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const std::vector<double> reqs{30, 50, 70, 90, 110};
  const std::uint64_t seed = bench::scale_from_args(argc, argv).seed;

  bench::print(core::coverage_vs_datacenters(core::TestbedProfile::kPeerSim,
                                             {5, 10, 15, 20, 25}, reqs, seed));
  bench::print(core::coverage_vs_supernodes(core::TestbedProfile::kPeerSim,
                                            {0, 100, 200, 300, 400, 500, 600}, reqs, seed));
  bench::print(core::coverage_vs_datacenters(core::TestbedProfile::kPlanetLab,
                                             {2, 4, 6, 8, 10}, reqs, seed));
  bench::print(core::coverage_vs_supernodes(core::TestbedProfile::kPlanetLab,
                                            {0, 5, 10, 15, 20, 25, 30}, reqs, seed));
  return 0;
}
