// ShardPool scheduling and worker-hygiene contract (DESIGN.md §10/§13):
// every shard runs exactly once, shard exceptions surface from run(), and
// a worker that returns with an obs capture still installed — or a capture
// re-installed before its previous region was replayed — is a ConfigError.
#include "util/shard_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace cloudfog {
namespace {

TEST(ShardPoolTest, RunsEveryShardExactlyOnce) {
  util::ShardPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  std::vector<std::atomic<int>> hits(17);
  pool.run(17, [&](int s) { hits[static_cast<std::size_t>(s)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ShardPoolTest, ReusableAcrossRuns) {
  util::ShardPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.run(8, [&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(ShardPoolTest, ShardExceptionPropagates) {
  util::ShardPool pool(2);
  EXPECT_THROW(
      pool.run(4,
               [&](int s) {
                 if (s == 2) throw ConfigError("boom");
               }),
      ConfigError);
  // The pool survives a failed run.
  std::atomic<int> ok{0};
  pool.run(4, [&](int) { ok++; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ShardPoolTest, RejectsWorkerLeftWithCaptureInstalled) {
  util::ShardPool pool(2);
  std::vector<obs::ObsCapture> captures(4);
  // A shard body that forgets to uninstall its capture leaves the worker
  // thread dirty; the pool's hygiene probe must fail the whole run.
  EXPECT_THROW(pool.run(4,
                        [&](int s) {
                          obs::Recorder::set_thread_capture(
                              &captures[static_cast<std::size_t>(s)]);
                        }),
               ConfigError);
  // Clean up the worker threads' thread-local state for later tests.
  pool.run(4, [&](int) { obs::Recorder::set_thread_capture(nullptr); });
}

TEST(ShardPoolTest, DisciplinedCaptureUseIsAccepted) {
  auto& rec = obs::Recorder::global();
  const bool was_enabled = rec.enabled();
  rec.set_enabled(true);
  const auto id = rec.registry().counter("shard_pool_test.hits");
  const auto before = rec.registry().counter_value(id);

  util::ShardPool pool(2);
  std::vector<obs::ObsCapture> captures(6);
  pool.run(6, [&](int s) {
    auto* cap = &captures[static_cast<std::size_t>(s)];
    obs::Recorder::set_thread_capture(cap);
    obs::Recorder::global().count(id);
    obs::Recorder::set_thread_capture(nullptr);
  });
  for (auto& cap : captures) {
    EXPECT_FALSE(cap.empty());
    rec.replay(cap);
    EXPECT_TRUE(cap.empty());
  }
  EXPECT_EQ(rec.registry().counter_value(id), before + 6);
  rec.set_enabled(was_enabled);
}

TEST(RecorderCaptureTest, RejectsUnreplayedCaptureBuffer) {
  auto& rec = obs::Recorder::global();
  const bool was_enabled = rec.enabled();
  rec.set_enabled(true);
  const auto id = rec.registry().counter("shard_pool_test.stale");

  obs::ObsCapture cap;
  obs::Recorder::set_thread_capture(&cap);
  rec.count(id);
  obs::Recorder::set_thread_capture(nullptr);
  ASSERT_FALSE(cap.empty());

  // Re-installing the buffer without replaying it would interleave the old
  // region's emissions into the new one.
  EXPECT_THROW(obs::Recorder::set_thread_capture(&cap), ConfigError);

  rec.replay(cap);
  EXPECT_TRUE(cap.empty());
  obs::Recorder::set_thread_capture(&cap);  // now legal again
  obs::Recorder::set_thread_capture(nullptr);
  rec.set_enabled(was_enabled);
}

}  // namespace
}  // namespace cloudfog
