// Lint fixture: the statics the rule must NOT flag — const/constexpr data,
// static functions, class members, and a justified suppression.
// Must stay fully lint-clean.
#include <string>

namespace fixture {
namespace {

static const int kWindow = 8;
static constexpr double kScale = 1.5;

static int scaled(int x) { return x * kWindow; }

const std::string& label() {
  static const std::string name = "fixture";
  return name;
}

int& sanctioned_counter() {
  static int value = 0;  // NOLINT(cloudfog-static-mutable): fixture demonstrates a justified suppression
  return value;
}

}  // namespace

double stretch(int x) { return kScale * scaled(x) + sanctioned_counter() + label().size(); }

}  // namespace fixture
