file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_forecast.dir/forecast/baselines.cpp.o"
  "CMakeFiles/cloudfog_forecast.dir/forecast/baselines.cpp.o.d"
  "CMakeFiles/cloudfog_forecast.dir/forecast/sarima.cpp.o"
  "CMakeFiles/cloudfog_forecast.dir/forecast/sarima.cpp.o.d"
  "CMakeFiles/cloudfog_forecast.dir/forecast/timeseries.cpp.o"
  "CMakeFiles/cloudfog_forecast.dir/forecast/timeseries.cpp.o.d"
  "libcloudfog_forecast.a"
  "libcloudfog_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
