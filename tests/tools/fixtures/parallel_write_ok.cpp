// Lint fixture: the sanctioned shard discipline — region code writes only
// its own locals and CF_SHARD_LOCAL slots. Must stay fully lint-clean.
#define CF_PARALLEL_REGION
#define CF_SHARD_LOCAL

#include <vector>

namespace fixture {

struct Engine {
  CF_SHARD_LOCAL std::vector<double> acc_;
  CF_SHARD_LOCAL std::vector<int> samples_;

  void run_pass(int shards) {
    auto body = CF_PARALLEL_REGION [&](int shard) {
      double local = 0.0;
      for (int i = 0; i < shard; ++i) {
        local += 1.0;
      }
      acc_[shard] = local;
      samples_[shard] = shard;
    };
    (void)body;
    (void)shards;
  }
};

}  // namespace fixture
