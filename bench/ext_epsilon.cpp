// Ablation: Eq. 15 sizes the supernode fleet as (1+ε)·N̂/Ĉ — seats per
// forecast player. But seats are only useful where players are, so ε must
// also absorb the geographic mismatch between seat supply and demand.
// This sweep shows the cliff: small ε deploys "enough" seats on paper yet
// strands players on the cloud; large ε wastes update-feed bandwidth.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale =
      bench::scale_from_args(argc, argv, core::ExperimentScale::provisioning());
  // Peak rate chosen so the Eq. 15 fleet size is the binding constraint
  // (higher rates saturate the whole contributed fleet and flatten ε out).
  bench::print(core::epsilon_ablation(core::TestbedProfile::kPeerSim,
                                      {0.0, 0.25, 0.5, 1.0, 1.5, 2.0},
                                      /*peak_rate_per_min=*/10.0, scale));
  return 0;
}
