file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_game.dir/game/activity_model.cpp.o"
  "CMakeFiles/cloudfog_game.dir/game/activity_model.cpp.o.d"
  "CMakeFiles/cloudfog_game.dir/game/game_catalog.cpp.o"
  "CMakeFiles/cloudfog_game.dir/game/game_catalog.cpp.o.d"
  "CMakeFiles/cloudfog_game.dir/game/quality_ladder.cpp.o"
  "CMakeFiles/cloudfog_game.dir/game/quality_ladder.cpp.o.d"
  "CMakeFiles/cloudfog_game.dir/game/workload.cpp.o"
  "CMakeFiles/cloudfog_game.dir/game/workload.cpp.o.d"
  "libcloudfog_game.a"
  "libcloudfog_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
