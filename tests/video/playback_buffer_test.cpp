#include "video/playback_buffer.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::video {
namespace {

TEST(PlaybackBuffer, AccumulatesSurplus) {
  PlaybackBuffer buf(1e6);
  // Eq. 8: s grows by dt * (d − b_p).
  const auto r = buf.step(2.0, /*download=*/800e3, /*playback=*/500e3);
  EXPECT_DOUBLE_EQ(r.buffered_bits, 600e3);
  EXPECT_DOUBLE_EQ(r.starved_bits, 0.0);
  EXPECT_DOUBLE_EQ(r.overflow_bits, 0.0);
}

TEST(PlaybackBuffer, DrainsUnderDeficit) {
  PlaybackBuffer buf(1e6);
  buf.step(1.0, 800e3, 0.0);  // preload 800k
  const auto r = buf.step(1.0, 200e3, 500e3);
  EXPECT_DOUBLE_EQ(r.buffered_bits, 500e3);
}

TEST(PlaybackBuffer, StarvationReported) {
  PlaybackBuffer buf(1e6);
  const auto r = buf.step(1.0, 100e3, 500e3);
  EXPECT_DOUBLE_EQ(r.buffered_bits, 0.0);
  EXPECT_DOUBLE_EQ(r.starved_bits, 400e3);
}

TEST(PlaybackBuffer, OverflowClampsAtCapacity) {
  PlaybackBuffer buf(500e3);
  const auto r = buf.step(1.0, 800e3, 0.0);
  EXPECT_DOUBLE_EQ(r.buffered_bits, 500e3);
  EXPECT_DOUBLE_EQ(r.overflow_bits, 300e3);
}

TEST(PlaybackBuffer, SteadyStateBalanced) {
  PlaybackBuffer buf(1e6);
  buf.step(1.0, 500e3, 0.0);
  for (int i = 0; i < 10; ++i) {
    const auto r = buf.step(1.0, 500e3, 500e3);
    EXPECT_DOUBLE_EQ(r.buffered_bits, 500e3);
    EXPECT_DOUBLE_EQ(r.starved_bits, 0.0);
  }
}

TEST(PlaybackBuffer, SetCapacityClampsContents) {
  PlaybackBuffer buf(1e6);
  buf.step(1.0, 900e3, 0.0);
  buf.set_capacity(400e3);
  EXPECT_DOUBLE_EQ(buf.buffered_bits(), 400e3);
}

TEST(PlaybackBuffer, ClearEmpties) {
  PlaybackBuffer buf(1e6);
  buf.step(1.0, 500e3, 0.0);
  buf.clear();
  EXPECT_DOUBLE_EQ(buf.buffered_bits(), 0.0);
}

TEST(PlaybackBuffer, ZeroDtIsNoop) {
  PlaybackBuffer buf(1e6);
  buf.step(1.0, 300e3, 0.0);
  const auto r = buf.step(0.0, 999e3, 999e3);
  EXPECT_DOUBLE_EQ(r.buffered_bits, 300e3);
}

TEST(PlaybackBuffer, RejectsInvalidInput) {
  EXPECT_THROW(PlaybackBuffer(0.0), cloudfog::ConfigError);
  PlaybackBuffer buf(1e6);
  EXPECT_THROW(buf.step(-1.0, 0.0, 0.0), cloudfog::ConfigError);
  EXPECT_THROW(buf.step(1.0, -1.0, 0.0), cloudfog::ConfigError);
  EXPECT_THROW(buf.set_capacity(0.0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::video
