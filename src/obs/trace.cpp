#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "util/require.hpp"

namespace cloudfog::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRunStart: return "run_start";
    case EventKind::kSubcycle: return "subcycle";
    case EventKind::kPlayerJoin: return "player_join";
    case EventKind::kPlayerLeave: return "player_leave";
    case EventKind::kSupernodeJoin: return "supernode_join";
    case EventKind::kSupernodeChurn: return "supernode_churn";
    case EventKind::kProbeSent: return "probe_sent";
    case EventKind::kProbeAnswered: return "probe_answered";
    case EventKind::kCapacityClaim: return "capacity_claim";
    case EventKind::kMigration: return "migration";
    case EventKind::kRateSwitch: return "rate_switch";
    case EventKind::kProvisioning: return "provisioning";
    case EventKind::kRating: return "rating";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kFaultCleared: return "fault_cleared";
    case EventKind::kRetryAttempt: return "retry_attempt";
    case EventKind::kRetryExhausted: return "retry_exhausted";
    case EventKind::kCloudFallback: return "cloud_fallback";
    case EventKind::kFogReturn: return "fog_return";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void TraceBuffer::push(TraceEvent event) {
  ++total_pushed_;
  if (size_ == ring_.size()) {
    if (sink_ != nullptr) {
      flush();
    } else {
      // Overwrite the oldest event.
      ring_[head_] = std::move(event);
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
      return;
    }
  }
  ring_[(head_ + size_) % ring_.size()] = std::move(event);
  ++size_;
}

void TraceBuffer::set_sink(std::ostream* sink) {
  sink_ = sink;
  if (sink_ != nullptr) flush();
}

void TraceBuffer::flush() {
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < size_; ++i) {
      write_jsonl(*sink_, ring_[(head_ + i) % ring_.size()]);
      ++total_sunk_;
    }
  }
  head_ = 0;
  size_ = 0;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

void TraceBuffer::clear() {
  head_ = 0;
  size_ = 0;
  total_pushed_ = 0;
  total_sunk_ = 0;
  dropped_ = 0;
}

void TraceBuffer::write_jsonl(std::ostream& os, const TraceEvent& event) {
  os << "{\"t\":" << json_number(event.t) << ",\"kind\":\"" << event_kind_name(event.kind)
     << '"';
  if (event.subject >= 0) os << ",\"subject\":" << event.subject;
  if (event.object >= 0) os << ",\"object\":" << event.object;
  if (event.value != 0.0) os << ",\"value\":" << json_number(event.value);
  if (!event.note.empty()) os << ",\"note\":\"" << json_escape(event.note) << '"';
  os << "}\n";
}

}  // namespace cloudfog::obs
