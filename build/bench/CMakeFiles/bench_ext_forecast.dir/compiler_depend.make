# Empty compiler generated dependencies file for bench_ext_forecast.
# This may be replaced when dependencies are built.
