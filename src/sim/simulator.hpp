// Discrete-event simulator core. This plus CycleDriver is the functional
// replacement for PeerSim used by the paper's evaluation: event-driven
// scheduling for protocol timing (joins, probes, migrations) and a
// cycle/subcycle overlay for the day/hour structure of the workload.
#pragma once

#include <functional>

#include "sim/event_queue.hpp"

namespace cloudfog::sim {

class Simulator {
 public:
  Simulator() = default;

  /// Current simulation time (seconds).
  SimTime now() const { return now_; }

  /// Schedules `cb` to run `delay` seconds from now. Requires delay >= 0.
  EventId schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Schedules `cb` at an absolute time >= now().
  EventId schedule_at(SimTime at, EventQueue::Callback cb);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or `until` is reached (events at exactly
  /// `until` are executed). Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Executes at most one event; returns false if the queue is empty.
  bool step();

  bool pending() const { return !queue_.empty(); }
  std::size_t pending_count() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

/// Repeats `body` every `period` seconds, starting at `start`, until
/// cancelled. Returns the id of the *first* occurrence; the task reschedules
/// itself, so to stop it the body should capture and flip a flag (helper:
/// PeriodicTask).
class PeriodicTask {
 public:
  /// `body` receives the firing time. The task is live until stop().
  PeriodicTask(Simulator& sim, SimTime start, SimTime period,
               std::function<void(SimTime)> body);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm(SimTime at);

  Simulator& sim_;
  SimTime period_;
  std::function<void(SimTime)> body_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace cloudfog::sim
