file(REMOVE_RECURSE
  "CMakeFiles/evening_peak.dir/evening_peak.cpp.o"
  "CMakeFiles/evening_peak.dir/evening_peak.cpp.o.d"
  "evening_peak"
  "evening_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evening_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
