file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_core.dir/core/baselines.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/baselines.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/cloud.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/cloud.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/entities.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/entities.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/experiment.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/fog_manager.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/fog_manager.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/metrics.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/provisioner.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/provisioner.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/qos_engine.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/qos_engine.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/system.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/system.cpp.o.d"
  "CMakeFiles/cloudfog_core.dir/core/testbed.cpp.o"
  "CMakeFiles/cloudfog_core.dir/core/testbed.cpp.o.d"
  "libcloudfog_core.a"
  "libcloudfog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
