// Contributor-market dynamics (§3.1.1 made operational).
//
// The paper: "An organization or a player considers to contribute a
// supernode only when it brings about certain profit … different
// contributors set their own thresholds based on their expectations."
// This module simulates that feedback loop. Each round:
//   * the fog's streaming demand is split across the active fleet
//     (proportionally to capacity), fixing every contributor's
//     utilization u_j;
//   * each active contributor evaluates Eq. 1 profit and withdraws if it
//     falls below its personal threshold;
//   * each inactive candidate estimates the profit it would make at the
//     fleet's current utilization and joins if that clears its threshold.
// The fleet converges to an equilibrium where marginal contributors are
// indifferent — which is how the provider's choice of c_s (the per-unit
// reward) controls the fleet size.
#pragma once

#include <cstddef>
#include <vector>

#include "economics/incentives.hpp"
#include "util/rng.hpp"

namespace cloudfog::economics {

struct Contributor {
  double upload_capacity = 10.0;   ///< c_j (bandwidth units)
  double running_cost = 0.3;       ///< cost_j per round
  double profit_threshold = 0.5;   ///< joins/stays only above this
  bool active = false;
};

struct ContributorMarketConfig {
  double reward_per_unit = 0.5;  ///< c_s
  /// Join inertia: an eligible candidate joins each round with this
  /// probability (contributors do not all react instantly).
  double join_probability = 0.3;
};

struct MarketRound {
  std::size_t active = 0;
  double fleet_capacity = 0.0;     ///< Σ c_j over active contributors
  double mean_utilization = 0.0;   ///< demand-driven u of the fleet
  double served_demand = 0.0;      ///< min(demand, fleet capacity)
  std::size_t joined = 0;
  std::size_t left = 0;
};

class ContributorMarket {
 public:
  ContributorMarket(std::vector<Contributor> candidates, ContributorMarketConfig cfg,
                    util::Rng rng);

  const ContributorMarketConfig& config() const { return cfg_; }
  const std::vector<Contributor>& candidates() const { return candidates_; }
  std::size_t active_count() const;
  double active_capacity() const;

  /// Changes the provider's reward rate mid-simulation.
  void set_reward(double reward_per_unit);

  /// One decision round against `demand` bandwidth units of fog traffic.
  MarketRound step(double demand);

  /// Runs rounds until joins+leaves is 0 (or `max_rounds`); returns the
  /// last round's state.
  MarketRound run_to_equilibrium(double demand, int max_rounds = 200);

 private:
  /// Fleet-wide utilization if `capacity` is active under `demand`.
  static double utilization(double demand, double capacity);

  std::vector<Contributor> candidates_;
  ContributorMarketConfig cfg_;
  util::Rng rng_;
};

/// A population of heterogeneous candidates for the market experiments.
std::vector<Contributor> sample_contributor_population(std::size_t n, util::Rng& rng);

}  // namespace cloudfog::economics
