#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace cloudfog::obs {
namespace {

/// The recorder is a process-wide singleton; every test starts from a
/// clean, enabled state and leaves it disabled.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Recorder::global().reset();
    Recorder::global().set_enabled(true);
  }
  void TearDown() override {
    Recorder::global().reset();
    Recorder::global().set_enabled(false);
  }
};

TEST_F(RecorderTest, DisabledTraceIsNoOp) {
  auto& rec = Recorder::global();
  rec.set_enabled(false);
  rec.trace(EventKind::kPlayerJoin, 1);
  EXPECT_EQ(rec.trace_buffer().total_pushed(), 0u);
}

TEST_F(RecorderTest, EventsCarrySimTime) {
  auto& rec = Recorder::global();
  rec.set_sim_time(3600.0);
  rec.trace(EventKind::kSubcycle, 1, 2);
  const auto events = rec.trace_buffer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].t, 3600.0);
}

TEST_F(RecorderTest, ClockNeverRunsBackwards) {
  auto& rec = Recorder::global();
  rec.set_sim_time(100.0);
  rec.trace(EventKind::kSubcycle, 1, 1);
  rec.set_sim_time(50.0);  // a component mis-stepping backwards
  rec.trace(EventKind::kSubcycle, 1, 2);
  const auto events = rec.trace_buffer().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[1].t, events[0].t);
}

TEST_F(RecorderTest, BeginRunRebasesAcrossRuns) {
  auto& rec = Recorder::global();
  rec.begin_run("first");
  rec.set_sim_time(500.0);
  rec.trace(EventKind::kPlayerJoin, 1);
  rec.begin_run("second");  // the new run restarts its sim clock at zero
  rec.set_sim_time(10.0);
  rec.trace(EventKind::kPlayerJoin, 2);
  const auto events = rec.trace_buffer().events();
  ASSERT_EQ(events.size(), 4u);  // two kRunStart + two joins
  double last = events[0].t;
  for (const auto& e : events) {
    EXPECT_GE(e.t, last);
    last = e.t;
  }
  EXPECT_EQ(events[2].kind, EventKind::kRunStart);
  EXPECT_EQ(events[2].note.text(), "second");
}

TEST_F(RecorderTest, ScopedTimerRecordsOnlyWhenEnabled) {
  auto& rec = Recorder::global();
  for (int i = 0; i < 3; ++i) {
    CLOUDFOG_TIMED_SCOPE("test.phase");
  }
  rec.set_enabled(false);
  {
    CLOUDFOG_TIMED_SCOPE("test.phase");
  }
  rec.set_enabled(true);
  const auto* stats = rec.profiler().find("test.phase");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 3u);
  EXPECT_GE(stats->max_ns, stats->min_ns);
}

TEST_F(RecorderTest, PhaseProfilerBucketsByLog2) {
  EXPECT_EQ(PhaseProfiler::bucket_for(0), 0u);
  EXPECT_EQ(PhaseProfiler::bucket_for(1), 0u);
  EXPECT_EQ(PhaseProfiler::bucket_for(2), 1u);
  EXPECT_EQ(PhaseProfiler::bucket_for(1023), 9u);
  EXPECT_EQ(PhaseProfiler::bucket_for(1024), 10u);
  // Durations past the last bucket saturate instead of indexing out.
  EXPECT_EQ(PhaseProfiler::bucket_for(~0ull), PhaseProfiler::kBuckets - 1);
}

TEST_F(RecorderTest, ReportJsonContainsAllSections) {
  auto& rec = Recorder::global();
  rec.begin_run("arm-a");
  rec.registry().add(rec.registry().counter("test.counter"), 7);
  rec.registry().set(rec.registry().gauge("test.gauge"), 2.5);
  rec.registry().observe(rec.registry().histogram("test.hist", 0.0, 10.0, 4), 3.0);
  rec.profiler().record(rec.profiler().phase("test.phase"), 1500);

  RunSummary run;
  run.label = "arm-a";
  run.measured_subcycles = 12;
  StatSummary stat;
  stat.name = "response_latency_ms";
  stat.count = 12;
  stat.mean = 100.0;
  stat.has_percentiles = true;
  stat.p50 = 99.0;
  stat.p95 = 140.0;
  stat.p99 = 150.0;
  run.stats.push_back(stat);
  rec.add_run_summary(run);

  std::ostringstream os;
  write_report_json(os, rec);
  const std::string json = os.str();
  EXPECT_NE(json.find("cloudfog.run_report/1"), std::string::npos);
  EXPECT_NE(json.find("\"arm-a\""), std::string::npos);
  EXPECT_NE(json.find("\"response_latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\":140"), std::string::npos);
  EXPECT_NE(json.find("\"test.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  // Balanced braces — cheap structural sanity check.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(RecorderTest, ResetClearsValuesAndRuns) {
  auto& rec = Recorder::global();
  const CounterId id = rec.registry().counter("test.reset");
  rec.registry().add(id, 3);
  rec.trace(EventKind::kPlayerJoin, 1);
  rec.add_run_summary(RunSummary{});
  rec.reset();
  EXPECT_EQ(rec.registry().counter_value(id), 0u);
  EXPECT_EQ(rec.trace_buffer().total_pushed(), 0u);
  EXPECT_TRUE(rec.runs().empty());
}

}  // namespace
}  // namespace cloudfog::obs
