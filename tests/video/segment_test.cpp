#include "video/segment.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::video {
namespace {

TEST(Segment, BitsIsBitrateTimesDuration) {
  EXPECT_DOUBLE_EQ(segment_bits(SegmentSpec{1.0, 800.0}), 800000.0);
  EXPECT_DOUBLE_EQ(segment_bits(SegmentSpec{2.0, 500.0}), 1000000.0);
}

TEST(Segment, SegmentsFromBitsInverse) {
  const SegmentSpec spec{1.0, 1200.0};
  EXPECT_DOUBLE_EQ(segments_from_bits(segment_bits(spec), spec), 1.0);
  EXPECT_DOUBLE_EQ(segments_from_bits(3.0 * segment_bits(spec), spec), 3.0);
  EXPECT_DOUBLE_EQ(segments_from_bits(0.0, spec), 0.0);
}

TEST(Segment, RejectsInvalidSpec) {
  EXPECT_THROW(segment_bits(SegmentSpec{0.0, 800.0}), cloudfog::ConfigError);
  EXPECT_THROW(segment_bits(SegmentSpec{1.0, 0.0}), cloudfog::ConfigError);
  EXPECT_THROW(segments_from_bits(-1.0, SegmentSpec{1.0, 800.0}), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::video
