// A complete gaming system under evaluation: one of the paper's arms
// (Cloud, CDN/EdgeCloud, CloudFog basic or advanced) driving a shared
// player population through cycles and subcycles.
//
// The four §3 strategies are independent toggles, so any ablation the
// evaluation needs (Figs. 10–15) runs through the same code path:
//   * reputation          — supernode selection order (§3.2)
//   * rate_adaptation     — receiver-driven bitrate control (§3.3)
//   * social_assignment   — community-based server placement (§3.4)
//   * provisioning        — SARIMA-driven supernode deployment (§3.5)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/cloud.hpp"
#include "core/entities.hpp"
#include "core/fog_manager.hpp"
#include "core/metrics.hpp"
#include "core/provisioner.hpp"
#include "core/qos_engine.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"
#include "scenario/adversary.hpp"
#include "sim/cycle_driver.hpp"
#include "sim/simulator.hpp"
#include "social/community_partitioner.hpp"
#include "social/friendship_tracker.hpp"
#include "video/rate_adapter.hpp"

namespace cloudfog::core {

enum class Architecture { kCloudDirect, kCdn, kCloudFog };

struct StrategyToggles {
  bool reputation = false;
  bool rate_adaptation = false;
  bool social_assignment = false;
  bool provisioning = false;

  static StrategyToggles none() { return {}; }
  static StrategyToggles all() { return {true, true, true, true}; }
};

/// How the online population evolves.
enum class WorkloadMode {
  kDailySessions,  ///< §4.1 default: every player rolls a daily session
  kArrivalRates,   ///< §4.3.4: Poisson arrivals at peak/off-peak rates
};

struct ArrivalWorkload {
  double offpeak_per_minute = 5.0;
  double peak_per_minute = 30.0;
};

/// §4.1: designated throttler supernodes limit their offered bandwidth.
struct ThrottlingConfig {
  double fraction_throttle_80 = 0.20;  ///< 1/5 of supernodes may run at 80 %
  double fraction_throttle_50 = 0.10;  ///< 1/10 may run at 50 %
  double throttle_probability = 0.5;   ///< chance a designee throttles, per cycle
};

/// §3.6 extension: adversarial supernodes that deliberately delay video.
/// Legacy alias for a fixed-delay adversary — a non-zero fraction here is
/// translated into scenario::AdversaryConfig{kFixedDelay} at construction
/// (same rng stream, byte-identical runs). New code should configure
/// SystemConfig::adversary directly.
struct MaliciousConfig {
  double fraction = 0.0;       ///< share of the fleet that is malicious
  double delay_ms = 80.0;      ///< deliberate per-packet hold-back
};

struct SystemConfig {
  Architecture architecture = Architecture::kCloudFog;
  StrategyToggles strategies;
  WorkloadMode workload = WorkloadMode::kDailySessions;
  ArrivalWorkload arrivals;
  FogManagerConfig fog;
  QosEngineConfig qos;
  ProvisionerConfig provisioning;
  ThrottlingConfig throttling;
  MaliciousConfig malicious;
  /// Adversarial supernode behaviour (whitewashing, collusion, on-off…).
  /// Takes precedence over `malicious` when its kind is not kNone.
  scenario::AdversaryConfig adversary;
  video::RateAdapterConfig adapter;  ///< `enabled` is overwritten from strategies

  /// CDN serving bound: beyond this RTT a player falls back to the cloud.
  double cdn_max_rtt_ms = 250.0;
  /// Response-latency cost of one fully cross-server interaction (§3.4).
  double cross_server_penalty_ms = 40.0;
  /// Share of a player's in-game interactions that involve friends (the
  /// rest hit effectively random players).
  double friend_interaction_weight = 0.6;
  /// Social reassignment cadence, in days ("e.g., weekly").
  int reassign_period_days = 7;
  /// h1/h2 — §3.4 notes the repetition count trades clustering quality
  /// against computation; with the O(deg)-per-trial incremental
  /// modularity, a generous budget is cheap, and the weekly cadence
  /// amortizes it.
  int partitioner_swap_trials = 50000;  ///< h1
  int partitioner_miss_limit = 5000;    ///< h2

  /// Chaos schedule (CloudFog arms only; `faults.enabled` gates everything —
  /// disabled leaves every run bit-identical to a build without the
  /// subsystem). supernode_count / region_count / horizon are filled in by
  /// the System; a zero `faults.seed` derives one from the system seed, and
  /// CLOUDFOG_FAULT_SEED overrides either.
  fault::FaultPlanConfig faults;
  /// Hysteresis for fault-driven cloud fallback (§ DESIGN.md 8.3).
  fault::FallbackConfig fallback;

  std::size_t supernode_count = 600;  ///< fleet size (CloudFog arms)
  /// Supernodes deployed when provisioning is off (0 = entire fleet) —
  /// the fixed pool of the §4.3.4 CloudFog/B arm.
  std::size_t fixed_deployment = 0;
  std::size_t cdn_server_count = 300;  ///< CDN arms

  /// Candidate-discovery data structure (DESIGN.md §10). kLinear is the
  /// reference scan kept for equality tests and the tracked bench
  /// baseline; both produce identical candidate lists.
  CandidateMode discovery = CandidateMode::kGrid;
};

class System {
 public:
  System(const Testbed& testbed, SystemConfig cfg, std::uint64_t seed);

  const SystemConfig& config() const { return cfg_; }
  const std::vector<PlayerState>& players() const { return players_; }
  const std::vector<SupernodeState>& fleet() const { return fleet_; }
  const std::vector<CdnServerState>& cdn_servers() const { return cdn_; }
  const Cloud& cloud() const { return cloud_; }
  MetricsCollector& collector() { return collector_; }
  const RunMetrics& metrics() const { return collector_.metrics(); }

  /// Runs the full cycle schedule and returns the collected metrics.
  const RunMetrics& run(const sim::CycleConfig& cycles);

  /// Manual driving (used by the experiment harness for sweeps that need
  /// to poke the system between subcycles).
  void begin_cycle(int day);
  SubcycleQos run_subcycle(int day, int subcycle, bool warmup, bool peak);
  void end_cycle(int day);

  // --- Scenario-engine hooks (src/scenario). All of them perturb the rng
  // stream only when actually exercised, so a System that never sees a
  // scenario stays byte-identical to one built before this layer existed.

  /// Overrides the arrival-rate workload's per-minute rate for subsequent
  /// subcycles (nullopt restores the configured peak/off-peak rates).
  /// Setting a rate of 0 pauses arrivals entirely.
  void set_arrival_rate_override(std::optional<double> per_minute) {
    arrival_rate_override_ = per_minute;
  }

  /// Mass-churn burst: each online player leaves with probability
  /// `fraction`. Returns the number of departures.
  std::size_t force_departures(double fraction);

  /// Weighted game choice for the arrival-rate workload: weights[g] biases
  /// catalog game g (missing entries weigh 0). Empty restores the activity
  /// model's popularity distribution.
  void set_game_mix(std::vector<double> weights) { game_mix_ = std::move(weights); }

  /// Ends every live session (end-of-run accounting for arrival-rate
  /// workloads, so joins == leaves holds). Returns sessions ended.
  std::size_t drain_sessions();

  /// The adversary driving this run, if any.
  const scenario::AdversaryModel* adversary() const { return adversary_.get(); }

  /// Fig. 9: fails `count` random serving supernodes and migrates their
  /// players; returns one migration latency per displaced player.
  std::vector<double> inject_supernode_failures(std::size_t count, int day);
  void recover_supernodes();

  /// Chaos-run introspection (meaningful only with `faults.enabled`).
  const fault::FaultState& fault_state() const { return fault_state_; }
  const fault::FaultInjector* injector() const { return injector_.get(); }
  const fault::FallbackGovernor& fallback_governor() const { return fallback_; }

  /// Fig. 9: wall-clock seconds of one social server-assignment pass over
  /// the current population.
  double measure_server_assignment_seconds();

  /// Fig. 9: simulated join latency of every fleet supernode.
  std::vector<double> supernode_join_latencies() const;

  /// Fig. 4/5: fraction of players within `network_latency_req_ms` RTT of
  /// any serving point of this architecture (datacenters always count;
  /// deployed supernodes / CDN servers per the architecture).
  double coverage(double network_latency_req_ms) const;

 private:
  void roll_daily_sessions(int day);
  void apply_throttling(int day);
  game::GameId choose_game_from_mix(util::Rng& rng) const;
  void process_population(int day, int subcycle, bool peak);
  void attach_player(PlayerState& p, int day);
  void retry_cloud_fallback(PlayerState& p, int day);
  void detach_player(PlayerState& p);
  void update_cross_server_latency();
  void maybe_run_provisioning(int day, int subcycle);
  void reassign_servers(int day, bool record_latency);
  void migrate_players_off_undeployed(int day);
  void setup_fault_injection(std::uint64_t seed);
  /// FaultInjector crash hooks: fail the victim (resolving kAnyTarget) and
  /// displace its players; un-fail it on clear.
  std::size_t on_crash(const fault::FaultSpec& spec);
  void on_crash_cleared(const fault::FaultSpec& spec, std::size_t target);

  const Testbed& testbed_;
  SystemConfig cfg_;
  util::Rng rng_;
  Cloud cloud_;
  FogManager fog_;
  QosEngine qos_;
  Provisioner provisioner_;
  std::vector<PlayerState> players_;
  std::vector<SupernodeState> fleet_;
  std::vector<CdnServerState> cdn_;
  social::FriendshipTracker coplay_;
  social::Partition partition_;  ///< player -> global server index
  int total_servers_ = 1;
  std::vector<char> throttle80_;  ///< designated 80 %-throttlers
  std::vector<char> throttle50_;
  MetricsCollector collector_;
  double mean_fleet_capacity_ = 1.0;
  /// Supernodes deployed at construction; dynamic provisioning adds
  /// temporary capacity above this pool and releases back down to it,
  /// never below (§3.5 pre-deploys *extra* supernodes before peaks).
  std::size_t base_deployment_ = 0;

  // Fault-injection state. The fault simulator's clock is the global
  // subcycle hour; run_subcycle advances it to each subcycle boundary so
  // scheduled faults fire between QoS evaluations. `fault_rng_` is seeded
  // from the raw system seed (not rng_.fork, which mutates the parent) so
  // the no-fault stream stays bit-identical.
  sim::Simulator fault_sim_;
  fault::FaultState fault_state_;
  std::unique_ptr<fault::FaultInjector> injector_;
  fault::FallbackGovernor fallback_;
  util::Rng fault_rng_;
  int current_day_ = 1;  ///< day seen by the crash hooks for rating decay

  // Adversary (legacy MaliciousConfig is translated into one at
  // construction; null when neither is configured).
  std::unique_ptr<scenario::AdversaryModel> adversary_;

  // Arrival-rate workload state.
  std::vector<int> remaining_subcycles_;  ///< per player; 0 = offline
  std::optional<double> arrival_rate_override_;  ///< scenario load shaping
  std::vector<double> game_mix_;                 ///< scenario workload mix
  // Provisioning window accumulation.
  double window_online_sum_ = 0.0;
  int window_subcycles_ = 0;
};

}  // namespace cloudfog::core
