#include "util/rng.hpp"

#include "util/require.hpp"

namespace cloudfog::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash64(std::string_view s) {
  // FNV-1a, then a SplitMix64 finalizer to spread low-entropy inputs.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Rng::next_double() {
  // 53 random bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CLOUDFOG_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) {
  CLOUDFOG_REQUIRE(lo < hi, "uniform bounds inverted");
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  CLOUDFOG_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  return next_double() < p;
}

Rng Rng::fork(std::string_view label) {
  const std::uint64_t seed = splitmix64(next_u64() ^ hash64(label));
  const std::uint64_t stream = splitmix64(seed ^ 0x5851f42d4c957f2dULL);
  return Rng(seed, stream);
}

}  // namespace cloudfog::util
