#include "obs/registry.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::obs {

RegistrySnapshot RegistrySnapshot::delta_since(const RegistrySnapshot& earlier) const {
  RegistrySnapshot out = *this;
  for (std::size_t i = 0; i < out.counters.size() && i < earlier.counters.size(); ++i) {
    out.counters[i] -= std::min(earlier.counters[i], out.counters[i]);
  }
  for (std::size_t h = 0; h < out.histogram_counts.size() && h < earlier.histogram_counts.size();
       ++h) {
    auto& bins = out.histogram_counts[h];
    const auto& old_bins = earlier.histogram_counts[h];
    for (std::size_t b = 0; b < bins.size() && b < old_bins.size(); ++b) {
      bins[b] -= std::min(old_bins[b], bins[b]);
    }
  }
  return out;
}

template <typename Id>
Id Registry::intern(std::string_view name, std::vector<std::string>& names) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return Id{static_cast<std::uint32_t>(i)};
  }
  names.emplace_back(name);
  return Id{static_cast<std::uint32_t>(names.size() - 1)};
}

CounterId Registry::counter(std::string_view name) {
  const CounterId id = intern<CounterId>(name, counter_names_);
  counters_.resize(counter_names_.size(), 0);
  return id;
}

GaugeId Registry::gauge(std::string_view name) {
  const GaugeId id = intern<GaugeId>(name, gauge_names_);
  gauges_.resize(gauge_names_.size(), 0.0);
  return id;
}

HistogramId Registry::histogram(std::string_view name, double lo, double hi,
                                std::size_t bins) {
  CLOUDFOG_REQUIRE(hi > lo, "histogram range inverted");
  CLOUDFOG_REQUIRE(bins > 0, "histogram needs at least one bin");
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return HistogramId{static_cast<std::uint32_t>(i)};
  }
  HistogramCell cell;
  cell.name = std::string(name);
  cell.lo = lo;
  cell.hi = hi;
  cell.counts.assign(bins, 0);
  histograms_.push_back(std::move(cell));
  return HistogramId{static_cast<std::uint32_t>(histograms_.size() - 1)};
}

void Registry::observe(HistogramId id, double x) {
  HistogramCell& cell = histograms_[id.index];
  const double width =
      (cell.hi - cell.lo) / static_cast<double>(cell.counts.size());
  auto bin = static_cast<std::ptrdiff_t>((x - cell.lo) / width);
  if (bin < 0) {
    bin = 0;
    ++cell.underflow;
  } else if (bin >= static_cast<std::ptrdiff_t>(cell.counts.size())) {
    bin = static_cast<std::ptrdiff_t>(cell.counts.size()) - 1;
    ++cell.overflow;
  }
  ++cell.counts[static_cast<std::size_t>(bin)];
  ++cell.total;
}

double Registry::HistogramCell::bin_low(std::size_t bin) const {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + width * static_cast<double>(bin);
}

double Registry::HistogramCell::bin_high(std::size_t bin) const {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + width * static_cast<double>(bin + 1);
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return counters_[i];
  }
  return 0;
}

double Registry::gauge_value(std::string_view name) const {
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return gauges_[i];
  }
  return 0.0;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histogram_counts.reserve(histograms_.size());
  for (const auto& cell : histograms_) snap.histogram_counts.push_back(cell.counts);
  return snap;
}

void Registry::reset_values() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  for (auto& cell : histograms_) {
    std::fill(cell.counts.begin(), cell.counts.end(), 0);
    cell.total = 0;
    cell.underflow = 0;
    cell.overflow = 0;
  }
}

}  // namespace cloudfog::obs
