#include "social/social_graph.hpp"

#include <algorithm>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::social {

SocialGraph::SocialGraph(std::size_t n) : adjacency_(n) {}

bool SocialGraph::add_friendship(PlayerId a, PlayerId b) {
  CLOUDFOG_REQUIRE(a < adjacency_.size() && b < adjacency_.size(), "player id out of range");
  if (a == b) return false;
  if (are_friends(a, b)) return false;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
  return true;
}

bool SocialGraph::are_friends(PlayerId a, PlayerId b) const {
  CLOUDFOG_REQUIRE(a < adjacency_.size() && b < adjacency_.size(), "player id out of range");
  const auto& smaller = adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const PlayerId other = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

const std::vector<PlayerId>& SocialGraph::friends(PlayerId p) const {
  CLOUDFOG_REQUIRE(p < adjacency_.size(), "player id out of range");
  return adjacency_[p];
}

std::vector<std::pair<PlayerId, PlayerId>> SocialGraph::edges() const {
  std::vector<std::pair<PlayerId, PlayerId>> out;
  out.reserve(edge_count_);
  for (PlayerId a = 0; a < adjacency_.size(); ++a) {
    for (PlayerId b : adjacency_[a]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

SocialGraph generate_power_law_graph(std::size_t n, const SocialGraphConfig& cfg,
                                     util::Rng& rng) {
  CLOUDFOG_REQUIRE(cfg.max_degree >= cfg.min_degree, "degree bounds inverted");
  CLOUDFOG_REQUIRE(cfg.in_guild_fraction >= 0.0 && cfg.in_guild_fraction <= 1.0,
                   "in-guild fraction out of [0,1]");
  CLOUDFOG_REQUIRE(cfg.guild_size_min >= 2 && cfg.guild_size_max >= cfg.guild_size_min,
                   "bad guild size bounds");
  SocialGraph graph(n);
  if (n < 2) return graph;

  const int max_deg = std::min<int>(cfg.max_degree, static_cast<int>(n) - 1);
  const auto degrees =
      util::sample_power_law_degrees(rng, n, cfg.power_law_skew, cfg.min_degree, max_deg);

  // Carve the (shuffled) population into guilds of random size.
  std::vector<PlayerId> order(n);
  for (PlayerId p = 0; p < n; ++p) order[p] = p;
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<std::size_t> guild_id(n, 0);
  std::vector<std::vector<PlayerId>> guilds;
  for (std::size_t start = 0; start < n;) {
    const auto size = std::min<std::size_t>(
        n - start,
        static_cast<std::size_t>(rng.uniform_int(cfg.guild_size_min, cfg.guild_size_max)));
    std::vector<PlayerId> members(order.begin() + static_cast<std::ptrdiff_t>(start),
                                  order.begin() + static_cast<std::ptrdiff_t>(start + size));
    for (PlayerId m : members) guild_id[m] = guilds.size();
    guilds.push_back(std::move(members));
    start += size;
  }

  // Attachment: in-guild partners are drawn uniformly (guild-mates know
  // each other regardless of popularity), global partners are drawn from
  // a degree-weighted stub list (Chung–Lu) so hubs attract the long-range
  // friendships and the power law survives. Each player initiates about
  // half its stubs; the other half arrives as incoming edges. Bounded
  // retries avoid self-loops and duplicate edges.
  std::vector<PlayerId> global_stubs;
  for (PlayerId p = 0; p < n; ++p) {
    global_stubs.insert(global_stubs.end(),
                        static_cast<std::size_t>(std::max(1, degrees[p])), p);
  }

  for (PlayerId p = 0; p < n; ++p) {
    const int initiate = (degrees[p] + 1) / 2;
    const auto& guild = guilds[guild_id[p]];
    for (int s = 0; s < initiate; ++s) {
      const bool guild_pick = guild.size() >= 2 && rng.chance(cfg.in_guild_fraction);
      for (int attempt = 0; attempt < 8; ++attempt) {
        PlayerId q;
        if (guild_pick) {
          q = guild[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(guild.size()) - 1))];
        } else {
          q = global_stubs[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(global_stubs.size()) - 1))];
        }
        if (graph.add_friendship(p, q)) break;
      }
    }
  }
  return graph;
}

}  // namespace cloudfog::social
