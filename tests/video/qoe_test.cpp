#include "video/qoe.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::video {
namespace {

TEST(Qoe, MosStaysOnTheScale) {
  const QoeModel model;
  for (double lat : {0.0, 50.0, 100.0, 300.0, 1000.0}) {
    for (double cont : {0.0, 0.5, 1.0}) {
      for (double br : {300.0, 800.0, 1800.0}) {
        const double mos = model.mos(lat, cont, br);
        ASSERT_GE(mos, 1.0);
        ASSERT_LE(mos, 5.0);
      }
    }
  }
}

TEST(Qoe, PerfectSessionNearFive) {
  const QoeModel model;
  EXPECT_GT(model.mos(10.0, 1.0, 1800.0), 4.5);
}

TEST(Qoe, DisasterSessionNearOne) {
  const QoeModel model;
  EXPECT_LT(model.mos(500.0, 0.0, 300.0), 1.2);
}

TEST(Qoe, LatencyKneeIsHalfway) {
  const QoeModel model;
  EXPECT_NEAR(model.latency_factor(100.0), 0.5, 1e-9);
  EXPECT_GT(model.latency_factor(50.0), 0.7);
  EXPECT_LT(model.latency_factor(200.0), 0.1);
}

TEST(Qoe, MosMonotoneInEachFactor) {
  const QoeModel model;
  EXPECT_GT(model.mos(60.0, 0.9, 800.0), model.mos(140.0, 0.9, 800.0));
  EXPECT_GT(model.mos(60.0, 0.95, 800.0), model.mos(60.0, 0.6, 800.0));
  EXPECT_GT(model.mos(60.0, 0.9, 1800.0), model.mos(60.0, 0.9, 300.0));
}

TEST(Qoe, StallsHurtSuperLinearly) {
  const QoeModel model;
  // Halving continuity costs more than half the continuity factor.
  EXPECT_LT(model.continuity_factor(0.5), 0.5 * model.continuity_factor(1.0) + 1e-12);
}

TEST(Qoe, BitrateHasDiminishingReturns) {
  const QoeModel model;
  const double low_step = model.quality_factor(600.0) - model.quality_factor(300.0);
  const double high_step = model.quality_factor(1800.0) - model.quality_factor(1500.0);
  EXPECT_GT(low_step, high_step);
  EXPECT_DOUBLE_EQ(model.quality_factor(300.0), 0.0);
  EXPECT_DOUBLE_EQ(model.quality_factor(1800.0), 1.0);
}

TEST(Qoe, ExtremeBitratesClamp) {
  const QoeModel model;
  EXPECT_DOUBLE_EQ(model.quality_factor(100.0), 0.0);
  EXPECT_DOUBLE_EQ(model.quality_factor(99999.0), 1.0);
}

TEST(Qoe, Validation) {
  QoeModelConfig cfg;
  cfg.latency_knee_ms = 0.0;
  EXPECT_THROW(QoeModel{cfg}, cloudfog::ConfigError);
  cfg = QoeModelConfig{};
  cfg.max_bitrate_kbps = cfg.min_bitrate_kbps;
  EXPECT_THROW(QoeModel{cfg}, cloudfog::ConfigError);
  const QoeModel model;
  EXPECT_THROW(model.mos(-1.0, 0.5, 800.0), cloudfog::ConfigError);
  EXPECT_THROW(model.mos(50.0, 1.5, 800.0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::video
