# Empty compiler generated dependencies file for bench_fig13_provisioning_bw.
# This may be replaced when dependencies are built.
