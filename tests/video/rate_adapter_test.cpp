#include "video/rate_adapter.hpp"

#include <gtest/gtest.h>

#include "game/game_catalog.hpp"
#include "util/require.hpp"

namespace cloudfog::video {
namespace {

const game::GameCatalog& catalog() {
  static const game::GameCatalog instance = game::GameCatalog::paper_default();
  return instance;
}

RateAdapterConfig config(int consecutive = 3) {
  RateAdapterConfig cfg;
  cfg.consecutive_required = consecutive;
  // Deterministic up-switching for the unit tests; the probabilistic
  // desynchronization is covered by its own test below.
  cfg.consecutive_up_required = consecutive;
  cfg.up_probability = 1.0;
  return cfg;
}

TEST(RateAdapter, StartsAtGameDefaultLevel) {
  const RateAdapter adapter(catalog(), /*game=*/4, config());  // MMORPG, level 5
  EXPECT_EQ(adapter.current_level().level, 5);
  EXPECT_DOUBLE_EQ(adapter.current_bitrate_kbps(), 1800.0);
}

TEST(RateAdapter, ThresholdsFollowRhoScaling) {
  // Game 0 (ρ = 0.6) must have higher thresholds than game 4 (ρ = 1.0):
  // latency-sensitive games demand a bigger safety buffer (§3.3).
  const RateAdapter strict(catalog(), 0, config());
  const RateAdapter lenient(catalog(), 4, config());
  const double beta = catalog().ladder().adjust_up_factor();
  EXPECT_NEAR(strict.up_threshold(), (1.0 + beta) / 0.6, 1e-12);
  EXPECT_NEAR(lenient.up_threshold(), (1.0 + beta) / 1.0, 1e-12);
  EXPECT_NEAR(strict.down_threshold(), 0.5 / 0.6, 1e-12);
  EXPECT_NEAR(lenient.down_threshold(), 0.5, 1e-12);
  EXPECT_GT(strict.up_threshold(), lenient.up_threshold());
}

TEST(RateAdapter, StepsDownAfterConsecutiveStarvation) {
  RateAdapter adapter(catalog(), 4, config(3));
  // Downloading at half the playback rate: buffer stays near empty,
  // r < θ/ρ every estimate.
  int downs = 0;
  for (int i = 0; i < 3; ++i) {
    const auto out = adapter.step(2.0, 900e3);
    if (out.decision == RateDecision::kDown) ++downs;
  }
  EXPECT_EQ(downs, 1);
  EXPECT_EQ(adapter.current_level().level, 4);  // one level only
}

TEST(RateAdapter, HysteresisRequiresConsecutiveEstimates) {
  RateAdapter adapter(catalog(), 4, config(3));
  adapter.step(2.0, 900e3);   // deficit (1/3)
  adapter.step(2.0, 900e3);   // deficit (2/3)
  // A clearly healthy estimate (large surplus) breaks the streak.
  adapter.step(2.0, 5400e3);
  adapter.step(2.0, 900e3);   // deficit (1/3 again)
  adapter.step(2.0, 900e3);
  EXPECT_EQ(adapter.current_level().level, 5);  // still not adjusted
}

TEST(RateAdapter, StepsUpWhenBufferFills) {
  // Start a level below max, feed surplus until r > (1+β)/ρ holds thrice.
  RateAdapter adapter(catalog(), 4, config(3));
  // First force it down one level.
  for (int i = 0; i < 3; ++i) adapter.step(2.0, 100e3);
  ASSERT_EQ(adapter.current_level().level, 4);
  // Now feed a fat pipe; playback at 1200 kbps, download much higher.
  int ups = 0;
  for (int i = 0; i < 30 && adapter.current_level().level < 5; ++i) {
    if (adapter.step(2.0, 5000e3).decision == RateDecision::kUp) ++ups;
  }
  EXPECT_EQ(adapter.current_level().level, 5);
  EXPECT_EQ(ups, 1);
}

TEST(RateAdapter, NeverExceedsGameDefault) {
  RateAdapter adapter(catalog(), 2, config(1));  // default level 3
  for (int i = 0; i < 50; ++i) adapter.step(2.0, 10000e3);
  EXPECT_EQ(adapter.current_level().level, 3);
}

TEST(RateAdapter, NeverDropsBelowLadderMinimum) {
  RateAdapter adapter(catalog(), 4, config(1));
  for (int i = 0; i < 50; ++i) adapter.step(2.0, 1e3);
  EXPECT_EQ(adapter.current_level().level, 1);
}

TEST(RateAdapter, DisabledAdapterNeverMoves) {
  RateAdapterConfig cfg = config(1);
  cfg.enabled = false;
  RateAdapter adapter(catalog(), 4, cfg);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(adapter.step(2.0, 1e3).decision, RateDecision::kHold);
  }
  EXPECT_EQ(adapter.current_level().level, 5);
}

TEST(RateAdapter, BufferedSegmentsReportedInCurrentSegmentSize) {
  RateAdapter adapter(catalog(), 4, config());  // plays at 1800 kbps
  adapter.step(1.0, 2400e3);  // surplus of 600 kbit over 1 s
  EXPECT_NEAR(adapter.buffered_segments(), 600e3 / 1800e3, 1e-9);
}

TEST(RateAdapter, StarvationSurfacesInOutcome) {
  RateAdapter adapter(catalog(), 4, config());
  const auto out = adapter.step(1.0, 600e3);  // 1200 kbit demanded, 600 got
  EXPECT_GT(out.starved_bits, 0.0);
}

TEST(RateAdapter, ProbabilisticUpSwitchStaggersSessions) {
  // Two adapters with different rng streams and up_probability < 1 reach
  // the up condition together but fire at different times.
  RateAdapterConfig cfg = config(1);
  cfg.up_probability = 0.3;
  RateAdapter a(catalog(), 4, cfg, util::Rng(1));
  RateAdapter b(catalog(), 4, cfg, util::Rng(2));
  // Push both down one level first.
  for (int i = 0; i < 1; ++i) {
    a.step(2.0, 100e3);
    b.step(2.0, 100e3);
  }
  ASSERT_EQ(a.current_level().level, 4);
  int a_up_at = -1;
  int b_up_at = -1;
  for (int t = 0; t < 200 && (a_up_at < 0 || b_up_at < 0); ++t) {
    if (a_up_at < 0 && a.step(2.0, 8000e3).decision == RateDecision::kUp) a_up_at = t;
    if (b_up_at < 0 && b.step(2.0, 8000e3).decision == RateDecision::kUp) b_up_at = t;
  }
  ASSERT_GE(a_up_at, 0);
  ASSERT_GE(b_up_at, 0);
  EXPECT_NE(a_up_at, b_up_at);
}

TEST(RateAdapter, RejectsBadConfig) {
  RateAdapterConfig cfg = config();
  cfg.theta = 0.0;
  EXPECT_THROW(RateAdapter(catalog(), 4, cfg), cloudfog::ConfigError);
  cfg = config();
  cfg.consecutive_required = 0;
  EXPECT_THROW(RateAdapter(catalog(), 4, cfg), cloudfog::ConfigError);
  cfg = config();
  cfg.buffer_capacity_segments = 1.0;  // below the adjust-up threshold
  EXPECT_THROW(RateAdapter(catalog(), 0, cfg), cloudfog::ConfigError);
}

// Property sweep: for every game, the down threshold is θ/ρ and the level
// always stays within [1, default].
class AdapterPerGame : public ::testing::TestWithParam<game::GameId> {};

TEST_P(AdapterPerGame, LevelStaysInBudget) {
  const game::GameId id = GetParam();
  RateAdapter adapter(catalog(), id, config(1));
  const int max_level = catalog().game(id).default_quality_level;
  util::Rng rng(static_cast<std::uint64_t>(id) + 1);
  for (int i = 0; i < 200; ++i) {
    adapter.step(2.0, rng.uniform(0.0, 4000.0) * 1000.0);
    ASSERT_GE(adapter.current_level().level, 1);
    ASSERT_LE(adapter.current_level().level, max_level);
  }
  EXPECT_NEAR(adapter.down_threshold(),
              0.5 / catalog().game(id).latency_tolerance, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllGames, AdapterPerGame, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace cloudfog::video
