#include "net/ip_locator.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace cloudfog::net {
namespace {

TEST(IpLocator, RegisterThenLocate) {
  IpLocator locator(/*error_sigma_km=*/0.0);
  util::Rng rng(1);
  const IpAddress ip = locator.register_node(GeoPoint{100, 200}, rng);
  const auto where = locator.locate(ip);
  ASSERT_TRUE(where.has_value());
  EXPECT_DOUBLE_EQ(where->x_km, 100.0);
  EXPECT_DOUBLE_EQ(where->y_km, 200.0);
}

TEST(IpLocator, UnknownAddressReturnsNullopt) {
  const IpLocator locator;
  EXPECT_FALSE(locator.locate(0xdeadbeef).has_value());
}

TEST(IpLocator, UnregisterRemoves) {
  IpLocator locator;
  util::Rng rng(2);
  const IpAddress ip = locator.register_node(GeoPoint{1, 2}, rng);
  EXPECT_EQ(locator.registered_count(), 1u);
  locator.unregister_node(ip);
  EXPECT_EQ(locator.registered_count(), 0u);
  EXPECT_FALSE(locator.locate(ip).has_value());
}

TEST(IpLocator, AddressesAreUnique) {
  IpLocator locator;
  util::Rng rng(3);
  const IpAddress a = locator.register_node(GeoPoint{0, 0}, rng);
  const IpAddress b = locator.register_node(GeoPoint{0, 0}, rng);
  EXPECT_NE(a, b);
}

TEST(IpLocator, GeolocationErrorHasConfiguredScale) {
  IpLocator locator(/*error_sigma_km=*/25.0);
  util::Rng rng(4);
  util::RunningStats err_x;
  for (int i = 0; i < 5000; ++i) {
    const IpAddress ip = locator.register_node(GeoPoint{1000, 1000}, rng);
    const auto where = locator.locate(ip);
    err_x.add(where->x_km - 1000.0);
  }
  EXPECT_NEAR(err_x.mean(), 0.0, 2.0);
  EXPECT_NEAR(err_x.stddev(), 25.0, 2.0);
}

TEST(IpLocator, RejectsNegativeSigma) {
  EXPECT_THROW(IpLocator(-1.0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::net
