#include "overlay/network.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::overlay {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : latency_(net::LatencyModelConfig{}), network_(sim_, latency_) {}

  Address add(double x, double access = 5.0, std::vector<Message>* inbox = nullptr) {
    return network_.register_endpoint(net::Endpoint{{x, 0.0}, access},
                                      [inbox](const Message& m) {
                                        if (inbox != nullptr) inbox->push_back(m);
                                      });
  }

  sim::Simulator sim_;
  net::LatencyModel latency_;
  MessageNetwork network_;
};

TEST_F(NetworkTest, DeliversWithPropagationDelay) {
  std::vector<Message> inbox;
  const Address a = add(0.0);
  const Address b = add(1000.0, 5.0, &inbox);
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.kind = MessageKind::kProbe;
  const double at = network_.send(msg);
  EXPECT_GT(at, 0.0);
  sim_.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].kind, MessageKind::kProbe);
  // Delivery delay ≈ one-way latency + serialization.
  const double expected_ms =
      latency_.one_way_ms(network_.endpoint_of(a), network_.endpoint_of(b)) +
      msg.size_bits / 1e6 * 1000.0;
  EXPECT_NEAR(sim_.now() * 1000.0, expected_ms, 1e-6);
}

TEST_F(NetworkTest, MessagesToDownEndpointVanish) {
  std::vector<Message> inbox;
  const Address a = add(0.0);
  const Address b = add(10.0, 5.0, &inbox);
  network_.set_down(b, true);
  Message msg;
  msg.src = a;
  msg.dst = b;
  EXPECT_LT(network_.send(msg), 0.0);
  sim_.run();
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(network_.dropped_count(), 1u);
}

TEST_F(NetworkTest, DeathInFlightDropsMessage) {
  std::vector<Message> inbox;
  const Address a = add(0.0);
  const Address b = add(3000.0, 5.0, &inbox);  // far: long flight time
  Message msg;
  msg.src = a;
  msg.dst = b;
  EXPECT_GT(network_.send(msg), 0.0);  // accepted while b was alive
  network_.set_down(b, true);          // dies before delivery
  sim_.run();
  EXPECT_TRUE(inbox.empty());
}

TEST_F(NetworkTest, LossDropsSomeMessages) {
  NetworkConfig cfg;
  cfg.loss_probability = 0.5;
  MessageNetwork lossy(sim_, latency_, cfg, util::Rng(3));
  int received = 0;
  const Address a = lossy.register_endpoint(net::Endpoint{{0, 0}, 5.0}, [](const Message&) {});
  const Address b = lossy.register_endpoint(net::Endpoint{{10, 0}, 5.0},
                                            [&received](const Message&) { ++received; });
  for (int i = 0; i < 200; ++i) {
    Message msg;
    msg.src = a;
    msg.dst = b;
    lossy.send(msg);
  }
  sim_.run();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(received + static_cast<int>(lossy.dropped_count()), 200);
}

TEST_F(NetworkTest, OrderingFollowsDistance) {
  std::vector<int> arrivals;
  const Address src = add(0.0);
  const Address near = network_.register_endpoint(
      net::Endpoint{{10, 0}, 1.0}, [&arrivals](const Message&) { arrivals.push_back(1); });
  const Address far = network_.register_endpoint(
      net::Endpoint{{4000, 0}, 1.0}, [&arrivals](const Message&) { arrivals.push_back(2); });
  Message to_far;
  to_far.src = src;
  to_far.dst = far;
  network_.send(to_far);  // sent first…
  Message to_near;
  to_near.src = src;
  to_near.dst = near;
  network_.send(to_near);  // …but the near one arrives first
  sim_.run();
  EXPECT_EQ(arrivals, (std::vector<int>{1, 2}));
}

TEST_F(NetworkTest, ValidatesAddresses) {
  Message msg;
  msg.src = 0;
  msg.dst = 99;
  EXPECT_THROW(network_.send(msg), ConfigError);
}

TEST(MessageKindNames, AllDistinct) {
  EXPECT_EQ(to_string(MessageKind::kProbe), "Probe");
  EXPECT_NE(to_string(MessageKind::kCapacityGrant), to_string(MessageKind::kCapacityDeny));
}

}  // namespace
}  // namespace cloudfog::overlay
