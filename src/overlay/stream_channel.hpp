// Event-driven video data plane.
//
// A supernode's uplink is one FIFO serializer shared by all of its
// streams (UplinkScheduler). Each VideoStreamer emits encoded frames at
// the video rate, packetizes them, serializes the packets through the
// shared uplink and delivers them after propagation plus jitter; the
// receiving StreamReceiver scores every packet against the game's
// latency requirement. This is the event-level counterpart of both the
// analytic continuity model (video/continuity.hpp) and the loop-driven
// packet simulation (video/packet_stream.hpp) — with the addition that
// *competing streams contend for one uplink*, the effect that makes
// supernode overload and the §3.3 rate adapter matter.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "video/packet_stream.hpp"

namespace cloudfog::overlay {

/// FIFO serializer for one uplink: enqueue bits, get the completion time.
class UplinkScheduler {
 public:
  UplinkScheduler(sim::Simulator& sim, double rate_kbps);

  double rate_kbps() const { return rate_kbps_; }

  /// Schedules `bits` for transmission; returns the absolute simulation
  /// time at which the last bit leaves the uplink.
  double enqueue(double bits);

  /// Seconds of queued work ahead of a packet enqueued right now.
  double backlog_s() const;

 private:
  sim::Simulator& sim_;
  double rate_kbps_;
  double busy_until_s_ = 0.0;
};

/// Player-side scorekeeper.
class StreamReceiver {
 public:
  explicit StreamReceiver(double requirement_ms);

  double requirement_ms() const { return requirement_ms_; }
  void on_packet(double delivery_latency_ms);
  std::size_t packets() const { return packets_; }
  std::size_t on_time() const { return on_time_; }
  double continuity() const;

 private:
  double requirement_ms_;
  std::size_t packets_ = 0;
  std::size_t on_time_ = 0;
};

struct StreamPath {
  double one_way_ms = 15.0;   ///< supernode → player propagation
  double jitter_mean_ms = 8.0;
  double mtu_bits = 12000.0;
};

/// Server-side sender for one (supernode, player) stream.
class VideoStreamer {
 public:
  VideoStreamer(sim::Simulator& sim, UplinkScheduler& uplink,
                video::FrameEncoderConfig encoder_cfg, StreamPath path,
                StreamReceiver& receiver, util::Rng rng);
  ~VideoStreamer();

  VideoStreamer(const VideoStreamer&) = delete;
  VideoStreamer& operator=(const VideoStreamer&) = delete;

  /// Emits frames at the encoder's fps until stop() (or forever).
  void start();
  void stop();
  bool running() const { return running_; }

  /// Live bitrate change (what the §3.3 adapter commands): subsequent
  /// frames are encoded at the new rate.
  void set_bitrate_kbps(double bitrate_kbps);
  double bitrate_kbps() const { return encoder_cfg_.bitrate_kbps; }

 private:
  void emit_frame();

  sim::Simulator& sim_;
  UplinkScheduler& uplink_;
  video::FrameEncoderConfig encoder_cfg_;
  StreamPath path_;
  StreamReceiver& receiver_;
  util::Rng rng_;
  std::unique_ptr<video::FrameEncoder> encoder_;
  bool running_ = false;
  int epoch_ = 0;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace cloudfog::overlay
