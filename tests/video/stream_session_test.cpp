#include "video/stream_session.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::video {
namespace {

const game::GameCatalog& catalog() {
  static const game::GameCatalog instance = game::GameCatalog::paper_default();
  return instance;
}

PathObservation good_path(double bitrate_headroom_kbps = 4000.0) {
  PathObservation path;
  path.response_latency_ms = 60.0;
  path.video_latency_ms = 20.0;
  path.jitter_mean_ms = 8.0;
  path.throughput_kbps = bitrate_headroom_kbps;
  path.interval_s = 2.0;
  return path;
}

TEST(StreamSession, StartsAtDefaultQuality) {
  const StreamSession session(catalog(), 4, RateAdapterConfig{});
  EXPECT_EQ(session.current_quality_level(), 5);
  EXPECT_DOUBLE_EQ(session.current_bitrate_kbps(), 1800.0);
}

TEST(StreamSession, GoodPathYieldsHighContinuity) {
  StreamSession session(catalog(), 4, RateAdapterConfig{});
  for (int i = 0; i < 10; ++i) {
    const QosSample s = session.observe(good_path());
    EXPECT_GT(s.continuity, 0.95);
  }
  EXPECT_TRUE(session.satisfied());
}

TEST(StreamSession, LatePacketsTankContinuity) {
  StreamSession session(catalog(), 0, RateAdapterConfig{});  // 30 ms budget
  PathObservation path = good_path();
  path.video_latency_ms = 50.0;  // over budget
  const QosSample s = session.observe(path);
  EXPECT_DOUBLE_EQ(s.continuity, 0.0);
  EXPECT_FALSE(session.satisfied());
}

TEST(StreamSession, ThroughputDeficitTriggersAdaptation) {
  RateAdapterConfig cfg;
  cfg.consecutive_required = 2;
  StreamSession session(catalog(), 4, cfg);
  PathObservation path = good_path();
  path.throughput_kbps = 600.0;  // well below 1800 kbps
  bool stepped_down = false;
  for (int i = 0; i < 4; ++i) {
    if (session.observe(path).decision == RateDecision::kDown) stepped_down = true;
  }
  EXPECT_TRUE(stepped_down);
  EXPECT_LT(session.current_bitrate_kbps(), 1800.0);
}

TEST(StreamSession, SampleReportsCurrentBitrate) {
  StreamSession session(catalog(), 2, RateAdapterConfig{});
  const QosSample s = session.observe(good_path());
  EXPECT_DOUBLE_EQ(s.bitrate_kbps, 800.0);
}

TEST(StreamSession, LifetimeContinuityAggregates) {
  StreamSession session(catalog(), 4, RateAdapterConfig{});
  PathObservation bad = good_path();
  bad.video_latency_ms = 300.0;
  session.observe(good_path());
  session.observe(bad);
  EXPECT_GT(session.session_continuity(), 0.3);
  EXPECT_LT(session.session_continuity(), 0.7);
}

TEST(StreamSession, ResetAccountingKeepsLevel) {
  RateAdapterConfig cfg;
  cfg.consecutive_required = 1;
  StreamSession session(catalog(), 4, cfg);
  PathObservation starve = good_path();
  starve.throughput_kbps = 100.0;
  session.observe(starve);
  const int level = session.current_quality_level();
  ASSERT_LT(level, 5);
  session.reset_accounting();
  EXPECT_DOUBLE_EQ(session.session_continuity(), 1.0);
  EXPECT_EQ(session.current_quality_level(), level);
}

TEST(StreamSession, RejectsNonPositiveInterval) {
  StreamSession session(catalog(), 1, RateAdapterConfig{});
  PathObservation path = good_path();
  path.interval_s = 0.0;
  EXPECT_THROW(session.observe(path), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::video
