#include "social/modularity.hpp"

#include "util/require.hpp"

namespace cloudfog::social {

namespace {

/// Per-community tallies: intra-community edge count and cross-edge count
/// touching the community.
struct Tallies {
  std::vector<double> intra;
  std::vector<double> incident;
};

Tallies count_edges(const SocialGraph& graph, const Partition& partition,
                    int community_count) {
  Tallies t{std::vector<double>(static_cast<std::size_t>(community_count), 0.0),
            std::vector<double>(static_cast<std::size_t>(community_count), 0.0)};
  for (const auto& [a, b] : graph.edges()) {
    const auto ca = static_cast<std::size_t>(partition[a]);
    const auto cb = static_cast<std::size_t>(partition[b]);
    if (ca == cb) {
      t.intra[ca] += 1.0;
    } else {
      t.incident[ca] += 1.0;
      t.incident[cb] += 1.0;
    }
  }
  return t;
}

/// Γ = Σ_a (q_aa − p_a²) with q_aa = intra_a/m and
/// p_a = (intra_a + incident_a/2)/m (each cross edge contributes half its
/// weight to each side's row sum of the symmetric Q matrix).
double modularity_from_tallies(const Tallies& t, double total_edges) {
  if (total_edges == 0.0) return 0.0;
  double gamma = 0.0;
  for (std::size_t a = 0; a < t.intra.size(); ++a) {
    const double p_a = (t.intra[a] + t.incident[a] / 2.0) / total_edges;
    gamma += t.intra[a] / total_edges - p_a * p_a;
  }
  return gamma;
}

}  // namespace

double modularity(const SocialGraph& graph, const Partition& partition,
                  int community_count) {
  CLOUDFOG_REQUIRE(partition.size() == graph.player_count(), "partition size mismatch");
  CLOUDFOG_REQUIRE(community_count > 0, "need at least one community");
  for (CommunityId c : partition) {
    CLOUDFOG_REQUIRE(c >= 0 && c < community_count, "community id out of range");
  }
  return modularity_from_tallies(count_edges(graph, partition, community_count),
                                 static_cast<double>(graph.edge_count()));
}

ModularityState::ModularityState(const SocialGraph& graph, Partition partition,
                                 int community_count)
    : graph_(graph),
      partition_(std::move(partition)),
      community_count_(community_count),
      sizes_(static_cast<std::size_t>(community_count), 0),
      total_edges_(static_cast<double>(graph.edge_count())) {
  CLOUDFOG_REQUIRE(partition_.size() == graph.player_count(), "partition size mismatch");
  CLOUDFOG_REQUIRE(community_count > 0, "need at least one community");
  for (CommunityId c : partition_) {
    CLOUDFOG_REQUIRE(c >= 0 && c < community_count, "community id out of range");
    ++sizes_[static_cast<std::size_t>(c)];
  }
  auto tallies = count_edges(graph_, partition_, community_count_);
  intra_ = std::move(tallies.intra);
  incident_ = std::move(tallies.incident);
  if (total_edges_ > 0.0) {
    for (std::size_t a = 0; a < intra_.size(); ++a) restore(static_cast<CommunityId>(a));
  }
}

void ModularityState::retract(CommunityId a) {
  const auto ua = static_cast<std::size_t>(a);
  sum_intra_ -= intra_[ua];
  const double p_a = (intra_[ua] + incident_[ua] / 2.0) / total_edges_;
  sum_p2_ -= p_a * p_a;
}

void ModularityState::restore(CommunityId a) {
  const auto ua = static_cast<std::size_t>(a);
  sum_intra_ += intra_[ua];
  const double p_a = (intra_[ua] + incident_[ua] / 2.0) / total_edges_;
  sum_p2_ += p_a * p_a;
}

double ModularityState::modularity() const {
  if (total_edges_ == 0.0) return 0.0;
  return sum_intra_ / total_edges_ - sum_p2_;
}

void ModularityState::move(PlayerId p, CommunityId target) {
  CLOUDFOG_REQUIRE(p < partition_.size(), "player id out of range");
  CLOUDFOG_REQUIRE(target >= 0 && target < community_count_, "community id out of range");
  const CommunityId from = partition_[p];
  if (from == target) return;

  if (total_edges_ > 0.0) {
    // Communities whose tallies change: from, target, and each friend's.
    // Retract their Γ contributions, adjust, then restore — the affected
    // set is at most deg(p) + 2 communities (duplicates handled by
    // retract/restore being exact inverses per community, so we dedupe).
    std::vector<CommunityId> affected{from, target};
    for (PlayerId f : graph_.friends(p)) {
      const CommunityId cf = partition_[f];
      bool seen = false;
      for (CommunityId c : affected) {
        if (c == cf) {
          seen = true;
          break;
        }
      }
      if (!seen) affected.push_back(cf);
    }
    for (CommunityId c : affected) retract(c);

    for (PlayerId f : graph_.friends(p)) {
      const auto cf = static_cast<std::size_t>(partition_[f]);
      const auto ufrom = static_cast<std::size_t>(from);
      const auto uto = static_cast<std::size_t>(target);
      // Remove edge (p,f) from its old classification…
      if (cf == ufrom) {
        intra_[ufrom] -= 1.0;
      } else {
        incident_[ufrom] -= 1.0;
        incident_[cf] -= 1.0;
      }
      // …and add it under the new one.
      if (cf == uto) {
        intra_[uto] += 1.0;
      } else {
        incident_[uto] += 1.0;
        incident_[cf] += 1.0;
      }
    }
    for (CommunityId c : affected) restore(c);
  }

  partition_[p] = target;
  --sizes_[static_cast<std::size_t>(from)];
  ++sizes_[static_cast<std::size_t>(target)];
}

std::size_t ModularityState::community_size(CommunityId c) const {
  CLOUDFOG_REQUIRE(c >= 0 && c < community_count_, "community id out of range");
  return sizes_[static_cast<std::size_t>(c)];
}

}  // namespace cloudfog::social
