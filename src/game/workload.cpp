#include "game/workload.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace cloudfog::game {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg, util::Rng rng)
    : cfg_(cfg), rng_(rng) {
  CLOUDFOG_REQUIRE(cfg.base_players >= 0.0, "base players must be non-negative");
  CLOUDFOG_REQUIRE(cfg.peak_players >= cfg.base_players, "peak below base");
  CLOUDFOG_REQUIRE(cfg.subcycles_per_day > 0, "need at least one subcycle");
  CLOUDFOG_REQUIRE(cfg.weekly_noise >= 0.0 && cfg.weekly_noise < 1.0,
                   "noise must be in [0,1)");
  CLOUDFOG_REQUIRE(cfg.weekly_growth > -1.0, "growth cannot wipe out the population");
}

double WorkloadGenerator::expected_players(int day, int subcycle) const {
  CLOUDFOG_REQUIRE(day >= 1, "days are 1-based");
  CLOUDFOG_REQUIRE(subcycle >= 1 && subcycle <= cfg_.subcycles_per_day,
                   "subcycle out of range");
  // Smooth daily curve: a raised cosine centred on the middle of the peak
  // window, so the population ramps up through the evening and falls off
  // after midnight — matching the measured diurnal MMOG pattern.
  const double peak_centre =
      0.5 * (cfg_.peak_start_subcycle + cfg_.peak_end_subcycle);
  const double phase = 2.0 * std::numbers::pi *
                       (static_cast<double>(subcycle) - peak_centre) /
                       static_cast<double>(cfg_.subcycles_per_day);
  const double daily = 0.5 * (1.0 + std::cos(phase));  // 1 at peak centre
  double players = cfg_.base_players + (cfg_.peak_players - cfg_.base_players) * daily;

  const int day_of_week = (day - 1) % 7;  // 0 = Monday
  if (day_of_week >= 5) players *= cfg_.weekend_boost;
  const int week = (day - 1) / 7;
  players *= std::pow(1.0 + cfg_.weekly_growth, static_cast<double>(week));
  return players;
}

double WorkloadGenerator::noise_for(int day, int subcycle) {
  const auto idx = static_cast<std::size_t>((day - 1) * cfg_.subcycles_per_day +
                                            (subcycle - 1));
  while (noise_cache_.size() <= idx) {
    noise_cache_.push_back(rng_.uniform(-cfg_.weekly_noise, cfg_.weekly_noise));
  }
  return noise_cache_[idx];
}

double WorkloadGenerator::players(int day, int subcycle) {
  return expected_players(day, subcycle) * (1.0 + noise_for(day, subcycle));
}

std::vector<double> WorkloadGenerator::series(int days) {
  CLOUDFOG_REQUIRE(days >= 1, "need at least one day");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(days * cfg_.subcycles_per_day));
  for (int day = 1; day <= days; ++day) {
    for (int sub = 1; sub <= cfg_.subcycles_per_day; ++sub) {
      out.push_back(players(day, sub));
    }
  }
  return out;
}

}  // namespace cloudfog::game
