// Dynamic supernode provisioning (paper §3.5).
//
// Every m-hour window the provider forecasts the next window's online
// population with the seasonal ARIMA model (Eq. 14), sizes the fleet as
//   N_s = (1 + ε) · N̂ / Ĉ                              (Eq. 15)
// where Ĉ is the mean supernode capacity, and picks which candidates to
// deploy with the rank-harmonic rule
//   P_j = (1/j) / Σ_{n=1..N} (1/n)                      (Eq. 16)
// over candidates ranked by the number of players they supported in the
// previous window (busy areas stay covered).
#pragma once

#include <cstddef>
#include <vector>

#include "core/entities.hpp"
#include "forecast/sarima.hpp"
#include "util/rng.hpp"

namespace cloudfog::core {

struct ProvisionerConfig {
  int window_hours = 4;  ///< m — forecasting window length
  /// ε — fleet over-provisioning factor. Eq. 15 sizes the fleet by raw
  /// seat count; seats are only useful where players are, so ε must also
  /// absorb the geographic imbalance between seat supply and demand.
  double epsilon = 1.0;
  /// T = 24·7/m by default; log-space, since populations are
  /// multiplicative (see SarimaConfig::log_transform).
  forecast::SarimaConfig sarima{42, 0.3, 0.3, true};
};

class Provisioner {
 public:
  explicit Provisioner(ProvisionerConfig cfg);

  const ProvisionerConfig& config() const { return cfg_; }

  /// Feeds the realized online-player count of the window that just ended.
  void observe_window(double online_players);

  /// Eq. 15: supernodes to deploy for the forecast next window. Returns 0
  /// before any history exists. `mean_capacity` is Ĉ.
  std::size_t supernodes_needed(double mean_capacity) const;

  /// Forecast for the next window (persistence until a season of history).
  double forecast_players() const;

  /// Eq. 16: chooses `wanted` distinct supernodes from `fleet` and sets
  /// their `deployed` flags (true for chosen, false for the rest).
  /// Candidates are ranked by supported_last_window descending and drawn
  /// without replacement with rank-harmonic probability; failed
  /// supernodes are skipped. Returns the number actually deployed.
  std::size_t deploy(std::vector<SupernodeState>& fleet, std::size_t wanted,
                     util::Rng& rng) const;

  std::size_t windows_observed() const { return model_.observations(); }

 private:
  ProvisionerConfig cfg_;
  forecast::SeasonalArima model_;
};

}  // namespace cloudfog::core
