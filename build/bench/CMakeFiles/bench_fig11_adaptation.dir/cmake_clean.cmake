file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_adaptation.dir/fig11_adaptation.cpp.o"
  "CMakeFiles/bench_fig11_adaptation.dir/fig11_adaptation.cpp.o.d"
  "bench_fig11_adaptation"
  "bench_fig11_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
