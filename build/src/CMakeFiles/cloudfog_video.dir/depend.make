# Empty dependencies file for cloudfog_video.
# This may be replaced when dependencies are built.
