#include "obs/report.hpp"

#include "obs/json.hpp"

namespace cloudfog::obs {

namespace {

void write_stat(JsonWriter& w, const StatSummary& s) {
  w.key(s.name);
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(s.count));
  w.field("mean", s.mean);
  w.field("stddev", s.stddev);
  w.field("min", s.min);
  w.field("max", s.max);
  if (s.has_percentiles) {
    w.field("p50", s.p50);
    w.field("p95", s.p95);
    w.field("p99", s.p99);
  }
  w.end_object();
}

void write_phase(JsonWriter& w, const PhaseProfiler::PhaseStats& p) {
  w.key(p.name);
  w.begin_object();
  w.field("count", p.count);
  w.field("total_ms", p.total_ms());
  w.field("mean_us", p.mean_us());
  w.field("min_ns", p.min_ns);
  w.field("max_ns", p.max_ns);
  w.field("per_second", p.per_second());
  // Log2 duration histogram, trimmed to the occupied range: entry i covers
  // [2^(first+i), 2^(first+i+1)) nanoseconds.
  std::size_t first = p.log2_ns_buckets.size();
  std::size_t last = 0;
  for (std::size_t b = 0; b < p.log2_ns_buckets.size(); ++b) {
    if (p.log2_ns_buckets[b] != 0) {
      first = std::min(first, b);
      last = b;
    }
  }
  w.key("log2_ns_histogram");
  w.begin_object();
  if (first <= last && first < p.log2_ns_buckets.size()) {
    w.field("first_bucket_log2", static_cast<std::uint64_t>(first));
    w.key("counts");
    w.begin_array();
    for (std::size_t b = first; b <= last; ++b) w.value(p.log2_ns_buckets[b]);
    w.end_array();
  } else {
    w.field("first_bucket_log2", static_cast<std::uint64_t>(0));
    w.key("counts");
    w.begin_array();
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void write_report_json(std::ostream& os, const Recorder& recorder) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", kReportSchema);

  w.key("runs");
  w.begin_array();
  for (const RunSummary& run : recorder.runs()) {
    w.begin_object();
    w.field("label", run.label);
    w.field("measured_subcycles", run.measured_subcycles);
    w.key("metrics");
    w.begin_object();
    for (const StatSummary& s : run.stats) write_stat(w, s);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  const Registry& reg = recorder.registry();
  w.key("counters");
  w.begin_object();
  for (std::size_t i = 0; i < reg.counter_count(); ++i) {
    w.field(reg.counter_name(i), reg.counter_value(CounterId{static_cast<std::uint32_t>(i)}));
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (std::size_t i = 0; i < reg.gauge_count(); ++i) {
    w.field(reg.gauge_name(i), reg.gauge_value(GaugeId{static_cast<std::uint32_t>(i)}));
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (std::size_t i = 0; i < reg.histogram_count(); ++i) {
    const auto& cell = reg.histogram_cell(i);
    w.key(cell.name);
    w.begin_object();
    w.field("lo", cell.lo);
    w.field("hi", cell.hi);
    w.field("total", cell.total);
    w.field("underflow", cell.underflow);
    w.field("overflow", cell.overflow);
    w.key("counts");
    w.begin_array();
    for (const std::uint64_t c : cell.counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("phases");
  w.begin_object();
  for (const auto& p : recorder.profiler().phases()) {
    if (p.count > 0) write_phase(w, p);
  }
  w.end_object();

  const TraceBuffer& trace = recorder.trace_buffer();
  w.key("trace");
  w.begin_object();
  w.field("pushed", trace.total_pushed());
  w.field("sunk", trace.total_sunk());
  w.field("buffered", static_cast<std::uint64_t>(trace.size()));
  w.field("dropped", trace.dropped());
  w.field("sampled_out", trace.sampled_out());
  w.field("aggregated", trace.aggregated());
  w.field("capacity", static_cast<std::uint64_t>(trace.capacity()));
  switch (trace.retention()) {
    case TraceRetention::kFull: w.field("retention", "full"); break;
    case TraceRetention::kSampled:
      w.field("retention", "sampled");
      w.field("sample_every", trace.sample_every());
      break;
    case TraceRetention::kAggregated: w.field("retention", "aggregated"); break;
  }
  w.end_object();

  w.end_object();
  os << '\n';
}

}  // namespace cloudfog::obs
