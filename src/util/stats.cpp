#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace cloudfog::util {

namespace {

/// P² desired-position increments for quantile p.
constexpr void p2_increments(double p, double out[5]) {
  out[0] = 0.0;
  out[1] = p / 2.0;
  out[2] = p;
  out[3] = (1.0 + p) / 2.0;
  out[4] = 1.0;
}

}  // namespace

P2Quantile::P2Quantile(double p) : p_(p) {
  CLOUDFOG_REQUIRE(p >= 0.0 && p <= 1.0, "quantile out of [0,1]");
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      double inc[5];
      p2_increments(p_, inc);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = i + 1;
        desired_[i] = 1.0 + 4.0 * inc[i];
      }
    }
    return;
  }

  // Locate the cell containing x, stretching the extremes if needed.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++count_;

  double inc[5];
  p2_increments(p_, inc);
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += inc[i];

  // Nudge the three interior markers toward their desired positions with a
  // piecewise-parabolic height prediction (linear fallback).
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!right && !left) continue;
    const double s = d >= 0.0 ? 1.0 : -1.0;
    const double pm = positions_[i - 1];
    const double pi = positions_[i];
    const double pp = positions_[i + 1];
    const double parabolic =
        heights_[i] + s / (pp - pm) *
                          ((pi - pm + s) * (heights_[i + 1] - heights_[i]) / (pp - pi) +
                           (pp - pi - s) * (heights_[i] - heights_[i - 1]) / (pi - pm));
    if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
      heights_[i] = parabolic;
    } else {
      const int j = i + static_cast<int>(s);
      heights_[i] += s * (heights_[j] - heights_[i]) / (positions_[j] - pi);
    }
    positions_[i] += s;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact order statistic over the retained observations.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = p_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

void P2Quantile::merge(const P2Quantile& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ < 5) {
    // The other side still retains raw observations — replay them exactly.
    for (std::size_t i = 0; i < other.count_; ++i) add(other.heights_[i]);
    return;
  }
  if (count_ < 5) {
    double mine[5];
    const std::size_t n = count_;
    std::copy(heights_, heights_ + n, mine);
    *this = other;
    for (std::size_t i = 0; i < n; ++i) add(mine[i]);
    return;
  }
  // Both warmed up: count-weighted average of marker heights. This is an
  // approximation — the exact pooled quantile would need the raw streams.
  const auto w1 = static_cast<double>(count_);
  const auto w2 = static_cast<double>(other.count_);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = (heights_[i] * w1 + other.heights_[i] * w2) / (w1 + w2);
    positions_[i] += other.positions_[i] - static_cast<double>(i + 1);
  }
  count_ += other.count_;
  double inc[5];
  p2_increments(p_, inc);
  for (int i = 0; i < 5; ++i) {
    desired_[i] = 1.0 + 4.0 * inc[i] + static_cast<double>(count_ - 5) * inc[i];
  }
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  p50_.add(x);
  p95_.add(x);
  p99_.add(x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  p50_.merge(other.p50_);
  p95_.merge(other.p95_);
  p99_.merge(other.p99_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  dirty_ = true;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  CLOUDFOG_REQUIRE(p >= 0.0 && p <= 1.0, "percentile out of [0,1]");
  CLOUDFOG_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  const double rank = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_(0.0), counts_(bins, 0) {
  // Validate before deriving width: bins == 0 must throw, not divide.
  CLOUDFOG_REQUIRE(hi > lo, "histogram range inverted");
  CLOUDFOG_REQUIRE(bins > 0, "histogram needs at least one bin");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  CLOUDFOG_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / width_;
  const auto full = static_cast<std::size_t>(pos);
  std::size_t below = 0;
  for (std::size_t i = 0; i < full && i < counts_.size(); ++i) below += counts_[i];
  double acc = static_cast<double>(below);
  if (full < counts_.size()) {
    acc += (pos - static_cast<double>(full)) * static_cast<double>(counts_[full]);
  }
  return acc / static_cast<double>(total_);
}

double Histogram::bin_low(std::size_t bin) const {
  CLOUDFOG_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin) + width_; }

}  // namespace cloudfog::util
