// tracecat: convert a binary trace (obs::BinaryTraceSink, "CFTR") back to
// the JSONL form, byte-identical to what JsonlTraceSink would have written
// for the same events. Reuses TraceBuffer::write_jsonl so the two paths
// cannot drift.
//
//   tracecat <trace.bin> [-o out.jsonl]     convert (default: stdout)
//   tracecat --count <trace.bin>            print the event count only
//   tracecat - ...                          read the binary trace from stdin

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/binary_trace.hpp"
#include "obs/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--count] <trace.bin|-> [-o out.jsonl]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  bool count_only = false;
  bool have_input = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--count") {
      count_only = true;
    } else if (arg == "-o") {
      if (i + 1 >= argc) return usage(argv[0]);
      output = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!have_input) {
      input = arg;
      have_input = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!have_input) return usage(argv[0]);

  std::ifstream file;
  std::istream* in = &std::cin;
  if (input != "-") {
    file.open(input, std::ios::binary);
    if (!file.good()) {
      std::cerr << "tracecat: cannot open " << input << '\n';
      return 1;
    }
    in = &file;
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!output.empty()) {
    out_file.open(output, std::ios::binary);
    if (!out_file.good()) {
      std::cerr << "tracecat: cannot open " << output << " for writing\n";
      return 1;
    }
    out = &out_file;
  }

  cloudfog::obs::BinaryTraceReader reader(*in);
  cloudfog::obs::TraceEvent event;
  std::uint64_t events = 0;
  while (reader.next(&event)) {
    ++events;
    if (!count_only) cloudfog::obs::TraceBuffer::write_jsonl(*out, event);
  }
  if (!reader.ok()) {
    std::cerr << "tracecat: " << reader.error() << '\n';
    return 1;
  }
  if (count_only) *out << events << '\n';
  out->flush();
  return out->good() ? 0 : 1;
}
