
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth_model.cpp" "src/CMakeFiles/cloudfog_net.dir/net/bandwidth_model.cpp.o" "gcc" "src/CMakeFiles/cloudfog_net.dir/net/bandwidth_model.cpp.o.d"
  "/root/repo/src/net/coordinates.cpp" "src/CMakeFiles/cloudfog_net.dir/net/coordinates.cpp.o" "gcc" "src/CMakeFiles/cloudfog_net.dir/net/coordinates.cpp.o.d"
  "/root/repo/src/net/ip_locator.cpp" "src/CMakeFiles/cloudfog_net.dir/net/ip_locator.cpp.o" "gcc" "src/CMakeFiles/cloudfog_net.dir/net/ip_locator.cpp.o.d"
  "/root/repo/src/net/latency_model.cpp" "src/CMakeFiles/cloudfog_net.dir/net/latency_model.cpp.o" "gcc" "src/CMakeFiles/cloudfog_net.dir/net/latency_model.cpp.o.d"
  "/root/repo/src/net/ping_trace.cpp" "src/CMakeFiles/cloudfog_net.dir/net/ping_trace.cpp.o" "gcc" "src/CMakeFiles/cloudfog_net.dir/net/ping_trace.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/CMakeFiles/cloudfog_net.dir/net/trace_io.cpp.o" "gcc" "src/CMakeFiles/cloudfog_net.dir/net/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
