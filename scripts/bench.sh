#!/usr/bin/env bash
# Tracked benchmark harness (DESIGN.md §10).
#
# Runs the microbenchmark suite (google-benchmark) and the scale harness
# (bench_scale: candidate discovery linear-vs-grid, end-to-end subcycles
# reference-vs-optimised, trace-sink encoding JSONL-vs-binary) and merges
# both into one tracked JSON document. Baselines come from the same
# binary's reference modes (CandidateMode::kLinear, QosEngineConfig::
# memoize = false, serial, JsonlTraceSink), so every report carries its
# own before/after pair.
#
# Tracked outputs (BENCH_*.json and the data/runstore history) are only
# written from release-grade builds: comparing a Debug number against a
# Release history is noise. --allow-debug overrides the refusal (the
# report then records allow_debug=true so readers can discount it).
#
#   scripts/bench.sh                 full run -> BENCH_PR6.json
#   scripts/bench.sh --quick         short run (CI smoke)
#   scripts/bench.sh --out <path>    override the output path
#   scripts/bench.sh --runstore <dir>  override the run-store directory
#                                      (default data/runstore)
#   scripts/bench.sh --no-runstore   skip the run-store append
#   scripts/bench.sh --allow-debug   permit tracked writes from a
#                                      non-release build
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
OUT=BENCH_PR6.json
RUNSTORE=data/runstore
ALLOW_DEBUG=0
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --out) shift; OUT="$1" ;;
    --runstore) shift; RUNSTORE="$1" ;;
    --no-runstore) RUNSTORE="" ;;
    --allow-debug) ALLOW_DEBUG=1 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

echo "== build (RelWithDebInfo) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_micro bench_scale

# Tracked-write guard: the numbers are only comparable across history when
# they come from an optimised build of both this tree and libbenchmark.
cache_var() { sed -n "s/^$1:[^=]*=//p" build/CMakeCache.txt | head -n 1; }
# An empty cached CMAKE_BUILD_TYPE means the project default applied.
BUILD_TYPE=$(cache_var CMAKE_BUILD_TYPE)
BUILD_TYPE=${BUILD_TYPE:-RelWithDebInfo}
COMPILER=$(cache_var CMAKE_CXX_COMPILER)
# libbenchmark reports its own build flavour in the run context; probe it
# with one minimal-time benchmark before any tracked run happens.
BENCH_LIB_BUILD=$(./build/bench/bench_micro \
    --benchmark_filter='BM_EventQueueScheduleAndPop/1000$' \
    --benchmark_min_time=0.001 --benchmark_format=json 2>/dev/null \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["context"]["library_build_type"])' \
  || echo unknown)
RELEASE_GRADE=1
case "$BUILD_TYPE" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *) RELEASE_GRADE=0 ;;
esac
if [ "$BENCH_LIB_BUILD" != "release" ]; then RELEASE_GRADE=0; fi
if [ "$RELEASE_GRADE" -eq 0 ] && [ "$ALLOW_DEBUG" -eq 0 ]; then
  echo "error: refusing to write tracked benchmark output from a non-release build" >&2
  echo "       (CMAKE_BUILD_TYPE=$BUILD_TYPE, libbenchmark=$BENCH_LIB_BUILD)." >&2
  echo "       Re-run with --allow-debug to override." >&2
  exit 3
fi

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

echo "== micro suite (google-benchmark) =="
MICRO_ARGS=(--benchmark_format=json)
if [ "$QUICK" -eq 1 ]; then
  # This google-benchmark accepts a bare double (newer releases want a
  # trailing "s"; keep the flag compatible with the pinned toolchain).
  MICRO_ARGS+=(--benchmark_min_time=0.05
               --benchmark_filter='BM_CandidateDiscovery|BM_QosSubcycle')
fi
./build/bench/bench_micro "${MICRO_ARGS[@]}" >"$WORK_DIR/micro.json"

echo "== scale harness (bench_scale) =="
GIT_SHA=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
RUN_ID="bench-$(date -u +%Y%m%dT%H%M%SZ)-$$"
CONFIG_HASH=$(printf 'quick=%s threads=4 build=%s' "$QUICK" "$BUILD_TYPE" \
  | sha256sum | cut -c1-12)
SCALE_ARGS=(--json "$WORK_DIR/scale.json" --threads 4)
if [ "$QUICK" -eq 1 ]; then SCALE_ARGS+=(--quick); fi
if [ -n "$RUNSTORE" ]; then
  SCALE_ARGS+=(--runstore "$RUNSTORE" --run-id "$RUN_ID"
               --git-sha "$GIT_SHA" --config-hash "$CONFIG_HASH")
fi
./build/bench/bench_scale "${SCALE_ARGS[@]}"

echo "== merge -> $OUT =="
python3 - "$WORK_DIR/micro.json" "$WORK_DIR/scale.json" "$OUT" "$QUICK" \
  "$BUILD_TYPE" "$COMPILER" "$ALLOW_DEBUG" "$GIT_SHA" "$RUN_ID" "$CONFIG_HASH" <<'EOF'
import json, sys
(micro_path, scale_path, out_path, quick,
 build_type, compiler, allow_debug, git_sha, run_id, config_hash) = sys.argv[1:11]
micro = json.load(open(micro_path))
scale = json.load(open(scale_path))
context = {k: micro.get("context", {}).get(k)
           for k in ("num_cpus", "mhz_per_cpu", "library_build_type")}
context.update({
    "cmake_build_type": build_type,
    "compiler": compiler,
    "allow_debug": allow_debug == "1",
    "git_sha": git_sha,
    "run_id": run_id,
    "config_hash": config_hash,
})
doc = {
    "schema": "cloudfog.bench/1",
    "quick": quick == "1",
    "context": context,
    "scale": scale,
    "micro": [
        {"name": b["name"], "real_time_ns": b["real_time"],
         "cpu_time_ns": b["cpu_time"],
         "items_per_second": b.get("items_per_second")}
        for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ],
}
disc = {p["fleet"]: p for p in scale["candidate_discovery"]}
sub = scale["subcycle"]
trace = scale["trace_overhead"]
doc["headline"] = {
    "discovery_speedup_10k_fleet": disc.get(10000, disc[max(disc)])["speedup"],
    "subcycle_speedup_scaleout_nt": sub[-1]["speedup_nt"],
    "subcycle_speedup_scaleout_1t": sub[-1]["speedup_1t"],
    "trace_binary_time_ratio": trace["time_ratio"],
    "trace_binary_bytes_ratio": trace["bytes_ratio"],
}
json.dump(doc, open(out_path, "w"), indent=1)
print(json.dumps(doc["headline"], indent=1))
if quick != "1":
    assert doc["headline"]["discovery_speedup_10k_fleet"] >= 5.0, \
        "candidate discovery speedup below the tracked 5x floor"
    assert doc["headline"]["subcycle_speedup_scaleout_nt"] >= 2.0, \
        "end-to-end subcycle speedup below the tracked 2x floor"
    assert max(doc["headline"]["trace_binary_time_ratio"],
               doc["headline"]["trace_binary_bytes_ratio"]) >= 3.0, \
        "binary trace sink below the tracked 3x per-event advantage"
EOF
echo "bench report written to $OUT"
