#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace cloudfog::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_in(2.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_in(5.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(3.0, [&] { ++fired; });
  const std::size_t executed = sim.run_until(2.0);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // clock advances to the window end
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(2.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_in(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ScheduleAtRejectsPast) {
  Simulator sim;
  sim.schedule_in(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), cloudfog::ConfigError);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTask task(sim, 1.0, 2.0, [&](SimTime t) { times.push_back(t); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(PeriodicTask, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 0.0, 1.0, [&](SimTime) { ++count; });
  sim.run_until(2.5);
  task.stop();
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);  // t = 0, 1, 2
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopFromInsideBody) {
  Simulator sim;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(sim, 0.0, 1.0, [&](SimTime) {
    if (++count == 2) handle->stop();
  });
  handle = &task;
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, RejectsBadPeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, 0.0, 0.0, [](SimTime) {}), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::sim
