file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_server_assignment.dir/fig12_server_assignment.cpp.o"
  "CMakeFiles/bench_fig12_server_assignment.dir/fig12_server_assignment.cpp.o.d"
  "bench_fig12_server_assignment"
  "bench_fig12_server_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_server_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
