// Reproduces Fig. 9: system setup and churn latencies — server assignment
// (wall clock of the community partitioner), supernode join, player join
// and migration after injected supernode failures.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  // Churn latencies stabilize quickly; a short run suffices.
  const auto scale = bench::scale_from_args(argc, argv, core::ExperimentScale::quick());
  bench::print(core::setup_latency_vs_players(
      core::TestbedProfile::kPeerSim, {1000, 2000, 3000, 4000, 5000, 6000}, scale));
  bench::print(core::setup_latency_vs_supernodes(core::TestbedProfile::kPlanetLab,
                                                 {10, 15, 20, 25, 30}, scale));
  return 0;
}
