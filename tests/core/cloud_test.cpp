#include "core/cloud.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::core {
namespace {

class CloudTest : public ::testing::Test {
 protected:
  CloudTest() : latency_(net::LatencyModelConfig{}) {
    std::vector<DatacenterState> dcs;
    for (double x : {0.0, 2000.0}) {
      DatacenterState dc;
      dc.id = dcs.size();
      dc.endpoint = net::make_infrastructure_endpoint({x, 0.0});
      dcs.push_back(dc);
    }
    cloud_.emplace(std::move(dcs), latency_, net::IpLocator{0.0});
  }

  SupernodeState make_sn(double x, int capacity = 5) {
    SupernodeState sn;
    sn.id = fleet_.size();
    sn.endpoint = net::Endpoint{{x, 0.0}, 2.0};
    sn.capacity = capacity;
    sn.upload_mbps = capacity * 2.0;
    util::Rng rng(fleet_.size() + 1);
    cloud_->register_supernode(sn, rng);
    fleet_.push_back(sn);
    return sn;
  }

  net::LatencyModel latency_;
  std::optional<Cloud> cloud_;
  std::vector<SupernodeState> fleet_;
};

TEST_F(CloudTest, NearestDatacenterByRtt) {
  EXPECT_EQ(cloud_->nearest_datacenter(net::Endpoint{{100.0, 0.0}, 5.0}), 0u);
  EXPECT_EQ(cloud_->nearest_datacenter(net::Endpoint{{1900.0, 0.0}, 5.0}), 1u);
}

TEST_F(CloudTest, CandidatesSortedByDistance) {
  make_sn(100.0);
  make_sn(500.0);
  make_sn(1500.0);
  const auto cands =
      cloud_->candidate_supernodes(net::Endpoint{{0.0, 0.0}, 5.0}, fleet_, 2);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0], 0u);
  EXPECT_EQ(cands[1], 1u);
}

TEST_F(CloudTest, FullSupernodesExcluded) {
  make_sn(100.0, /*capacity=*/1);
  make_sn(500.0);
  fleet_[0].served = 1;  // at capacity
  const auto cands =
      cloud_->candidate_supernodes(net::Endpoint{{0.0, 0.0}, 5.0}, fleet_, 5);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], 1u);
}

TEST_F(CloudTest, UndeployedAndFailedExcluded) {
  make_sn(100.0);
  make_sn(200.0);
  make_sn(300.0);
  fleet_[0].deployed = false;
  fleet_[1].failed = true;
  const auto cands =
      cloud_->candidate_supernodes(net::Endpoint{{0.0, 0.0}, 5.0}, fleet_, 5);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], 2u);
}

TEST_F(CloudTest, CandidateCountIsCapped) {
  for (int i = 0; i < 10; ++i) make_sn(100.0 * (i + 1));
  EXPECT_EQ(cloud_->candidate_supernodes(net::Endpoint{{0.0, 0.0}, 5.0}, fleet_, 3).size(),
            3u);
}

TEST_F(CloudTest, UnregisteredSupernodeFallsBackToTruePosition) {
  auto sn = make_sn(400.0);
  cloud_->unregister_supernode(fleet_[0]);
  // Still a candidate (the table fallback uses its true endpoint).
  const auto cands =
      cloud_->candidate_supernodes(net::Endpoint{{0.0, 0.0}, 5.0}, fleet_, 5);
  EXPECT_EQ(cands.size(), 1u);
  (void)sn;
}

TEST_F(CloudTest, DatacenterIndexValidated) {
  EXPECT_THROW(cloud_->datacenter(2), ConfigError);
}

TEST(CloudConstruction, RequiresAtLeastOneDatacenter) {
  net::LatencyModel latency{net::LatencyModelConfig{}};
  EXPECT_THROW(Cloud({}, latency, net::IpLocator{}), ConfigError);
}

}  // namespace
}  // namespace cloudfog::core
