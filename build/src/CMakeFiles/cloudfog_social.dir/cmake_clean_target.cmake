file(REMOVE_RECURSE
  "libcloudfog_social.a"
)
