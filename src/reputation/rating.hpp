// A single supernode rating.
//
// §3.2.1: after each game, a player rates its supernode with the playback
// continuity it experienced (a value in [0,1]). Each rating carries the
// day it was given so its weight can decay with age (Eq. 7).
#pragma once

namespace cloudfog::reputation {

struct Rating {
  double value = 0.0;  ///< playback continuity in [0,1]
  int day = 1;         ///< 1-based day the rating was issued
};

}  // namespace cloudfog::reputation
