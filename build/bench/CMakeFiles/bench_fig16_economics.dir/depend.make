# Empty dependencies file for bench_fig16_economics.
# This may be replaced when dependencies are built.
