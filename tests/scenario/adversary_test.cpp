#include "scenario/adversary.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"
#include "util/rng.hpp"

namespace cloudfog::scenario {
namespace {

std::vector<core::SupernodeState> make_fleet(std::size_t n) {
  std::vector<core::SupernodeState> fleet(n);
  for (std::size_t i = 0; i < n; ++i) fleet[i].id = i;
  return fleet;
}

AdversaryConfig config_of(AdversaryKind kind, double fraction) {
  AdversaryConfig cfg;
  cfg.kind = kind;
  cfg.fraction = fraction;
  cfg.delay_ms = 80.0;
  return cfg;
}

TEST(AdversaryModel, KindNamesRoundTrip) {
  for (AdversaryKind kind :
       {AdversaryKind::kNone, AdversaryKind::kFixedDelay, AdversaryKind::kOnOff,
        AdversaryKind::kWhitewash, AdversaryKind::kCollusion}) {
    AdversaryKind back = AdversaryKind::kNone;
    ASSERT_TRUE(adversary_kind_from_name(adversary_kind_name(kind), &back));
    EXPECT_EQ(kind, back);
  }
  AdversaryKind out = AdversaryKind::kNone;
  EXPECT_FALSE(adversary_kind_from_name("sybil", &out));
}

TEST(AdversaryModel, MembershipMatchesLegacyStream) {
  // The model must draw membership exactly like the legacy MaliciousConfig
  // loop did: one Bernoulli per fleet slot, in fleet order, on the same
  // fork — that is what keeps pre-scenario runs byte-identical.
  auto fleet = make_fleet(200);
  AdversaryModel model(config_of(AdversaryKind::kFixedDelay, 0.3), fleet,
                       util::Rng(12345, 7));

  auto expected_fleet = make_fleet(200);
  util::Rng legacy(12345, 7);
  std::vector<std::size_t> expected_members;
  for (std::size_t i = 0; i < expected_fleet.size(); ++i) {
    if (!legacy.chance(0.3)) continue;
    expected_members.push_back(i);
    expected_fleet[i].sabotage_delay_ms = 80.0;
  }
  EXPECT_EQ(expected_members, model.members());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(expected_fleet[i].sabotage_delay_ms, fleet[i].sabotage_delay_ms) << i;
    EXPECT_EQ(model.is_member(i), expected_fleet[i].sabotage_delay_ms > 0.0) << i;
  }
}

TEST(AdversaryModel, OnOffAlternatesWholeCycles) {
  auto fleet = make_fleet(50);
  AdversaryConfig cfg = config_of(AdversaryKind::kOnOff, 0.4);
  cfg.period_cycles = 2;
  cfg.on_cycles = 1;
  AdversaryModel model(cfg, fleet, util::Rng(7, 7));
  ASSERT_FALSE(model.members().empty());
  std::vector<core::PlayerState> players;

  for (int day = 1; day <= 4; ++day) {
    model.begin_cycle(day, fleet, players);
    const bool expect_on = (day % 2) == 1;  // day 1 on, day 2 off, ...
    for (std::size_t id : model.members()) {
      EXPECT_EQ(fleet[id].sabotage_delay_ms, expect_on ? 80.0 : 0.0)
          << "day " << day << " member " << id;
    }
  }
}

TEST(AdversaryModel, WhitewashWipesEveryMembersRatings) {
  auto fleet = make_fleet(40);
  AdversaryConfig cfg = config_of(AdversaryKind::kWhitewash, 0.5);
  cfg.whitewash_period_cycles = 2;
  AdversaryModel model(cfg, fleet, util::Rng(9, 9));
  ASSERT_FALSE(model.members().empty());
  const std::size_t member = model.members().front();
  std::size_t honest = 0;
  while (model.is_member(honest)) ++honest;

  std::vector<core::PlayerState> players(3);
  for (auto& p : players) {
    p.reputation.add_rating(member, 0.05, 1);  // earned bad score
    p.reputation.add_rating(honest, 0.9, 1);
  }
  model.begin_cycle(2, fleet, players);  // not a rebirth day: (2-1) % 2 != 0
  EXPECT_EQ(players[0].reputation.rating_count(member), 1u);

  model.begin_cycle(3, fleet, players);  // rebirth: identities shed
  for (const auto& p : players) {
    EXPECT_EQ(p.reputation.rating_count(member), 0u);
    EXPECT_EQ(p.reputation.score(member, 3), 0.0);     // back to "unknown"
    EXPECT_EQ(p.reputation.rating_count(honest), 1u);  // victims keep the rest
  }
  // Whitewashers sabotage continuously — rebirth does not pause the attack.
  EXPECT_EQ(fleet[member].sabotage_delay_ms, 80.0);
}

TEST(AdversaryModel, CollusionRotatesOneRingPerCycle) {
  auto fleet = make_fleet(60);
  AdversaryConfig cfg = config_of(AdversaryKind::kCollusion, 0.5);
  cfg.ring_count = 3;
  AdversaryModel model(cfg, fleet, util::Rng(21, 3));
  const auto& members = model.members();
  ASSERT_GE(members.size(), 3u);
  std::vector<core::PlayerState> players;

  for (int day = 1; day <= 6; ++day) {
    model.begin_cycle(day, fleet, players);
    const auto active_ring = static_cast<std::size_t>((day - 1) % 3);
    std::size_t sabotaging = 0;
    for (std::size_t m = 0; m < members.size(); ++m) {
      const bool on = fleet[members[m]].sabotage_delay_ms > 0.0;
      EXPECT_EQ(on, m % 3 == active_ring) << "day " << day << " member " << m;
      sabotaging += on ? 1u : 0u;
    }
    // Only one ring attacks at a time — the coalition majority stays clean.
    EXPECT_LT(sabotaging, members.size());
    EXPECT_GT(sabotaging, 0u);
  }
}

TEST(AdversaryModel, LegacyMaliciousConfigAndAdversaryConfigAgree) {
  // Satellite check for the ext_malicious rewire: the legacy
  // MaliciousConfig path and an explicit fixed-delay AdversaryConfig must
  // produce identical runs on the seed workload.
  const core::Testbed testbed(core::TestbedConfig::peersim(600), 42);
  const core::ExperimentScale scale = core::ExperimentScale::quick();
  const auto cycles = core::to_cycle_config(scale);

  core::SystemConfig legacy_cfg = core::cloudfog_basic_config(testbed, 40);
  legacy_cfg.strategies.reputation = true;
  legacy_cfg.malicious.fraction = 0.3;

  core::SystemConfig adv_cfg = core::cloudfog_basic_config(testbed, 40);
  adv_cfg.strategies.reputation = true;
  adv_cfg.adversary.kind = AdversaryKind::kFixedDelay;
  adv_cfg.adversary.fraction = 0.3;
  adv_cfg.adversary.delay_ms = legacy_cfg.malicious.delay_ms;

  core::System legacy_sys(testbed, legacy_cfg, scale.seed + 41);
  core::System adv_sys(testbed, adv_cfg, scale.seed + 41);
  const core::RunMetrics& a = legacy_sys.run(cycles);
  const core::RunMetrics& b = adv_sys.run(cycles);
  EXPECT_EQ(a.satisfied_fraction.mean(), b.satisfied_fraction.mean());
  EXPECT_EQ(a.continuity.mean(), b.continuity.mean());
  EXPECT_EQ(a.response_latency_ms.mean(), b.response_latency_ms.mean());
  EXPECT_EQ(a.player_join_latency_ms.count(), b.player_join_latency_ms.count());
}

}  // namespace
}  // namespace cloudfog::scenario
