#include "fault/retry_policy.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::fault {
namespace {

TEST(RetryPolicy, FactoriesMatchTheLegacyTimeouts) {
  // These constants are load-bearing: the defaults of the overlay and fog
  // configs map 1:1 onto the pre-fault-layer timeout behaviour.
  const RetryPolicy probe = RetryPolicy::liveness();
  EXPECT_DOUBLE_EQ(probe.attempt_timeout_ms, 250.0);
  EXPECT_EQ(probe.max_attempts, 2);
  EXPECT_DOUBLE_EQ(probe.detection_ms(), 500.0);

  const RetryPolicy stage = RetryPolicy::single_attempt(1000.0);
  EXPECT_EQ(stage.max_attempts, 1);
  EXPECT_DOUBLE_EQ(stage.attempt_timeout_ms, 1000.0);
  EXPECT_FALSE(stage.unbounded_attempts());
}

TEST(RetryPolicy, BackoffIsExponentialAndClamped) {
  RetryPolicy p;
  p.base_backoff_ms = 100.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 400.0;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(p.backoff_before_attempt(1, rng), 0.0);
  EXPECT_DOUBLE_EQ(p.backoff_before_attempt(2, rng), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff_before_attempt(3, rng), 200.0);
  EXPECT_DOUBLE_EQ(p.backoff_before_attempt(4, rng), 400.0);
  EXPECT_DOUBLE_EQ(p.backoff_before_attempt(5, rng), 400.0);  // clamped
}

TEST(RetryPolicy, ZeroJitterConsumesNoRandomness) {
  RetryPolicy p;
  p.base_backoff_ms = 100.0;
  util::Rng a(7);
  util::Rng b(7);
  (void)p.backoff_before_attempt(3, a);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // streams still in lockstep
}

TEST(RetryPolicy, JitterStaysWithinTheFraction) {
  RetryPolicy p;
  p.base_backoff_ms = 100.0;
  p.jitter_fraction = 0.5;
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double wait = p.backoff_before_attempt(2, rng);
    EXPECT_GE(wait, 50.0);
    EXPECT_LE(wait, 150.0);
  }
}

TEST(RetryPolicy, ValidateRejectsNonsense) {
  RetryPolicy p;
  p.attempt_timeout_ms = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RetryPolicy{};
  p.max_attempts = -1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RetryPolicy{};
  p.jitter_fraction = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RetryPolicy{};
  p.max_backoff_ms = 1.0;
  p.base_backoff_ms = 2.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(RetryBudget, AttemptsRunOut) {
  RetryPolicy p;
  p.max_attempts = 3;
  RetryBudget budget(p, "test");
  util::Rng rng(3);
  EXPECT_TRUE(budget.next_attempt(rng));
  EXPECT_TRUE(budget.next_attempt(rng));
  EXPECT_TRUE(budget.next_attempt(rng));
  EXPECT_FALSE(budget.next_attempt(rng));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.attempts_started(), 3);
  // Exhaustion is sticky.
  EXPECT_FALSE(budget.can_attempt());
  EXPECT_FALSE(budget.next_attempt(rng));
}

TEST(RetryBudget, DeadlineBudgetStopsFurtherAttempts) {
  RetryPolicy p;
  p.max_attempts = 0;  // unbounded attempts — only the deadline limits
  p.deadline_budget_ms = 1000.0;
  RetryBudget budget(p, "test");
  util::Rng rng(4);
  EXPECT_TRUE(budget.next_attempt(rng));
  budget.charge_ms(999.0);
  EXPECT_DOUBLE_EQ(budget.remaining_budget_ms(), 1.0);
  EXPECT_TRUE(budget.next_attempt(rng));  // 999 < 1000: still inside
  budget.charge_ms(2.0);
  EXPECT_FALSE(budget.next_attempt(rng));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_DOUBLE_EQ(budget.remaining_budget_ms(), 0.0);
}

TEST(RetryBudget, BackoffWaitsChargeTheDeadline) {
  RetryPolicy p;
  p.max_attempts = 0;
  p.base_backoff_ms = 300.0;
  p.deadline_budget_ms = 500.0;
  RetryBudget budget(p, "test");
  util::Rng rng(5);
  double backoff = -1.0;
  ASSERT_TRUE(budget.next_attempt(rng, &backoff));
  EXPECT_DOUBLE_EQ(backoff, 0.0);  // first attempt never waits
  ASSERT_TRUE(budget.next_attempt(rng, &backoff));
  EXPECT_DOUBLE_EQ(backoff, 300.0);
  EXPECT_DOUBLE_EQ(budget.elapsed_ms(), 300.0);
  // Attempt 3 is still permitted (300 < 500) and its 600 ms backoff is
  // charged; afterwards the deadline is spent.
  ASSERT_TRUE(budget.next_attempt(rng, &backoff));
  EXPECT_DOUBLE_EQ(backoff, 600.0);
  EXPECT_FALSE(budget.next_attempt(rng));
}

TEST(RetryBudget, UnboundedPolicyWithInfiniteDeadlineNeverExhausts) {
  RetryPolicy p;
  p.max_attempts = 0;  // the pre-PR FogManager claim loop
  RetryBudget budget(p, "test");
  util::Rng rng(6);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(budget.next_attempt(rng));
  EXPECT_FALSE(budget.exhausted());
}

}  // namespace
}  // namespace cloudfog::fault
