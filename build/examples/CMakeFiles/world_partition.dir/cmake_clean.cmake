file(REMOVE_RECURSE
  "CMakeFiles/world_partition.dir/world_partition.cpp.o"
  "CMakeFiles/world_partition.dir/world_partition.cpp.o.d"
  "world_partition"
  "world_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
