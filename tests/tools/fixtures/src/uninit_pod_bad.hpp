// Fixture: must trip cloudfog-uninit-pod. Lives under a `src/` prefix
// because the rule only applies to structs shipped in the library tree.
#pragma once
#include <cstdint>

namespace fixture {

struct Stats {
  double mean;          // finding: no initializer
  std::uint64_t count;  // finding: no initializer
  int* cursor;          // finding: raw pointer, no initializer
};

// Initialized members must NOT trip the rule.
struct StatsOk {
  double mean = 0.0;
  std::uint64_t count{};
  int* cursor = nullptr;
};

class Engine {
  // Members of a `class` (with constructors managing init) are out of the
  // rule's scope; only plain structs are policed.
 public:
  explicit Engine(double r) : rate_(r) {}

 private:
  double rate_;
};

}  // namespace fixture
