file(REMOVE_RECURSE
  "CMakeFiles/test_overlay.dir/overlay/join_session_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/join_session_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/network_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/network_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/probe_monitor_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/probe_monitor_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/stream_channel_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/stream_channel_test.cpp.o.d"
  "test_overlay"
  "test_overlay.pdb"
  "test_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
