file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_provisioning_latency.dir/fig14_provisioning_latency.cpp.o"
  "CMakeFiles/bench_fig14_provisioning_latency.dir/fig14_provisioning_latency.cpp.o.d"
  "bench_fig14_provisioning_latency"
  "bench_fig14_provisioning_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_provisioning_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
