#include "obs/phase_profiler.hpp"

#include <algorithm>
#include <bit>

namespace cloudfog::obs {

double PhaseProfiler::PhaseStats::mean_us() const {
  return count == 0 ? 0.0
                    : static_cast<double>(total_ns) / static_cast<double>(count) / 1e3;
}

double PhaseProfiler::PhaseStats::per_second() const {
  return total_ns == 0 ? 0.0
                       : static_cast<double>(count) / (static_cast<double>(total_ns) / 1e9);
}

PhaseId PhaseProfiler::phase(std::string_view name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return PhaseId{static_cast<std::uint32_t>(i)};
  }
  PhaseStats stats;
  stats.name = std::string(name);
  phases_.push_back(std::move(stats));
  return PhaseId{static_cast<std::uint32_t>(phases_.size() - 1)};
}

std::size_t PhaseProfiler::bucket_for(std::uint64_t ns) {
  if (ns == 0) return 0;
  const auto bucket = static_cast<std::size_t>(std::bit_width(ns) - 1);
  return std::min(bucket, kBuckets - 1);
}

void PhaseProfiler::record(PhaseId id, std::uint64_t ns) {
  PhaseStats& s = phases_[id.index];
  if (s.count == 0) {
    s.min_ns = s.max_ns = ns;
  } else {
    s.min_ns = std::min(s.min_ns, ns);
    s.max_ns = std::max(s.max_ns, ns);
  }
  ++s.count;
  s.total_ns += ns;
  ++s.log2_ns_buckets[bucket_for(ns)];
}

const PhaseProfiler::PhaseStats* PhaseProfiler::find(std::string_view name) const {
  for (const auto& s : phases_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void PhaseProfiler::reset_values() {
  for (auto& s : phases_) {
    s.count = 0;
    s.total_ns = 0;
    s.min_ns = 0;
    s.max_ns = 0;
    std::fill(s.log2_ns_buckets.begin(), s.log2_ns_buckets.end(), 0);
  }
}

}  // namespace cloudfog::obs
