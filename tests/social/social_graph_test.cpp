#include "social/social_graph.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::social {
namespace {

TEST(SocialGraph, EmptyGraph) {
  const SocialGraph g(5);
  EXPECT_EQ(g.player_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.are_friends(0, 1));
}

TEST(SocialGraph, AddFriendshipIsSymmetric) {
  SocialGraph g(3);
  EXPECT_TRUE(g.add_friendship(0, 2));
  EXPECT_TRUE(g.are_friends(0, 2));
  EXPECT_TRUE(g.are_friends(2, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(SocialGraph, RejectsSelfLoops) {
  SocialGraph g(3);
  EXPECT_FALSE(g.add_friendship(1, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(SocialGraph, IgnoresDuplicates) {
  SocialGraph g(3);
  EXPECT_TRUE(g.add_friendship(0, 1));
  EXPECT_FALSE(g.add_friendship(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(SocialGraph, FriendsListMatchesEdges) {
  SocialGraph g(4);
  g.add_friendship(0, 1);
  g.add_friendship(0, 2);
  const auto& friends = g.friends(0);
  EXPECT_EQ(friends.size(), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(SocialGraph, EdgesAreOrderedPairs) {
  SocialGraph g(4);
  g.add_friendship(3, 1);
  g.add_friendship(2, 0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

TEST(SocialGraph, OutOfRangeThrows) {
  SocialGraph g(2);
  EXPECT_THROW(g.add_friendship(0, 2), cloudfog::ConfigError);
  EXPECT_THROW(g.friends(5), cloudfog::ConfigError);
}

TEST(PowerLawGraph, GeneratesRequestedSize) {
  util::Rng rng(1);
  const auto g = generate_power_law_graph(500, SocialGraphConfig{}, rng);
  EXPECT_EQ(g.player_count(), 500u);
  EXPECT_GT(g.edge_count(), 0u);
}

TEST(PowerLawGraph, DegreeDistributionIsSkewed) {
  util::Rng rng(2);
  SocialGraphConfig cfg;
  cfg.power_law_skew = 1.5;
  cfg.min_degree = 1;
  const auto g = generate_power_law_graph(5000, cfg, rng);
  std::vector<std::size_t> degrees;
  degrees.reserve(g.player_count());
  for (PlayerId p = 0; p < g.player_count(); ++p) degrees.push_back(g.degree(p));
  std::sort(degrees.begin(), degrees.end());
  const std::size_t median = degrees[degrees.size() / 2];
  const std::size_t p90 = degrees[degrees.size() * 9 / 10];
  // Heavy right tail: the 90th percentile dwarfs the median, and true
  // hubs exist far beyond it.
  EXPECT_LE(median, 8u);
  EXPECT_GE(p90, median * 2);
  EXPECT_GE(degrees.back(), p90 * 2);
}

TEST(PowerLawGraph, GuildsCreateCommunityStructure) {
  // §3.4's premise: gaming friendships are clustered. A guild-mate of a
  // guild-mate is far more likely to be a friend than a random player.
  util::Rng rng(21);
  const auto g = generate_power_law_graph(2000, SocialGraphConfig{}, rng);
  std::size_t closed = 0;
  std::size_t wedges = 0;
  for (PlayerId p = 0; p < g.player_count() && wedges < 20000; ++p) {
    const auto& friends = g.friends(p);
    for (std::size_t i = 0; i < friends.size(); ++i) {
      for (std::size_t j = i + 1; j < friends.size(); ++j) {
        ++wedges;
        if (g.are_friends(friends[i], friends[j])) ++closed;
      }
    }
  }
  ASSERT_GT(wedges, 100u);
  // Clustering coefficient well above a random graph's (~avg_deg/n ≈ 0.003).
  EXPECT_GT(static_cast<double>(closed) / static_cast<double>(wedges), 0.05);
}

TEST(PowerLawGraph, NoSelfLoopsOrDuplicates) {
  util::Rng rng(3);
  const auto g = generate_power_law_graph(1000, SocialGraphConfig{}, rng);
  for (PlayerId p = 0; p < g.player_count(); ++p) {
    const auto& friends = g.friends(p);
    for (std::size_t i = 0; i < friends.size(); ++i) {
      ASSERT_NE(friends[i], p);
      for (std::size_t j = i + 1; j < friends.size(); ++j) {
        ASSERT_NE(friends[i], friends[j]);
      }
    }
  }
}

TEST(PowerLawGraph, DeterministicForSameSeed) {
  util::Rng r1(4);
  util::Rng r2(4);
  const auto g1 = generate_power_law_graph(300, SocialGraphConfig{}, r1);
  const auto g2 = generate_power_law_graph(300, SocialGraphConfig{}, r2);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(PowerLawGraph, TinyGraphs) {
  util::Rng rng(5);
  const auto g0 = generate_power_law_graph(0, SocialGraphConfig{}, rng);
  EXPECT_EQ(g0.player_count(), 0u);
  const auto g1 = generate_power_law_graph(1, SocialGraphConfig{}, rng);
  EXPECT_EQ(g1.edge_count(), 0u);
}

}  // namespace
}  // namespace cloudfog::social
