# Empty dependencies file for cloudfog_economics.
# This may be replaced when dependencies are built.
