#include "overlay/network.hpp"

#include "util/require.hpp"

namespace cloudfog::overlay {

MessageNetwork::MessageNetwork(sim::Simulator& sim, const net::LatencyModel& latency,
                               NetworkConfig cfg, util::Rng rng)
    : sim_(sim), latency_(latency), cfg_(cfg), rng_(rng) {
  CLOUDFOG_REQUIRE(cfg.control_rate_bps > 0.0, "control rate must be positive");
  CLOUDFOG_REQUIRE(cfg.loss_probability >= 0.0 && cfg.loss_probability < 1.0,
                   "loss probability out of [0,1)");
}

Address MessageNetwork::register_endpoint(const net::Endpoint& where, Handler handler) {
  CLOUDFOG_REQUIRE(static_cast<bool>(handler), "null message handler");
  endpoints_.push_back(Registered{where, std::move(handler), false});
  return static_cast<Address>(endpoints_.size() - 1);
}

void MessageNetwork::set_down(Address addr, bool down) {
  CLOUDFOG_REQUIRE(addr < endpoints_.size(), "unknown address");
  endpoints_[addr].down = down;
}

bool MessageNetwork::is_down(Address addr) const {
  CLOUDFOG_REQUIRE(addr < endpoints_.size(), "unknown address");
  return endpoints_[addr].down;
}

const net::Endpoint& MessageNetwork::endpoint_of(Address addr) const {
  CLOUDFOG_REQUIRE(addr < endpoints_.size(), "unknown address");
  return endpoints_[addr].where;
}

double MessageNetwork::send(Message msg) {
  CLOUDFOG_REQUIRE(msg.src < endpoints_.size(), "unknown source address");
  CLOUDFOG_REQUIRE(msg.dst < endpoints_.size(), "unknown destination address");
  if (endpoints_[msg.dst].down || rng_.chance(cfg_.loss_probability)) {
    ++dropped_;
    return -1.0;
  }
  const double delay_s =
      latency_.one_way_ms(endpoints_[msg.src].where, endpoints_[msg.dst].where) / 1000.0 +
      msg.size_bits / cfg_.control_rate_bps;
  const double at = sim_.now() + delay_s;
  sim_.schedule_in(delay_s, [this, msg] {
    // Re-check liveness at delivery time: the destination may have died
    // while the message was in flight.
    if (endpoints_[msg.dst].down) {
      ++dropped_;
      return;
    }
    ++delivered_;
    endpoints_[msg.dst].handler(msg);
  });
  return at;
}

}  // namespace cloudfog::overlay
