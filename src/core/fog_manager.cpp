#include "core/fog_manager.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::core {

namespace {

/// Interned metric handles for the §3.2 selection protocol.
struct FogObs {
  obs::CounterId probes_sent;
  obs::CounterId probes_qualified;
  obs::CounterId capacity_asks;
  obs::CounterId claims_granted;
  obs::CounterId cloud_fallbacks;
  obs::HistogramId probe_rtt_ms;
  FogObs() {
    auto& reg = obs::Recorder::global().registry();
    probes_sent = reg.counter("fog.probes_sent");
    probes_qualified = reg.counter("fog.probes_qualified");
    capacity_asks = reg.counter("fog.capacity_asks");
    claims_granted = reg.counter("fog.claims_granted");
    cloud_fallbacks = reg.counter("fog.cloud_fallbacks");
    probe_rtt_ms = reg.histogram("fog.probe_rtt_ms", 0.0, 500.0, 50);
  }
};

const FogObs& fog_obs() {
  static const FogObs handles;
  return handles;
}

/// Interned note vocabulary for the selection protocol's trace events.
struct FogNotes {
  obs::NoteId crashed = obs::intern_note("crashed");
  obs::NoteId blackholed = obs::intern_note("blackholed");
  obs::NoteId partitioned = obs::intern_note("partitioned");
  obs::NoteId within_lmax = obs::intern_note("within_lmax");
  obs::NoteId over_lmax = obs::intern_note("over_lmax");
  obs::NoteId granted = obs::intern_note("granted");
  obs::NoteId denied = obs::intern_note("denied");
};

const FogNotes& fog_notes() {
  static const FogNotes notes;
  return notes;
}

}  // namespace

FogManager::FogManager(FogManagerConfig cfg, const Cloud& cloud,
                       const net::LatencyModel& latency)
    : cfg_(cfg), cloud_(cloud), latency_(latency) {
  CLOUDFOG_REQUIRE(cfg.candidate_count >= 1, "need at least one candidate");
  CLOUDFOG_REQUIRE(cfg.lmax_fraction_of_requirement > 0.0, "L_max fraction must be positive");
  cfg.detection.validate();
  cfg.selection.validate();
}

SelectionOutcome FogManager::try_candidates(PlayerState& player,
                                            std::vector<SupernodeState>& fleet,
                                            const std::vector<std::size_t>& candidates,
                                            double lmax_ms, int current_day,
                                            bool reputation_enabled, util::Rng& rng,
                                            fault::RetryBudget* budget) const {
  SelectionOutcome out;
  // Active blackholes / partitions make probes vanish; only then is the
  // player's region needed (its game-state datacenter — the same nearest-DC
  // mapping the fault plan uses for supernode regions).
  const bool impaired = faults_ != nullptr && faults_->any_active();

  // Step 2: probe every candidate; drop those whose one-way transmission
  // delay exceeds L_max. Probes run in parallel, so the protocol pays the
  // slowest probe round-trip once.
  auto& qualified = qualified_;
  qualified.clear();
  double slowest_probe = 0.0;
  auto& rec = obs::Recorder::global();
  {
    CLOUDFOG_TIMED_SCOPE("fog.probe");
    for (std::size_t idx : candidates) {
      const SupernodeState& sn = fleet[idx];
      if (!sn.deployed) continue;
      // With faults in flight, a crashed or unreachable candidate swallows
      // the probe: the player waits the full probe timeout (in parallel
      // with the others) and never qualifies the node. Without faults a
      // failed node is skipped for free, as before this subsystem existed.
      if (impaired && (sn.failed || faults_->blackholed(idx) ||
                       faults_->partitioned_from_supernode(player.state_dc, idx))) {
        ++out.probes;
        slowest_probe = std::max(slowest_probe, cfg_.selection.attempt_timeout_ms);
        if (rec.enabled()) {
          rec.registry().add(fog_obs().probes_sent);
          rec.trace(obs::EventKind::kProbeSent, static_cast<std::int64_t>(player.info.id),
                    static_cast<std::int64_t>(idx), 0.0,
                    sn.failed ? fog_notes().crashed
                              : (faults_->blackholed(idx) ? fog_notes().blackholed
                                                          : fog_notes().partitioned));
        }
        continue;
      }
      if (sn.failed) continue;
      const double rtt = latency_.rtt_ms(player.info.endpoint, sn.endpoint);
      ++out.probes;
      slowest_probe = std::max(slowest_probe, rtt);
      const bool within_lmax = rtt / 2.0 <= lmax_ms;
      if (within_lmax) {
        qualified.push_back(Probed{idx, rtt, player.reputation.score(idx, current_day)});
      }
      if (rec.enabled()) {
        rec.registry().add(fog_obs().probes_sent);
        rec.registry().observe(fog_obs().probe_rtt_ms, rtt);
        rec.trace(obs::EventKind::kProbeSent, static_cast<std::int64_t>(player.info.id),
                  static_cast<std::int64_t>(idx));
        rec.trace(obs::EventKind::kProbeAnswered, static_cast<std::int64_t>(player.info.id),
                  static_cast<std::int64_t>(idx), rtt,
                  within_lmax ? fog_notes().within_lmax : fog_notes().over_lmax);
        if (within_lmax) rec.registry().add(fog_obs().probes_qualified);
      }
    }
  }
  out.join_latency_ms += slowest_probe;
  if (budget != nullptr) budget->charge_ms(slowest_probe);

  // Step 3: order by reputation (or randomly without the strategy).
  if (reputation_enabled) {
    std::stable_sort(qualified.begin(), qualified.end(),
                     [](const Probed& a, const Probed& b) { return a.score > b.score; });
  } else {
    std::shuffle(qualified.begin(), qualified.end(), rng);
  }

  // Step 4: sequential capacity claims — each costs one RTT and draws one
  // attempt from the selection budget.
  for (const Probed& cand : qualified) {
    if (budget != nullptr && !budget->next_attempt(rng)) {
      out.budget_exhausted = true;
      break;
    }
    SupernodeState& sn = fleet[cand.index];
    ++out.capacity_asks;
    out.join_latency_ms += cand.rtt_ms;
    if (budget != nullptr) budget->charge_ms(cand.rtt_ms);
    const bool granted = sn.accepting();
    if (rec.enabled()) {
      rec.registry().add(fog_obs().capacity_asks);
      rec.trace(obs::EventKind::kCapacityClaim, static_cast<std::int64_t>(player.info.id),
                static_cast<std::int64_t>(cand.index), granted ? 1.0 : 0.0,
                granted ? fog_notes().granted : fog_notes().denied);
    }
    if (granted) {
      ++sn.served;
      player.serving = ServingRef{ServingKind::kSupernode, cand.index};
      out.serving = player.serving;
      out.join_latency_ms += cfg_.connect_setup_ms;
      if (rec.enabled()) rec.registry().add(fog_obs().claims_granted);
      return out;
    }
  }

  out.serving = ServingRef{};  // caller decides the cloud fallback
  return out;
}

std::size_t FogManager::nearest_dc(PlayerState& player) const {
  if (player.nearest_dc_cache < 0) {
    player.nearest_dc_cache =
        static_cast<std::int64_t>(cloud_.nearest_datacenter(player.info.endpoint));
  }
  return static_cast<std::size_t>(player.nearest_dc_cache);
}

SelectionOutcome FogManager::select_with_budget(PlayerState& player,
                                                std::vector<SupernodeState>& fleet,
                                                const game::GameCatalog& catalog,
                                                int current_day, bool reputation_enabled,
                                                util::Rng& rng,
                                                fault::RetryBudget& budget) const {
  // Step 1: candidate lookup at the cloud — one RTT to the nearest DC.
  const std::size_t dc = nearest_dc(player);
  const double cloud_rtt =
      latency_.rtt_ms(player.info.endpoint, cloud_.datacenter(dc).endpoint);
  budget.charge_ms(cloud_rtt);

  {
    CLOUDFOG_TIMED_SCOPE("fog.discovery");
    cloud_.candidate_supernodes_into(player.info.endpoint, fleet, cfg_.candidate_count,
                                     player.candidate_supernodes);
  }

  const double lmax_ms = catalog.game(player.game).latency_requirement_ms *
                         cfg_.lmax_fraction_of_requirement;
  SelectionOutcome out = try_candidates(player, fleet, player.candidate_supernodes, lmax_ms,
                                        current_day, reputation_enabled, rng, &budget);
  out.join_latency_ms += cloud_rtt;

  if (!out.serving.attached()) {
    // Step 5: no supernode accepted — stream directly from the cloud.
    player.serving = ServingRef{ServingKind::kCloud, dc};
    out.serving = player.serving;
    out.join_latency_ms += cfg_.connect_setup_ms;
    auto& rec = obs::Recorder::global();
    if (rec.enabled()) rec.registry().add(fog_obs().cloud_fallbacks);
  }
  return out;
}

SelectionOutcome FogManager::select_supernode(PlayerState& player,
                                              std::vector<SupernodeState>& fleet,
                                              const game::GameCatalog& catalog,
                                              int current_day, bool reputation_enabled,
                                              util::Rng& rng) const {
  fault::RetryBudget budget(cfg_.selection, "fog.select");
  return select_with_budget(player, fleet, catalog, current_day, reputation_enabled, rng,
                            budget);
}

SelectionOutcome FogManager::migrate(PlayerState& player, std::vector<SupernodeState>& fleet,
                                     const game::GameCatalog& catalog, int current_day,
                                     bool reputation_enabled, util::Rng& rng) const {
  const double lmax_ms = catalog.game(player.game).latency_requirement_ms *
                         cfg_.lmax_fraction_of_requirement;

  // Failure detection: the periodic probes have to run out first; the
  // detection time also counts against the selection deadline.
  fault::RetryBudget budget(cfg_.selection, "fog.migrate");
  budget.charge_ms(cfg_.detection.detection_ms());
  SelectionOutcome out = try_candidates(player, fleet, player.candidate_supernodes, lmax_ms,
                                        current_day, reputation_enabled, rng, &budget);
  out.join_latency_ms += cfg_.detection.detection_ms();

  if (!out.serving.attached()) {
    if (out.budget_exhausted) {
      // Deadline spent on the cached candidates already: degrade to the
      // cloud immediately rather than starting a full search.
      const std::size_t dc = nearest_dc(player);
      player.serving = ServingRef{ServingKind::kCloud, dc};
      out.serving = player.serving;
      out.join_latency_ms += cfg_.connect_setup_ms;
      auto& rec = obs::Recorder::global();
      if (rec.enabled()) rec.registry().add(fog_obs().cloud_fallbacks);
      return out;
    }
    // Candidate cache exhausted — run the full protocol via the cloud,
    // draining the same deadline budget.
    SelectionOutcome full = select_with_budget(player, fleet, catalog, current_day,
                                               reputation_enabled, rng, budget);
    full.join_latency_ms += out.join_latency_ms;
    full.probes += out.probes;
    full.capacity_asks += out.capacity_asks;
    return full;
  }
  return out;
}

void FogManager::release(PlayerState& player, std::vector<SupernodeState>& fleet) const {
  // Datacenter / CDN load tallies are recomputed from assignments each
  // subcycle by the QoS engine; only supernode seat counts are live state.
  if (player.serving.kind == ServingKind::kSupernode) {
    SupernodeState& sn = fleet[player.serving.index];
    CLOUDFOG_REQUIRE(sn.served > 0, "supernode load underflow");
    --sn.served;
  }
  player.serving = ServingRef{};
}

double FogManager::supernode_join_latency_ms(const SupernodeState& sn) const {
  const std::size_t dc = cloud_.nearest_datacenter(sn.endpoint);
  return latency_.rtt_ms(sn.endpoint, cloud_.datacenter(dc).endpoint) + cfg_.connect_setup_ms;
}

}  // namespace cloudfog::core
