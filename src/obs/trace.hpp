// Bounded structured event trace.
//
// Components push typed events stamped with the simulation clock; the
// buffer is a fixed-capacity ring so tracing never grows memory unbounded.
// Two retention behaviours with respect to the ring:
//   * no sink attached — the ring keeps the most recent `capacity` events
//     (oldest overwritten, counted as dropped);
//   * sink attached — the ring is a write buffer: it flushes to the sink
//     when full and on flush(), so the sink sees every retained event
//     while memory stays bounded.
//
// Orthogonally, a retention mode decides which pushed events are retained
// at all (DESIGN.md §11):
//   * kFull       — every event (the default);
//   * kSampled    — every Nth non-structural event, decided by a counter
//                   over the deterministic arrival sequence (never wall
//                   clock or RNG), so the sampled trace is identical at
//                   any thread count; kRunStart/kSubcycle always pass;
//   * kAggregated — non-structural events fold into per-window, per-kind
//                   {count, value-sum} accumulators; each kSubcycle /
//                   kRunStart boundary emits one summary event per kind
//                   seen in the closed window (note "agg", subject=count,
//                   value=sum, stamped at the boundary time).
//
// Sinks serialize retained events: JsonlTraceSink writes the historical
// JSONL lines; obs::BinaryTraceSink (binary_trace.hpp) writes the
// fixed-width binary format that tools/trace/tracecat converts back to
// byte-identical JSONL.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "obs/note_table.hpp"
#include "util/annotations.hpp"

namespace cloudfog::obs {

enum class EventKind : std::uint8_t {
  kRunStart,        ///< a System run began (note = arm label)
  kSubcycle,        ///< subcycle boundary (subject=cycle, object=subcycle, value=online)
  kPlayerJoin,      ///< subject=player, object=serving entity, value=join latency ms
  kPlayerLeave,     ///< subject=player
  kSupernodeJoin,   ///< subject=supernode, value=join latency ms
  kSupernodeChurn,  ///< subject=supernode (failure/withdrawal detected)
  kProbeSent,       ///< subject=player, object=supernode
  kProbeAnswered,   ///< subject=player, object=supernode, value=RTT ms
  kCapacityClaim,   ///< subject=player, object=supernode, value=1 granted / 0 refused
  kMigration,       ///< subject=player, object=new entity, value=migration latency ms
  kRateSwitch,      ///< subject=game, object=new level, value=+1 up / -1 down
  kProvisioning,    ///< value=deployed count, note=decision detail
  kRating,          ///< subject=supernode, value=rating in [0,1]
  kFaultInjected,   ///< subject=target, object=partition peer, value=magnitude, note=kind
  kFaultCleared,    ///< subject=target, object=partition peer, note=kind
  kRetryAttempt,    ///< subject=attempt number, value=backoff ms, note=call site
  kRetryExhausted,  ///< subject=attempts started, value=elapsed ms, note=call site
  kCloudFallback,   ///< subject=player, value=restore latency ms
  kFogReturn,       ///< subject=player, object=supernode
};

/// Number of EventKind values (aggregation buckets, binary-format checks).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kFogReturn) + 1;

const char* event_kind_name(EventKind kind);

struct TraceEvent {
  double t = 0.0;  ///< monotone observability clock (seconds)
  EventKind kind = EventKind::kRunStart;
  std::int64_t subject = -1;
  std::int64_t object = -1;
  double value = 0.0;
  Note note{};  ///< interned note text + optional integer argument
};

/// Destination for retained trace events. write() is called once per event
/// in trace order; flush() must leave every written event visible to the
/// underlying stream (sinks may buffer internally between calls).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// The historical JSONL sink: one JSON object per line, fields omitted
/// when unset, written straight through to the stream.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(&os) {}
  void write(const TraceEvent& event) override;

 private:
  std::ostream* os_;
};

enum class TraceRetention : std::uint8_t { kFull, kSampled, kAggregated };

// Owned by the recorder and mutated on the owning thread only: parallel
// shards reach it exclusively through Recorder::trace(), which diverts to
// the thread's ObsCapture (replayed in shard order afterwards).
class CF_MAIN_THREAD_ONLY TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  void push(TraceEvent event);

  /// Attaches a sink (not owned; nullptr detaches). The buffer flushes
  /// current contents immediately when a sink is attached.
  void set_event_sink(TraceSink* sink);

  /// Convenience: attaches an owned JSONL sink over `os` (nullptr
  /// detaches), preserving the original TraceBuffer API.
  void set_sink(std::ostream* os);

  bool has_sink() const { return sink_ != nullptr; }

  /// Writes everything buffered to the sink (if any) and clears the ring.
  void flush();

  /// Selects the retention mode. `sample_every` is only meaningful for
  /// kSampled (keep every Nth non-structural event; 1 keeps everything).
  /// Must be set before events are pushed — switching modes mid-stream
  /// would make the retained trace meaningless.
  void set_retention(TraceRetention mode, std::uint64_t sample_every = 1);
  TraceRetention retention() const { return retention_; }
  std::uint64_t sample_every() const { return sample_every_; }

  /// Aggregated mode: emits the pending window's summary events (stamped
  /// at the last seen event time) without waiting for a boundary. Call
  /// before the final flush so trailing events are not lost. No-op in
  /// other modes.
  void close_aggregation_window();

  /// Buffered events, oldest first (post-wrap: the surviving window).
  std::vector<TraceEvent> events() const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events ever pushed / overwritten before being read or sunk.
  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t total_sunk() const { return total_sunk_; }
  std::uint64_t dropped() const { return dropped_; }
  /// Events discarded by kSampled retention (not counted as dropped).
  std::uint64_t sampled_out() const { return sampled_out_; }
  /// Events folded into aggregate windows by kAggregated retention.
  std::uint64_t aggregated() const { return aggregated_; }

  void clear();

  static void write_jsonl(std::ostream& os, const TraceEvent& event);

 private:
  void retain(TraceEvent event);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< index of the oldest buffered event
  std::size_t size_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_sunk_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t aggregated_ = 0;
  TraceRetention retention_ = TraceRetention::kFull;
  std::uint64_t sample_every_ = 1;
  std::uint64_t sample_seq_ = 0;

  struct KindWindow {
    std::uint64_t count = 0;
    double value_sum = 0.0;
  };
  std::array<KindWindow, kEventKindCount> window_{};
  bool window_open_ = false;
  double window_last_t_ = 0.0;

  TraceSink* sink_ = nullptr;
  std::unique_ptr<JsonlTraceSink> owned_jsonl_;
};

}  // namespace cloudfog::obs
