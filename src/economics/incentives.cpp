#include "economics/incentives.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::economics {

double supernode_profit(const SupernodeContribution& sn, double reward_per_unit) {
  CLOUDFOG_REQUIRE(sn.upload_capacity >= 0.0, "negative capacity");
  CLOUDFOG_REQUIRE(sn.utilization >= 0.0 && sn.utilization <= 1.0, "utilization out of [0,1]");
  CLOUDFOG_REQUIRE(reward_per_unit >= 0.0, "negative reward");
  return reward_per_unit * sn.upload_capacity * sn.utilization - sn.running_cost;
}

double total_contribution(const std::vector<SupernodeContribution>& sns) {
  double acc = 0.0;
  for (const auto& sn : sns) {
    CLOUDFOG_REQUIRE(sn.utilization >= 0.0 && sn.utilization <= 1.0,
                     "utilization out of [0,1]");
    acc += sn.upload_capacity * sn.utilization;
  }
  return acc;
}

double bandwidth_reduction(const ProviderEconomics& econ, std::size_t total_players,
                           std::size_t fog_served_players, std::size_t supernodes) {
  CLOUDFOG_REQUIRE(fog_served_players <= total_players,
                   "fog-served players exceed total players");
  return static_cast<double>(fog_served_players) * econ.streaming_rate -
         static_cast<double>(supernodes) * econ.update_rate;
}

double provider_saving(const ProviderEconomics& econ, std::size_t fog_served_players,
                       std::size_t supernodes,
                       const std::vector<SupernodeContribution>& fleet) {
  const double b_r = static_cast<double>(fog_served_players) * econ.streaming_rate -
                     static_cast<double>(supernodes) * econ.update_rate;
  return econ.revenue_per_unit * b_r - econ.reward_per_unit * total_contribution(fleet);
}

bool fleet_feasible(const ProviderEconomics& econ, std::size_t fog_served_players,
                    const std::vector<SupernodeContribution>& fleet) {
  return total_contribution(fleet) >=
         static_cast<double>(fog_served_players) * econ.streaming_rate;
}

double marginal_supernode_gain(const ProviderEconomics& econ, std::size_t new_players,
                               const SupernodeContribution& sn) {
  return econ.revenue_per_unit *
             (static_cast<double>(new_players) * econ.streaming_rate - econ.update_rate) -
         econ.reward_per_unit * sn.upload_capacity * sn.utilization;
}

FleetPlan plan_min_fleet(const ProviderEconomics& econ, std::size_t fog_served_players,
                         const std::vector<SupernodeContribution>& candidates) {
  // Largest contributors first: for a fixed covered population n, each
  // additional supernode costs Λ of update bandwidth (Eq. 3), so the
  // provider wants the fewest machines whose summed contribution meets
  // Eq. 4.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&candidates](std::size_t a, std::size_t b) {
    return candidates[a].upload_capacity * candidates[a].utilization >
           candidates[b].upload_capacity * candidates[b].utilization;
  });

  FleetPlan plan;
  const double needed = static_cast<double>(fog_served_players) * econ.streaming_rate;
  double contribution = 0.0;
  std::vector<SupernodeContribution> chosen_fleet;
  for (std::size_t idx : order) {
    if (contribution >= needed) break;
    plan.chosen.push_back(idx);
    chosen_fleet.push_back(candidates[idx]);
    contribution += candidates[idx].upload_capacity * candidates[idx].utilization;
  }
  if (contribution < needed) return FleetPlan{};  // infeasible, empty plan
  plan.feasible = true;
  plan.saving = provider_saving(econ, fog_served_players, plan.chosen.size(), chosen_fleet);
  return plan;
}

}  // namespace cloudfog::economics
