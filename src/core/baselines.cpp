#include "core/baselines.hpp"

namespace cloudfog::core {

std::size_t default_supernode_count(const Testbed& testbed) {
  const std::size_t capable = testbed.supernode_capable().size();
  const std::size_t target =
      testbed.config().profile == TestbedProfile::kPeerSim ? 600 : 30;
  return std::min(target, capable);
}

std::size_t small_cdn_count(const Testbed& testbed) {
  return testbed.config().profile == TestbedProfile::kPeerSim ? 45 : 8;
}

SystemConfig cloud_config(const Testbed& testbed) {
  (void)testbed;
  SystemConfig cfg;
  cfg.architecture = Architecture::kCloudDirect;
  cfg.strategies = StrategyToggles::none();
  return cfg;
}

SystemConfig cdn_config(const Testbed& testbed, std::size_t servers) {
  (void)testbed;
  SystemConfig cfg;
  cfg.architecture = Architecture::kCdn;
  cfg.strategies = StrategyToggles::none();
  cfg.cdn_server_count = servers;
  return cfg;
}

SystemConfig cloudfog_basic_config(const Testbed& testbed, std::size_t supernodes) {
  (void)testbed;
  SystemConfig cfg;
  cfg.architecture = Architecture::kCloudFog;
  cfg.strategies = StrategyToggles::none();
  cfg.supernode_count = supernodes;
  return cfg;
}

SystemConfig cloudfog_advanced_config(const Testbed& testbed, std::size_t supernodes) {
  SystemConfig cfg = cloudfog_basic_config(testbed, supernodes);
  cfg.strategies = StrategyToggles::all();
  return cfg;
}

System make_cloud_system(const Testbed& testbed, std::uint64_t seed) {
  return System(testbed, cloud_config(testbed), seed);
}

System make_cdn_system(const Testbed& testbed, std::uint64_t seed) {
  // Equal-budget CDN: half as many edge servers as CloudFog supernodes
  // (a CDN server costs about twice a supernode reward, §4.1/Fig. 6b).
  return System(testbed, cdn_config(testbed, default_supernode_count(testbed) / 2), seed);
}

System make_small_cdn_system(const Testbed& testbed, std::uint64_t seed) {
  return System(testbed, cdn_config(testbed, small_cdn_count(testbed)), seed);
}

System make_cloudfog_basic(const Testbed& testbed, std::uint64_t seed) {
  return System(testbed, cloudfog_basic_config(testbed, default_supernode_count(testbed)),
                seed);
}

System make_cloudfog_advanced(const Testbed& testbed, std::uint64_t seed) {
  return System(testbed, cloudfog_advanced_config(testbed, default_supernode_count(testbed)),
                seed);
}

}  // namespace cloudfog::core
