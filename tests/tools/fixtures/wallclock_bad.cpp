// Fixture: must trip cloudfog-wallclock (wall-clock + libc randomness).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

double wall_seed() {
  const auto now = std::chrono::system_clock::now();  // finding: system_clock
  (void)now;
  std::srand(42);                    // finding: srand
  const int r = std::rand();         // finding: rand
  std::random_device rd;             // finding: random_device
  const std::time_t t = std::time(nullptr);  // finding: time(
  return static_cast<double>(r + rd() + t);
}

// Sim-clock reads must NOT trip the rule: member/scoped time accessors.
struct Clock {
  double now_s = 0.0;
  double sim_time() const { return now_s; }
};

double sim_time_ok(const Clock& c) {
  return c.sim_time() + 1.0;  // member call on the sim clock: allowed
}

}  // namespace fixture
