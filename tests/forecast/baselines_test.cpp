#include "forecast/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "game/workload.hpp"
#include "util/require.hpp"

namespace cloudfog::forecast {
namespace {

TEST(Persistence, ForecastsLastValue) {
  PersistenceForecaster model;
  EXPECT_FALSE(model.forecast_next().has_value());
  model.observe(10.0);
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 10.0);
  model.observe(20.0);
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 20.0);
}

TEST(SeasonalNaive, ForecastsLastSeason) {
  SeasonalNaiveForecaster model(3);
  model.observe(1.0);
  model.observe(2.0);
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 2.0);  // warm-up: persistence
  model.observe(3.0);
  EXPECT_TRUE(model.seasonal());
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 1.0);  // one season back
  model.observe(4.0);
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 2.0);
}

TEST(SeasonalNaive, PerfectOnExactlyPeriodicSeries) {
  SeasonalNaiveForecaster model(4);
  const std::vector<double> series{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4};
  const auto accuracy = evaluate_forecaster(model, series, /*skip=*/4);
  EXPECT_DOUBLE_EQ(accuracy.mape, 0.0);
  EXPECT_EQ(accuracy.scored, 8u);
}

TEST(Evaluate, ScoresOnlyPostWarmup) {
  PersistenceForecaster model;
  const std::vector<double> series{10, 10, 10, 99};
  const auto accuracy = evaluate_forecaster(model, series, /*skip=*/3);
  EXPECT_EQ(accuracy.scored, 1u);  // only the jump window
  EXPECT_NEAR(accuracy.mape, std::abs(99.0 - 10.0) / 99.0, 1e-12);
}

std::vector<double> four_hour_windows(const game::WorkloadConfig& cfg, std::uint64_t seed) {
  game::WorkloadGenerator workload(cfg, util::Rng(seed));
  const auto hourly = workload.series(28);
  std::vector<double> windows;
  for (std::size_t i = 0; i + 4 <= hourly.size(); i += 4) {
    windows.push_back((hourly[i] + hourly[i + 1] + hourly[i + 2] + hourly[i + 3]) / 4.0);
  }
  return windows;
}

TEST(Ablation, SeasonalModelsBeatPersistenceOnStationaryWeeks) {
  // On the stationary pattern of [36,37] ("this Friday mirrors last
  // Friday"), both seasonal models crush persistence; seasonal-naive is
  // actually the sharpest because Eq. 14's trend term only adds noise
  // when there is no trend.
  const auto windows = four_hour_windows(game::WorkloadConfig{}, 13);
  const std::size_t season = 42;
  PersistenceForecaster persistence;
  SeasonalNaiveForecaster naive(season);
  SeasonalArima sarima(SarimaConfig{season, 0.3, 0.3});
  const auto p = evaluate_forecaster(persistence, windows, season + 1);
  const auto n = evaluate_forecaster(naive, windows, season + 1);
  const auto s = evaluate_forecaster(sarima, windows, season + 1);
  EXPECT_LT(n.mape, p.mape);
  EXPECT_LT(s.mape, p.mape);
  EXPECT_LT(s.mape, 0.15);  // SARIMA still absolutely accurate (<15 %)
}

TEST(Ablation, LogSarimaBeatsSeasonalNaiveUnderGrowth) {
  // A launch-phase MMOG growing 15 % week over week: the seasonal-naive
  // rule is persistently one growth step behind; Eq. 14 in log space
  // (populations are multiplicative) tracks the trend almost exactly.
  game::WorkloadConfig cfg;
  cfg.weekly_growth = 0.15;
  const auto windows = four_hour_windows(cfg, 13);
  const std::size_t season = 42;
  SeasonalNaiveForecaster naive(season);
  SeasonalArima sarima(SarimaConfig{season, 0.3, 0.3, /*log_transform=*/true});
  const auto n = evaluate_forecaster(naive, windows, season + 1);
  const auto s = evaluate_forecaster(sarima, windows, season + 1);
  EXPECT_LT(s.mape, n.mape);
  EXPECT_LT(s.mape, 0.08);
}

TEST(Ablation, LogTransformHelpsEvenWithoutGrowth) {
  // The diurnal shape itself is multiplicative, so log-space SARIMA also
  // sharpens the stationary case.
  const auto windows = four_hour_windows(game::WorkloadConfig{}, 13);
  const std::size_t season = 42;
  SeasonalArima linear(SarimaConfig{season, 0.3, 0.3, false});
  SeasonalArima logged(SarimaConfig{season, 0.3, 0.3, true});
  const auto lin = evaluate_forecaster(linear, windows, season + 1);
  const auto log = evaluate_forecaster(logged, windows, season + 1);
  EXPECT_LT(log.mape, lin.mape);
}

TEST(SeasonalNaive, Validation) {
  EXPECT_THROW(SeasonalNaiveForecaster(0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::forecast
