// The cloud: datacenters plus the supernode registry (paper §3.2.1).
//
// The cloud "stores the information of supernodes in the system in a table
// including their IP addresses and available capacities. When a newly
// joined node requests a supernode, the cloud returns a number of
// supernodes that have available capacities and are physically close to
// the player" — closeness judged by IP geolocation, which is deliberately
// noisy here (see net::IpLocator), so the player's own RTT probing still
// has work to do.
#pragma once

#include <cstddef>
#include <vector>

#include "core/entities.hpp"
#include "net/ip_locator.hpp"
#include "net/latency_model.hpp"

namespace cloudfog::core {

class Cloud {
 public:
  Cloud(std::vector<DatacenterState> datacenters, const net::LatencyModel& latency,
        net::IpLocator locator);

  std::size_t datacenter_count() const { return datacenters_.size(); }
  DatacenterState& datacenter(std::size_t i);
  const DatacenterState& datacenter(std::size_t i) const;
  std::vector<DatacenterState>& datacenters() { return datacenters_; }
  const std::vector<DatacenterState>& datacenters() const { return datacenters_; }

  /// Index of the datacenter with the lowest RTT to `who` — where the
  /// player's game state lives and where direct streaming comes from.
  std::size_t nearest_datacenter(const net::Endpoint& who) const;

  /// Registers a supernode in the table (geolocating its IP).
  void register_supernode(SupernodeState& sn, util::Rng& rng);

  /// Removes a supernode from the table.
  void unregister_supernode(const SupernodeState& sn);

  /// §3.2.1 candidate lookup: among supernodes that are deployed, alive
  /// and have spare capacity, the `count` closest to the player by
  /// geolocated distance. Returns supernode indices into `fleet`.
  std::vector<std::size_t> candidate_supernodes(const net::Endpoint& player,
                                                const std::vector<SupernodeState>& fleet,
                                                std::size_t count) const;

  const net::IpLocator& locator() const { return locator_; }
  const net::LatencyModel& latency() const { return latency_; }

 private:
  std::vector<DatacenterState> datacenters_;
  const net::LatencyModel& latency_;
  net::IpLocator locator_;
};

}  // namespace cloudfog::core
