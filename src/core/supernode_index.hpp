// Geo-grid spatial index over registered supernode positions (perf layer
// behind Cloud::candidate_supernodes, DESIGN.md §10).
//
// The index answers exact k-nearest-accepting queries: bucket every
// supernode's *geolocated* position (the registry's noisy view, not the
// true endpoint) into fixed-size grid cells, then expand Chebyshev rings
// around the query cell until the k-th best distance provably beats
// anything a farther ring could hold. Liveness (deployed / failed /
// capacity) is read from the fleet at query time, so churn in those
// fields needs no index maintenance; only (un)registration — which can
// change a node's geolocated position — forces a rebuild, which Cloud
// triggers lazily via an epoch counter.
//
// Cells live in a dense CSR layout over the populated bounding box and
// rings are clamped to that box, so the saturated worst case (few
// accepting nodes anywhere — every ring expands) degrades to
// O(cells + fleet) array reads, the same order as the linear scan it
// replaces.
//
// Results are ordered by (distance, fleet index): a total order, so the
// grid path and the linear reference scan agree element-for-element.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/coordinates.hpp"

namespace cloudfog::core {

struct SupernodeState;

class SupernodeIndex {
 public:
  /// `cell_km` trades ring fan-out against bucket occupancy; the default
  /// suits metro-clustered fleets on the GeoPlane (≈60 km metro sigma).
  explicit SupernodeIndex(double cell_km = 150.0);

  /// Rebuilds from scratch: node `i` of the fleet sits at `positions[i]`.
  void rebuild(const std::vector<net::GeoPoint>& positions);

  std::size_t size() const { return positions_.size(); }

  /// Appends to `out` (cleared first) the indices of the `count` nearest
  /// nodes for which `fleet[i].accepting()` holds, ordered by
  /// (distance, index). Exact — identical to a full scan. Single-threaded
  /// (uses internal query scratch).
  void nearest_accepting(const net::GeoPoint& from, const std::vector<SupernodeState>& fleet,
                         std::size_t count, std::vector<std::size_t>& out) const;

 private:
  std::int64_t cell_of(double v) const;
  void scan_cell(std::int64_t cx, std::int64_t cy, const net::GeoPoint& from,
                 const std::vector<SupernodeState>& fleet) const;

  double cell_km_ = 150.0;
  std::vector<net::GeoPoint> positions_;
  // Dense CSR over the populated bounding box: nodes of cell (cx, cy) are
  // cell_nodes_[cell_start_[c] .. cell_start_[c+1]) with
  // c = (cy - min_cy_) * width_ + (cx - min_cx_).
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_nodes_;
  std::int64_t min_cx_ = 0;
  std::int64_t max_cx_ = 0;
  std::int64_t min_cy_ = 0;
  std::int64_t max_cy_ = 0;
  std::int64_t width_ = 0;
  /// Query scratch, reused across calls (single-threaded contract).
  mutable std::vector<std::pair<double, std::size_t>> scratch_;
};

}  // namespace cloudfog::core
