// Umbrella header for the fault-injection subsystem.
#pragma once

#include "fault/fallback.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_state.hpp"
#include "fault/retry_policy.hpp"
