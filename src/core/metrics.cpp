#include "core/metrics.hpp"

namespace cloudfog::core {

void MetricsCollector::record_subcycle(const SubcycleQos& qos, bool warmup) {
  if (warmup) return;
  ++recorded_subcycles_;
  metrics_.cloud_egress_mbps.add(qos.cloud_egress_mbps);
  metrics_.online_sessions.add(static_cast<double>(qos.online_sessions));
  if (qos.online_sessions == 0) return;  // QoS ratios are undefined with nobody online
  metrics_.response_latency_ms.add(qos.avg_response_latency_ms);
  metrics_.server_latency_ms.add(qos.avg_server_latency_ms);
  metrics_.continuity.add(qos.avg_continuity);
  metrics_.satisfied_fraction.add(qos.satisfied_fraction);
  metrics_.mos.add(qos.avg_mos);
  metrics_.fog_served_fraction.add(static_cast<double>(qos.fog_served) /
                                   static_cast<double>(qos.online_sessions));
}

}  // namespace cloudfog::core
