# Empty compiler generated dependencies file for bench_ext_failures.
# This may be replaced when dependencies are built.
