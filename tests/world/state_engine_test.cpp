#include "world/state_engine.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::world {
namespace {

VirtualWorld populated_world(std::uint64_t seed, int population) {
  WorldConfig cfg;
  VirtualWorld world(cfg, util::Rng(seed));
  for (int i = 0; i < population; ++i) world.spawn();
  return world;
}

TEST(StateEngine, TickAdvancesWorldAndReportsWork) {
  auto world = populated_world(1, 1000);
  GameStateEngine engine(world, StateEngineConfig{});
  const Vec2 before = world.avatar(0).position;
  const TickStats stats = engine.tick(1.0);
  EXPECT_GT(stats.compute_ms, 0.0);
  EXPECT_GE(stats.imbalance, 1.0);
  EXPECT_NE(distance(before, world.avatar(0).position), 0.0);
}

TEST(StateEngine, ComputeGrowsWithPopulation) {
  auto small_world = populated_world(2, 200);
  auto large_world = populated_world(2, 4000);
  GameStateEngine small_engine(small_world, StateEngineConfig{});
  GameStateEngine large_engine(large_world, StateEngineConfig{});
  EXPECT_LT(small_engine.tick(1.0).compute_ms, large_engine.tick(1.0).compute_ms);
}

TEST(StateEngine, MoreServersLowerCriticalPath) {
  StateEngineConfig few;
  few.server_count = 1;
  StateEngineConfig many;
  many.server_count = 16;
  auto w1 = populated_world(3, 3000);
  auto w2 = populated_world(3, 3000);
  GameStateEngine e_few(w1, few);
  GameStateEngine e_many(w2, many);
  // With one server there is no cross-server sync but all work serializes;
  // the avatar-update term dominates at this population.
  EXPECT_GT(e_few.tick(1.0).compute_ms, e_many.tick(1.0).compute_ms);
}

TEST(StateEngine, CrossServerInteractionsCounted) {
  auto world = populated_world(4, 3000);
  StateEngineConfig cfg;
  cfg.server_count = 8;
  GameStateEngine engine(world, cfg);
  const TickStats stats = engine.tick(1.0);
  EXPECT_GT(stats.interactions, 0u);
  EXPECT_LE(stats.cross_server_interactions, stats.interactions);
}

TEST(StateEngine, RebalanceRestoresBalanceAfterDrift) {
  auto world = populated_world(5, 2000);
  StateEngineConfig cfg;
  cfg.rebalance_threshold = 1e9;  // never auto-rebalance
  GameStateEngine engine(world, cfg);
  // Let the population drift for a long time; the initial kd-tree goes
  // stale as avatars migrate between hotspots.
  double drifted = 1.0;
  for (int i = 0; i < 300; ++i) drifted = engine.tick(10.0).imbalance;
  engine.rebalance();
  const double rebuilt =
      WorldPartition::imbalance(engine.partition().server_loads(world, cfg.server_count));
  EXPECT_LE(rebuilt, drifted + 1e-9);
  EXPECT_LT(rebuilt, 1.3);
}

TEST(StateEngine, AutoRebalanceTriggersOnThreshold) {
  auto world = populated_world(6, 2000);
  StateEngineConfig cfg;
  cfg.rebalance_threshold = 1.05;  // hair trigger
  GameStateEngine engine(world, cfg);
  bool rebalanced = false;
  for (int i = 0; i < 100 && !rebalanced; ++i) rebalanced = engine.tick(10.0).rebalanced;
  EXPECT_TRUE(rebalanced);
}

TEST(StateEngine, UpdateFeedScalesWithLocalPopulation) {
  auto world = populated_world(7, 3000);
  GameStateEngine engine(world, StateEngineConfig{});
  // Find a dense spot and an empty spot.
  double dense_feed = 0.0;
  for (const Avatar& a : world.avatars()) {
    dense_feed = std::max(dense_feed, engine.update_feed_bps(a.position, 500.0, 30.0));
  }
  const double corner_feed = engine.update_feed_bps(Vec2{0.0, 0.0}, 1.0, 30.0);
  EXPECT_GT(dense_feed, corner_feed);
  EXPECT_GT(dense_feed, 0.0);
}

TEST(StateEngine, UpdateFeedMatchesFormula) {
  auto world = populated_world(8, 100);
  GameStateEngine engine(world, StateEngineConfig{});
  const double whole_world =
      engine.update_feed_bps(Vec2{world.config().width / 2, world.config().height / 2},
                             1e9, 30.0);
  EXPECT_NEAR(whole_world, 100.0 * 400.0 * 30.0, 1e-6);
}

TEST(StateEngine, ConfigValidation) {
  auto world = populated_world(9, 10);
  StateEngineConfig cfg;
  cfg.rebalance_threshold = 0.5;
  EXPECT_THROW(GameStateEngine(world, cfg), ConfigError);
  GameStateEngine ok(world, StateEngineConfig{});
  EXPECT_THROW(ok.update_feed_bps(Vec2{0, 0}, 10.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace cloudfog::world
