#include "scenario/envelope.hpp"

#include <algorithm>
#include <limits>

namespace cloudfog::scenario {

void AcceptanceEnvelope::require_min(std::string metric, double min) {
  for (EnvelopeBound& b : bounds_) {
    if (b.metric == metric) {
      b.min = min;
      return;
    }
  }
  bounds_.push_back(EnvelopeBound{std::move(metric), min, std::nullopt});
}

void AcceptanceEnvelope::require_max(std::string metric, double max) {
  for (EnvelopeBound& b : bounds_) {
    if (b.metric == metric) {
      b.max = max;
      return;
    }
  }
  bounds_.push_back(EnvelopeBound{std::move(metric), std::nullopt, max});
}

EnvelopeReport AcceptanceEnvelope::check(const std::vector<ScenarioMetric>& metrics) const {
  EnvelopeReport report;
  for (const EnvelopeBound& bound : bounds_) {
    BoundCheck check;
    check.bound = bound;
    for (const ScenarioMetric& m : metrics) {
      if (m.name == bound.metric) {
        check.metric_found = true;
        check.value = m.value;
        break;
      }
    }
    if (!check.metric_found) {
      check.passed = false;
      check.margin = -std::numeric_limits<double>::infinity();
    } else {
      check.margin = std::numeric_limits<double>::infinity();
      if (bound.min) check.margin = std::min(check.margin, check.value - *bound.min);
      if (bound.max) check.margin = std::min(check.margin, *bound.max - check.value);
      if (!bound.min && !bound.max) check.margin = 0.0;  // vacuous bound
      check.passed = check.margin >= 0.0;
    }
    report.passed = report.passed && check.passed;
    report.checks.push_back(std::move(check));
  }
  report.min_margin = 0.0;
  for (std::size_t i = 0; i < report.checks.size(); ++i) {
    report.min_margin =
        i == 0 ? report.checks[i].margin : std::min(report.min_margin, report.checks[i].margin);
  }
  return report;
}

const std::vector<std::string>& scenario_metric_names() {
  static const std::vector<std::string> kNames = {
      "continuity",        "latency_ms",         "satisfied_pct",
      "mos",               "cloud_egress_mbps",  "fog_served_pct",
      "online_mean",       "cloud_fallback_pct", "fallbacks",
      "fog_returns",       "migrations",         "migration_storm",
      "mttr_s",            "interrupted",        "joins",
      "adversary_served_pct", "reputation_fp_pct",
  };
  return kNames;
}

bool is_scenario_metric(std::string_view name) {
  for (const std::string& n : scenario_metric_names()) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace cloudfog::scenario
