# Empty compiler generated dependencies file for evening_peak.
# This may be replaced when dependencies are built.
