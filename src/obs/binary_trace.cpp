#include "obs/binary_trace.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "util/require.hpp"

namespace cloudfog::obs {

namespace {

constexpr std::size_t kFlushThreshold = std::size_t{60} * 1024;

void put_u16(std::vector<char>& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xffu));
  buf.push_back(static_cast<char>((v >> 8) & 0xffu));
}

void put_u64(std::vector<char>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_f64(std::vector<char>& buf, double v) { put_u64(buf, std::bit_cast<std::uint64_t>(v)); }

void put_i64(std::vector<char>& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const unsigned char* p) { return std::bit_cast<double>(get_u64(p)); }

std::int64_t get_i64(const unsigned char* p) { return static_cast<std::int64_t>(get_u64(p)); }

bool read_exact(std::istream& is, char* out, std::size_t n) {
  is.read(out, static_cast<std::streamsize>(n));
  return is.gcount() == static_cast<std::streamsize>(n);
}

}  // namespace

BinaryTraceSink::BinaryTraceSink(std::ostream& os) : os_(&os) {
  buf_.reserve(kFlushThreshold + 256);
  buf_.push_back('C');
  buf_.push_back('F');
  buf_.push_back('T');
  buf_.push_back('R');
  put_u16(buf_, kBinaryTraceVersion);
  put_u16(buf_, static_cast<std::uint16_t>(kBinaryTraceHeaderBytes));
  put_u16(buf_, static_cast<std::uint16_t>(kBinaryTraceRecordBytes));
  put_u16(buf_, 0);  // reserved
}

BinaryTraceSink::~BinaryTraceSink() { flush(); }

std::uint16_t BinaryTraceSink::file_note_id(NoteId note) {
  if (note.index == 0) return 0;
  if (note.index >= file_ids_.size()) file_ids_.resize(note.index + 1, 0);
  std::uint16_t& slot = file_ids_[note.index];
  if (slot == 0) {
    CLOUDFOG_REQUIRE(next_file_id_ != std::numeric_limits<std::uint16_t>::max(),
                     "binary trace string table overflow (65534 distinct notes)");
    slot = next_file_id_++;
    const std::string_view text = note_text(note);
    CLOUDFOG_REQUIRE(text.size() <= std::numeric_limits<std::uint16_t>::max(),
                     "note text too long for the binary string table");
    buf_.push_back(static_cast<char>(kBinaryFrameString));
    put_u16(buf_, slot);
    put_u16(buf_, static_cast<std::uint16_t>(text.size()));
    buf_.insert(buf_.end(), text.begin(), text.end());
  }
  return slot;
}

void BinaryTraceSink::write(const TraceEvent& event) {
  const std::uint16_t note_id = file_note_id(event.note.id);
  buf_.push_back(static_cast<char>(kBinaryFrameEvent));
  put_f64(buf_, event.t);
  put_i64(buf_, event.subject);
  put_i64(buf_, event.object);
  put_f64(buf_, event.value);
  put_i64(buf_, event.note.arg);
  buf_.push_back(static_cast<char>(event.kind));
  buf_.push_back(static_cast<char>(event.note.has_arg ? 1 : 0));
  put_u16(buf_, note_id);
  if (buf_.size() >= kFlushThreshold) flush();
}

void BinaryTraceSink::flush() {
  if (!buf_.empty()) {
    os_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

BinaryTraceReader::BinaryTraceReader(std::istream& is) : is_(&is) {
  notes_.push_back(NoteId{0});  // file id 0: no note
  char header[kBinaryTraceHeaderBytes];
  if (!read_exact(*is_, header, sizeof(header))) {
    fail("truncated binary trace header");
    return;
  }
  if (std::memcmp(header, "CFTR", 4) != 0) {
    fail("not a CloudFog binary trace (bad magic)");
    return;
  }
  const auto* h = reinterpret_cast<const unsigned char*>(header);
  const std::uint16_t version = get_u16(h + 4);
  const std::uint16_t header_bytes = get_u16(h + 6);
  const std::uint16_t record_bytes = get_u16(h + 8);
  if (version != kBinaryTraceVersion) {
    fail("unsupported binary trace version " + std::to_string(version));
    return;
  }
  if (header_bytes != kBinaryTraceHeaderBytes || record_bytes != kBinaryTraceRecordBytes) {
    fail("binary trace header/record size mismatch");
    return;
  }
}

bool BinaryTraceReader::next(TraceEvent* out) {
  if (!ok()) return false;
  for (;;) {
    char tag = 0;
    is_->read(&tag, 1);
    if (is_->gcount() != 1) return false;  // clean EOF
    if (tag == static_cast<char>(kBinaryFrameString)) {
      char head[4];
      if (!read_exact(*is_, head, sizeof(head))) {
        fail("truncated string-table entry");
        return false;
      }
      const auto* p = reinterpret_cast<const unsigned char*>(head);
      const std::uint16_t id = get_u16(p);
      const std::uint16_t len = get_u16(p + 2);
      std::string text(len, '\0');
      if (len != 0 && !read_exact(*is_, text.data(), len)) {
        fail("truncated string-table text");
        return false;
      }
      if (id != notes_.size()) {
        fail("string-table ids must be dense and in order of first use");
        return false;
      }
      notes_.push_back(intern_note(text));
      continue;
    }
    if (tag == static_cast<char>(kBinaryFrameEvent)) {
      char rec[kBinaryTraceRecordBytes];
      if (!read_exact(*is_, rec, sizeof(rec))) {
        fail("truncated event record");
        return false;
      }
      const auto* p = reinterpret_cast<const unsigned char*>(rec);
      TraceEvent e;
      e.t = get_f64(p);
      e.subject = get_i64(p + 8);
      e.object = get_i64(p + 16);
      e.value = get_f64(p + 24);
      const std::int64_t note_arg = get_i64(p + 32);
      const std::uint8_t kind = p[40];
      const std::uint8_t flags = p[41];
      const std::uint16_t note_id = get_u16(p + 42);
      if (kind >= kEventKindCount) {
        fail("unknown event kind " + std::to_string(kind));
        return false;
      }
      if (note_id >= notes_.size()) {
        fail("event references unknown string-table id " + std::to_string(note_id));
        return false;
      }
      e.kind = static_cast<EventKind>(kind);
      e.note = (flags & 1u) != 0 ? Note{notes_[note_id], note_arg} : Note{notes_[note_id]};
      *out = e;
      return true;
    }
    fail("unknown frame tag " + std::to_string(static_cast<unsigned char>(tag)));
    return false;
  }
}

}  // namespace cloudfog::obs
