#include "social/community_partitioner.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace cloudfog::social {

CommunityPartitioner::CommunityPartitioner(PartitionerConfig cfg) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.communities > 0, "need at least one community");
  CLOUDFOG_REQUIRE(cfg.max_swap_trials >= 0, "h1 must be non-negative");
  CLOUDFOG_REQUIRE(cfg.max_consecutive_miss >= 0, "h2 must be non-negative");
  CLOUDFOG_REQUIRE(cfg.max_consecutive_miss <= cfg.max_swap_trials,
                   "h2 must not exceed h1 (paper requires h2 < h1)");
}

Partition CommunityPartitioner::greedy_seed(const SocialGraph& graph, util::Rng& rng) const {
  const std::size_t n = graph.player_count();
  const int z = cfg_.communities;
  Partition partition(n, -1);
  if (n == 0) return partition;

  const std::size_t target_size = std::max<std::size_t>(1, n / static_cast<std::size_t>(z));

  // Unassigned pool, consumed in random order.
  std::vector<PlayerId> pool(n);
  std::iota(pool.begin(), pool.end(), PlayerId{0});
  std::shuffle(pool.begin(), pool.end(), rng);

  auto pop_unassigned = [&]() -> PlayerId {
    while (!pool.empty()) {
      const PlayerId p = pool.back();
      pool.pop_back();
      if (partition[p] == -1) return p;
    }
    return n;  // sentinel: none left
  };

  for (CommunityId c = 0; c < z; ++c) {
    const bool last = c == z - 1;
    std::vector<PlayerId> members;

    // Step 1/2: seed with a random unassigned player plus its friends.
    const PlayerId seed = pop_unassigned();
    if (seed == n) break;  // everyone assigned already
    auto absorb = [&](PlayerId p) {
      if (partition[p] != -1) return;
      partition[p] = c;
      members.push_back(p);
    };
    absorb(seed);
    for (PlayerId f : graph.friends(seed)) absorb(f);

    // Step 3: grow by friend closure until the size target is met. Picking
    // a random member whose friends are all absorbed is a wasted draw, so
    // bound the attempts and fall back to fresh seeds.
    std::size_t stale_draws = 0;
    while (members.size() < target_size && !last) {
      if (stale_draws >= members.size() + 8) {
        // The community's friend closure is exhausted; inject a fresh seed.
        const PlayerId fresh = pop_unassigned();
        if (fresh == n) break;
        absorb(fresh);
        for (PlayerId f : graph.friends(fresh)) absorb(f);
        stale_draws = 0;
        continue;
      }
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1));
      const std::size_t before = members.size();
      for (PlayerId f : graph.friends(members[idx])) absorb(f);
      stale_draws = members.size() == before ? stale_draws + 1 : 0;
    }

    // Step 4 (last community): absorb every remaining player.
    if (last) {
      for (PlayerId p = 0; p < n; ++p) {
        if (partition[p] == -1) partition[p] = c;
      }
    }
  }

  // If the pool drained before z communities were seeded, any stragglers
  // (none expected) go to community 0.
  for (auto& c : partition) {
    if (c == -1) c = 0;
  }
  return partition;
}

PartitionerResult CommunityPartitioner::partition(const SocialGraph& graph,
                                                  util::Rng& rng) const {
  PartitionerResult result;
  result.partition = greedy_seed(graph, rng);
  const int z = cfg_.communities;

  ModularityState state(graph, result.partition, z);
  result.initial_modularity = state.modularity();

  if (z < 2 || graph.player_count() < 2) {
    result.final_modularity = result.initial_modularity;
    result.partition = state.partition();
    return result;
  }

  // Step 5/6: random swap hill-climbing with rollback on non-improvement.
  double best = result.initial_modularity;
  int consecutive_miss = 0;
  const std::size_t n = graph.player_count();
  for (int trial = 0; trial < cfg_.max_swap_trials; ++trial) {
    ++result.swap_trials;
    const auto pi = static_cast<PlayerId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto pj = static_cast<PlayerId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const CommunityId ci = state.community_of(pi);
    const CommunityId cj = state.community_of(pj);
    if (ci == cj) {
      // Not a cross-community pair; costs a trial (matches the paper's
      // "repeat h1 times" accounting) but cannot be a hit.
      if (++consecutive_miss >= cfg_.max_consecutive_miss && cfg_.max_consecutive_miss > 0) {
        result.stopped_by_miss_streak = true;
        break;
      }
      continue;
    }

    // Swap n_i + F(i) (those currently with n_i) and n_j + F(j).
    std::vector<std::pair<PlayerId, CommunityId>> moved;
    auto move_group = [&](PlayerId center, CommunityId from, CommunityId to) {
      if (state.community_of(center) == from) {
        moved.emplace_back(center, from);
        state.move(center, to);
      }
      for (PlayerId f : graph.friends(center)) {
        if (state.community_of(f) == from) {
          moved.emplace_back(f, from);
          state.move(f, to);
        }
      }
    };
    move_group(pi, ci, cj);
    move_group(pj, cj, ci);

    const double now = state.modularity();
    if (now > best) {
      best = now;
      consecutive_miss = 0;
      ++result.accepted_swaps;
    } else {
      // Miss: roll back in reverse order.
      for (auto it = moved.rbegin(); it != moved.rend(); ++it) state.move(it->first, it->second);
      if (++consecutive_miss >= cfg_.max_consecutive_miss && cfg_.max_consecutive_miss > 0) {
        result.stopped_by_miss_streak = true;
        break;
      }
    }
  }

  result.partition = state.partition();
  result.final_modularity = best;
  return result;
}

CommunityId assign_new_player(const SocialGraph& graph, const Partition& partition,
                              int community_count, PlayerId joiner, util::Rng& rng) {
  CLOUDFOG_REQUIRE(community_count > 0, "need at least one community");
  CLOUDFOG_REQUIRE(joiner < graph.player_count(), "player id out of range");
  std::vector<int> votes(static_cast<std::size_t>(community_count), 0);
  bool any = false;
  for (PlayerId f : graph.friends(joiner)) {
    if (f < partition.size() && partition[f] >= 0 && partition[f] < community_count) {
      ++votes[static_cast<std::size_t>(partition[f])];
      any = true;
    }
  }
  if (!any) {
    return static_cast<CommunityId>(rng.uniform_int(0, community_count - 1));
  }
  return static_cast<CommunityId>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace cloudfog::social
