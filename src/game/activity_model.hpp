// Player activity model (paper §4.1).
//
// Duration classes (ref. [48]): 50 % of players play (0,2] h per day,
// 30 % play (2,5] h, 20 % play (5,24] h. Start times: subcycle drawn from
// [1,19] with probability 30 % and from [20,24] (the evening peak) with
// probability 70 %. Game choice: a random game unless friends are online,
// in which case the game most friends are playing.
#pragma once

#include <vector>

#include "game/game_catalog.hpp"
#include "util/rng.hpp"

namespace cloudfog::game {

enum class DurationClass {
  kCasual,    ///< (0, 2] hours/day — 50 % of players
  kRegular,   ///< (2, 5] hours/day — 30 %
  kHardcore,  ///< (5, 24] hours/day — 20 %
};

struct ActivityModelConfig {
  double casual_fraction = 0.50;
  double regular_fraction = 0.30;   // hardcore takes the remainder
  double offpeak_start_prob = 0.30; ///< P(start subcycle ∈ [1,19])
  int subcycles_per_day = 24;
  int peak_start_subcycle = 20;
};

class ActivityModel {
 public:
  explicit ActivityModel(ActivityModelConfig cfg = {});

  const ActivityModelConfig& config() const { return cfg_; }

  /// Assigns a player's long-term duration class.
  DurationClass sample_duration_class(util::Rng& rng) const;

  /// Hours played today given the class (uniform within the class range).
  double sample_play_hours(DurationClass cls, util::Rng& rng) const;

  /// Start subcycle for today's session (1-based).
  int sample_start_subcycle(util::Rng& rng) const;

  /// Picks the game to play: the mode of `friend_games` (game ids of
  /// friends currently online) or a uniformly random game when empty.
  GameId choose_game(const GameCatalog& catalog, const std::vector<GameId>& friend_games,
                     util::Rng& rng) const;

 private:
  ActivityModelConfig cfg_;
};

/// A player's plan for one day: when to start and how long to stay.
struct DailySession {
  int start_subcycle = 1;  ///< 1-based
  double hours = 1.0;
  /// True if the player is online during `subcycle` (wraps past midnight
  /// into nothing — sessions truncate at the end of the day, as cycles in
  /// the paper are independent days).
  bool online_at(int subcycle, int subcycles_per_day = 24) const;
};

/// Rolls a full daily session for a player.
DailySession roll_daily_session(const ActivityModel& model, DurationClass cls, util::Rng& rng);

}  // namespace cloudfog::game
