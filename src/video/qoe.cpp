#include "video/qoe.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace cloudfog::video {

QoeModel::QoeModel(QoeModelConfig cfg) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.latency_knee_ms > 0.0, "latency knee must be positive");
  CLOUDFOG_REQUIRE(cfg.latency_slope > 0.0, "latency slope must be positive");
  CLOUDFOG_REQUIRE(cfg.continuity_exponent >= 1.0, "continuity exponent below 1");
  CLOUDFOG_REQUIRE(cfg.max_bitrate_kbps > cfg.min_bitrate_kbps &&
                       cfg.min_bitrate_kbps > 0.0,
                   "bitrate anchors inverted");
  weight_sum_ = cfg.latency_weight + cfg.continuity_weight + cfg.quality_weight;
  CLOUDFOG_REQUIRE(weight_sum_ > 0.0, "weights must not all be zero");
}

double QoeModel::latency_factor(double response_latency_ms) const {
  CLOUDFOG_REQUIRE(response_latency_ms >= 0.0, "negative latency");
  // Logistic: ≈1 well below the knee, 0.5 at the knee, →0 far above it.
  return 1.0 / (1.0 + std::exp(cfg_.latency_slope *
                               (response_latency_ms - cfg_.latency_knee_ms)));
}

double QoeModel::continuity_factor(double continuity) const {
  CLOUDFOG_REQUIRE(continuity >= 0.0 && continuity <= 1.0, "continuity out of [0,1]");
  return std::pow(continuity, cfg_.continuity_exponent);
}

double QoeModel::quality_factor(double bitrate_kbps) const {
  CLOUDFOG_REQUIRE(bitrate_kbps > 0.0, "bitrate must be positive");
  const double clamped =
      std::clamp(bitrate_kbps, cfg_.min_bitrate_kbps, cfg_.max_bitrate_kbps);
  return std::log(clamped / cfg_.min_bitrate_kbps) /
         std::log(cfg_.max_bitrate_kbps / cfg_.min_bitrate_kbps);
}

double QoeModel::mos(double response_latency_ms, double continuity,
                     double bitrate_kbps) const {
  const double score = (cfg_.latency_weight * latency_factor(response_latency_ms) +
                        cfg_.continuity_weight * continuity_factor(continuity) +
                        cfg_.quality_weight * quality_factor(bitrate_kbps)) /
                       weight_sum_;
  return 1.0 + 4.0 * score;
}

}  // namespace cloudfog::video
