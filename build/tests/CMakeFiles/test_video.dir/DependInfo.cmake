
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/video/continuity_test.cpp" "tests/CMakeFiles/test_video.dir/video/continuity_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/continuity_test.cpp.o.d"
  "/root/repo/tests/video/packet_stream_test.cpp" "tests/CMakeFiles/test_video.dir/video/packet_stream_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/packet_stream_test.cpp.o.d"
  "/root/repo/tests/video/playback_buffer_test.cpp" "tests/CMakeFiles/test_video.dir/video/playback_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/playback_buffer_test.cpp.o.d"
  "/root/repo/tests/video/qoe_test.cpp" "tests/CMakeFiles/test_video.dir/video/qoe_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/qoe_test.cpp.o.d"
  "/root/repo/tests/video/rate_adapter_test.cpp" "tests/CMakeFiles/test_video.dir/video/rate_adapter_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/rate_adapter_test.cpp.o.d"
  "/root/repo/tests/video/segment_test.cpp" "tests/CMakeFiles/test_video.dir/video/segment_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/segment_test.cpp.o.d"
  "/root/repo/tests/video/stream_session_test.cpp" "tests/CMakeFiles/test_video.dir/video/stream_session_test.cpp.o" "gcc" "tests/CMakeFiles/test_video.dir/video/stream_session_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
