#include "video/packet_stream.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::video {

FrameEncoder::FrameEncoder(FrameEncoderConfig cfg, util::Rng rng) : cfg_(cfg), rng_(rng) {
  CLOUDFOG_REQUIRE(cfg.bitrate_kbps > 0.0, "bitrate must be positive");
  CLOUDFOG_REQUIRE(cfg.fps > 0.0, "fps must be positive");
  CLOUDFOG_REQUIRE(cfg.gop_length >= 1, "GOP must hold at least one frame");
  CLOUDFOG_REQUIRE(cfg.i_frame_ratio >= 1.0, "keyframes cannot be smaller than P frames");
  CLOUDFOG_REQUIRE(cfg.size_jitter >= 0.0 && cfg.size_jitter < 1.0,
                   "size jitter out of [0,1)");
}

double FrameEncoder::nominal_bits(bool keyframe) const {
  // Per GOP: 1 I frame of r·p bits + (g−1) P frames of p bits must sum to
  // g · bitrate/fps  ⇒  p = g·B / (r + g − 1).
  const double per_frame_budget = cfg_.bitrate_kbps * 1000.0 / cfg_.fps;
  const double g = static_cast<double>(cfg_.gop_length);
  const double p = g * per_frame_budget / (cfg_.i_frame_ratio + g - 1.0);
  return keyframe ? cfg_.i_frame_ratio * p : p;
}

EncodedFrame FrameEncoder::next() {
  EncodedFrame frame;
  frame.index = next_index_++;
  frame.keyframe = frame.index % static_cast<std::size_t>(cfg_.gop_length) == 0;
  const double noise =
      cfg_.size_jitter > 0.0 ? 1.0 + rng_.uniform(-cfg_.size_jitter, cfg_.size_jitter) : 1.0;
  frame.bits = nominal_bits(frame.keyframe) * noise;
  return frame;
}

DeliveryResult simulate_delivery(FrameEncoder& encoder, double duration_s,
                                 const DeliveryPath& path, double requirement_ms,
                                 util::Rng& rng) {
  CLOUDFOG_REQUIRE(duration_s > 0.0, "duration must be positive");
  CLOUDFOG_REQUIRE(path.bottleneck_kbps > 0.0, "bottleneck must be positive");
  CLOUDFOG_REQUIRE(path.mtu_bits > 0.0, "MTU must be positive");
  CLOUDFOG_REQUIRE(requirement_ms > 0.0, "requirement must be positive");

  DeliveryResult result;
  const double frame_interval_ms = 1000.0 / encoder.config().fps;
  const auto frames = static_cast<std::size_t>(duration_s * encoder.config().fps);
  // FIFO bottleneck: the time the link becomes free again.
  double link_free_at_ms = 0.0;
  for (std::size_t f = 0; f < frames; ++f) {
    const double emitted_at_ms = static_cast<double>(f) * frame_interval_ms;
    const EncodedFrame frame = encoder.next();
    const auto packets = static_cast<std::size_t>(std::ceil(frame.bits / path.mtu_bits));
    for (std::size_t k = 0; k < packets; ++k) {
      const double bits = std::min(path.mtu_bits, frame.bits - static_cast<double>(k) * path.mtu_bits);
      const double serialize_ms = bits / (path.bottleneck_kbps * 1000.0) * 1000.0;
      const double start_ms = std::max(emitted_at_ms, link_free_at_ms);
      link_free_at_ms = start_ms + serialize_ms;
      const double arrival_ms = link_free_at_ms + path.base_latency_ms +
                                util::sample_exponential(rng, 1.0 / path.jitter_mean_ms);
      ++result.packets;
      if (arrival_ms - emitted_at_ms <= requirement_ms) ++result.on_time;
    }
  }
  return result;
}

}  // namespace cloudfog::video
